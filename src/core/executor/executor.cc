#include "core/executor/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/executor/execution_state.h"
#include "core/executor/result_cache.h"
#include "core/operators/physical_ops.h"
#include "core/optimizer/cardinality.h"
#include "core/optimizer/cost_learner.h"
#include "core/optimizer/enumerator.h"
#include "core/optimizer/stats_catalog.h"
#include "data/serialization.h"

namespace rheem {

namespace {

/// Dynamic DAG scheduler: dispatches every stage whose upstream stages have
/// completed onto `pool`, tracking readiness with indegree counts. The
/// calling thread coordinates and blocks; stage bodies run on pool workers.
/// On the first stage failure no further stages start, but in-flight stages
/// are awaited before returning (their state references live on this frame).
/// `soft_stop` (optional) is polled before each dispatch: once it returns
/// true no further stages start and the round ends *successfully* after the
/// in-flight stages drain — progressive re-optimization uses this to cut a
/// round short without discarding completed work.
Status RunStagesDag(const std::vector<Stage>& stages, ThreadPool* pool,
                    const std::function<Status(const Stage&)>& run_stage,
                    const std::function<bool()>& soft_stop = nullptr) {
  const std::size_t n = stages.size();
  std::map<int, std::size_t> index_of;
  for (std::size_t i = 0; i < n; ++i) index_of[stages[i].id()] = i;

  std::vector<std::vector<std::size_t>> dependents(n);
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int up : stages[i].upstream_stages()) {
      auto it = index_of.find(up);
      if (it == index_of.end()) {
        return Status::InvalidPlan("stage " + std::to_string(stages[i].id()) +
                                   " depends on unknown stage " +
                                   std::to_string(up));
      }
      dependents[it->second].push_back(i);
      ++indegree[i];
    }
  }

  struct Ctl {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::size_t> ready;
    std::size_t in_flight = 0;
    std::size_t completed = 0;
    bool failed = false;
    Status error;
  };
  Ctl ctl;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ctl.ready.push_back(i);
  }

  std::unique_lock<std::mutex> lk(ctl.mu);
  for (;;) {
    const bool stopping = soft_stop != nullptr && soft_stop();
    if (!ctl.failed && !stopping && !ctl.ready.empty()) {
      const std::size_t idx = ctl.ready.front();
      ctl.ready.pop_front();
      ++ctl.in_flight;
      lk.unlock();
      auto task = [&ctl, &stages, &dependents, &indegree, &run_stage, idx]() {
        Status st = run_stage(stages[idx]);
        std::lock_guard<std::mutex> g(ctl.mu);
        --ctl.in_flight;
        ++ctl.completed;
        if (!st.ok()) {
          if (!ctl.failed) {
            ctl.failed = true;
            ctl.error = std::move(st);
          }
        } else {
          for (std::size_t d : dependents[idx]) {
            if (--indegree[d] == 0) ctl.ready.push_back(d);
          }
        }
        ctl.cv.notify_all();
      };
      // A shut-down pool cannot carry the task; run it inline to keep the
      // job making (serial) progress.
      if (!pool->Schedule(task)) task();
      lk.lock();
      continue;
    }
    if (ctl.in_flight == 0) {
      if (ctl.failed) return ctl.error;
      if (ctl.completed == n) return Status::OK();
      // Soft-stopped with work left: a successful partial round — the
      // caller re-plans the remainder.
      if (stopping) return Status::OK();
      // Nothing running, nothing ready, not done: the stage graph is cyclic.
      return Status::Internal("stage scheduler stalled on a cyclic graph");
    }
    ctl.cv.wait(lk);
  }
}

/// EXPLAIN ANALYZE-style text: one line per stage attempt (in stage/attempt
/// order regardless of the concurrent completion order), failover events,
/// and job totals.
/// Joined declarative payloads of the stage's operators, for the report and
/// the per-attempt trace span; "" when every UDF is a closure.
std::string StageDeclarativeDetail(const Stage& stage) {
  std::string out;
  for (const Operator* op : stage.ops()) {
    auto* phys = dynamic_cast<const PhysicalOperator*>(op);
    if (phys == nullptr) continue;
    const std::string detail = DeclarativeDetail(*phys);
    if (detail.empty()) continue;
    if (!out.empty()) out += "; ";
    out += detail;
  }
  return out;
}

std::string BuildExecutionReport(
    std::vector<ExecutionMonitor::StageRecord> records,
    const ExecutionMetrics& metrics,
    const std::vector<std::string>& failover_notes,
    const std::vector<std::string>& reopt_notes) {
  std::sort(records.begin(), records.end(),
            [](const ExecutionMonitor::StageRecord& a,
               const ExecutionMonitor::StageRecord& b) {
              if (a.stage_id != b.stage_id) return a.stage_id < b.stage_id;
              return a.attempt < b.attempt;
            });
  std::ostringstream os;
  os << "EXPLAIN ANALYZE  stages=" << metrics.stages_run
     << " retries=" << metrics.retries << " wall=" << metrics.wall_micros
     << "us sim=" << metrics.sim_overhead_micros << "us\n";
  for (const auto& r : records) {
    os << "  stage " << r.stage_id << " [" << r.platform << "] attempt "
       << r.attempt << "  "
       << (r.succeeded ? (r.error.empty() ? "ok" : r.error.c_str()) : "FAILED")
       << "  wall=" << r.wall_micros << "us rows=" << r.output_records;
    if (!r.ops_detail.empty()) os << "  [" << r.ops_detail << "]";
    if (!r.succeeded && !r.error.empty()) os << "  error: " << r.error;
    os << "\n";
  }
  for (const std::string& note : failover_notes) {
    os << "  failover: " << note << "\n";
  }
  for (const std::string& note : reopt_notes) {
    os << "  re-optimized: " << note << "\n";
  }
  os << "  totals: moved_records=" << metrics.moved_records
     << " moved_bytes=" << metrics.moved_bytes
     << " shuffle_bytes=" << metrics.shuffle_bytes
     << " tasks_launched=" << metrics.tasks_launched
     << " fused_operators=" << metrics.fused_operators
     << " stages_reused=" << metrics.stages_reused
     << " conversions_reused=" << metrics.boundary_conversions_reused
     << " failovers=" << metrics.failovers
     << " reoptimizations=" << metrics.reoptimizations << "\n";
  return os.str();
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Checkpoint framing: a magic + checksum header so torn or bit-rotted files
// are detected on restore and re-executed instead of silently feeding the
// job corrupt data. 16 lowercase-hex digits of FNV-1a over the payload.
constexpr char kCheckpointMagic[] = "RCKP1";
constexpr std::size_t kCheckpointMagicLen = 5;
constexpr std::size_t kCheckpointChecksumLen = 16;

std::string EncodeCheckpoint(const std::string& payload) {
  char checksum[kCheckpointChecksumLen + 1];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(Fnv1a(payload)));
  std::string framed;
  framed.reserve(kCheckpointMagicLen + kCheckpointChecksumLen +
                 payload.size());
  framed.append(kCheckpointMagic, kCheckpointMagicLen);
  framed.append(checksum, kCheckpointChecksumLen);
  framed.append(payload);
  return framed;
}

Result<std::string> DecodeCheckpoint(const std::string& framed) {
  constexpr std::size_t header = kCheckpointMagicLen + kCheckpointChecksumLen;
  if (framed.size() < header ||
      framed.compare(0, kCheckpointMagicLen, kCheckpointMagic) != 0) {
    return Status::IoError("checkpoint missing RCKP1 header");
  }
  std::string payload = framed.substr(header);
  char expect[kCheckpointChecksumLen + 1];
  std::snprintf(expect, sizeof(expect), "%016llx",
                static_cast<unsigned long long>(Fnv1a(payload)));
  if (framed.compare(kCheckpointMagicLen, kCheckpointChecksumLen, expect) !=
      0) {
    return Status::IoError("checkpoint checksum mismatch (torn write?)");
  }
  return payload;
}

/// Exponential backoff before retry `attempt` (>= 1): base * 2^(attempt-1),
/// capped. Deadline-aware: refuses to start a sleep that would cross the
/// job deadline, and polls the cancel token in ~1ms slices so cancellation
/// fires promptly instead of after the full backoff.
Status BackoffBeforeRetry(int attempt, int64_t base_us, int64_t cap_us,
                          const StopCondition& stop) {
  if (base_us <= 0) return stop.Check();
  const int shift = std::min(attempt - 1, 20);
  const int64_t delay_us = std::min(base_us << shift, std::max(base_us, cap_us));
  const auto wake =
      std::chrono::steady_clock::now() + std::chrono::microseconds(delay_us);
  if (stop.has_deadline && wake > stop.deadline) {
    return Status::DeadlineExceeded(
        "retry backoff of " + std::to_string(delay_us) +
        "us would cross the job deadline");
  }
  for (;;) {
    RHEEM_RETURN_IF_ERROR(stop.Check());
    const auto now = std::chrono::steady_clock::now();
    if (now >= wake) return Status::OK();
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            std::chrono::milliseconds(1), wake - now));
  }
}

}  // namespace

CrossPlatformExecutor::CrossPlatformExecutor(Config config)
    : config_(std::move(config)) {
  ApplyObservabilityConfig(config_);
  ApplyFaultConfig(config_);
}

Result<ExecutionResult> CrossPlatformExecutor::Execute(
    const ExecutionPlan& eplan) {
  if (eplan.plan == nullptr || eplan.stages.empty()) {
    return Status::InvalidPlan("empty execution plan");
  }
  RHEEM_ASSIGN_OR_RETURN(int64_t max_retries,
                         config_.GetInt("executor.max_retries", 2));
  RHEEM_ASSIGN_OR_RETURN(int64_t backoff_base_us,
                         config_.GetInt("executor.retry_backoff_us", 1000));
  RHEEM_ASSIGN_OR_RETURN(
      int64_t backoff_cap_us,
      config_.GetInt("executor.retry_backoff_max_us", 250000));
  RHEEM_ASSIGN_OR_RETURN(int64_t failover_threshold,
                         config_.GetInt("executor.failover_threshold", 3));
  RHEEM_ASSIGN_OR_RETURN(int64_t max_failovers,
                         config_.GetInt("executor.max_failovers", 2));
  RHEEM_ASSIGN_OR_RETURN(bool serialize_boundaries,
                         config_.GetBool("executor.serialize_boundaries", true));
  RHEEM_ASSIGN_OR_RETURN(bool parallel_stages,
                         config_.GetBool("executor.parallel_stages", true));
  RHEEM_ASSIGN_OR_RETURN(std::string checkpoint_dir,
                         config_.GetString("executor.checkpoint_dir", ""));
  RHEEM_ASSIGN_OR_RETURN(std::string job_id,
                         config_.GetString("executor.job_id", "job"));
  RHEEM_ASSIGN_OR_RETURN(
      double reopt_threshold,
      config_.GetDouble("executor.reoptimize_threshold", 3.0));
  RHEEM_ASSIGN_OR_RETURN(int64_t max_reoptimizations,
                         config_.GetInt("executor.max_reoptimizations", 2));
  // Validate at submit time: a threshold <= 1.0 can never be exceeded by
  // the symmetric error ratio (always >= 1), and a negative budget is a
  // sign of a config typo — both used to silently disable re-optimization.
  if (reopt_threshold <= 1.0) {
    return Status::InvalidArgument(
        "executor.reoptimize_threshold must be > 1.0 (got " +
        std::to_string(reopt_threshold) + ")");
  }
  if (max_reoptimizations < 0) {
    return Status::InvalidArgument(
        "executor.max_reoptimizations must be >= 0 (got " +
        std::to_string(max_reoptimizations) + ")");
  }
  if (!checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
  }
  auto checkpoint_path = [&](int op_id) {
    return checkpoint_dir + "/" + job_id + "_op" + std::to_string(op_id) +
           ".bin";
  };
  const bool failover_armed =
      registry_ != nullptr && movement_ != nullptr && max_failovers > 0;
  // Progressive re-optimization (paper §4.2 feedback edge): armed when the
  // executor can re-plan (registry + movement model), the plan carries its
  // compile-time estimates (RheemContext::Compile populates them), and no
  // platform was forced — a forced plan has no alternatives to re-enumerate.
  const bool reopt_armed =
      registry_ != nullptr && movement_ != nullptr &&
      max_reoptimizations > 0 && !eplan.estimates.empty() &&
      eplan.enum_options.force_platform.empty();

  // Observability: the `execute` span parents every stage attempt span (the
  // job-level span, when running under the JobServer, is already on this
  // thread's span stack). Counter pointers are resolved once per job; the
  // per-stage increments are relaxed-atomic adds gated on `metrics.enabled`.
  TraceSpan exec_span("execute", "executor");
  exec_span.AddTag("stages", static_cast<int64_t>(eplan.stages.size()));
  const uint64_t exec_span_id = exec_span.id();
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* stages_counter = registry.counter("executor.stages_total");
  Counter* attempts_counter = registry.counter("executor.stage_attempts_total");
  Counter* retries_counter = registry.counter("executor.retries_total");
  Counter* failures_counter = registry.counter("executor.stage_failures_total");
  Counter* restored_counter = registry.counter("executor.stages_restored_total");
  Counter* corrupt_counter =
      registry.counter("executor.checkpoints_corrupt_total");
  Counter* failovers_counter = registry.counter("executor.failovers_total");
  Counter* reopts_counter =
      registry.counter("executor.reoptimizations_total");
  Counter* moved_records_counter = registry.counter("executor.moved_records_total");
  Counter* moved_bytes_counter = registry.counter("executor.moved_bytes_total");
  Counter* reused_counter = registry.counter("result_cache.stages_skipped");
  Counter* boundary_hits_counter =
      registry.counter("executor.boundary_cache_hits");
  Counter* boundary_misses_counter =
      registry.counter("executor.boundary_cache_misses");
  Histogram* stage_wall_histogram =
      registry.histogram("executor.stage_wall_us", DefaultLatencyBoundsMicros());
  CountIfEnabled(registry.counter("executor.jobs_total"), 1);

  ExecutionState state;
  ExecutionMetrics metrics;
  metrics.jobs_run += 1;

  // Every stage attempt's record, for the EXPLAIN ANALYZE report (kept even
  // when no external monitor is attached). Guarded by `mu` below.
  std::vector<ExecutionMonitor::StageRecord> report_records;
  const bool want_report = registry.enabled();

  // Guards `state`, `metrics`, the conversion cache, platform health and the
  // per-round consumer counts when stages run concurrently. Datasets
  // borrowed from `state` stay valid while held: a stage's inputs keep a
  // positive consumer count until the stage finishes, and ExecutionState
  // holds shared const datasets, so unrelated Put/Evict don't move them.
  std::mutex mu;

  // Per-job boundary-conversion cache: one encode/decode per
  // (producer, target platform) edge no matter how many consumer stages
  // share it. Movement totals are charged exactly once per edge, in both
  // the serialized and the approximated (non-serialized) path. Both maps
  // survive failover re-plans — their keys are op-id/platform pairs, which
  // a re-enumeration does not invalidate.
  std::map<std::pair<int, std::string>, std::shared_ptr<const Dataset>>
      conversion_cache;                              // guarded by `mu`
  std::set<std::pair<int, std::string>> moved_edges;  // guarded by `mu`

  // Platform health for failover: consecutive stage-attempt failures per
  // platform (reset on any success). When a stage exhausts its retries the
  // platform that failed it is the blackout suspect. Guarded by `mu`.
  std::map<std::string, int64_t> health;
  std::string suspect_platform;
  std::vector<std::string> failover_notes;
  std::set<std::string> blacked_out;

  // Progressive re-optimization state. `observed` holds the actual output
  // cardinality of every materialized operator — consumed by mid-job
  // re-estimates and, after the job, by the stats catalog. `live_estimates`
  // is what the *current* plan was costed with (refreshed on each re-plan).
  // Both are guarded by `mu`; `reopt_pending` is the lock-free soft-stop
  // signal the stage schedulers poll.
  EstimateMap observed;
  EstimateMap live_estimates = eplan.estimates;
  struct ReoptTrigger {
    int op_id = 0;
    std::string op_name;
    double estimated = 0.0;
    double actual = 0.0;
    double error = 0.0;
  };
  ReoptTrigger reopt_trigger;         // guarded by `mu`
  int64_t reopt_attempts = 0;         // guarded by `mu`
  std::atomic<bool> reopt_pending{false};
  std::vector<std::string> reopt_notes;  // main thread only (between rounds)
  std::vector<std::string> decisions;    // main thread only (between rounds)

  const bool use_result_cache =
      result_cache_ != nullptr && result_cache_->enabled();

  // One failover round: run every stage of `round_plan` that is not yet
  // satisfied. Shared state (`state`, `metrics`, conversion cache, health)
  // lives across rounds; the consumer refcounts and sub-plan fingerprints
  // are per-round because they follow the round's stage structure.
  auto run_round = [&](const ExecutionPlan& rplan) -> Status {
    // Reference counts for eviction: how many stages still consume each
    // boundary dataset.
    auto consumers_left = std::make_shared<std::map<int, int>>();
    for (const Stage& stage : rplan.stages) {
      for (const Operator* in : stage.boundary_inputs()) {
        ++(*consumers_left)[in->id()];
      }
    }

    // Sub-plan fingerprints power cross-job reuse: a stage whose every
    // output is already in the result cache is skipped. Fingerprinting
    // failures just disable reuse for this job; they never fail the job.
    auto subplan_fps = std::make_shared<std::map<int, uint64_t>>();
    if (use_result_cache) {
      auto fps = ComputeSubPlanFingerprints(rplan);
      if (fps.ok()) {
        *subplan_fps = std::move(fps).ValueOrDie();
      } else {
        RHEEM_LOG(Warning) << "result-cache fingerprinting disabled: "
                           << fps.status().ToString();
      }
    }
    auto fingerprint_of = [subplan_fps](int op_id) -> const uint64_t* {
      auto it = subplan_fps->find(op_id);
      return it == subplan_fps->end() ? nullptr : &it->second;
    };

    // Observed-cardinality hook (call with `mu` held): records every
    // materialized output's actual cardinality, and — when re-optimization
    // is armed and budget remains — requests a re-plan if a non-final
    // stage's actual diverges from its estimate beyond the threshold. The
    // request softly stops the round; the failover loop re-enumerates.
    auto observe_outputs_locked =
        [&](const Stage& stage,
            const std::vector<std::shared_ptr<const Dataset>>& outs) {
          for (std::size_t i = 0; i < outs.size(); ++i) {
            const Operator* out_op = stage.outputs()[i];
            const double actual = static_cast<double>(outs[i]->size());
            Estimate& obs = observed[out_op->id()];
            obs.cardinality = actual;
            obs.avg_bytes =
                outs[i]->size() > 0
                    ? static_cast<double>(outs[i]->EstimatedBytes()) / actual
                    : 32.0;
            if (!reopt_armed || stage.id() == rplan.final_stage) continue;
            auto est_it = live_estimates.find(out_op->id());
            if (est_it == live_estimates.end()) continue;
            const double est = est_it->second.cardinality;
            const double error = std::max((actual + 1.0) / (est + 1.0),
                                          (est + 1.0) / (actual + 1.0));
            if (error > reopt_threshold &&
                reopt_attempts < max_reoptimizations &&
                !reopt_pending.load(std::memory_order_relaxed)) {
              reopt_trigger.op_id = out_op->id();
              reopt_trigger.op_name = out_op->name();
              reopt_trigger.estimated = est;
              reopt_trigger.actual = actual;
              reopt_trigger.error = error;
              reopt_pending.store(true, std::memory_order_release);
            }
          }
        };

    auto run_stage = [&, consumers_left, subplan_fps,
                      fingerprint_of](const Stage& stage) -> Status {
      RHEEM_RETURN_IF_ERROR(stop_.Check());

      // Inputs this stage holds are released once it is done with them —
      // shared with the executed path below. With failover armed the
      // datasets themselves are retained (a re-plan may cut new stage
      // boundaries that need them again); only the derived conversions are
      // dropped, since they can be recomputed from the retained originals.
      auto release_inputs = [&]() {
        std::lock_guard<std::mutex> lock(mu);
        for (const Operator* producer : stage.boundary_inputs()) {
          auto it = consumers_left->find(producer->id());
          if (it != consumers_left->end() && --it->second == 0 &&
              producer != rplan.plan->sink()) {
            // Re-plans (failover or re-optimization) pin completed stages by
            // checking their products are still materialized, so retain the
            // datasets whenever a re-plan can still happen.
            if (!failover_armed && !reopt_armed) state.Evict(producer->id());
            for (auto c = conversion_cache.begin();
                 c != conversion_cache.end();) {
              c = c->first.first == producer->id() ? conversion_cache.erase(c)
                                                   : std::next(c);
            }
          }
        }
      };

      // Failover re-plans re-walk the whole DAG: stages whose products
      // already materialized in an earlier round are satisfied as-is.
      if (!stage.outputs().empty()) {
        bool satisfied = true;
        std::lock_guard<std::mutex> lock(mu);
        for (const Operator* out : stage.outputs()) {
          satisfied = satisfied && state.Has(out->id());
        }
        if (satisfied) {
          for (const Operator* producer : stage.boundary_inputs()) {
            auto it = consumers_left->find(producer->id());
            if (it != consumers_left->end()) --it->second;
          }
          return Status::OK();
        }
      }

      // Materialized-result reuse (paper §4.2: the Executor "reuses
      // materialized results"): when every output of this stage is cached
      // under its sub-plan fingerprint, skip execution and surface the
      // cached datasets — zero rows copied, zero platform work.
      if (use_result_cache && !stage.outputs().empty() &&
          !subplan_fps->empty()) {
        std::vector<std::shared_ptr<const Dataset>> cached;
        cached.reserve(stage.outputs().size());
        for (const Operator* out : stage.outputs()) {
          const uint64_t* fp = fingerprint_of(out->id());
          std::shared_ptr<const Dataset> hit =
              fp != nullptr ? result_cache_->Lookup(*fp) : nullptr;
          if (hit == nullptr) break;
          cached.push_back(std::move(hit));
        }
        if (cached.size() == stage.outputs().size()) {
          TraceSpan reuse_span("stage", "executor", exec_span_id);
          reuse_span.AddTag("stage", static_cast<int64_t>(stage.id()));
          reuse_span.AddTag("platform", stage.platform()->name());
          reuse_span.AddTag("reuse", "result_cache");
          CountIfEnabled(reused_counter, 1);
          ExecutionMonitor::StageRecord record;
          record.stage_id = stage.id();
          record.platform = stage.platform()->name();
          record.succeeded = true;
          record.error = "reused from result cache";
          for (const auto& data : cached) {
            record.output_records += static_cast<int64_t>(data->size());
          }
          {
            std::lock_guard<std::mutex> lock(mu);
            metrics.stages_reused += 1;
            observe_outputs_locked(stage, cached);
            for (std::size_t i = 0; i < cached.size(); ++i) {
              state.Put(stage.outputs()[i]->id(), std::move(cached[i]));
            }
            if (want_report) report_records.push_back(record);
          }
          if (monitor_ != nullptr) monitor_->RecordStage(record);
          release_inputs();
          return Status::OK();
        }
      }

      // Fault recovery: if every product of this stage survives — intact —
      // from a prior run of the same job id, restore it instead of
      // re-executing. A checkpoint failing its checksum (torn write, bit
      // rot) is counted and re-executed, never silently restored.
      if (!checkpoint_dir.empty() && !stage.outputs().empty()) {
        std::vector<Dataset> restored;
        bool all_present = true;
        for (const Operator* out : stage.outputs()) {
          auto content = ReadFileToString(checkpoint_path(out->id()));
          if (!content.ok()) {
            all_present = false;
            break;
          }
          auto payload = DecodeCheckpoint(*content);
          if (!payload.ok()) {
            CountIfEnabled(corrupt_counter, 1);
            RHEEM_LOG(Warning)
                << "discarding checkpoint " << checkpoint_path(out->id())
                << ": " << payload.status().ToString();
            all_present = false;
            break;
          }
          auto decoded = Serializer::DecodeDataset(*payload);
          if (!decoded.ok()) {
            CountIfEnabled(corrupt_counter, 1);
            all_present = false;
            break;
          }
          restored.push_back(std::move(decoded).ValueOrDie());
        }
        if (all_present) {
          TraceSpan restore_span("stage", "executor", exec_span_id);
          restore_span.AddTag("stage", static_cast<int64_t>(stage.id()));
          restore_span.AddTag("platform", stage.platform()->name());
          restore_span.AddTag("restored", "true");
          CountIfEnabled(restored_counter, 1);
          ExecutionMonitor::StageRecord record;
          record.stage_id = stage.id();
          record.platform = stage.platform()->name();
          record.succeeded = true;
          record.error = "restored from checkpoint";
          {
            std::lock_guard<std::mutex> lock(mu);
            for (std::size_t i = 0; i < restored.size(); ++i) {
              // Restored products still feed the observed-cardinality map
              // (re-estimates and the stats catalog), but never trigger a
              // re-plan themselves — they cost nothing to produce.
              Estimate& obs = observed[stage.outputs()[i]->id()];
              obs.cardinality = static_cast<double>(restored[i].size());
              obs.avg_bytes =
                  restored[i].size() > 0
                      ? static_cast<double>(restored[i].EstimatedBytes()) /
                            obs.cardinality
                      : 32.0;
              state.Put(stage.outputs()[i]->id(), std::move(restored[i]));
            }
            if (want_report) report_records.push_back(record);
          }
          if (monitor_ != nullptr) monitor_->RecordStage(record);
          return Status::OK();
        }
      }

      // Assemble this stage's boundary inputs, converting across platforms.
      // Runs once per attempt (inside the retry loop) so an injected or
      // real conversion failure is retried like any other stage failure;
      // the conversion cache keeps repeats cheap and ensures movement is
      // charged at most once per edge across all attempts.
      auto assemble = [&](BoundaryMap* boundary,
                          std::vector<std::shared_ptr<const Dataset>>* held)
          -> Status {
        held->reserve(stage.boundary_inputs().size());
        for (const Operator* producer : stage.boundary_inputs()) {
          std::shared_ptr<const Dataset> data;
          {
            std::lock_guard<std::mutex> lock(mu);
            RHEEM_ASSIGN_OR_RETURN(data, state.GetShared(producer->id()));
          }
          Platform* from =
              rplan.assignment.by_op.count(producer->id()) > 0
                  ? rplan.assignment.by_op.at(producer->id())
                  : nullptr;
          const bool crosses = from != nullptr && from != stage.platform();
          if (crosses) {
            const auto edge =
                std::make_pair(producer->id(), stage.platform()->name());
            if (serialize_boundaries) {
              std::shared_ptr<const Dataset> conv;
              {
                std::lock_guard<std::mutex> lock(mu);
                auto it = conversion_cache.find(edge);
                if (it != conversion_cache.end()) conv = it->second;
              }
              if (conv != nullptr) {
                // Another consumer stage already paid this edge's conversion.
                CountIfEnabled(boundary_hits_counter, 1);
                {
                  std::lock_guard<std::mutex> lock(mu);
                  metrics.boundary_conversions_reused += 1;
                }
                (*boundary)[producer->id()] = conv.get();
                held->push_back(std::move(conv));
                continue;
              }
              CountIfEnabled(boundary_misses_counter, 1);
              RHEEM_RETURN_IF_ERROR(FaultInjector::Global().Hit(
                  "executor.boundary_convert",
                  "producer=" + std::to_string(producer->id()) +
                      ",platform=" + stage.platform()->name()));
              // Real work: encode on the producer side, decode on the
              // consumer side (ChannelKind::kSerializedStream); runs
              // outside the lock.
              Stopwatch sw;
              std::string wire = Serializer::EncodeDataset(*data);
              auto decoded = Serializer::DecodeDataset(wire);
              if (!decoded.ok()) {
                return decoded.status().WithContext("boundary conversion");
              }
              auto shared = std::make_shared<const Dataset>(
                  std::move(decoded).ValueOrDie());
              bool inserted = false;
              {
                std::lock_guard<std::mutex> lock(mu);
                auto emplaced = conversion_cache.emplace(edge, shared);
                inserted = emplaced.second;
                if (!inserted) {
                  // Raced with another consumer: share the winner's
                  // conversion and charge nothing — the edge was already
                  // paid for.
                  shared = emplaced.first->second;
                  metrics.boundary_conversions_reused += 1;
                } else {
                  // Movement totals: once per (producer, platform) edge.
                  metrics.moved_records += static_cast<int64_t>(data->size());
                  metrics.moved_bytes += static_cast<int64_t>(wire.size());
                  metrics.wall_micros += sw.ElapsedMicros();
                }
              }
              if (inserted) {
                CountIfEnabled(moved_records_counter,
                               static_cast<int64_t>(data->size()));
                CountIfEnabled(moved_bytes_counter,
                               static_cast<int64_t>(wire.size()));
              }
              (*boundary)[producer->id()] = shared.get();
              held->push_back(std::move(shared));
              continue;
            }
            // Approximated movement (no real conversion): still charge each
            // edge exactly once, however many consumer stages share it.
            bool first_crossing = false;
            {
              std::lock_guard<std::mutex> lock(mu);
              first_crossing = moved_edges.insert(edge).second;
            }
            if (first_crossing) {
              const int64_t approx_bytes = Serializer::EncodedSize(*data);
              CountIfEnabled(moved_records_counter,
                             static_cast<int64_t>(data->size()));
              CountIfEnabled(moved_bytes_counter, approx_bytes);
              std::lock_guard<std::mutex> lock(mu);
              metrics.moved_records += static_cast<int64_t>(data->size());
              metrics.moved_bytes += approx_bytes;
            }
          }
          (*boundary)[producer->id()] = data.get();
          held->push_back(std::move(data));
        }
        return Status::OK();
      };

      // Execute with retries: exponential deadline-aware backoff between
      // attempts, and each attempt runs the full assemble+execute path.
      Status last_error = Status::OK();
      bool done = false;
      for (int attempt = 0; attempt <= max_retries && !done; ++attempt) {
        RHEEM_RETURN_IF_ERROR(stop_.Check());
        if (attempt > 0) {
          RHEEM_RETURN_IF_ERROR(BackoffBeforeRetry(
              attempt, backoff_base_us, backoff_cap_us, stop_));
          {
            std::lock_guard<std::mutex> lock(mu);
            ++metrics.retries;
          }
          CountIfEnabled(retries_counter, 1);
        }
        CountIfEnabled(attempts_counter, 1);
        // One span per attempt: retries render as sibling `stage` spans,
        // each tagged with its attempt number, under the job's `execute`
        // span.
        TraceSpan attempt_span("stage", "executor", exec_span_id);
        attempt_span.AddTag("stage", static_cast<int64_t>(stage.id()));
        attempt_span.AddTag("platform", stage.platform()->name());
        attempt_span.AddTag("attempt", static_cast<int64_t>(attempt));
        const std::string ops_detail = StageDeclarativeDetail(stage);
        if (!ops_detail.empty()) attempt_span.AddTag("ops", ops_detail);
        ExecutionMetrics stage_metrics;
        Stopwatch sw;
        Status injected = FaultInjector::Global().Hit(
            "executor.stage_attempt",
            "stage=" + std::to_string(stage.id()) +
                ",platform=" + stage.platform()->name() +
                ",attempt=" + std::to_string(attempt));
        BoundaryMap boundary;
        // Shares ownership of borrowed inputs and conversions for the call,
        // so concurrent eviction can never pull a dataset out from under a
        // stage.
        std::vector<std::shared_ptr<const Dataset>> held;
        Result<std::vector<Dataset>> outputs = std::vector<Dataset>{};
        if (injected.ok()) {
          Status assembled = assemble(&boundary, &held);
          outputs = assembled.ok() ? stage.platform()->ExecuteStage(
                                         stage, boundary, &stage_metrics)
                                   : Result<std::vector<Dataset>>(assembled);
        } else {
          outputs = Result<std::vector<Dataset>>(injected);
        }
        const int64_t wall = sw.ElapsedMicros();
        if (MetricsRegistry::Global().enabled()) {
          stage_wall_histogram->Observe(wall);
        }

        ExecutionMonitor::StageRecord record;
        record.stage_id = stage.id();
        record.platform = stage.platform()->name();
        record.attempt = attempt;
        record.wall_micros = wall;
        record.sim_overhead_micros = stage_metrics.sim_overhead_micros;
        record.ops_detail = ops_detail;

        if (outputs.ok()) {
          auto out = std::move(outputs).ValueOrDie();
          if (out.size() != stage.outputs().size()) {
            return Status::Internal(
                "platform '" + stage.platform()->name() + "' returned " +
                std::to_string(out.size()) + " outputs for stage " +
                std::to_string(stage.id()) + " but " +
                std::to_string(stage.outputs().size()) + " were declared");
          }
          for (std::size_t i = 0; i < out.size(); ++i) {
            record.output_records += static_cast<int64_t>(out[i].size());
            if (!checkpoint_dir.empty()) {
              const int op_id = stage.outputs()[i]->id();
              std::string framed =
                  EncodeCheckpoint(Serializer::EncodeDataset(out[i]));
              // An injected checkpoint fault simulates a torn write: half
              // the framed bytes reach disk. The checksum catches it on the
              // next restore attempt.
              if (!FaultInjector::Global()
                       .Hit("executor.checkpoint_write",
                            "op=" + std::to_string(op_id))
                       .ok()) {
                framed.resize(framed.size() / 2);
                attempt_span.AddTag("fault", "checkpoint_write");
              }
              Status written =
                  WriteStringToFile(checkpoint_path(op_id), framed);
              if (!written.ok()) {
                RHEEM_LOG(Warning) << "checkpoint write failed: "
                                   << written.ToString();
              }
            }
          }
          // Wrap outputs as shared const datasets: the same materialization
          // is handed to the execution state and (below) the cross-job
          // result cache without copying.
          std::vector<std::shared_ptr<const Dataset>> shared_outs;
          shared_outs.reserve(out.size());
          for (std::size_t i = 0; i < out.size(); ++i) {
            shared_outs.push_back(
                std::make_shared<const Dataset>(std::move(out[i])));
          }
          double est_stage_cost = 0.0;
          {
            std::lock_guard<std::mutex> lock(mu);
            metrics.MergeFrom(stage_metrics);
            metrics.wall_micros += wall;
            metrics.stages_run += 1;
            health[stage.platform()->name()] = 0;
            for (std::size_t i = 0; i < shared_outs.size(); ++i) {
              state.Put(stage.outputs()[i]->id(), shared_outs[i]);
            }
            observe_outputs_locked(stage, shared_outs);
            if (stats_catalog_ != nullptr) {
              auto est_cost =
                  CostCalibrator::EstimateStageCost(stage, live_estimates);
              if (est_cost.ok()) est_stage_cost = *est_cost;
            }
          }
          // Cost calibration feedback: the stage's measured cost over its
          // modelled cost, attributed to every operator kind it ran —
          // persisted per (operator, platform) so later enumerations price
          // this platform with observed constants.
          if (stats_catalog_ != nullptr && est_stage_cost > 0.0) {
            const double actual_cost = static_cast<double>(
                wall + stage_metrics.sim_overhead_micros);
            if (actual_cost > 0.0) {
              const double ratio = actual_cost / est_stage_cost;
              for (const Operator* op : stage.ops()) {
                stats_catalog_->RecordCostRatio(
                    op->kind_name(), stage.platform()->name(), ratio);
              }
            }
          }
          if (use_result_cache) {
            for (std::size_t i = 0; i < shared_outs.size(); ++i) {
              const uint64_t* fp = fingerprint_of(stage.outputs()[i]->id());
              if (fp != nullptr) result_cache_->Insert(*fp, shared_outs[i]);
            }
          }
          record.succeeded = true;
          done = true;
          CountIfEnabled(stages_counter, 1);
        } else {
          last_error = outputs.status();
          record.succeeded = false;
          record.error = last_error.ToString();
          CountIfEnabled(failures_counter, 1);
          attempt_span.AddTag("error", record.error);
          if (!injected.ok() ||
              record.error.find("injected fault") != std::string::npos) {
            attempt_span.AddTag("fault", "injected");
          }
          {
            std::lock_guard<std::mutex> lock(mu);
            ++health[stage.platform()->name()];
          }
          RHEEM_LOG(Warning) << "stage " << stage.id() << " attempt "
                             << attempt
                             << " failed: " << last_error.ToString();
        }
        attempt_span.AddTag("succeeded", record.succeeded ? "true" : "false");
        attempt_span.AddTag("rows_out", record.output_records);
        if (want_report) {
          std::lock_guard<std::mutex> lock(mu);
          report_records.push_back(record);
        }
        if (monitor_ != nullptr) monitor_->RecordStage(record);
      }
      if (!done) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (suspect_platform.empty()) {
            suspect_platform = stage.platform()->name();
          }
        }
        return last_error.WithContext(
            "stage " + std::to_string(stage.id()) + " failed after " +
            std::to_string(max_retries + 1) + " attempt(s)");
      }

      // Evict boundary inputs (and their cached conversions) that no later
      // stage needs.
      release_inputs();
      return Status::OK();
    };

    // A pending re-optimization softly stops the round after in-flight
    // stages drain: the round ends *successfully* and the failover loop
    // re-plans the unexecuted remainder.
    auto soft_stop = [&]() {
      return reopt_pending.load(std::memory_order_acquire);
    };
    if (!parallel_stages || rplan.stages.size() <= 1) {
      for (const Stage& stage : rplan.stages) {
        if (soft_stop()) return Status::OK();
        RHEEM_RETURN_IF_ERROR(run_stage(stage));
      }
      return Status::OK();
    }
    ThreadPool* pool = pool_ != nullptr ? pool_ : &DefaultThreadPool();
    return RunStagesDag(rplan.stages, pool, run_stage, soft_stop);
  };

  // Failover loop: one round per plan. A round that fails because a
  // platform blacked out (>= failover_threshold consecutive failures) bans
  // the platform, pins every op whose stage already completed, and
  // re-enumerates the remaining work onto the healthy platforms — the job
  // degrades to a slower plan instead of failing ("coping with failures",
  // paper §4.2). Cancellation and deadlines are never failed over.
  ExecutionPlan replanned;
  const ExecutionPlan* current = &eplan;
  for (;;) {
    Status round_status = run_round(*current);
    if (round_status.IsCancelled() || round_status.IsDeadlineExceeded()) {
      return round_status;
    }
    if (round_status.ok()) {
      if (!reopt_pending.load(std::memory_order_acquire)) break;

      // A stage observed a cardinality divergence and softly stopped the
      // round: re-enumerate the unexecuted remainder with completed stages
      // pinned and the observed cardinalities as estimator ground truth.
      ReoptTrigger trigger;
      bool finished = false;
      EstimateMap observed_copy;
      EnumeratorOptions ropts = eplan.enum_options;
      {
        std::lock_guard<std::mutex> lock(mu);
        trigger = reopt_trigger;
        ++reopt_attempts;  // budget is consumed even if the re-plan fails
        finished = state.Has(eplan.plan->sink()->id());
        observed_copy = observed;
        for (const Stage& stage : current->stages) {
          bool complete = !stage.outputs().empty();
          for (const Operator* out : stage.outputs()) {
            complete = complete && state.Has(out->id());
          }
          if (!complete) continue;
          for (const Operator* op : stage.ops()) {
            ropts.pinned_platforms[op->id()] = stage.platform()->name();
          }
        }
      }
      reopt_pending.store(false, std::memory_order_release);
      // Everything materialized before the soft stop landed: nothing left
      // to re-plan.
      if (finished) break;
      ropts.banned_platforms.insert(blacked_out.begin(), blacked_out.end());

      char desc[256];
      std::snprintf(desc, sizeof(desc),
                    "op #%d '%s' estimated %.0f records but produced %.0f "
                    "(error %.1fx > threshold %.1fx)",
                    trigger.op_id, trigger.op_name.c_str(), trigger.estimated,
                    trigger.actual, trigger.error, reopt_threshold);

      // An injected fault here simulates the re-optimizer dying mid-flight:
      // the job must carry on with the current plan — never fail, never
      // double-execute. Real enumeration errors degrade the same way.
      Status replan_status = FaultInjector::Global().Hit(
          "executor.reoptimize",
          "op=" + std::to_string(trigger.op_id) +
              ",attempt=" + std::to_string(metrics.reoptimizations));
      EstimateMap refreshed;
      if (replan_status.ok()) {
        auto estimates =
            CardinalityEstimator::Estimate(*eplan.plan, observed_copy);
        if (estimates.ok()) {
          refreshed = std::move(estimates).ValueOrDie();
          Enumerator enumerator(registry_, movement_);
          auto assignment = enumerator.Run(*eplan.plan, refreshed, ropts);
          if (assignment.ok()) {
            auto split = StageSplitter::Split(
                *eplan.plan, std::move(assignment).ValueOrDie());
            if (split.ok()) {
              replanned = std::move(split).ValueOrDie();
              replanned.estimates = refreshed;
              replanned.enum_options = ropts;
            } else {
              replan_status = split.status();
            }
          } else {
            replan_status = assignment.status();
          }
        } else {
          replan_status = estimates.status();
        }
      }

      if (!replan_status.ok()) {
        const std::string note = std::string(desc) +
                                 "; re-optimization abandoned: " +
                                 replan_status.ToString();
        reopt_notes.push_back(note);
        RHEEM_LOG(Warning) << "re-optimization abandoned: " << note;
        continue;  // carry on with the current plan
      }

      current = &replanned;
      {
        std::lock_guard<std::mutex> lock(mu);
        live_estimates = refreshed;
        metrics.reoptimizations += 1;
      }
      CountIfEnabled(reopts_counter, 1);
      const std::string note =
          std::string(desc) + "; re-planned remaining work across " +
          std::to_string(replanned.stages.size()) + " stage(s)";
      reopt_notes.push_back(note);
      decisions.push_back(note);
      TraceSpan reopt_span("reoptimize", "executor", exec_span_id);
      reopt_span.AddTag("op", static_cast<int64_t>(trigger.op_id));
      reopt_span.AddTag("estimated",
                        static_cast<int64_t>(trigger.estimated));
      reopt_span.AddTag("observed", static_cast<int64_t>(trigger.actual));
      char error_buf[32];
      std::snprintf(error_buf, sizeof(error_buf), "%.1fx", trigger.error);
      reopt_span.AddTag("error", error_buf);
      reopt_span.AddTag("stages",
                        static_cast<int64_t>(replanned.stages.size()));
      exec_span.AddTag("reopt_" + std::to_string(metrics.reoptimizations),
                       note);
      RHEEM_LOG(Info) << "re-optimized: " << note;
      continue;
    }
    std::string culprit;
    int64_t consecutive = 0;
    {
      std::lock_guard<std::mutex> lock(mu);
      culprit = suspect_platform;
      suspect_platform.clear();
      if (!culprit.empty()) consecutive = health[culprit];
    }
    if (!failover_armed || metrics.failovers >= max_failovers ||
        culprit.empty() || consecutive < failover_threshold) {
      return round_status;
    }
    blacked_out.insert(culprit);

    EnumeratorOptions ropts;
    ropts.banned_platforms = blacked_out;
    {
      // Pin completed work to where it ran: the re-plan keeps those stages
      // intact (and they are skipped as satisfied), while unexecuted ops are
      // free to move off the blacked-out platform.
      std::lock_guard<std::mutex> lock(mu);
      for (const Stage& stage : current->stages) {
        bool complete = !stage.outputs().empty();
        for (const Operator* out : stage.outputs()) {
          complete = complete && state.Has(out->id());
        }
        if (!complete) continue;
        for (const Operator* op : stage.ops()) {
          ropts.pinned_platforms[op->id()] = stage.platform()->name();
        }
      }
      health.erase(culprit);
    }
    auto estimates = CardinalityEstimator::Estimate(*eplan.plan);
    if (!estimates.ok()) {
      return round_status.WithContext("failover re-plan failed: " +
                                      estimates.status().ToString());
    }
    Enumerator enumerator(registry_, movement_);
    auto assignment =
        enumerator.Run(*eplan.plan, *estimates, ropts);
    if (!assignment.ok()) {
      return round_status.WithContext("failover re-plan failed: " +
                                      assignment.status().ToString());
    }
    auto split =
        StageSplitter::Split(*eplan.plan, std::move(assignment).ValueOrDie());
    if (!split.ok()) {
      return round_status.WithContext("failover re-plan failed: " +
                                      split.status().ToString());
    }
    replanned = std::move(split).ValueOrDie();
    current = &replanned;
    metrics.failovers += 1;
    CountIfEnabled(failovers_counter, 1);
    const std::string note =
        "platform '" + culprit + "' blacked out after " +
        std::to_string(consecutive) +
        " consecutive failures; re-planned remaining work across " +
        std::to_string(replanned.stages.size()) + " stage(s)";
    failover_notes.push_back(note);
    exec_span.AddTag("failover_" + std::to_string(metrics.failovers), note);
    RHEEM_LOG(Warning) << "failover: " << note
                       << " (fault seed " << FaultInjector::Global().seed()
                       << ")";
  }

  RHEEM_ASSIGN_OR_RETURN(const Dataset* final_data,
                         state.Get(eplan.plan->sink()->id()));

  // Feed the learned-statistics catalog: observed cardinalities keyed by
  // *platform-free* sub-plan fingerprints, so the next compilation of this
  // (or any structurally shared) plan estimates with measured numbers.
  // Fingerprinting failures only cost the learning, never the job.
  if (stats_catalog_ != nullptr) {
    auto fps = ComputeCardinalityFingerprints(*eplan.plan);
    if (fps.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      for (const auto& [op_id, est] : observed) {
        auto it = fps->find(op_id);
        if (it != fps->end()) {
          stats_catalog_->RecordCardinality(it->second, est.cardinality,
                                            est.avg_bytes);
        }
      }
    } else {
      RHEEM_LOG(Warning) << "stats-catalog fingerprinting disabled: "
                         << fps.status().ToString();
    }
  }

  ExecutionResult result;
  result.output = *final_data;
  result.metrics = metrics;
  result.decisions = std::move(decisions);
  if (want_report) {
    result.report =
        BuildExecutionReport(std::move(report_records), metrics,
                             failover_notes, reopt_notes);
  }
  return result;
}

}  // namespace rheem

#include "core/executor/executor.h"

#include <filesystem>
#include <map>
#include <set>

#include "common/csv.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/executor/execution_state.h"
#include "data/serialization.h"

namespace rheem {

CrossPlatformExecutor::CrossPlatformExecutor(Config config)
    : config_(std::move(config)) {}

Result<ExecutionResult> CrossPlatformExecutor::Execute(
    const ExecutionPlan& eplan) {
  if (eplan.plan == nullptr || eplan.stages.empty()) {
    return Status::InvalidPlan("empty execution plan");
  }
  RHEEM_ASSIGN_OR_RETURN(int64_t max_retries,
                         config_.GetInt("executor.max_retries", 2));
  RHEEM_ASSIGN_OR_RETURN(bool serialize_boundaries,
                         config_.GetBool("executor.serialize_boundaries", true));
  RHEEM_ASSIGN_OR_RETURN(std::string checkpoint_dir,
                         config_.GetString("executor.checkpoint_dir", ""));
  RHEEM_ASSIGN_OR_RETURN(std::string job_id,
                         config_.GetString("executor.job_id", "job"));
  if (!checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
  }
  auto checkpoint_path = [&](int op_id) {
    return checkpoint_dir + "/" + job_id + "_op" + std::to_string(op_id) +
           ".bin";
  };

  ExecutionState state;
  ExecutionMetrics metrics;
  metrics.jobs_run += 1;

  // Reference counts for eviction: how many stages still consume each
  // boundary dataset.
  std::map<int, int> consumers_left;
  for (const Stage& stage : eplan.stages) {
    for (const Operator* in : stage.boundary_inputs()) {
      ++consumers_left[in->id()];
    }
  }

  for (const Stage& stage : eplan.stages) {
    // Fault recovery: if every product of this stage survives from a prior
    // run of the same job id, restore it instead of re-executing.
    if (!checkpoint_dir.empty() && !stage.outputs().empty()) {
      std::vector<Dataset> restored;
      bool all_present = true;
      for (const Operator* out : stage.outputs()) {
        auto content = ReadFileToString(checkpoint_path(out->id()));
        if (!content.ok()) {
          all_present = false;
          break;
        }
        auto decoded = Serializer::DecodeDataset(*content);
        if (!decoded.ok()) {
          all_present = false;
          break;
        }
        restored.push_back(std::move(decoded).ValueOrDie());
      }
      if (all_present) {
        for (std::size_t i = 0; i < restored.size(); ++i) {
          state.Put(stage.outputs()[i]->id(), std::move(restored[i]));
        }
        if (monitor_ != nullptr) {
          ExecutionMonitor::StageRecord record;
          record.stage_id = stage.id();
          record.platform = stage.platform()->name();
          record.succeeded = true;
          record.error = "restored from checkpoint";
          monitor_->RecordStage(record);
        }
        continue;
      }
    }

    // Assemble this stage's boundary inputs, converting across platforms.
    BoundaryMap boundary;
    std::vector<Dataset> converted;  // keep conversions alive for the call
    converted.reserve(stage.boundary_inputs().size());
    for (const Operator* producer : stage.boundary_inputs()) {
      RHEEM_ASSIGN_OR_RETURN(const Dataset* data, state.Get(producer->id()));
      Platform* from =
          eplan.assignment.by_op.count(producer->id()) > 0
              ? eplan.assignment.by_op.at(producer->id())
              : nullptr;
      const bool crosses = from != nullptr && from != stage.platform();
      if (crosses) {
        metrics.moved_records += static_cast<int64_t>(data->size());
        if (serialize_boundaries) {
          // Real work: encode on the producer side, decode on the consumer
          // side (ChannelKind::kSerializedStream).
          Stopwatch sw;
          std::string wire = Serializer::EncodeDataset(*data);
          metrics.moved_bytes += static_cast<int64_t>(wire.size());
          auto decoded = Serializer::DecodeDataset(wire);
          if (!decoded.ok()) {
            return decoded.status().WithContext("boundary conversion");
          }
          converted.push_back(std::move(decoded).ValueOrDie());
          metrics.wall_micros += sw.ElapsedMicros();
          boundary[producer->id()] = &converted.back();
          continue;
        }
        metrics.moved_bytes += Serializer::EncodedSize(*data);
      }
      boundary[producer->id()] = data;
    }

    // Execute with retries.
    Status last_error = Status::OK();
    bool done = false;
    for (int attempt = 0; attempt <= max_retries && !done; ++attempt) {
      if (attempt > 0) ++metrics.retries;
      ExecutionMetrics stage_metrics;
      Stopwatch sw;
      Status injected =
          failure_injector_ ? failure_injector_(stage, attempt) : Status::OK();
      Result<std::vector<Dataset>> outputs =
          injected.ok()
              ? stage.platform()->ExecuteStage(stage, boundary, &stage_metrics)
              : Result<std::vector<Dataset>>(injected);
      const int64_t wall = sw.ElapsedMicros();

      ExecutionMonitor::StageRecord record;
      record.stage_id = stage.id();
      record.platform = stage.platform()->name();
      record.attempt = attempt;
      record.wall_micros = wall;
      record.sim_overhead_micros = stage_metrics.sim_overhead_micros;

      if (outputs.ok()) {
        auto out = std::move(outputs).ValueOrDie();
        if (out.size() != stage.outputs().size()) {
          return Status::Internal(
              "platform '" + stage.platform()->name() + "' returned " +
              std::to_string(out.size()) + " outputs for stage " +
              std::to_string(stage.id()) + " but " +
              std::to_string(stage.outputs().size()) + " were declared");
        }
        metrics.MergeFrom(stage_metrics);
        metrics.wall_micros += wall;
        metrics.stages_run += 1;
        for (std::size_t i = 0; i < out.size(); ++i) {
          record.output_records += static_cast<int64_t>(out[i].size());
          if (!checkpoint_dir.empty()) {
            Status written = WriteStringToFile(
                checkpoint_path(stage.outputs()[i]->id()),
                Serializer::EncodeDataset(out[i]));
            if (!written.ok()) {
              RHEEM_LOG(Warning) << "checkpoint write failed: "
                                 << written.ToString();
            }
          }
          state.Put(stage.outputs()[i]->id(), std::move(out[i]));
        }
        record.succeeded = true;
        done = true;
      } else {
        last_error = outputs.status();
        record.succeeded = false;
        record.error = last_error.ToString();
        RHEEM_LOG(Warning) << "stage " << stage.id() << " attempt " << attempt
                           << " failed: " << last_error.ToString();
      }
      if (monitor_ != nullptr) monitor_->RecordStage(record);
    }
    if (!done) {
      return last_error.WithContext(
          "stage " + std::to_string(stage.id()) + " failed after " +
          std::to_string(max_retries + 1) + " attempt(s)");
    }

    // Evict boundary inputs no longer needed by later stages.
    for (const Operator* producer : stage.boundary_inputs()) {
      auto it = consumers_left.find(producer->id());
      if (it != consumers_left.end() && --it->second == 0 &&
          producer != eplan.plan->sink()) {
        state.Evict(producer->id());
      }
    }
  }

  RHEEM_ASSIGN_OR_RETURN(const Dataset* final_data,
                         state.Get(eplan.plan->sink()->id()));
  ExecutionResult result;
  result.output = *final_data;
  result.metrics = metrics;
  return result;
}

}  // namespace rheem

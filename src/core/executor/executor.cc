#include "core/executor/executor.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/executor/execution_state.h"
#include "core/executor/result_cache.h"
#include "data/serialization.h"

namespace rheem {

namespace {

/// Dynamic DAG scheduler: dispatches every stage whose upstream stages have
/// completed onto `pool`, tracking readiness with indegree counts. The
/// calling thread coordinates and blocks; stage bodies run on pool workers.
/// On the first stage failure no further stages start, but in-flight stages
/// are awaited before returning (their state references live on this frame).
Status RunStagesDag(const std::vector<Stage>& stages, ThreadPool* pool,
                    const std::function<Status(const Stage&)>& run_stage) {
  const std::size_t n = stages.size();
  std::map<int, std::size_t> index_of;
  for (std::size_t i = 0; i < n; ++i) index_of[stages[i].id()] = i;

  std::vector<std::vector<std::size_t>> dependents(n);
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int up : stages[i].upstream_stages()) {
      auto it = index_of.find(up);
      if (it == index_of.end()) {
        return Status::InvalidPlan("stage " + std::to_string(stages[i].id()) +
                                   " depends on unknown stage " +
                                   std::to_string(up));
      }
      dependents[it->second].push_back(i);
      ++indegree[i];
    }
  }

  struct Ctl {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::size_t> ready;
    std::size_t in_flight = 0;
    std::size_t completed = 0;
    bool failed = false;
    Status error;
  };
  Ctl ctl;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ctl.ready.push_back(i);
  }

  std::unique_lock<std::mutex> lk(ctl.mu);
  for (;;) {
    if (!ctl.failed && !ctl.ready.empty()) {
      const std::size_t idx = ctl.ready.front();
      ctl.ready.pop_front();
      ++ctl.in_flight;
      lk.unlock();
      auto task = [&ctl, &stages, &dependents, &indegree, &run_stage, idx]() {
        Status st = run_stage(stages[idx]);
        std::lock_guard<std::mutex> g(ctl.mu);
        --ctl.in_flight;
        ++ctl.completed;
        if (!st.ok()) {
          if (!ctl.failed) {
            ctl.failed = true;
            ctl.error = std::move(st);
          }
        } else {
          for (std::size_t d : dependents[idx]) {
            if (--indegree[d] == 0) ctl.ready.push_back(d);
          }
        }
        ctl.cv.notify_all();
      };
      // A shut-down pool cannot carry the task; run it inline to keep the
      // job making (serial) progress.
      if (!pool->Schedule(task)) task();
      lk.lock();
      continue;
    }
    if (ctl.in_flight == 0) {
      if (ctl.failed) return ctl.error;
      if (ctl.completed == n) return Status::OK();
      // Nothing running, nothing ready, not done: the stage graph is cyclic.
      return Status::Internal("stage scheduler stalled on a cyclic graph");
    }
    ctl.cv.wait(lk);
  }
}

/// EXPLAIN ANALYZE-style text: one line per stage attempt (in stage/attempt
/// order regardless of the concurrent completion order) plus job totals.
std::string BuildExecutionReport(
    std::vector<ExecutionMonitor::StageRecord> records,
    const ExecutionMetrics& metrics) {
  std::sort(records.begin(), records.end(),
            [](const ExecutionMonitor::StageRecord& a,
               const ExecutionMonitor::StageRecord& b) {
              if (a.stage_id != b.stage_id) return a.stage_id < b.stage_id;
              return a.attempt < b.attempt;
            });
  std::ostringstream os;
  os << "EXPLAIN ANALYZE  stages=" << metrics.stages_run
     << " retries=" << metrics.retries << " wall=" << metrics.wall_micros
     << "us sim=" << metrics.sim_overhead_micros << "us\n";
  for (const auto& r : records) {
    os << "  stage " << r.stage_id << " [" << r.platform << "] attempt "
       << r.attempt << "  "
       << (r.succeeded ? (r.error.empty() ? "ok" : r.error.c_str()) : "FAILED")
       << "  wall=" << r.wall_micros << "us rows=" << r.output_records;
    if (!r.succeeded && !r.error.empty()) os << "  error: " << r.error;
    os << "\n";
  }
  os << "  totals: moved_records=" << metrics.moved_records
     << " moved_bytes=" << metrics.moved_bytes
     << " shuffle_bytes=" << metrics.shuffle_bytes
     << " tasks_launched=" << metrics.tasks_launched
     << " fused_operators=" << metrics.fused_operators
     << " stages_reused=" << metrics.stages_reused
     << " conversions_reused=" << metrics.boundary_conversions_reused << "\n";
  return os.str();
}

}  // namespace

CrossPlatformExecutor::CrossPlatformExecutor(Config config)
    : config_(std::move(config)) {
  ApplyObservabilityConfig(config_);
}

Result<ExecutionResult> CrossPlatformExecutor::Execute(
    const ExecutionPlan& eplan) {
  if (eplan.plan == nullptr || eplan.stages.empty()) {
    return Status::InvalidPlan("empty execution plan");
  }
  RHEEM_ASSIGN_OR_RETURN(int64_t max_retries,
                         config_.GetInt("executor.max_retries", 2));
  RHEEM_ASSIGN_OR_RETURN(bool serialize_boundaries,
                         config_.GetBool("executor.serialize_boundaries", true));
  RHEEM_ASSIGN_OR_RETURN(bool parallel_stages,
                         config_.GetBool("executor.parallel_stages", true));
  RHEEM_ASSIGN_OR_RETURN(std::string checkpoint_dir,
                         config_.GetString("executor.checkpoint_dir", ""));
  RHEEM_ASSIGN_OR_RETURN(std::string job_id,
                         config_.GetString("executor.job_id", "job"));
  if (!checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
  }
  auto checkpoint_path = [&](int op_id) {
    return checkpoint_dir + "/" + job_id + "_op" + std::to_string(op_id) +
           ".bin";
  };

  // Observability: the `execute` span parents every stage attempt span (the
  // job-level span, when running under the JobServer, is already on this
  // thread's span stack). Counter pointers are resolved once per job; the
  // per-stage increments are relaxed-atomic adds gated on `metrics.enabled`.
  TraceSpan exec_span("execute", "executor");
  exec_span.AddTag("stages", static_cast<int64_t>(eplan.stages.size()));
  const uint64_t exec_span_id = exec_span.id();
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* stages_counter = registry.counter("executor.stages_total");
  Counter* attempts_counter = registry.counter("executor.stage_attempts_total");
  Counter* retries_counter = registry.counter("executor.retries_total");
  Counter* failures_counter = registry.counter("executor.stage_failures_total");
  Counter* restored_counter = registry.counter("executor.stages_restored_total");
  Counter* moved_records_counter = registry.counter("executor.moved_records_total");
  Counter* moved_bytes_counter = registry.counter("executor.moved_bytes_total");
  Counter* reused_counter = registry.counter("result_cache.stages_skipped");
  Counter* boundary_hits_counter =
      registry.counter("executor.boundary_cache_hits");
  Counter* boundary_misses_counter =
      registry.counter("executor.boundary_cache_misses");
  Histogram* stage_wall_histogram =
      registry.histogram("executor.stage_wall_us", DefaultLatencyBoundsMicros());
  CountIfEnabled(registry.counter("executor.jobs_total"), 1);

  ExecutionState state;
  ExecutionMetrics metrics;
  metrics.jobs_run += 1;

  // Every stage attempt's record, for the EXPLAIN ANALYZE report (kept even
  // when no external monitor is attached). Guarded by `mu` below.
  std::vector<ExecutionMonitor::StageRecord> report_records;
  const bool want_report = registry.enabled();

  // Reference counts for eviction: how many stages still consume each
  // boundary dataset.
  std::map<int, int> consumers_left;
  for (const Stage& stage : eplan.stages) {
    for (const Operator* in : stage.boundary_inputs()) {
      ++consumers_left[in->id()];
    }
  }

  // Guards `state`, `metrics` and `consumers_left` when stages run
  // concurrently. Datasets borrowed from `state` stay valid while held: a
  // stage's inputs keep a positive consumer count until the stage finishes,
  // and ExecutionState holds shared const datasets, so unrelated Put/Evict
  // don't move them.
  std::mutex mu;

  // Sub-plan fingerprints power cross-job reuse: a stage whose every output
  // is already in the result cache is skipped. Fingerprinting failures just
  // disable reuse for this job; they never fail the job itself.
  const bool use_result_cache =
      result_cache_ != nullptr && result_cache_->enabled();
  std::map<int, uint64_t> subplan_fps;
  if (use_result_cache) {
    auto fps = ComputeSubPlanFingerprints(eplan);
    if (fps.ok()) {
      subplan_fps = std::move(fps).ValueOrDie();
    } else {
      RHEEM_LOG(Warning) << "result-cache fingerprinting disabled: "
                         << fps.status().ToString();
    }
  }
  auto fingerprint_of = [&](int op_id) -> const uint64_t* {
    auto it = subplan_fps.find(op_id);
    return it == subplan_fps.end() ? nullptr : &it->second;
  };

  // Per-job boundary-conversion cache: one encode/decode per
  // (producer, target platform) edge no matter how many consumer stages
  // share it. Movement totals are charged exactly once per edge, in both
  // the serialized and the approximated (non-serialized) path.
  std::map<std::pair<int, std::string>, std::shared_ptr<const Dataset>>
      conversion_cache;                              // guarded by `mu`
  std::set<std::pair<int, std::string>> moved_edges;  // guarded by `mu`

  auto run_stage = [&](const Stage& stage) -> Status {
    RHEEM_RETURN_IF_ERROR(stop_.Check());

    // Inputs this stage holds are released once it is done with them —
    // shared with the executed path below.
    auto release_inputs = [&]() {
      std::lock_guard<std::mutex> lock(mu);
      for (const Operator* producer : stage.boundary_inputs()) {
        auto it = consumers_left.find(producer->id());
        if (it != consumers_left.end() && --it->second == 0 &&
            producer != eplan.plan->sink()) {
          state.Evict(producer->id());
          for (auto c = conversion_cache.begin(); c != conversion_cache.end();) {
            c = c->first.first == producer->id() ? conversion_cache.erase(c)
                                                 : std::next(c);
          }
        }
      }
    };

    // Materialized-result reuse (paper §4.2: the Executor "reuses
    // materialized results"): when every output of this stage is cached
    // under its sub-plan fingerprint, skip execution and surface the cached
    // datasets — zero rows copied, zero platform work.
    if (use_result_cache && !stage.outputs().empty() && !subplan_fps.empty()) {
      std::vector<std::shared_ptr<const Dataset>> cached;
      cached.reserve(stage.outputs().size());
      for (const Operator* out : stage.outputs()) {
        const uint64_t* fp = fingerprint_of(out->id());
        std::shared_ptr<const Dataset> hit =
            fp != nullptr ? result_cache_->Lookup(*fp) : nullptr;
        if (hit == nullptr) break;
        cached.push_back(std::move(hit));
      }
      if (cached.size() == stage.outputs().size()) {
        TraceSpan reuse_span("stage", "executor", exec_span_id);
        reuse_span.AddTag("stage", static_cast<int64_t>(stage.id()));
        reuse_span.AddTag("platform", stage.platform()->name());
        reuse_span.AddTag("reuse", "result_cache");
        CountIfEnabled(reused_counter, 1);
        ExecutionMonitor::StageRecord record;
        record.stage_id = stage.id();
        record.platform = stage.platform()->name();
        record.succeeded = true;
        record.error = "reused from result cache";
        for (const auto& data : cached) {
          record.output_records += static_cast<int64_t>(data->size());
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          metrics.stages_reused += 1;
          for (std::size_t i = 0; i < cached.size(); ++i) {
            state.Put(stage.outputs()[i]->id(), std::move(cached[i]));
          }
          if (want_report) report_records.push_back(record);
        }
        if (monitor_ != nullptr) monitor_->RecordStage(record);
        release_inputs();
        return Status::OK();
      }
    }

    // Fault recovery: if every product of this stage survives from a prior
    // run of the same job id, restore it instead of re-executing.
    if (!checkpoint_dir.empty() && !stage.outputs().empty()) {
      std::vector<Dataset> restored;
      bool all_present = true;
      for (const Operator* out : stage.outputs()) {
        auto content = ReadFileToString(checkpoint_path(out->id()));
        if (!content.ok()) {
          all_present = false;
          break;
        }
        auto decoded = Serializer::DecodeDataset(*content);
        if (!decoded.ok()) {
          all_present = false;
          break;
        }
        restored.push_back(std::move(decoded).ValueOrDie());
      }
      if (all_present) {
        TraceSpan restore_span("stage", "executor", exec_span_id);
        restore_span.AddTag("stage", static_cast<int64_t>(stage.id()));
        restore_span.AddTag("platform", stage.platform()->name());
        restore_span.AddTag("restored", "true");
        CountIfEnabled(restored_counter, 1);
        ExecutionMonitor::StageRecord record;
        record.stage_id = stage.id();
        record.platform = stage.platform()->name();
        record.succeeded = true;
        record.error = "restored from checkpoint";
        {
          std::lock_guard<std::mutex> lock(mu);
          for (std::size_t i = 0; i < restored.size(); ++i) {
            state.Put(stage.outputs()[i]->id(), std::move(restored[i]));
          }
          if (want_report) report_records.push_back(record);
        }
        if (monitor_ != nullptr) monitor_->RecordStage(record);
        return Status::OK();
      }
    }

    // Assemble this stage's boundary inputs, converting across platforms.
    BoundaryMap boundary;
    // Shares ownership of borrowed inputs and conversions for the call, so
    // concurrent eviction can never pull a dataset out from under a stage.
    std::vector<std::shared_ptr<const Dataset>> held;
    held.reserve(stage.boundary_inputs().size());
    for (const Operator* producer : stage.boundary_inputs()) {
      std::shared_ptr<const Dataset> data;
      {
        std::lock_guard<std::mutex> lock(mu);
        RHEEM_ASSIGN_OR_RETURN(data, state.GetShared(producer->id()));
      }
      Platform* from =
          eplan.assignment.by_op.count(producer->id()) > 0
              ? eplan.assignment.by_op.at(producer->id())
              : nullptr;
      const bool crosses = from != nullptr && from != stage.platform();
      if (crosses) {
        const auto edge =
            std::make_pair(producer->id(), stage.platform()->name());
        if (serialize_boundaries) {
          std::shared_ptr<const Dataset> conv;
          {
            std::lock_guard<std::mutex> lock(mu);
            auto it = conversion_cache.find(edge);
            if (it != conversion_cache.end()) conv = it->second;
          }
          if (conv != nullptr) {
            // Another consumer stage already paid this edge's conversion.
            CountIfEnabled(boundary_hits_counter, 1);
            {
              std::lock_guard<std::mutex> lock(mu);
              metrics.boundary_conversions_reused += 1;
            }
            boundary[producer->id()] = conv.get();
            held.push_back(std::move(conv));
            continue;
          }
          CountIfEnabled(boundary_misses_counter, 1);
          // Real work: encode on the producer side, decode on the consumer
          // side (ChannelKind::kSerializedStream); runs outside the lock.
          Stopwatch sw;
          std::string wire = Serializer::EncodeDataset(*data);
          auto decoded = Serializer::DecodeDataset(wire);
          if (!decoded.ok()) {
            return decoded.status().WithContext("boundary conversion");
          }
          auto shared =
              std::make_shared<const Dataset>(std::move(decoded).ValueOrDie());
          bool inserted = false;
          {
            std::lock_guard<std::mutex> lock(mu);
            auto emplaced = conversion_cache.emplace(edge, shared);
            inserted = emplaced.second;
            if (!inserted) {
              // Raced with another consumer: share the winner's conversion
              // and charge nothing — the edge was already paid for.
              shared = emplaced.first->second;
              metrics.boundary_conversions_reused += 1;
            } else {
              // Movement totals: exactly once per (producer, platform) edge.
              metrics.moved_records += static_cast<int64_t>(data->size());
              metrics.moved_bytes += static_cast<int64_t>(wire.size());
              metrics.wall_micros += sw.ElapsedMicros();
            }
          }
          if (inserted) {
            CountIfEnabled(moved_records_counter,
                           static_cast<int64_t>(data->size()));
            CountIfEnabled(moved_bytes_counter,
                           static_cast<int64_t>(wire.size()));
          }
          boundary[producer->id()] = shared.get();
          held.push_back(std::move(shared));
          continue;
        }
        // Approximated movement (no real conversion): still charge each
        // edge exactly once, however many consumer stages share it.
        bool first_crossing = false;
        {
          std::lock_guard<std::mutex> lock(mu);
          first_crossing = moved_edges.insert(edge).second;
        }
        if (first_crossing) {
          const int64_t approx_bytes = Serializer::EncodedSize(*data);
          CountIfEnabled(moved_records_counter,
                         static_cast<int64_t>(data->size()));
          CountIfEnabled(moved_bytes_counter, approx_bytes);
          std::lock_guard<std::mutex> lock(mu);
          metrics.moved_records += static_cast<int64_t>(data->size());
          metrics.moved_bytes += approx_bytes;
        }
      }
      boundary[producer->id()] = data.get();
      held.push_back(std::move(data));
    }

    // Execute with retries.
    Status last_error = Status::OK();
    bool done = false;
    for (int attempt = 0; attempt <= max_retries && !done; ++attempt) {
      RHEEM_RETURN_IF_ERROR(stop_.Check());
      if (attempt > 0) {
        std::lock_guard<std::mutex> lock(mu);
        ++metrics.retries;
      }
      if (attempt > 0) CountIfEnabled(retries_counter, 1);
      CountIfEnabled(attempts_counter, 1);
      // One span per attempt: retries render as sibling `stage` spans, each
      // tagged with its attempt number, under the job's `execute` span.
      TraceSpan attempt_span("stage", "executor", exec_span_id);
      attempt_span.AddTag("stage", static_cast<int64_t>(stage.id()));
      attempt_span.AddTag("platform", stage.platform()->name());
      attempt_span.AddTag("attempt", static_cast<int64_t>(attempt));
      ExecutionMetrics stage_metrics;
      Stopwatch sw;
      Status injected =
          failure_injector_ ? failure_injector_(stage, attempt) : Status::OK();
      Result<std::vector<Dataset>> outputs =
          injected.ok()
              ? stage.platform()->ExecuteStage(stage, boundary, &stage_metrics)
              : Result<std::vector<Dataset>>(injected);
      const int64_t wall = sw.ElapsedMicros();
      if (MetricsRegistry::Global().enabled()) {
        stage_wall_histogram->Observe(wall);
      }

      ExecutionMonitor::StageRecord record;
      record.stage_id = stage.id();
      record.platform = stage.platform()->name();
      record.attempt = attempt;
      record.wall_micros = wall;
      record.sim_overhead_micros = stage_metrics.sim_overhead_micros;

      if (outputs.ok()) {
        auto out = std::move(outputs).ValueOrDie();
        if (out.size() != stage.outputs().size()) {
          return Status::Internal(
              "platform '" + stage.platform()->name() + "' returned " +
              std::to_string(out.size()) + " outputs for stage " +
              std::to_string(stage.id()) + " but " +
              std::to_string(stage.outputs().size()) + " were declared");
        }
        for (std::size_t i = 0; i < out.size(); ++i) {
          record.output_records += static_cast<int64_t>(out[i].size());
          if (!checkpoint_dir.empty()) {
            Status written = WriteStringToFile(
                checkpoint_path(stage.outputs()[i]->id()),
                Serializer::EncodeDataset(out[i]));
            if (!written.ok()) {
              RHEEM_LOG(Warning) << "checkpoint write failed: "
                                 << written.ToString();
            }
          }
        }
        // Wrap outputs as shared const datasets: the same materialization is
        // handed to the execution state and (below) the cross-job result
        // cache without copying.
        std::vector<std::shared_ptr<const Dataset>> shared_outs;
        shared_outs.reserve(out.size());
        for (std::size_t i = 0; i < out.size(); ++i) {
          shared_outs.push_back(
              std::make_shared<const Dataset>(std::move(out[i])));
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          metrics.MergeFrom(stage_metrics);
          metrics.wall_micros += wall;
          metrics.stages_run += 1;
          for (std::size_t i = 0; i < shared_outs.size(); ++i) {
            state.Put(stage.outputs()[i]->id(), shared_outs[i]);
          }
        }
        if (use_result_cache) {
          for (std::size_t i = 0; i < shared_outs.size(); ++i) {
            const uint64_t* fp = fingerprint_of(stage.outputs()[i]->id());
            if (fp != nullptr) result_cache_->Insert(*fp, shared_outs[i]);
          }
        }
        record.succeeded = true;
        done = true;
        CountIfEnabled(stages_counter, 1);
      } else {
        last_error = outputs.status();
        record.succeeded = false;
        record.error = last_error.ToString();
        CountIfEnabled(failures_counter, 1);
        attempt_span.AddTag("error", record.error);
        RHEEM_LOG(Warning) << "stage " << stage.id() << " attempt " << attempt
                           << " failed: " << last_error.ToString();
      }
      attempt_span.AddTag("succeeded", record.succeeded ? "true" : "false");
      attempt_span.AddTag("rows_out", record.output_records);
      if (want_report) {
        std::lock_guard<std::mutex> lock(mu);
        report_records.push_back(record);
      }
      if (monitor_ != nullptr) monitor_->RecordStage(record);
    }
    if (!done) {
      return last_error.WithContext(
          "stage " + std::to_string(stage.id()) + " failed after " +
          std::to_string(max_retries + 1) + " attempt(s)");
    }

    // Evict boundary inputs (and their cached conversions) that no later
    // stage needs.
    release_inputs();
    return Status::OK();
  };

  if (!parallel_stages || eplan.stages.size() <= 1) {
    for (const Stage& stage : eplan.stages) {
      RHEEM_RETURN_IF_ERROR(run_stage(stage));
    }
  } else {
    ThreadPool* pool = pool_ != nullptr ? pool_ : &DefaultThreadPool();
    RHEEM_RETURN_IF_ERROR(RunStagesDag(eplan.stages, pool, run_stage));
  }

  RHEEM_ASSIGN_OR_RETURN(const Dataset* final_data,
                         state.Get(eplan.plan->sink()->id()));
  ExecutionResult result;
  result.output = *final_data;
  result.metrics = metrics;
  if (want_report) {
    result.report = BuildExecutionReport(std::move(report_records), metrics);
  }
  return result;
}

}  // namespace rheem

#ifndef RHEEM_CORE_EXECUTOR_ADAPTIVE_H_
#define RHEEM_CORE_EXECUTOR_ADAPTIVE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/executor/monitor.h"
#include "core/optimizer/enumerator.h"
#include "core/optimizer/stage_splitter.h"

namespace rheem {

/// Knobs for adaptive execution.
struct AdaptiveOptions {
  /// Re-optimize when an executed operator's actual cardinality differs from
  /// its estimate by more than this factor (in either direction).
  double reoptimize_threshold = 3.0;
  /// Upper bound on mid-job re-optimizations.
  int max_reoptimizations = 3;
  /// Retries per failed stage (exponential backoff, base `retry_backoff_us`
  /// doubled per attempt). Attempts are FaultInjector-instrumented under the
  /// "adaptive.stage_attempt" site.
  int max_retries = 2;
  int64_t retry_backoff_us = 1000;
  /// Forwarded to every enumeration round (force platform, movement
  /// awareness; pins are managed internally).
  EnumeratorOptions enumerator;
};

/// Result of an adaptive run.
struct AdaptiveResult {
  Dataset output;
  ExecutionMetrics metrics;
  int reoptimizations = 0;
  /// Human-readable trace of adaptation decisions.
  std::vector<std::string> decisions;
};

/// \brief Adaptive cross-platform executor: executes a physical plan stage
/// by stage and, whenever the observed cardinalities contradict the
/// estimates the platform assignment was based on, re-runs the
/// multi-platform optimizer for the *remaining* operators (executed ones
/// are pinned to where they ran, so their materialized results stay valid).
///
/// This implements the feedback edge the paper draws between the Executor's
/// monitoring duty and the optimizer (§4.2): a plan routed to the
/// lightweight platform because a UDF was estimated to be selective gets
/// rerouted to the parallel platform the moment the estimate is exposed as
/// wrong — without recomputing anything already produced.
class AdaptiveExecutor {
 public:
  AdaptiveExecutor(const PlatformRegistry* registry,
                   const MovementCostModel* movement)
      : registry_(registry), movement_(movement) {}

  /// Optimizes and executes `plan` adaptively. The plan must be physical and
  /// validated; it is not mutated structurally (algorithm variants may be
  /// flipped by enumeration, as in the static path).
  Result<AdaptiveResult> Execute(const Plan& plan,
                                 const AdaptiveOptions& options = {}) const;

 private:
  const PlatformRegistry* registry_;
  const MovementCostModel* movement_;
};

}  // namespace rheem

#endif  // RHEEM_CORE_EXECUTOR_ADAPTIVE_H_

#include "core/executor/execution_state.h"

namespace rheem {

void ExecutionState::Put(int op_id, Dataset data) {
  store_[op_id] = std::make_shared<const Dataset>(std::move(data));
}

void ExecutionState::Put(int op_id, std::shared_ptr<const Dataset> data) {
  store_[op_id] = std::move(data);
}

Result<const Dataset*> ExecutionState::Get(int op_id) const {
  auto it = store_.find(op_id);
  if (it == store_.end()) {
    return Status::ExecutionError("no materialized result for operator #" +
                                  std::to_string(op_id));
  }
  return it->second.get();
}

Result<std::shared_ptr<const Dataset>> ExecutionState::GetShared(
    int op_id) const {
  auto it = store_.find(op_id);
  if (it == store_.end()) {
    return Status::ExecutionError("no materialized result for operator #" +
                                  std::to_string(op_id));
  }
  return it->second;
}

void ExecutionState::Evict(int op_id) { store_.erase(op_id); }

}  // namespace rheem

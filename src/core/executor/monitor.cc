#include "core/executor/monitor.h"

#include <cstdio>

namespace rheem {

void ExecutionMonitor::RecordStage(StageRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

std::vector<ExecutionMonitor::StageRecord> ExecutionMonitor::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

int64_t ExecutionMonitor::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const auto& r : records_) {
    if (!r.succeeded) ++n;
  }
  return n;
}

std::string ExecutionMonitor::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "execution report (" + std::to_string(records_.size()) +
                    " stage attempt(s))\n";
  char buf[256];
  for (const auto& r : records_) {
    std::snprintf(buf, sizeof(buf),
                  "  stage %d on %-10s attempt %d: %s wall=%.3fms sim=%.3fms "
                  "out=%lld%s%s\n",
                  r.stage_id, r.platform.c_str(), r.attempt,
                  r.succeeded ? "ok  " : "FAIL",
                  static_cast<double>(r.wall_micros) * 1e-3,
                  static_cast<double>(r.sim_overhead_micros) * 1e-3,
                  static_cast<long long>(r.output_records),
                  r.error.empty() ? "" : " error=",
                  r.error.c_str());
    out += buf;
  }
  return out;
}

}  // namespace rheem

#ifndef RHEEM_CORE_EXECUTOR_CANCELLATION_H_
#define RHEEM_CORE_EXECUTOR_CANCELLATION_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace rheem {

/// \brief Cooperative cancellation flag shared between a job's owner and the
/// executor running it.
///
/// Cancellation is checked at stage boundaries (before every stage attempt),
/// never mid-kernel: a running task atom finishes, its successors don't
/// start. One token may be observed by many threads.
class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief Per-job stop conditions the executor polls between stages: an
/// optional cancel token and an optional absolute deadline.
struct StopCondition {
  const CancelToken* token = nullptr;  // not owned; nullptr = no cancellation
  std::chrono::steady_clock::time_point deadline{};  // epoch = no deadline
  bool has_deadline = false;

  /// OK while the job may keep running; Cancelled / DeadlineExceeded once it
  /// must stop.
  Status Check() const {
    if (token != nullptr && token->cancelled()) {
      return Status::Cancelled("job cancelled");
    }
    if (has_deadline && std::chrono::steady_clock::now() > deadline) {
      return Status::DeadlineExceeded("job deadline exceeded");
    }
    return Status::OK();
  }
};

}  // namespace rheem

#endif  // RHEEM_CORE_EXECUTOR_CANCELLATION_H_

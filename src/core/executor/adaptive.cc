#include "core/executor/adaptive.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <thread>

#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/executor/execution_state.h"
#include "data/serialization.h"

namespace rheem {

namespace {

std::string DescribeError(const Operator* op, double estimated, double actual) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "#%d %s estimated %.0f records but produced %.0f",
                op->id(), op->kind_name().c_str(), estimated, actual);
  return buf;
}

}  // namespace

Result<AdaptiveResult> AdaptiveExecutor::Execute(
    const Plan& plan, const AdaptiveOptions& options) const {
  // Validate at submit: a threshold <= 1.0 can never be exceeded by the
  // symmetric error ratio (always >= 1) and a negative budget is a config
  // typo — both used to silently disable adaptation instead of erroring.
  if (options.reoptimize_threshold <= 1.0) {
    return Status::InvalidArgument(
        "AdaptiveOptions.reoptimize_threshold must be > 1.0 (got " +
        std::to_string(options.reoptimize_threshold) + ")");
  }
  if (options.max_reoptimizations < 0) {
    return Status::InvalidArgument(
        "AdaptiveOptions.max_reoptimizations must be >= 0 (got " +
        std::to_string(options.max_reoptimizations) + ")");
  }
  RHEEM_RETURN_IF_ERROR(plan.Validate());

  AdaptiveResult result;
  ExecutionState state;
  std::set<int> executed_ops;  // ops whose stage has completed
  EstimateMap actuals;         // op id -> observed Estimate for boundary data

  RHEEM_ASSIGN_OR_RETURN(EstimateMap estimates,
                         CardinalityEstimator::Estimate(plan));
  Enumerator enumerator(registry_, movement_);

  EnumeratorOptions eo = options.enumerator;
  RHEEM_ASSIGN_OR_RETURN(PlatformAssignment assignment,
                         enumerator.Run(plan, estimates, eo));

  bool finished = false;
  while (!finished) {
    RHEEM_ASSIGN_OR_RETURN(ExecutionPlan eplan,
                           StageSplitter::Split(plan, assignment));
    bool reoptimized = false;

    for (const Stage& stage : eplan.stages) {
      // Skip stages whose products are already materialized.
      bool satisfied = !stage.outputs().empty();
      for (const Operator* out : stage.outputs()) {
        satisfied = satisfied && state.Has(out->id());
      }
      if (satisfied) continue;

      // Assemble boundary inputs (cross-platform data really converts).
      BoundaryMap boundary;
      std::vector<Dataset> converted;
      converted.reserve(stage.boundary_inputs().size());
      for (const Operator* producer : stage.boundary_inputs()) {
        RHEEM_ASSIGN_OR_RETURN(const Dataset* data, state.Get(producer->id()));
        Platform* from = assignment.by_op.count(producer->id()) > 0
                             ? assignment.by_op.at(producer->id())
                             : nullptr;
        if (from != nullptr && from != stage.platform()) {
          result.metrics.moved_records += static_cast<int64_t>(data->size());
          Stopwatch sw;
          std::string wire = Serializer::EncodeDataset(*data);
          result.metrics.moved_bytes += static_cast<int64_t>(wire.size());
          auto decoded = Serializer::DecodeDataset(wire);
          if (!decoded.ok()) {
            return decoded.status().WithContext("adaptive boundary conversion");
          }
          converted.push_back(std::move(decoded).ValueOrDie());
          result.metrics.wall_micros += sw.ElapsedMicros();
          boundary[producer->id()] = &converted.back();
        } else {
          boundary[producer->id()] = data;
        }
      }

      ExecutionMetrics stage_metrics;
      Stopwatch sw;
      // Bounded retries with exponential backoff; attempts are
      // fault-injectable so chaos schedules exercise the adaptive path too.
      std::vector<Dataset> outputs;
      Status last_error = Status::OK();
      bool done = false;
      for (int attempt = 0; attempt <= options.max_retries && !done;
           ++attempt) {
        if (attempt > 0) {
          result.metrics.retries += 1;
          if (options.retry_backoff_us > 0) {
            const int shift = std::min(attempt - 1, 20);
            std::this_thread::sleep_for(std::chrono::microseconds(
                options.retry_backoff_us << shift));
          }
        }
        Status injected = FaultInjector::Global().Hit(
            "adaptive.stage_attempt",
            "stage=" + std::to_string(stage.id()) +
                ",platform=" + stage.platform()->name() +
                ",attempt=" + std::to_string(attempt));
        auto attempt_out =
            injected.ok()
                ? stage.platform()->ExecuteStage(stage, boundary,
                                                 &stage_metrics)
                : Result<std::vector<Dataset>>(injected);
        if (attempt_out.ok()) {
          outputs = std::move(attempt_out).ValueOrDie();
          done = true;
        } else {
          last_error = attempt_out.status();
          RHEEM_LOG(Warning) << "adaptive stage " << stage.id() << " attempt "
                             << attempt
                             << " failed: " << last_error.ToString();
        }
      }
      if (!done) {
        return last_error.WithContext(
            "adaptive stage " + std::to_string(stage.id()) +
            " failed after " + std::to_string(options.max_retries + 1) +
            " attempt(s)");
      }
      result.metrics.MergeFrom(stage_metrics);
      result.metrics.wall_micros += sw.ElapsedMicros();
      result.metrics.stages_run += 1;

      // Record actuals and check estimation error on this stage's products.
      double worst_error = 1.0;
      const Operator* worst_op = nullptr;
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        const Operator* out = stage.outputs()[i];
        const double actual = static_cast<double>(outputs[i].size());
        const double avg_bytes =
            outputs[i].empty()
                ? 32.0
                : static_cast<double>(outputs[i].EstimatedBytes()) /
                      static_cast<double>(outputs[i].size());
        actuals[out->id()] = Estimate{actual, avg_bytes};
        const double estimated =
            std::max(1.0, estimates.at(out->id()).cardinality);
        const double error = std::max((actual + 1.0) / (estimated + 1.0),
                                      (estimated + 1.0) / (actual + 1.0));
        if (error > worst_error) {
          worst_error = error;
          worst_op = out;
        }
        state.Put(out->id(), std::move(outputs[i]));
      }
      for (const Operator* op : stage.ops()) executed_ops.insert(op->id());

      const bool is_final = stage.id() == eplan.final_stage;
      if (!is_final && worst_error > options.reoptimize_threshold &&
          result.reoptimizations < options.max_reoptimizations) {
        // Mid-flight re-optimization: refresh estimates from observed data,
        // pin everything already executed, and re-enumerate the rest.
        result.reoptimizations += 1;
        result.decisions.push_back(
            "re-optimizing after stage " + std::to_string(stage.id()) + ": " +
            DescribeError(worst_op, estimates.at(worst_op->id()).cardinality,
                          actuals.at(worst_op->id()).cardinality));
        RHEEM_LOG(Info) << result.decisions.back();

        RHEEM_ASSIGN_OR_RETURN(estimates,
                               CardinalityEstimator::Estimate(plan, actuals));
        EnumeratorOptions pinned = options.enumerator;
        for (int op_id : executed_ops) {
          pinned.pinned_platforms[op_id] =
              assignment.by_op.at(op_id)->name();
        }
        RHEEM_ASSIGN_OR_RETURN(assignment,
                               enumerator.Run(plan, estimates, pinned));
        reoptimized = true;
        break;  // rebuild stages under the new assignment
      }
    }
    finished = !reoptimized;
  }

  RHEEM_ASSIGN_OR_RETURN(const Dataset* final_data,
                         state.Get(plan.sink()->id()));
  result.output = *final_data;
  result.metrics.jobs_run += 1;
  return result;
}

}  // namespace rheem

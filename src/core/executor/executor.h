#ifndef RHEEM_CORE_EXECUTOR_EXECUTOR_H_
#define RHEEM_CORE_EXECUTOR_EXECUTOR_H_

#include <functional>

#include "common/config.h"
#include "common/result.h"
#include "core/executor/monitor.h"
#include "core/optimizer/stage_splitter.h"

namespace rheem {

/// \brief Result of executing one RHEEM job end to end.
struct ExecutionResult {
  Dataset output;
  ExecutionMetrics metrics;
};

/// \brief RHEEM's Executor (paper Figure 1 / §4.2): schedules the execution
/// plan's task atoms onto their platforms, moves data across platform
/// boundaries, monitors progress, retries failed atoms, and hands the final
/// aggregate back to the caller.
///
/// Cross-platform boundaries perform *real* serialization+deserialization of
/// the crossing datasets (ChannelKind::kSerializedStream), so the movement
/// costs reported by benchmarks are measured, not modelled.
///
/// Config keys:
///   executor.max_retries        (int, default 2)   retries per failed stage
///   executor.serialize_boundaries (bool, default true)
///   executor.checkpoint_dir     (string, default "" = off): directory where
///       every stage's boundary outputs are persisted; a re-run of the same
///       job (keyed by executor.job_id) skips stages whose products are
///       already checkpointed — coarse-grained fault recovery for long
///       multi-platform jobs ("coping with failures", paper §4.2).
///   executor.job_id             (string, default "job")
class CrossPlatformExecutor {
 public:
  /// Fault hook for tests/benchmarks: called before each stage attempt; a
  /// non-OK return is treated as a platform failure of that attempt.
  using FailureInjector = std::function<Status(const Stage&, int attempt)>;

  explicit CrossPlatformExecutor(Config config = Config());

  void set_failure_injector(FailureInjector injector) {
    failure_injector_ = std::move(injector);
  }
  void set_monitor(ExecutionMonitor* monitor) { monitor_ = monitor; }

  /// Runs all stages of `eplan` and returns the plan sink's output.
  Result<ExecutionResult> Execute(const ExecutionPlan& eplan);

 private:
  Config config_;
  FailureInjector failure_injector_;
  ExecutionMonitor* monitor_ = nullptr;  // optional, not owned
};

}  // namespace rheem

#endif  // RHEEM_CORE_EXECUTOR_EXECUTOR_H_

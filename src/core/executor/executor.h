#ifndef RHEEM_CORE_EXECUTOR_EXECUTOR_H_
#define RHEEM_CORE_EXECUTOR_EXECUTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/executor/cancellation.h"
#include "core/executor/monitor.h"
#include "core/optimizer/stage_splitter.h"

namespace rheem {

class ResultCache;         // core/executor/result_cache.h
class MovementCostModel;   // core/optimizer/channel.h
class StatisticsCatalog;   // core/optimizer/stats_catalog.h

/// \brief Result of executing one RHEEM job end to end.
struct ExecutionResult {
  Dataset output;
  ExecutionMetrics metrics;
  /// EXPLAIN ANALYZE-style per-stage report (platform, attempts, wall time,
  /// output rows, movement totals, failover and re-optimization events).
  /// Populated when the process-wide MetricsRegistry is enabled
  /// (`metrics.enabled`); empty otherwise so the disabled path does no
  /// string work.
  std::string report;
  /// One human-readable line per mid-job re-optimization: which operator's
  /// observed cardinality diverged, by how much, and what was re-planned.
  /// Always populated (operators need these even with metrics disabled);
  /// size() == metrics.reoptimizations.
  std::vector<std::string> decisions;
};

/// \brief RHEEM's Executor (paper Figure 1 / §4.2): schedules the execution
/// plan's task atoms onto their platforms, moves data across platform
/// boundaries, monitors progress, retries failed atoms, and hands the final
/// aggregate back to the caller.
///
/// Independent stages (task atoms with no dependency path between them) run
/// concurrently on a ThreadPool; dependent stages respect the DAG order. The
/// calling thread acts as the scheduler and blocks until the job finishes,
/// so it must not itself be a worker of the stage pool.
///
/// Cross-platform boundaries perform *real* serialization+deserialization of
/// the crossing datasets (ChannelKind::kSerializedStream), so the movement
/// costs reported by benchmarks are measured, not modelled. Within one job a
/// producer crossing to several consumer stages on the same foreign platform
/// is encoded/decoded once — later consumers share the first conversion —
/// and movement totals count each (producer, target platform) edge once.
///
/// Fault tolerance ("coping with failures", paper §4.2): each stage attempt
/// retries with exponential, deadline-aware backoff; after
/// `executor.failover_threshold` consecutive failures on one platform the
/// platform is declared blacked out and — when EnableFailover() armed the
/// executor with the platform registry — the remaining unexecuted stages are
/// re-enumerated onto the healthy platforms, so a platform blackout degrades
/// the job to a slower plan instead of failing it. Materialized stage
/// outputs, cached boundary conversions and checkpoints all stay valid
/// across the re-plan. Every failure path is instrumented with FaultInjector
/// sites (see docs/fault_tolerance.md).
///
/// Config keys:
///   executor.max_retries        (int, default 2)   retries per failed stage
///   executor.retry_backoff_us   (int, default 1000): base of the exponential
///       per-retry backoff (doubles per attempt); 0 disables sleeping.
///   executor.retry_backoff_max_us (int, default 250000): backoff ceiling.
///   executor.failover_threshold (int, default 3): consecutive stage-attempt
///       failures on one platform before it is blacked out.
///   executor.max_failovers      (int, default 2): re-plans per job.
///   executor.serialize_boundaries (bool, default true)
///   executor.parallel_stages    (bool, default true): run independent stages
///       concurrently; disable for strictly serial stage-by-stage execution.
///   executor.checkpoint_dir     (string, default "" = off): directory where
///       every stage's boundary outputs are persisted (checksummed; torn or
///       corrupt files are detected and re-executed); a re-run of the same
///       job (keyed by executor.job_id) skips stages whose products are
///       already checkpointed — coarse-grained fault recovery for long
///       multi-platform jobs ("coping with failures", paper §4.2).
///   executor.job_id             (string, default "job")
///   executor.reoptimize_threshold (double, default 3.0, must be > 1.0):
///       progressive re-optimization (paper §4.2 feedback edge, RHEEMix):
///       when a completed stage's observed output cardinality diverges from
///       its compile-time estimate by more than this factor (in either
///       direction), the remaining unexecuted stages are re-enumerated with
///       completed stages pinned — the same machinery as platform failover,
///       but triggered by mis-estimates instead of blackouts. Requires
///       EnableFailover() (the registry + movement model) and an
///       ExecutionPlan carrying its compile-time estimates
///       (RheemContext::Compile populates them).
///   executor.max_reoptimizations (int, default 2, must be >= 0): re-plan
///       budget per job; 0 disables progressive re-optimization.
class CrossPlatformExecutor {
 public:
  explicit CrossPlatformExecutor(Config config = Config());

  void set_monitor(ExecutionMonitor* monitor) { monitor_ = monitor; }

  /// Pool carrying concurrent stage tasks (not owned). Defaults to the
  /// process-wide DefaultThreadPool().
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Cancellation/deadline polled at stage boundaries and during retry
  /// backoff: a cancelled or overdue job stops before its next stage attempt
  /// and Execute returns Cancelled / DeadlineExceeded.
  void set_stop_condition(StopCondition stop) { stop_ = stop; }

  /// Cross-job sub-plan result cache (not owned; typically the JobServer's).
  /// When set and enabled, a stage whose every output is cached under its
  /// sub-plan fingerprint is skipped entirely, and every executed stage's
  /// outputs are inserted for future jobs. Reuse relies on the
  /// Operator::FingerprintToken contract — see ResultCache.
  void set_result_cache(ResultCache* cache) { result_cache_ = cache; }

  /// Arms platform failover: when a platform blacks out mid-job, the
  /// remaining unexecuted stages are re-enumerated over `registry` (minus
  /// the blacked-out platforms) using `movement` for boundary costs. Both
  /// are borrowed and must outlive Execute(). Without this call a blackout
  /// fails the job after the retry budget, as before.
  void EnableFailover(const PlatformRegistry* registry,
                      const MovementCostModel* movement) {
    registry_ = registry;
    movement_ = movement;
  }

  /// Learned-statistics sink (not owned; typically the RheemContext's).
  /// When set, every job records its observed sub-plan cardinalities and
  /// per-(operator, platform) cost ratios into the catalog after execution,
  /// so later compilations plan with measured numbers.
  void set_stats_catalog(StatisticsCatalog* catalog) {
    stats_catalog_ = catalog;
  }

  /// Runs all stages of `eplan` and returns the plan sink's output.
  Result<ExecutionResult> Execute(const ExecutionPlan& eplan);

 private:
  Config config_;
  ExecutionMonitor* monitor_ = nullptr;  // optional, not owned
  ThreadPool* pool_ = nullptr;           // optional, not owned
  ResultCache* result_cache_ = nullptr;  // optional, not owned
  const PlatformRegistry* registry_ = nullptr;     // failover, not owned
  const MovementCostModel* movement_ = nullptr;    // failover, not owned
  StatisticsCatalog* stats_catalog_ = nullptr;     // optional, not owned
  StopCondition stop_;
};

}  // namespace rheem

#endif  // RHEEM_CORE_EXECUTOR_EXECUTOR_H_

#ifndef RHEEM_CORE_EXECUTOR_EXECUTOR_H_
#define RHEEM_CORE_EXECUTOR_EXECUTOR_H_

#include <functional>

#include "common/config.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/executor/cancellation.h"
#include "core/executor/monitor.h"
#include "core/optimizer/stage_splitter.h"

namespace rheem {

class ResultCache;  // core/executor/result_cache.h

/// \brief Result of executing one RHEEM job end to end.
struct ExecutionResult {
  Dataset output;
  ExecutionMetrics metrics;
  /// EXPLAIN ANALYZE-style per-stage report (platform, attempts, wall time,
  /// output rows, movement totals). Populated when the process-wide
  /// MetricsRegistry is enabled (`metrics.enabled`); empty otherwise so the
  /// disabled path does no string work.
  std::string report;
};

/// \brief RHEEM's Executor (paper Figure 1 / §4.2): schedules the execution
/// plan's task atoms onto their platforms, moves data across platform
/// boundaries, monitors progress, retries failed atoms, and hands the final
/// aggregate back to the caller.
///
/// Independent stages (task atoms with no dependency path between them) run
/// concurrently on a ThreadPool; dependent stages respect the DAG order. The
/// calling thread acts as the scheduler and blocks until the job finishes,
/// so it must not itself be a worker of the stage pool.
///
/// Cross-platform boundaries perform *real* serialization+deserialization of
/// the crossing datasets (ChannelKind::kSerializedStream), so the movement
/// costs reported by benchmarks are measured, not modelled. Within one job a
/// producer crossing to several consumer stages on the same foreign platform
/// is encoded/decoded once — later consumers share the first conversion —
/// and movement totals count each (producer, target platform) edge once.
///
/// Config keys:
///   executor.max_retries        (int, default 2)   retries per failed stage
///   executor.serialize_boundaries (bool, default true)
///   executor.parallel_stages    (bool, default true): run independent stages
///       concurrently; disable for strictly serial stage-by-stage execution.
///   executor.checkpoint_dir     (string, default "" = off): directory where
///       every stage's boundary outputs are persisted; a re-run of the same
///       job (keyed by executor.job_id) skips stages whose products are
///       already checkpointed — coarse-grained fault recovery for long
///       multi-platform jobs ("coping with failures", paper §4.2).
///   executor.job_id             (string, default "job")
class CrossPlatformExecutor {
 public:
  /// Fault hook for tests/benchmarks: called before each stage attempt; a
  /// non-OK return is treated as a platform failure of that attempt.
  using FailureInjector = std::function<Status(const Stage&, int attempt)>;

  explicit CrossPlatformExecutor(Config config = Config());

  void set_failure_injector(FailureInjector injector) {
    failure_injector_ = std::move(injector);
  }
  void set_monitor(ExecutionMonitor* monitor) { monitor_ = monitor; }

  /// Pool carrying concurrent stage tasks (not owned). Defaults to the
  /// process-wide DefaultThreadPool().
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Cancellation/deadline polled at stage boundaries: a cancelled or
  /// overdue job stops before its next stage attempt and Execute returns
  /// Cancelled / DeadlineExceeded.
  void set_stop_condition(StopCondition stop) { stop_ = stop; }

  /// Cross-job sub-plan result cache (not owned; typically the JobServer's).
  /// When set and enabled, a stage whose every output is cached under its
  /// sub-plan fingerprint is skipped entirely, and every executed stage's
  /// outputs are inserted for future jobs. Reuse relies on the
  /// Operator::FingerprintToken contract — see ResultCache.
  void set_result_cache(ResultCache* cache) { result_cache_ = cache; }

  /// Runs all stages of `eplan` and returns the plan sink's output.
  Result<ExecutionResult> Execute(const ExecutionPlan& eplan);

 private:
  Config config_;
  FailureInjector failure_injector_;
  ExecutionMonitor* monitor_ = nullptr;  // optional, not owned
  ThreadPool* pool_ = nullptr;           // optional, not owned
  ResultCache* result_cache_ = nullptr;  // optional, not owned
  StopCondition stop_;
};

}  // namespace rheem

#endif  // RHEEM_CORE_EXECUTOR_EXECUTOR_H_

#include "core/api/data_quanta.h"

#include "common/logging.h"
#include "storage/hot_buffer.h"

namespace rheem {

RheemJob::RheemJob(RheemContext* ctx)
    : ctx_(ctx), plan_(std::make_shared<Plan>()) {}

DataQuanta RheemJob::LoadCollection(Dataset data) {
  auto* node = plan_->Add<GenericLogicalOp>({}, OpKind::kCollectionSource);
  node->source_data = std::move(data);
  return DataQuanta(this, node);
}

Result<DataQuanta> RheemJob::LoadFromStorage(
    const storage::StorageManager& manager, const std::string& dataset) {
  storage::HotDataBuffer* buffer = ctx_->hot_buffer();
  if (buffer != nullptr && buffer->manager() == &manager) {
    RHEEM_ASSIGN_OR_RETURN(std::shared_ptr<const Dataset> data,
                           buffer->Load(dataset));
    return LoadCollection(*data);
  }
  RHEEM_ASSIGN_OR_RETURN(Dataset data, manager.Load(dataset));
  return LoadCollection(std::move(data));
}

Result<DataQuanta> RheemJob::LoadFromStorage(const std::string& dataset) {
  storage::HotDataBuffer* buffer = ctx_->hot_buffer();
  if (buffer == nullptr) {
    return Status::InvalidArgument(
        "no storage attached to this context — call "
        "RheemContext::AttachStorage first");
  }
  RHEEM_ASSIGN_OR_RETURN(std::shared_ptr<const Dataset> data,
                         buffer->Load(dataset));
  return LoadCollection(*data);
}

int DataQuanta::node_id() const { return node_ != nullptr ? node_->id() : -1; }

GenericLogicalOp* DataQuanta::Append(
    OpKind kind, std::vector<GenericLogicalOp*> inputs) const {
  std::vector<Operator*> ins(inputs.begin(), inputs.end());
  return job_->plan_->Add<GenericLogicalOp>(std::move(ins), kind);
}

DataQuanta DataQuanta::Map(std::function<Record(const Record&)> fn,
                           UdfMeta meta) const {
  auto* node = Append(OpKind::kMap, {node_});
  node->map = MapUdf{std::move(fn), meta};
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::FlatMap(
    std::function<std::vector<Record>(const Record&)> fn, UdfMeta meta) const {
  auto* node = Append(OpKind::kFlatMap, {node_});
  node->flat_map = FlatMapUdf{std::move(fn), meta};
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::Filter(std::function<bool(const Record&)> fn,
                              UdfMeta meta) const {
  auto* node = Append(OpKind::kFilter, {node_});
  node->predicate = PredicateUdf{std::move(fn), meta};
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::Filter(expr::ExprPtr predicate) const {
  auto udf = expr::MakePredicateUdf(std::move(predicate));
  if (!udf.ok()) {
    job_->RecordBuildError(udf.status());
    return *this;
  }
  auto* node = Append(OpKind::kFilter, {node_});
  node->predicate = std::move(udf).ValueOrDie();
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::Map(std::vector<expr::ExprPtr> fields) const {
  auto udf = expr::MakeMapUdf(std::move(fields));
  if (!udf.ok()) {
    job_->RecordBuildError(udf.status());
    return *this;
  }
  auto* node = Append(OpKind::kMap, {node_});
  node->map = std::move(udf).ValueOrDie();
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::Join(const DataQuanta& right, expr::ExprPtr left_key,
                            expr::ExprPtr right_key,
                            JoinAlgorithm algorithm) const {
  auto lk = expr::MakeKeyUdf(std::move(left_key));
  auto rk = expr::MakeKeyUdf(std::move(right_key));
  if (!lk.ok() || !rk.ok()) {
    job_->RecordBuildError(lk.ok() ? rk.status() : lk.status());
    return *this;
  }
  auto* node = Append(OpKind::kJoin, {node_, right.node_});
  node->key = std::move(lk).ValueOrDie();
  node->key2 = std::move(rk).ValueOrDie();
  node->join_algorithm = algorithm;
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::ThetaJoin(const DataQuanta& right,
                                 expr::ExprPtr pair_predicate) const {
  auto udf = expr::MakeThetaUdf(std::move(pair_predicate));
  if (!udf.ok()) {
    job_->RecordBuildError(udf.status());
    return *this;
  }
  auto* node = Append(OpKind::kThetaJoin, {node_, right.node_});
  node->theta = std::move(udf).ValueOrDie();
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::Project(std::vector<int> columns) const {
  auto* node = Append(OpKind::kProject, {node_});
  node->columns = std::move(columns);
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::Distinct() const {
  return DataQuanta(job_, Append(OpKind::kDistinct, {node_}));
}

DataQuanta DataQuanta::Sort(std::function<Value(const Record&)> key) const {
  auto* node = Append(OpKind::kSort, {node_});
  node->key = KeyUdf{std::move(key), UdfMeta()};
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::Sample(double fraction, uint64_t seed) const {
  auto* node = Append(OpKind::kSample, {node_});
  node->fraction = fraction;
  node->seed = seed;
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::ZipWithId() const {
  return DataQuanta(job_, Append(OpKind::kZipWithId, {node_}));
}

DataQuanta DataQuanta::ReduceByKey(
    std::function<Value(const Record&)> key,
    std::function<Record(const Record&, const Record&)> reduce,
    double key_distinct_ratio) const {
  auto* node = Append(OpKind::kReduceByKey, {node_});
  node->key = KeyUdf{std::move(key), UdfMeta::Selective(key_distinct_ratio)};
  node->reduce = ReduceUdf{std::move(reduce), UdfMeta()};
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::ReduceByKey(expr::ExprPtr key,
                                   std::vector<AggSpec> aggs,
                                   double key_distinct_ratio) const {
  auto k = expr::MakeKeyUdf(std::move(key));
  auto r = MakeAggReduceUdf(std::move(aggs));
  if (!k.ok() || !r.ok()) {
    job_->RecordBuildError(k.ok() ? r.status() : k.status());
    return *this;
  }
  auto* node = Append(OpKind::kReduceByKey, {node_});
  node->key = std::move(k).ValueOrDie();
  node->key.meta = UdfMeta::Selective(key_distinct_ratio);
  node->reduce = std::move(r).ValueOrDie();
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::GroupByKey(
    std::function<Value(const Record&)> key,
    std::function<std::vector<Record>(const Value&, const std::vector<Record>&)>
        group,
    double key_distinct_ratio, GroupByAlgorithm algorithm) const {
  auto* node = Append(OpKind::kGroupByKey, {node_});
  node->key = KeyUdf{std::move(key), UdfMeta::Selective(key_distinct_ratio)};
  node->group = GroupUdf{std::move(group), UdfMeta()};
  node->groupby_algorithm = algorithm;
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::GlobalReduce(
    std::function<Record(const Record&, const Record&)> reduce) const {
  auto* node = Append(OpKind::kGlobalReduce, {node_});
  node->reduce = ReduceUdf{std::move(reduce), UdfMeta()};
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::Count() const {
  return DataQuanta(job_, Append(OpKind::kCount, {node_}));
}

DataQuanta DataQuanta::BroadcastMap(
    const DataQuanta& broadcast,
    std::function<Record(const Record&, const Dataset&)> fn,
    UdfMeta meta) const {
  auto* node = Append(OpKind::kBroadcastMap, {node_, broadcast.node_});
  node->broadcast_map = BroadcastMapUdf{std::move(fn), meta};
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::Join(const DataQuanta& right,
                            std::function<Value(const Record&)> left_key,
                            std::function<Value(const Record&)> right_key,
                            JoinAlgorithm algorithm) const {
  auto* node = Append(OpKind::kJoin, {node_, right.node_});
  node->key = KeyUdf{std::move(left_key), UdfMeta()};
  node->key2 = KeyUdf{std::move(right_key), UdfMeta()};
  node->join_algorithm = algorithm;
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::ThetaJoin(
    const DataQuanta& right,
    std::function<bool(const Record&, const Record&)> condition,
    double selectivity) const {
  auto* node = Append(OpKind::kThetaJoin, {node_, right.node_});
  node->theta = ThetaUdf{std::move(condition), UdfMeta::Selective(selectivity)};
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::IEJoin(const DataQuanta& right, IEJoinSpec spec) const {
  auto* node = Append(OpKind::kIEJoin, {node_, right.node_});
  node->iejoin = spec;
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::Cross(const DataQuanta& right) const {
  return DataQuanta(job_, Append(OpKind::kCrossProduct, {node_, right.node_}));
}

DataQuanta DataQuanta::Union(const DataQuanta& right) const {
  return DataQuanta(job_, Append(OpKind::kUnion, {node_, right.node_}));
}

DataQuanta DataQuanta::Intersect(const DataQuanta& right) const {
  return DataQuanta(job_, Append(OpKind::kIntersect, {node_, right.node_}));
}

DataQuanta DataQuanta::Subtract(const DataQuanta& right) const {
  return DataQuanta(job_, Append(OpKind::kSubtract, {node_, right.node_}));
}

DataQuanta DataQuanta::TopK(int64_t k, std::function<Value(const Record&)> key,
                            bool ascending) const {
  auto* node = Append(OpKind::kTopK, {node_});
  node->key = KeyUdf{std::move(key), UdfMeta()};
  node->topk = k;
  node->ascending = ascending;
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::TopK(int64_t k, expr::ExprPtr key,
                            bool ascending) const {
  auto udf = expr::MakeKeyUdf(std::move(key));
  if (!udf.ok()) {
    job_->RecordBuildError(udf.status());
    return *this;
  }
  auto* node = Append(OpKind::kTopK, {node_});
  node->key = std::move(udf).ValueOrDie();
  node->topk = k;
  node->ascending = ascending;
  return DataQuanta(job_, node);
}

std::shared_ptr<LogicalLoopSpec> DataQuanta::BuildLoopBody(
    const std::function<DataQuanta(DataQuanta, DataQuanta)>& body) {
  auto spec = std::make_shared<LogicalLoopSpec>();
  spec->body = std::make_shared<Plan>();
  // Body jobs carry no context: terminal methods are rejected inside bodies.
  RheemJob body_job(nullptr, spec->body);
  auto* state_marker =
      spec->body->Add<GenericLogicalOp>({}, OpKind::kLoopState);
  auto* data_marker = spec->body->Add<GenericLogicalOp>({}, OpKind::kLoopData);
  DataQuanta next = body(DataQuanta(&body_job, state_marker),
                         DataQuanta(&body_job, data_marker));
  spec->body->SetSink(next.node_);
  return spec;
}

DataQuanta DataQuanta::Repeat(
    int iterations, const DataQuanta& data,
    const std::function<DataQuanta(DataQuanta, DataQuanta)>& body) const {
  auto* node = Append(OpKind::kRepeat, {node_, data.node_});
  node->loop = BuildLoopBody(body);
  node->loop->iterations = iterations;
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::DoWhile(
    std::function<bool(const Dataset&, int)> condition, int max_iterations,
    const DataQuanta& data,
    const std::function<DataQuanta(DataQuanta, DataQuanta)>& body) const {
  auto* node = Append(OpKind::kDoWhile, {node_, data.node_});
  node->loop = BuildLoopBody(body);
  node->loop->is_do_while = true;
  node->loop->condition = LoopConditionUdf{std::move(condition)};
  node->loop->max_iterations = max_iterations;
  return DataQuanta(job_, node);
}

DataQuanta DataQuanta::OnPlatform(const std::string& platform) const {
  node_->pinned_platform = platform;
  return *this;
}

Result<Dataset> DataQuanta::Collect() const {
  RHEEM_ASSIGN_OR_RETURN(ExecutionResult result, CollectWithMetrics());
  return std::move(result.output);
}

Result<ExecutionResult> DataQuanta::CollectWithMetrics() const {
  if (!valid()) return Status::InvalidArgument("empty DataQuanta");
  if (job_->ctx_ == nullptr) {
    return Status::InvalidArgument(
        "cannot Collect inside a loop body; return the DataQuanta instead");
  }
  RHEEM_RETURN_IF_ERROR(job_->build_status());
  auto* sink = Append(OpKind::kCollect, {node_});
  job_->plan_->SetSink(sink);
  return job_->ctx_->Execute(*job_->plan_, job_->options_);
}

Result<Plan*> DataQuanta::Seal() const {
  if (!valid()) return Status::InvalidArgument("empty DataQuanta");
  if (job_->ctx_ == nullptr) {
    return Status::InvalidArgument("cannot Seal inside a loop body");
  }
  RHEEM_RETURN_IF_ERROR(job_->build_status());
  auto* sink = Append(OpKind::kCollect, {node_});
  job_->plan_->SetSink(sink);
  return job_->plan_.get();
}

Result<std::string> DataQuanta::Explain() const {
  if (!valid()) return Status::InvalidArgument("empty DataQuanta");
  if (job_->ctx_ == nullptr) {
    return Status::InvalidArgument("cannot Explain inside a loop body");
  }
  RHEEM_RETURN_IF_ERROR(job_->build_status());
  auto* sink = Append(OpKind::kCollect, {node_});
  job_->plan_->SetSink(sink);
  RHEEM_ASSIGN_OR_RETURN(CompiledJob compiled,
                         job_->ctx_->Compile(*job_->plan_, job_->options_));
  return compiled.Explain();
}

}  // namespace rheem

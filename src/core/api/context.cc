#include "core/api/context.h"

#include <filesystem>
#include <set>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/api/logical_nodes.h"
#include "core/optimizer/enumerator.h"
#include "core/optimizer/logical_rewrites.h"
#include "core/optimizer/stats_catalog.h"
#include "core/service/job_server.h"
#include "storage/hot_buffer.h"
#include "platforms/javasim/javasim_platform.h"
#include "platforms/relsim/relsim_platform.h"
#include "platforms/sparksim/sparksim_platform.h"

namespace rheem {

RheemContext::RheemContext(Config config) : config_(std::move(config)) {
  ApplyObservabilityConfig(config_);
  if (config_.GetBool("stats.enabled", true).ValueOr(true)) {
    stats_ = std::make_unique<StatisticsCatalog>();
    const std::string path = config_.GetString("stats.path", "").ValueOr("");
    std::error_code ec;
    if (!path.empty() && std::filesystem::exists(path, ec)) {
      // A corrupt stats file is rejected and counted
      // (stats_catalog.corrupt_total); the context starts with an empty
      // catalog rather than planning from poisoned statistics.
      if (Status loaded = stats_->LoadFromFile(path); !loaded.ok()) {
        RHEEM_LOG(Warning) << "ignoring stats catalog at " << path << ": "
                           << loaded.ToString();
      }
    }
  }
}

RheemContext::~RheemContext() = default;  // JobServer's dtor drains

JobServer& RheemContext::job_server() {
  std::lock_guard<std::mutex> lock(server_mu_);
  if (server_ == nullptr) server_ = std::make_unique<JobServer>(this);
  return *server_;
}

Status RheemContext::AttachStorage(storage::StorageManager* manager) {
  if (manager == nullptr) {
    return Status::InvalidArgument("cannot attach a null StorageManager");
  }
  const int64_t capacity =
      config_.GetInt("storage.hot_buffer_capacity_bytes", 256ll * 1024 * 1024)
          .ValueOr(256ll * 1024 * 1024);
  // Replace-then-assign order: the old buffer unregisters its write observer
  // from the old manager before the new one registers.
  hot_buffer_.reset();
  hot_buffer_ = std::make_unique<storage::HotDataBuffer>(manager, capacity);
  storage_ = manager;
  return Status::OK();
}

Result<JobHandle> RheemContext::Submit(const Plan& logical_plan) {
  return job_server().Submit(logical_plan);
}

Result<JobHandle> RheemContext::Submit(const Plan& logical_plan,
                                       const JobOptions& options) {
  return job_server().Submit(logical_plan, options);
}

Result<JobHandle> RheemContext::SubmitSql(const std::string& query,
                                          sql::Catalog& catalog) {
  return job_server().SubmitSql(query, catalog);
}

Status RheemContext::RegisterDefaultPlatforms() {
  RHEEM_ASSIGN_OR_RETURN(
      std::string list,
      config_.GetString("rheem.platforms", "javasim,sparksim,relsim"));
  for (const std::string& raw : SplitString(list, ',')) {
    const std::string name(TrimWhitespace(raw));
    if (name.empty()) continue;
    if (name == "javasim") {
      RHEEM_RETURN_IF_ERROR(
          registry_.Register(std::make_unique<JavaSimPlatform>(config_)));
    } else if (name == "sparksim") {
      RHEEM_RETURN_IF_ERROR(
          registry_.Register(std::make_unique<SparkSimPlatform>(config_)));
    } else if (name == "relsim") {
      RHEEM_RETURN_IF_ERROR(
          registry_.Register(std::make_unique<RelSimPlatform>(config_)));
    } else {
      return Status::InvalidArgument("unknown built-in platform '" + name +
                                     "' in rheem.platforms");
    }
  }
  return Status::OK();
}

namespace {

/// Translates one GenericLogicalOp into its physical counterpart.
Result<Operator*> TranslateGeneric(const GenericLogicalOp& node,
                                   std::vector<Operator*> inputs,
                                   Plan* physical) {
  switch (node.kind()) {
    case OpKind::kCollectionSource:
      return physical->Add<CollectionSourceOp>(std::move(inputs),
                                               node.source_data);
    case OpKind::kLoopState:
      return physical->Add<LoopStateOp>(std::move(inputs));
    case OpKind::kLoopData:
      return physical->Add<LoopDataOp>(std::move(inputs));
    case OpKind::kMap:
      return physical->Add<MapOp>(std::move(inputs), node.map);
    case OpKind::kFlatMap:
      return physical->Add<FlatMapOp>(std::move(inputs), node.flat_map);
    case OpKind::kFilter:
      return physical->Add<FilterOp>(std::move(inputs), node.predicate);
    case OpKind::kProject:
      return physical->Add<ProjectOp>(std::move(inputs), node.columns);
    case OpKind::kDistinct:
      return physical->Add<DistinctOp>(std::move(inputs));
    case OpKind::kSort:
      return physical->Add<SortOp>(std::move(inputs), node.key);
    case OpKind::kSample:
      return physical->Add<SampleOp>(std::move(inputs), node.fraction,
                                     node.seed);
    case OpKind::kZipWithId:
      return physical->Add<ZipWithIdOp>(std::move(inputs));
    case OpKind::kReduceByKey:
      return physical->Add<ReduceByKeyOp>(std::move(inputs), node.key,
                                          node.reduce);
    case OpKind::kGroupByKey:
      return physical->Add<GroupByKeyOp>(std::move(inputs), node.key,
                                         node.group, node.groupby_algorithm);
    case OpKind::kGlobalReduce:
      return physical->Add<GlobalReduceOp>(std::move(inputs), node.reduce);
    case OpKind::kCount:
      return physical->Add<CountOp>(std::move(inputs));
    case OpKind::kBroadcastMap:
      return physical->Add<BroadcastMapOp>(std::move(inputs),
                                           node.broadcast_map);
    case OpKind::kJoin:
      return physical->Add<JoinOp>(std::move(inputs), node.key, node.key2,
                                   node.join_algorithm);
    case OpKind::kThetaJoin:
      return physical->Add<ThetaJoinOp>(std::move(inputs), node.theta);
    case OpKind::kIEJoin:
      return physical->Add<IEJoinOp>(std::move(inputs), node.iejoin);
    case OpKind::kCrossProduct:
      return physical->Add<CrossProductOp>(std::move(inputs));
    case OpKind::kUnion:
      return physical->Add<UnionOp>(std::move(inputs));
    case OpKind::kIntersect:
      return physical->Add<IntersectOp>(std::move(inputs));
    case OpKind::kSubtract:
      return physical->Add<SubtractOp>(std::move(inputs));
    case OpKind::kTopK:
      return physical->Add<TopKOp>(std::move(inputs), node.key, node.topk,
                                   node.ascending);
    case OpKind::kCollect:
      return physical->Add<CollectOp>(std::move(inputs));
    case OpKind::kRepeat:
    case OpKind::kDoWhile: {
      if (node.loop == nullptr || node.loop->body == nullptr) {
        return Status::InvalidPlan("loop node without a body");
      }
      std::map<int, std::string> body_pins;  // pins inside bodies are ignored
      RHEEM_ASSIGN_OR_RETURN(
          std::unique_ptr<Plan> body,
          RheemContext::TranslateToPhysical(*node.loop->body, &body_pins));
      std::shared_ptr<Plan> shared_body(std::move(body));
      if (node.kind() == OpKind::kRepeat) {
        return physical->Add<RepeatOp>(std::move(inputs),
                                       node.loop->iterations, shared_body);
      }
      return physical->Add<DoWhileOp>(std::move(inputs), node.loop->condition,
                                      node.loop->max_iterations, shared_body);
    }
    default:
      return Status::Unsupported(std::string("cannot translate logical kind ") +
                                 OpKindToString(node.kind()));
  }
}

}  // namespace

Result<std::unique_ptr<Plan>> RheemContext::TranslateToPhysical(
    const Plan& logical_plan, std::map<int, std::string>* pins) {
  if (logical_plan.sink() == nullptr) {
    return Status::InvalidPlan("logical plan has no sink");
  }
  // Reachable-from-sink set: Collect() style APIs leave unterminated side
  // branches behind; they are simply not part of this job.
  std::set<int> reachable;
  {
    std::vector<Operator*> work{logical_plan.sink()};
    while (!work.empty()) {
      Operator* op = work.back();
      work.pop_back();
      if (!reachable.insert(op->id()).second) continue;
      for (Operator* in : op->inputs()) work.push_back(in);
    }
  }
  RHEEM_ASSIGN_OR_RETURN(std::vector<Operator*> topo,
                         logical_plan.TopologicalOrder());

  auto physical = std::make_unique<Plan>();
  std::map<int, Operator*> translated;  // logical id -> physical op
  for (Operator* base : topo) {
    if (reachable.count(base->id()) == 0) continue;
    std::vector<Operator*> inputs;
    for (Operator* in : base->inputs()) {
      auto it = translated.find(in->id());
      if (it == translated.end()) {
        return Status::Internal("translation order violated");
      }
      inputs.push_back(it->second);
    }
    Operator* phys = nullptr;
    if (auto* generic = dynamic_cast<GenericLogicalOp*>(base)) {
      RHEEM_ASSIGN_OR_RETURN(phys, TranslateGeneric(*generic,
                                                    std::move(inputs),
                                                    physical.get()));
      if (pins != nullptr && !generic->pinned_platform.empty()) {
        (*pins)[phys->id()] = generic->pinned_platform;
      }
    } else if (auto* logical = dynamic_cast<LogicalOperator*>(base)) {
      // Paper §3.2 (core layer): arbitrary application logical operators get
      // a *wrapper* physical operator that invokes their ApplyOp per data
      // quantum. The logical plan must outlive execution of this job.
      if (logical->arity() != 1) {
        return Status::Unsupported(
            "only unary logical operators can be auto-wrapped; '" +
            logical->name() + "' must be compiled by its application");
      }
      FlatMapUdf wrapper;
      wrapper.meta.selectivity = logical->SelectivityHint();
      wrapper.meta.cost_factor = logical->CostHint();
      wrapper.fn = [logical](const Record& r) {
        std::vector<Record> out;
        Status st = logical->ApplyOp(r, &out);
        if (!st.ok()) out.clear();  // UDF contract: errors drop the quantum
        return out;
      };
      phys = physical->Add<FlatMapOp>(std::move(inputs), std::move(wrapper));
      phys->set_name("Wrapper(" + logical->name() + ")");
    } else {
      return Status::InvalidPlan("plan contains a non-logical operator '" +
                                 base->name() + "'");
    }
    translated[base->id()] = phys;
  }
  physical->SetSink(translated.at(logical_plan.sink()->id()));
  return physical;
}

Result<CompiledJob> RheemContext::Compile(const Plan& logical_plan,
                                          const ExecutionOptions& options) const {
  TraceSpan optimize_span("optimize", "optimizer");
  const uint64_t optimize_id = optimize_span.id();
  CountIfEnabled(MetricsRegistry::Global().counter("optimizer.plans_compiled"),
                 1);

  std::map<int, std::string> pins;
  std::unique_ptr<Plan> physical;
  {
    TraceSpan span("translate", "optimizer", optimize_id);
    RHEEM_ASSIGN_OR_RETURN(physical, TranslateToPhysical(logical_plan, &pins));
  }
  if (options.apply_logical_rewrites) {
    TraceSpan span("rewrite", "optimizer", optimize_id);
    RHEEM_ASSIGN_OR_RETURN(auto stats,
                           ApplicationRewrites::Apply(physical.get(), &pins));
    span.AddTag("rules_applied", static_cast<int64_t>(stats.total()));
  } else {
    RHEEM_ASSIGN_OR_RETURN(auto remap, physical->PruneToSink());
    std::map<int, std::string> updated;
    for (const auto& [old_id, platform] : pins) {
      auto it = remap.find(old_id);
      if (it != remap.end()) updated[it->second] = platform;
    }
    pins = std::move(updated);
  }
  RHEEM_RETURN_IF_ERROR(physical->Validate());

  EstimateMap estimates;
  {
    TraceSpan span("estimate", "optimizer", optimize_id);
    // Learned statistics: recorded cardinalities short-circuit the
    // estimator for every sub-plan a previous job already measured
    // (matched by platform-free fingerprint), so repeat traffic plans
    // with observed numbers instead of static selectivity guesses.
    EstimateMap learned;
    if (stats_ != nullptr) {
      auto fps = ComputeCardinalityFingerprints(*physical);
      if (fps.ok()) {
        for (const auto& [op_id, fp] : *fps) {
          Estimate e;
          if (stats_->LookupCardinality(fp, &e)) learned[op_id] = e;
        }
      }
      span.AddTag("learned", static_cast<int64_t>(learned.size()));
    }
    RHEEM_ASSIGN_OR_RETURN(
        estimates, CardinalityEstimator::Estimate(*physical, learned));
  }
  Enumerator enumerator(&registry_, &movement_);
  EnumeratorOptions eo;
  eo.force_platform = options.force_platform;
  eo.pinned_platforms = pins;
  eo.movement_aware = options.movement_aware;
  eo.stats = stats_.get();
  PlatformAssignment assignment;
  {
    TraceSpan span("enumerate", "optimizer", optimize_id);
    span.AddTag("operators", static_cast<int64_t>(physical->size()));
    RHEEM_ASSIGN_OR_RETURN(assignment, enumerator.Run(*physical, estimates, eo));
  }
  ExecutionPlan eplan;
  {
    TraceSpan span("split_stages", "optimizer", optimize_id);
    RHEEM_ASSIGN_OR_RETURN(
        eplan, StageSplitter::Split(*physical, std::move(assignment)));
    span.AddTag("stages", static_cast<int64_t>(eplan.stages.size()));
  }
  CountIfEnabled(MetricsRegistry::Global().counter("optimizer.stages_planned"),
                 static_cast<int64_t>(eplan.stages.size()));
  // The execution plan carries its estimates and enumeration constraints so
  // the executor can re-optimize mid-job under the same rules it was
  // planned with.
  eplan.estimates = estimates;
  eplan.enum_options = eo;
  CompiledJob job;
  job.physical = std::move(physical);
  job.estimates = std::move(estimates);
  job.eplan = std::move(eplan);
  return job;
}

Result<ExecutionResult> RheemContext::Execute(
    const Plan& logical_plan, const ExecutionOptions& options) const {
  RHEEM_ASSIGN_OR_RETURN(CompiledJob job, Compile(logical_plan, options));
  CrossPlatformExecutor executor(config_);
  if (options.monitor != nullptr) executor.set_monitor(options.monitor);
  executor.EnableFailover(&registry_, &movement_);
  executor.set_stats_catalog(stats_.get());
  auto result = executor.Execute(job.eplan);
  // Direct (non-JobServer) runs flush the trace here, once the job's spans
  // have all closed.
  const std::string trace_path =
      config_.GetString("trace.path", "").ValueOr("");
  if (!trace_path.empty() && Tracer::Global().enabled()) {
    if (Status st = Tracer::Global().WriteChromeTrace(trace_path); !st.ok()) {
      RHEEM_LOG(Warning) << "failed to write trace to " << trace_path << ": "
                         << st.ToString();
    }
  }
  return result;
}

}  // namespace rheem

#ifndef RHEEM_CORE_API_LOGICAL_NODES_H_
#define RHEEM_CORE_API_LOGICAL_NODES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/operators/descriptors.h"
#include "core/operators/physical_ops.h"
#include "core/plan/operator.h"
#include "core/plan/plan.h"
#include "data/dataset.h"

namespace rheem {

class GenericLogicalOp;

/// \brief Loop description carried by Repeat/DoWhile logical nodes: the body
/// is its own logical plan reading LoopState/LoopData marker nodes.
struct LogicalLoopSpec {
  bool is_do_while = false;
  int iterations = 0;               // Repeat
  LoopConditionUdf condition;       // DoWhile
  int max_iterations = 0;           // DoWhile safety bound
  std::shared_ptr<Plan> body;       // plan of GenericLogicalOp nodes
};

/// \brief The application layer's generic operator template used by the
/// fluent DataQuanta API.
///
/// One class covers the whole generic pool: `kind` selects the semantics and
/// the UDF slots carry the user's logic. Applications with richer
/// domain-specific templates (the ML and cleaning apps) subclass
/// LogicalOperator directly instead — this type is merely the built-in
/// application that exposes a dataflow language.
class GenericLogicalOp : public LogicalOperator {
 public:
  explicit GenericLogicalOp(OpKind kind) : kind_(kind) {}

  OpKind kind() const { return kind_; }
  std::string kind_name() const override {
    return std::string("L:") + OpKindToString(kind_);
  }
  int arity() const override;

  /// Per-quantum semantics for quantum-wise kinds (Map/Filter/FlatMap/
  /// Project); set-oriented kinds return Unsupported — they are templates
  /// whose semantics need the whole group/pair context.
  Status ApplyOp(const Record& in, std::vector<Record>* out) override;

  double SelectivityHint() const override;
  double CostHint() const override;

  /// Folds the payload slots that determine semantics beyond the kind —
  /// source data content, projection columns, sample parameters, algorithm
  /// choices, TopK/loop bounds, platform pin, UDF metadata — so the plan
  /// cache never conflates two differently-parameterized queries.
  std::string FingerprintToken() const override;

  /// Human-readable rendering of the declarative payload (predicate /
  /// projection / key expressions, aggregate specs, TopK bounds), or "" when
  /// the operator carries only opaque closures. Used to annotate logical
  /// plan printouts (SQL EXPLAIN, golden tests) the same way
  /// DeclarativeDetail annotates physical plans.
  std::string Detail() const;

  // --- payload slots (filled by the DataQuanta builder) -------------------
  Dataset source_data;
  MapUdf map;
  FlatMapUdf flat_map;
  PredicateUdf predicate;
  KeyUdf key;        // primary key extractor (sort/group/reduce/join-left)
  KeyUdf key2;       // join-right key extractor
  ReduceUdf reduce;
  GroupUdf group;
  BroadcastMapUdf broadcast_map;
  ThetaUdf theta;
  IEJoinSpec iejoin;
  std::vector<int> columns;  // Project
  double fraction = 1.0;     // Sample
  uint64_t seed = 42;        // Sample
  GroupByAlgorithm groupby_algorithm = GroupByAlgorithm::kHash;
  JoinAlgorithm join_algorithm = JoinAlgorithm::kHash;
  int64_t topk = 0;          // TopK
  bool ascending = true;     // TopK direction
  std::shared_ptr<LogicalLoopSpec> loop;
  /// Non-empty: the user pinned this operator to a platform.
  std::string pinned_platform;

 private:
  OpKind kind_;
};

}  // namespace rheem

#endif  // RHEEM_CORE_API_LOGICAL_NODES_H_

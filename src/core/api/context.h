#ifndef RHEEM_CORE_API_CONTEXT_H_
#define RHEEM_CORE_API_CONTEXT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/config.h"
#include "common/result.h"
#include "core/executor/executor.h"
#include "core/executor/monitor.h"
#include "core/mapping/platform.h"
#include "core/optimizer/cardinality.h"
#include "core/optimizer/channel.h"
#include "core/optimizer/stage_splitter.h"
#include "core/plan/plan.h"

namespace rheem {

class JobServer;          // core/service/job_server.h
class JobHandle;
struct JobOptions;
class StatisticsCatalog;  // core/optimizer/stats_catalog.h

namespace storage {
class StorageManager;  // storage/storage_plan.h
class HotDataBuffer;   // storage/hot_buffer.h
}  // namespace storage

namespace sql {
class Catalog;       // core/sql/catalog.h
class SqlStatement;  // core/sql/sql.h
}  // namespace sql

/// Per-job execution knobs consumed by RheemContext::Compile/Execute.
struct ExecutionOptions {
  /// Non-empty: bypass platform choice and run everything here (the
  /// forced-platform baselines of Figure 2 / ablation A1).
  std::string force_platform;
  /// Disable to reproduce a Musketeer-style movement-blind optimizer (A2).
  bool movement_aware = true;
  /// Application-layer rewrites (filter reordering, pushdowns).
  bool apply_logical_rewrites = true;
  /// Optional progress monitor (not owned).
  ExecutionMonitor* monitor = nullptr;
};

/// \brief A fully optimized job: the physical plan, its estimates, and the
/// staged execution plan — kept together because the execution plan points
/// into the physical plan.
struct CompiledJob {
  std::unique_ptr<Plan> physical;
  EstimateMap estimates;
  ExecutionPlan eplan;

  std::string Explain() const { return eplan.Explain(estimates); }
};

/// \brief Entry point tying the three layers together: owns the platform
/// registry, the movement cost model and the configuration; compiles logical
/// plans through the application optimizer (rewrites + translation), the
/// multi-platform optimizer (estimate -> enumerate -> split) and runs them on
/// the Executor.
///
/// Config keys (beyond per-platform ones):
///   rheem.platforms   comma list of default platforms to register
///                     (default "javasim,sparksim,relsim")
///   stats.enabled     (bool, default true): keep a StatisticsCatalog of
///                     observed cardinalities + calibrated cost constants,
///                     fed by every executed job and consulted by Compile
///                     (learned estimates) and the Enumerator (cost
///                     factors).
///   stats.path        (string, default "" = in-memory only): checksummed
///                     stats file loaded at construction (if present) and
///                     saved by JobServer::Shutdown — how the fleet gets
///                     smarter across restarts. Corrupt files are rejected
///                     and counted (`stats_catalog.corrupt_total`), never
///                     partially loaded.
class RheemContext {
 public:
  explicit RheemContext(Config config = Config());
  ~RheemContext();  // drains the lazily created JobServer, if any

  /// Registers the built-in simulated platforms selected by config.
  Status RegisterDefaultPlatforms();

  PlatformRegistry& platforms() { return registry_; }
  const Config& config() const { return config_; }
  Config& mutable_config() { return config_; }
  const MovementCostModel& movement_model() const { return movement_; }

  /// Application optimizer + multi-platform optimizer, no execution.
  Result<CompiledJob> Compile(const Plan& logical_plan,
                              const ExecutionOptions& options = {}) const;

  /// Compile + execute.
  Result<ExecutionResult> Execute(const Plan& logical_plan,
                                  const ExecutionOptions& options = {}) const;

  /// Async convenience over the service layer: submits to this context's
  /// JobServer (created lazily from the `service.*` config keys) and returns
  /// a JobHandle future. The plan is borrowed and must outlive completion.
  /// Callers needing JobOptions/JobHandle include core/service/job_server.h.
  Result<JobHandle> Submit(const Plan& logical_plan);
  Result<JobHandle> Submit(const Plan& logical_plan, const JobOptions& options);

  /// The context's serving layer (lazily created on first use).
  JobServer& job_server();

  /// Compiles a SQL SELECT into a sealed logical plan (core/sql). Tables
  /// resolve through `catalog`, or — in the one-argument form — through the
  /// attached storage layer, where each table is a storage dataset stored
  /// with a schema. Errors carry 1-based "line:col" token positions.
  /// Callers include core/sql/sql.h for SqlStatement.
  Result<sql::SqlStatement> Sql(const std::string& query);
  Result<sql::SqlStatement> Sql(const std::string& query,
                                sql::Catalog& catalog);

  /// Async convenience mirroring Submit(): compiles `query` and submits the
  /// plan to this context's JobServer, which keeps the compiled statement
  /// alive until the job resolves — SQL text is a first-class submission.
  Result<JobHandle> SubmitSql(const std::string& query, sql::Catalog& catalog);

  /// Attaches a storage layer to this context and fronts it with a hot-data
  /// buffer (capacity `storage.hot_buffer_capacity_bytes`, default 256 MiB):
  /// RheemJob::LoadFromStorage calls against this manager are served from
  /// the buffer, so repeated loads skip the backend parse path. The manager
  /// is borrowed and must outlive the context; re-attaching replaces the
  /// previous buffer.
  Status AttachStorage(storage::StorageManager* manager);

  /// The attached manager / its hot-data buffer; nullptr before
  /// AttachStorage.
  storage::StorageManager* storage() const { return storage_; }
  storage::HotDataBuffer* hot_buffer() const { return hot_buffer_.get(); }

  /// The context's learned-statistics catalog; nullptr when `stats.enabled`
  /// is false. Shared by every job compiled or executed through this
  /// context (the catalog is thread-safe).
  StatisticsCatalog* stats_catalog() const { return stats_.get(); }

  /// Translates a logical plan (GenericLogicalOp nodes and/or arbitrary
  /// per-quantum LogicalOperator subclasses, which get wrapper physical
  /// operators) into a physical plan. `pins` receives physical-op-id ->
  /// platform pins collected from the logical nodes. Public because
  /// applications building their own logical operators reuse it.
  static Result<std::unique_ptr<Plan>> TranslateToPhysical(
      const Plan& logical_plan, std::map<int, std::string>* pins);

 private:
  Config config_;
  PlatformRegistry registry_;
  MovementCostModel movement_;
  storage::StorageManager* storage_ = nullptr;  // not owned
  std::unique_ptr<storage::HotDataBuffer> hot_buffer_;
  std::unique_ptr<StatisticsCatalog> stats_;
  std::mutex server_mu_;  // guards lazy creation of server_
  // Declared last: jobs reference the registry's platforms, so the server
  // must drain before anything else is torn down.
  std::unique_ptr<JobServer> server_;
};

}  // namespace rheem

#endif  // RHEEM_CORE_API_CONTEXT_H_

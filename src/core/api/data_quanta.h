#ifndef RHEEM_CORE_API_DATA_QUANTA_H_
#define RHEEM_CORE_API_DATA_QUANTA_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/api/context.h"
#include "core/api/logical_nodes.h"
#include "core/expr/expr.h"
#include "core/executor/executor.h"
#include "data/dataset.h"
#include "storage/storage_plan.h"

namespace rheem {

class RheemContext;
class RheemJob;

/// \brief Fluent handle over a logical operator's output: the built-in
/// dataflow language of the application layer.
///
/// DataQuanta methods append GenericLogicalOp nodes to the enclosing
/// RheemJob's logical plan. Terminal methods (Collect/CollectWithMetrics/
/// Explain) push the plan through the application optimizer, the
/// multi-platform optimizer and the Executor.
///
/// A DataQuanta is a cheap value object; it stays valid as long as its
/// RheemJob does.
class DataQuanta {
 public:
  DataQuanta() = default;

  bool valid() const { return job_ != nullptr && node_ != nullptr; }

  /// Plan-operator id of the node this handle points at (-1 when invalid).
  /// Lets callers that annotate plan printouts — e.g. the SQL frontend
  /// labelling source nodes with table names — address the operator.
  int node_id() const;

  // --- unary transforms ---------------------------------------------------
  DataQuanta Map(std::function<Record(const Record&)> fn,
                 UdfMeta meta = UdfMeta()) const;
  DataQuanta FlatMap(std::function<std::vector<Record>(const Record&)> fn,
                     UdfMeta meta = UdfMeta()) const;
  DataQuanta Filter(std::function<bool(const Record&)> fn,
                    UdfMeta meta = UdfMeta{0.5, 1.0}) const;

  // --- declarative overloads ----------------------------------------------
  // These carry a typed expression tree (core/expr) alongside the compiled
  // closure. Semantics are identical on every platform, but the optimizer
  // can push the predicate down, split conjuncts, estimate selectivity from
  // the tree, and fold the canonical encoding into plan fingerprints —
  // none of which is possible for closure UDFs. An ill-typed expression is
  // reported by the terminal methods (Collect/Seal/Explain), keeping the
  // fluent chain total.

  /// Declarative filter: keeps records where `predicate` (a bool expression)
  /// evaluates to true; Null drops (SQL WHERE semantics).
  DataQuanta Filter(expr::ExprPtr predicate) const;
  /// Declarative projection Map: output field i is `fields[i]` evaluated
  /// over the input record.
  DataQuanta Map(std::vector<expr::ExprPtr> fields) const;
  /// Declarative equi-join on key expressions over each side.
  DataQuanta Join(const DataQuanta& right, expr::ExprPtr left_key,
                  expr::ExprPtr right_key,
                  JoinAlgorithm algorithm = JoinAlgorithm::kHash) const;
  /// Declarative theta join: `pair_predicate` addresses the concatenation
  /// (left ++ right), left fields first.
  DataQuanta ThetaJoin(const DataQuanta& right,
                       expr::ExprPtr pair_predicate) const;

  DataQuanta Project(std::vector<int> columns) const;
  DataQuanta Distinct() const;
  DataQuanta Sort(std::function<Value(const Record&)> key) const;
  DataQuanta Sample(double fraction, uint64_t seed = 42) const;
  DataQuanta ZipWithId() const;

  // --- aggregations ---------------------------------------------------------
  /// `key_distinct_ratio` is the expected #distinct-keys / #records hint.
  DataQuanta ReduceByKey(std::function<Value(const Record&)> key,
                         std::function<Record(const Record&, const Record&)> reduce,
                         double key_distinct_ratio = 0.1) const;
  /// Declarative grouped aggregation: groups by the key expression and
  /// combines records column-wise (output column i is aggs[i].kind over
  /// input column i; aggs[i].column must equal i — pairwise reduction is
  /// positional). Identical results to the closure form, but the optimizer
  /// folds the spec into plan fingerprints and the kernels may run the
  /// whole reduction columnar.
  DataQuanta ReduceByKey(expr::ExprPtr key, std::vector<AggSpec> aggs,
                         double key_distinct_ratio = 0.1) const;
  DataQuanta GroupByKey(
      std::function<Value(const Record&)> key,
      std::function<std::vector<Record>(const Value&, const std::vector<Record>&)> group,
      double key_distinct_ratio = 0.1,
      GroupByAlgorithm algorithm = GroupByAlgorithm::kHash) const;
  DataQuanta GlobalReduce(
      std::function<Record(const Record&, const Record&)> reduce) const;
  DataQuanta Count() const;

  // --- binary ----------------------------------------------------------------
  DataQuanta BroadcastMap(
      const DataQuanta& broadcast,
      std::function<Record(const Record&, const Dataset&)> fn,
      UdfMeta meta = UdfMeta()) const;
  DataQuanta Join(const DataQuanta& right,
                  std::function<Value(const Record&)> left_key,
                  std::function<Value(const Record&)> right_key,
                  JoinAlgorithm algorithm = JoinAlgorithm::kHash) const;
  DataQuanta ThetaJoin(const DataQuanta& right,
                       std::function<bool(const Record&, const Record&)> condition,
                       double selectivity = 0.1) const;
  DataQuanta IEJoin(const DataQuanta& right, IEJoinSpec spec) const;
  DataQuanta Cross(const DataQuanta& right) const;
  DataQuanta Union(const DataQuanta& right) const;
  /// Set intersection / difference with distinct output (Spark semantics).
  DataQuanta Intersect(const DataQuanta& right) const;
  DataQuanta Subtract(const DataQuanta& right) const;
  /// The k records with the smallest (ascending) or largest keys, in order.
  DataQuanta TopK(int64_t k, std::function<Value(const Record&)> key,
                  bool ascending = true) const;
  /// Declarative TopK: orders by a key expression, whose canonical encoding
  /// is folded into plan fingerprints (closure keys are assumed by shape).
  /// `k = INT64_MAX` means "no limit" — a full ORDER BY; the kernels clamp
  /// to the input size. This is what SQL ORDER BY [LIMIT] compiles to.
  DataQuanta TopK(int64_t k, expr::ExprPtr key, bool ascending = true) const;

  // --- iteration --------------------------------------------------------------
  /// Runs `body` for `iterations` rounds. `*this` is the initial state and
  /// `data` the loop-invariant dataset; the body receives DataQuanta for the
  /// current state and the data and returns the next state.
  DataQuanta Repeat(
      int iterations, const DataQuanta& data,
      const std::function<DataQuanta(DataQuanta state, DataQuanta data)>& body)
      const;
  /// Runs `body` while `condition(state, iteration)` holds (bounded by
  /// `max_iterations`).
  DataQuanta DoWhile(
      std::function<bool(const Dataset&, int)> condition, int max_iterations,
      const DataQuanta& data,
      const std::function<DataQuanta(DataQuanta state, DataQuanta data)>& body)
      const;

  /// Pins this operator (and nothing else) to the named platform.
  DataQuanta OnPlatform(const std::string& platform) const;

  // --- terminals ---------------------------------------------------------------
  Result<Dataset> Collect() const;
  /// Appends a Collect sink and returns the job's logical plan WITHOUT
  /// executing — the handoff point for RheemContext::Submit. The plan stays
  /// owned by the RheemJob, which must outlive any submitted jobs.
  Result<Plan*> Seal() const;
  Result<ExecutionResult> CollectWithMetrics() const;
  /// Compiles without executing; returns the multi-stage execution plan
  /// rendered as text.
  Result<std::string> Explain() const;

 private:
  friend class RheemJob;
  DataQuanta(RheemJob* job, GenericLogicalOp* node) : job_(job), node_(node) {}

  GenericLogicalOp* Append(OpKind kind,
                           std::vector<GenericLogicalOp*> inputs) const;

  static std::shared_ptr<LogicalLoopSpec> BuildLoopBody(
      const std::function<DataQuanta(DataQuanta, DataQuanta)>& body);

  RheemJob* job_ = nullptr;
  GenericLogicalOp* node_ = nullptr;
};

/// \brief One logical plan under construction plus its execution options.
class RheemJob {
 public:
  explicit RheemJob(RheemContext* ctx);

  RheemJob(const RheemJob&) = delete;
  RheemJob& operator=(const RheemJob&) = delete;

  /// Starts a dataflow from an in-memory dataset.
  DataQuanta LoadCollection(Dataset data);

  /// Starts a dataflow from a dataset resident on the storage layer —
  /// locating it on whichever backend holds it (the processing/storage
  /// bridge between the paper's two abstractions). When `manager` is the one
  /// attached to the context (RheemContext::AttachStorage), the load is
  /// served through the context's hot-data buffer: repeated loads skip the
  /// backend parse path, and writes through the manager invalidate the
  /// buffered entry.
  Result<DataQuanta> LoadFromStorage(const storage::StorageManager& manager,
                                     const std::string& dataset);

  /// Same, against the context's attached storage layer; errors when no
  /// storage is attached.
  Result<DataQuanta> LoadFromStorage(const std::string& dataset);

  RheemContext* context() const { return ctx_; }
  Plan& logical_plan() { return *plan_; }
  const std::shared_ptr<Plan>& plan_ptr() const { return plan_; }

  /// Execution knobs applied by the terminal methods.
  ExecutionOptions& options() { return options_; }

  /// First error recorded while building the plan (e.g. an ill-typed
  /// declarative expression); terminal methods return it instead of running.
  const Status& build_status() const { return build_status_; }

 private:
  friend class DataQuanta;
  void RecordBuildError(Status status) {
    if (build_status_.ok()) build_status_ = std::move(status);
  }
  // Body-plan constructor used by Repeat/DoWhile.
  RheemJob(RheemContext* ctx, std::shared_ptr<Plan> plan)
      : ctx_(ctx), plan_(std::move(plan)) {}

  RheemContext* ctx_;
  std::shared_ptr<Plan> plan_;
  ExecutionOptions options_;
  Status build_status_ = Status::OK();
};

}  // namespace rheem

#endif  // RHEEM_CORE_API_DATA_QUANTA_H_

#include "core/api/logical_nodes.h"

#include <limits>

#include "core/expr/expr.h"
#include "core/optimizer/fingerprint.h"

namespace rheem {

int GenericLogicalOp::arity() const {
  switch (kind_) {
    case OpKind::kCollectionSource:
    case OpKind::kStageInput:
    case OpKind::kLoopState:
    case OpKind::kLoopData:
      return 0;
    case OpKind::kBroadcastMap:
    case OpKind::kJoin:
    case OpKind::kThetaJoin:
    case OpKind::kIEJoin:
    case OpKind::kCrossProduct:
    case OpKind::kUnion:
    case OpKind::kIntersect:
    case OpKind::kSubtract:
    case OpKind::kRepeat:
    case OpKind::kDoWhile:
      return 2;
    default:
      return 1;
  }
}

Status GenericLogicalOp::ApplyOp(const Record& in, std::vector<Record>* out) {
  switch (kind_) {
    case OpKind::kMap:
      if (!map.fn) return Status::InvalidArgument("Map UDF not set");
      out->push_back(map.fn(in));
      return Status::OK();
    case OpKind::kFlatMap: {
      if (!flat_map.fn) return Status::InvalidArgument("FlatMap UDF not set");
      for (auto& r : flat_map.fn(in)) out->push_back(std::move(r));
      return Status::OK();
    }
    case OpKind::kFilter:
      if (!predicate.fn) return Status::InvalidArgument("Filter UDF not set");
      if (predicate.fn(in)) out->push_back(in);
      return Status::OK();
    case OpKind::kProject:
      out->push_back(in.Project(columns));
      return Status::OK();
    default:
      return Status::Unsupported(
          kind_name() +
          " is a set-oriented template; it has no per-quantum ApplyOp");
  }
}

double GenericLogicalOp::SelectivityHint() const {
  switch (kind_) {
    case OpKind::kMap: return map.meta.selectivity;
    case OpKind::kFlatMap: return flat_map.meta.selectivity;
    case OpKind::kFilter: return predicate.meta.selectivity;
    case OpKind::kSample: return fraction;
    case OpKind::kReduceByKey:
    case OpKind::kGroupByKey:
      return key.meta.selectivity;
    case OpKind::kThetaJoin: return theta.meta.selectivity;
    default: return 1.0;
  }
}

std::string GenericLogicalOp::FingerprintToken() const {
  std::string t = kind_name();
  if (!pinned_platform.empty()) t += "|pin=" + pinned_platform;
  t += "|sel=" + std::to_string(SelectivityHint());
  t += "|cost=" + std::to_string(CostHint());
  switch (kind_) {
    case OpKind::kCollectionSource:
      t += "|data=" + std::to_string(PlanFingerprint::OfDataset(source_data));
      break;
    case OpKind::kFilter:
      // Declarative predicates fold their canonical encoding — including
      // every constant — so two jobs differing only in a predicate literal
      // can never share a plan-cache entry. Closure predicates have no
      // encoding and remain "assumed by shape" (see docs/job_service.md).
      if (predicate.expr != nullptr) {
        t += "|expr=" + expr::Canonical(*predicate.expr);
      }
      break;
    case OpKind::kMap:
      if (!map.projection.empty()) {
        t += "|proj=";
        for (const auto& f : map.projection) {
          t += expr::Canonical(*f) + ";";
        }
      }
      break;
    case OpKind::kThetaJoin:
      if (theta.pair_expr != nullptr) {
        t += "|expr=" + expr::Canonical(*theta.pair_expr);
      }
      break;
    case OpKind::kProject:
      t += "|cols=";
      for (int c : columns) t += std::to_string(c) + ",";
      break;
    case OpKind::kSample:
      t += "|frac=" + std::to_string(fraction) +
           "|seed=" + std::to_string(seed);
      break;
    case OpKind::kReduceByKey:
      // Declarative reductions fold the key expression and the column-wise
      // aggregate spec, so two jobs aggregating the same shape differently
      // (sum vs. max, different key column) never share a cache entry.
      // Closure reductions stay "assumed by shape" like closure filters.
      if (key.expr != nullptr) t += "|key=" + expr::Canonical(*key.expr);
      if (!reduce.aggs.empty()) {
        t += "|aggs=";
        for (const AggSpec& a : reduce.aggs) {
          t += std::string(AggKindToString(a.kind)) + "(" +
               std::to_string(a.column) + ");";
        }
      }
      break;
    case OpKind::kGroupByKey:
      t += groupby_algorithm == GroupByAlgorithm::kHash ? "|hash" : "|sort";
      if (key.expr != nullptr) t += "|key=" + expr::Canonical(*key.expr);
      break;
    case OpKind::kJoin:
      t += join_algorithm == JoinAlgorithm::kHash ? "|hash" : "|merge";
      if (key.expr != nullptr) t += "|lk=" + expr::Canonical(*key.expr);
      if (key2.expr != nullptr) t += "|rk=" + expr::Canonical(*key2.expr);
      break;
    case OpKind::kIEJoin:
      t += "|ie=" + std::to_string(iejoin.left_col1) +
           CompareOpToString(iejoin.op1) + std::to_string(iejoin.right_col1) +
           "&" + std::to_string(iejoin.left_col2) +
           CompareOpToString(iejoin.op2) + std::to_string(iejoin.right_col2);
      break;
    case OpKind::kTopK:
      t += "|k=" + std::to_string(topk) + (ascending ? "|asc" : "|desc");
      // Declarative order keys fold their canonical encoding: two SQL
      // queries differing only in the ORDER BY expression must never share
      // a plan-cache entry.
      if (key.expr != nullptr) t += "|key=" + expr::Canonical(*key.expr);
      break;
    case OpKind::kSort:
      if (key.expr != nullptr) t += "|key=" + expr::Canonical(*key.expr);
      break;
    case OpKind::kRepeat:
    case OpKind::kDoWhile:
      if (loop != nullptr) {
        t += "|iters=" + std::to_string(loop->is_do_while
                                            ? loop->max_iterations
                                            : loop->iterations);
        if (loop->body != nullptr) {
          auto body_fp = PlanFingerprint::Compute(*loop->body);
          t += "|body=" + std::to_string(body_fp.ValueOr(0));
        }
      }
      break;
    default:
      break;
  }
  return t;
}

std::string GenericLogicalOp::Detail() const {
  switch (kind_) {
    case OpKind::kFilter:
      if (predicate.expr != nullptr) {
        return "filter=" + expr::Pretty(*predicate.expr);
      }
      return "";
    case OpKind::kMap: {
      if (map.projection.empty()) return "";
      std::string out = "map=[";
      for (std::size_t i = 0; i < map.projection.size(); ++i) {
        if (i > 0) out += ", ";
        out += expr::Pretty(*map.projection[i]);
      }
      return out + "]";
    }
    case OpKind::kJoin:
      if (key.expr == nullptr || key2.expr == nullptr) return "";
      return "join=(" + expr::Pretty(*key.expr) + ", " +
             expr::Pretty(*key2.expr) + ")";
    case OpKind::kThetaJoin:
      if (theta.pair_expr != nullptr) {
        return "theta=" + expr::Pretty(*theta.pair_expr);
      }
      return "";
    case OpKind::kReduceByKey: {
      if (key.expr == nullptr || reduce.aggs.empty()) return "";
      std::string out = "key=" + expr::Pretty(*key.expr) + " aggs=[";
      for (std::size_t i = 0; i < reduce.aggs.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::string(AggKindToString(reduce.aggs[i].kind)) + "($" +
               std::to_string(reduce.aggs[i].column) + ")";
      }
      return out + "]";
    }
    case OpKind::kTopK: {
      // INT64_MAX is the "no LIMIT" sentinel (full ORDER BY).
      std::string out =
          (topk == std::numeric_limits<int64_t>::max()
               ? std::string("k=all")
               : "k=" + std::to_string(topk)) +
          (ascending ? " asc" : " desc");
      if (key.expr != nullptr) out += " key=" + expr::Pretty(*key.expr);
      return out;
    }
    default:
      return "";
  }
}

double GenericLogicalOp::CostHint() const {
  switch (kind_) {
    case OpKind::kMap: return map.meta.cost_factor;
    case OpKind::kFlatMap: return flat_map.meta.cost_factor;
    case OpKind::kFilter: return predicate.meta.cost_factor;
    case OpKind::kBroadcastMap: return broadcast_map.meta.cost_factor;
    case OpKind::kReduceByKey: return reduce.meta.cost_factor;
    case OpKind::kGroupByKey: return group.meta.cost_factor;
    case OpKind::kThetaJoin: return theta.meta.cost_factor;
    default: return 1.0;
  }
}

}  // namespace rheem

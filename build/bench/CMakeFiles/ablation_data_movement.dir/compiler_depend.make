# Empty compiler generated dependencies file for ablation_data_movement.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_data_movement.dir/ablation_data_movement.cc.o"
  "CMakeFiles/ablation_data_movement.dir/ablation_data_movement.cc.o.d"
  "ablation_data_movement"
  "ablation_data_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_data_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

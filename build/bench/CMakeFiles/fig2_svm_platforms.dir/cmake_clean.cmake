file(REMOVE_RECURSE
  "CMakeFiles/fig2_svm_platforms.dir/fig2_svm_platforms.cc.o"
  "CMakeFiles/fig2_svm_platforms.dir/fig2_svm_platforms.cc.o.d"
  "fig2_svm_platforms"
  "fig2_svm_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_svm_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig2_svm_platforms.
# This may be replaced when dependencies are built.

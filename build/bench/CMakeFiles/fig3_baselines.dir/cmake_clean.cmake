file(REMOVE_RECURSE
  "CMakeFiles/fig3_baselines.dir/fig3_baselines.cc.o"
  "CMakeFiles/fig3_baselines.dir/fig3_baselines.cc.o.d"
  "fig3_baselines"
  "fig3_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig3_baselines.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_groupby.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_groupby.dir/ablation_groupby.cc.o"
  "CMakeFiles/ablation_groupby.dir/ablation_groupby.cc.o.d"
  "ablation_groupby"
  "ablation_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

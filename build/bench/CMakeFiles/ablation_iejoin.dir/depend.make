# Empty dependencies file for ablation_iejoin.
# This may be replaced when dependencies are built.

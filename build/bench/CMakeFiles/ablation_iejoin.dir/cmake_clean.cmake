file(REMOVE_RECURSE
  "CMakeFiles/ablation_iejoin.dir/ablation_iejoin.cc.o"
  "CMakeFiles/ablation_iejoin.dir/ablation_iejoin.cc.o.d"
  "ablation_iejoin"
  "ablation_iejoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iejoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_platform_choice.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_platform_choice.dir/ablation_platform_choice.cc.o"
  "CMakeFiles/ablation_platform_choice.dir/ablation_platform_choice.cc.o.d"
  "ablation_platform_choice"
  "ablation_platform_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_platform_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

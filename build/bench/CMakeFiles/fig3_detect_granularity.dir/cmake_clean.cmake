file(REMOVE_RECURSE
  "CMakeFiles/fig3_detect_granularity.dir/fig3_detect_granularity.cc.o"
  "CMakeFiles/fig3_detect_granularity.dir/fig3_detect_granularity.cc.o.d"
  "fig3_detect_granularity"
  "fig3_detect_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_detect_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_hot_buffer.dir/ablation_hot_buffer.cc.o"
  "CMakeFiles/ablation_hot_buffer.dir/ablation_hot_buffer.cc.o.d"
  "ablation_hot_buffer"
  "ablation_hot_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hot_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

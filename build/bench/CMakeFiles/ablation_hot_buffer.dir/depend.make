# Empty dependencies file for ablation_hot_buffer.
# This may be replaced when dependencies are built.

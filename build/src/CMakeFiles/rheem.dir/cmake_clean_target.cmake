file(REMOVE_RECURSE
  "librheem.a"
)

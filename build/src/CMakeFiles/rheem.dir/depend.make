# Empty dependencies file for rheem.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cleaning/data_gen.cc" "src/CMakeFiles/rheem.dir/apps/cleaning/data_gen.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/cleaning/data_gen.cc.o.d"
  "/root/repo/src/apps/cleaning/operators.cc" "src/CMakeFiles/rheem.dir/apps/cleaning/operators.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/cleaning/operators.cc.o.d"
  "/root/repo/src/apps/cleaning/plan_builder.cc" "src/CMakeFiles/rheem.dir/apps/cleaning/plan_builder.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/cleaning/plan_builder.cc.o.d"
  "/root/repo/src/apps/cleaning/repair.cc" "src/CMakeFiles/rheem.dir/apps/cleaning/repair.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/cleaning/repair.cc.o.d"
  "/root/repo/src/apps/cleaning/rule.cc" "src/CMakeFiles/rheem.dir/apps/cleaning/rule.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/cleaning/rule.cc.o.d"
  "/root/repo/src/apps/cleaning/violation.cc" "src/CMakeFiles/rheem.dir/apps/cleaning/violation.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/cleaning/violation.cc.o.d"
  "/root/repo/src/apps/graph/connected_components.cc" "src/CMakeFiles/rheem.dir/apps/graph/connected_components.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/graph/connected_components.cc.o.d"
  "/root/repo/src/apps/graph/graph.cc" "src/CMakeFiles/rheem.dir/apps/graph/graph.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/graph/graph.cc.o.d"
  "/root/repo/src/apps/graph/pagerank.cc" "src/CMakeFiles/rheem.dir/apps/graph/pagerank.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/graph/pagerank.cc.o.d"
  "/root/repo/src/apps/ml/dataset_gen.cc" "src/CMakeFiles/rheem.dir/apps/ml/dataset_gen.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/ml/dataset_gen.cc.o.d"
  "/root/repo/src/apps/ml/kmeans.cc" "src/CMakeFiles/rheem.dir/apps/ml/kmeans.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/ml/kmeans.cc.o.d"
  "/root/repo/src/apps/ml/ml_operators.cc" "src/CMakeFiles/rheem.dir/apps/ml/ml_operators.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/ml/ml_operators.cc.o.d"
  "/root/repo/src/apps/ml/regression.cc" "src/CMakeFiles/rheem.dir/apps/ml/regression.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/ml/regression.cc.o.d"
  "/root/repo/src/apps/ml/svm.cc" "src/CMakeFiles/rheem.dir/apps/ml/svm.cc.o" "gcc" "src/CMakeFiles/rheem.dir/apps/ml/svm.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/rheem.dir/common/config.cc.o" "gcc" "src/CMakeFiles/rheem.dir/common/config.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/rheem.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/rheem.dir/common/csv.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/rheem.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/rheem.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/rheem.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/rheem.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rheem.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rheem.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/rheem.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/rheem.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/rheem.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/rheem.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/rheem.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/rheem.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/api/context.cc" "src/CMakeFiles/rheem.dir/core/api/context.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/api/context.cc.o.d"
  "/root/repo/src/core/api/data_quanta.cc" "src/CMakeFiles/rheem.dir/core/api/data_quanta.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/api/data_quanta.cc.o.d"
  "/root/repo/src/core/api/logical_nodes.cc" "src/CMakeFiles/rheem.dir/core/api/logical_nodes.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/api/logical_nodes.cc.o.d"
  "/root/repo/src/core/executor/adaptive.cc" "src/CMakeFiles/rheem.dir/core/executor/adaptive.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/executor/adaptive.cc.o.d"
  "/root/repo/src/core/executor/execution_state.cc" "src/CMakeFiles/rheem.dir/core/executor/execution_state.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/executor/execution_state.cc.o.d"
  "/root/repo/src/core/executor/executor.cc" "src/CMakeFiles/rheem.dir/core/executor/executor.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/executor/executor.cc.o.d"
  "/root/repo/src/core/executor/monitor.cc" "src/CMakeFiles/rheem.dir/core/executor/monitor.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/executor/monitor.cc.o.d"
  "/root/repo/src/core/mapping/declarative.cc" "src/CMakeFiles/rheem.dir/core/mapping/declarative.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/mapping/declarative.cc.o.d"
  "/root/repo/src/core/mapping/mapping.cc" "src/CMakeFiles/rheem.dir/core/mapping/mapping.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/mapping/mapping.cc.o.d"
  "/root/repo/src/core/mapping/platform.cc" "src/CMakeFiles/rheem.dir/core/mapping/platform.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/mapping/platform.cc.o.d"
  "/root/repo/src/core/operators/descriptors.cc" "src/CMakeFiles/rheem.dir/core/operators/descriptors.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/operators/descriptors.cc.o.d"
  "/root/repo/src/core/operators/iejoin.cc" "src/CMakeFiles/rheem.dir/core/operators/iejoin.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/operators/iejoin.cc.o.d"
  "/root/repo/src/core/operators/kernels.cc" "src/CMakeFiles/rheem.dir/core/operators/kernels.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/operators/kernels.cc.o.d"
  "/root/repo/src/core/operators/physical_ops.cc" "src/CMakeFiles/rheem.dir/core/operators/physical_ops.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/operators/physical_ops.cc.o.d"
  "/root/repo/src/core/optimizer/cardinality.cc" "src/CMakeFiles/rheem.dir/core/optimizer/cardinality.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/optimizer/cardinality.cc.o.d"
  "/root/repo/src/core/optimizer/channel.cc" "src/CMakeFiles/rheem.dir/core/optimizer/channel.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/optimizer/channel.cc.o.d"
  "/root/repo/src/core/optimizer/cost_learner.cc" "src/CMakeFiles/rheem.dir/core/optimizer/cost_learner.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/optimizer/cost_learner.cc.o.d"
  "/root/repo/src/core/optimizer/cost_model.cc" "src/CMakeFiles/rheem.dir/core/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/optimizer/cost_model.cc.o.d"
  "/root/repo/src/core/optimizer/enumerator.cc" "src/CMakeFiles/rheem.dir/core/optimizer/enumerator.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/optimizer/enumerator.cc.o.d"
  "/root/repo/src/core/optimizer/logical_rewrites.cc" "src/CMakeFiles/rheem.dir/core/optimizer/logical_rewrites.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/optimizer/logical_rewrites.cc.o.d"
  "/root/repo/src/core/optimizer/stage_splitter.cc" "src/CMakeFiles/rheem.dir/core/optimizer/stage_splitter.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/optimizer/stage_splitter.cc.o.d"
  "/root/repo/src/core/plan/operator.cc" "src/CMakeFiles/rheem.dir/core/plan/operator.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/plan/operator.cc.o.d"
  "/root/repo/src/core/plan/plan.cc" "src/CMakeFiles/rheem.dir/core/plan/plan.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/plan/plan.cc.o.d"
  "/root/repo/src/core/plan/plan_printer.cc" "src/CMakeFiles/rheem.dir/core/plan/plan_printer.cc.o" "gcc" "src/CMakeFiles/rheem.dir/core/plan/plan_printer.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/rheem.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/rheem.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/record.cc" "src/CMakeFiles/rheem.dir/data/record.cc.o" "gcc" "src/CMakeFiles/rheem.dir/data/record.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/rheem.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/rheem.dir/data/schema.cc.o.d"
  "/root/repo/src/data/serialization.cc" "src/CMakeFiles/rheem.dir/data/serialization.cc.o" "gcc" "src/CMakeFiles/rheem.dir/data/serialization.cc.o.d"
  "/root/repo/src/data/value.cc" "src/CMakeFiles/rheem.dir/data/value.cc.o" "gcc" "src/CMakeFiles/rheem.dir/data/value.cc.o.d"
  "/root/repo/src/platforms/javasim/javasim_operators.cc" "src/CMakeFiles/rheem.dir/platforms/javasim/javasim_operators.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/javasim/javasim_operators.cc.o.d"
  "/root/repo/src/platforms/javasim/javasim_platform.cc" "src/CMakeFiles/rheem.dir/platforms/javasim/javasim_platform.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/javasim/javasim_platform.cc.o.d"
  "/root/repo/src/platforms/relsim/catalog.cc" "src/CMakeFiles/rheem.dir/platforms/relsim/catalog.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/relsim/catalog.cc.o.d"
  "/root/repo/src/platforms/relsim/expression.cc" "src/CMakeFiles/rheem.dir/platforms/relsim/expression.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/relsim/expression.cc.o.d"
  "/root/repo/src/platforms/relsim/rel_exec.cc" "src/CMakeFiles/rheem.dir/platforms/relsim/rel_exec.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/relsim/rel_exec.cc.o.d"
  "/root/repo/src/platforms/relsim/relsim_operators.cc" "src/CMakeFiles/rheem.dir/platforms/relsim/relsim_operators.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/relsim/relsim_operators.cc.o.d"
  "/root/repo/src/platforms/relsim/relsim_platform.cc" "src/CMakeFiles/rheem.dir/platforms/relsim/relsim_platform.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/relsim/relsim_platform.cc.o.d"
  "/root/repo/src/platforms/relsim/sql.cc" "src/CMakeFiles/rheem.dir/platforms/relsim/sql.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/relsim/sql.cc.o.d"
  "/root/repo/src/platforms/relsim/table.cc" "src/CMakeFiles/rheem.dir/platforms/relsim/table.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/relsim/table.cc.o.d"
  "/root/repo/src/platforms/sparksim/overhead.cc" "src/CMakeFiles/rheem.dir/platforms/sparksim/overhead.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/sparksim/overhead.cc.o.d"
  "/root/repo/src/platforms/sparksim/rdd.cc" "src/CMakeFiles/rheem.dir/platforms/sparksim/rdd.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/sparksim/rdd.cc.o.d"
  "/root/repo/src/platforms/sparksim/scheduler.cc" "src/CMakeFiles/rheem.dir/platforms/sparksim/scheduler.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/sparksim/scheduler.cc.o.d"
  "/root/repo/src/platforms/sparksim/shuffle.cc" "src/CMakeFiles/rheem.dir/platforms/sparksim/shuffle.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/sparksim/shuffle.cc.o.d"
  "/root/repo/src/platforms/sparksim/sparksim_operators.cc" "src/CMakeFiles/rheem.dir/platforms/sparksim/sparksim_operators.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/sparksim/sparksim_operators.cc.o.d"
  "/root/repo/src/platforms/sparksim/sparksim_platform.cc" "src/CMakeFiles/rheem.dir/platforms/sparksim/sparksim_platform.cc.o" "gcc" "src/CMakeFiles/rheem.dir/platforms/sparksim/sparksim_platform.cc.o.d"
  "/root/repo/src/storage/csv_store.cc" "src/CMakeFiles/rheem.dir/storage/csv_store.cc.o" "gcc" "src/CMakeFiles/rheem.dir/storage/csv_store.cc.o.d"
  "/root/repo/src/storage/hot_buffer.cc" "src/CMakeFiles/rheem.dir/storage/hot_buffer.cc.o" "gcc" "src/CMakeFiles/rheem.dir/storage/hot_buffer.cc.o.d"
  "/root/repo/src/storage/kv_store.cc" "src/CMakeFiles/rheem.dir/storage/kv_store.cc.o" "gcc" "src/CMakeFiles/rheem.dir/storage/kv_store.cc.o.d"
  "/root/repo/src/storage/mem_column_store.cc" "src/CMakeFiles/rheem.dir/storage/mem_column_store.cc.o" "gcc" "src/CMakeFiles/rheem.dir/storage/mem_column_store.cc.o.d"
  "/root/repo/src/storage/storage_optimizer.cc" "src/CMakeFiles/rheem.dir/storage/storage_optimizer.cc.o" "gcc" "src/CMakeFiles/rheem.dir/storage/storage_optimizer.cc.o.d"
  "/root/repo/src/storage/storage_plan.cc" "src/CMakeFiles/rheem.dir/storage/storage_plan.cc.o" "gcc" "src/CMakeFiles/rheem.dir/storage/storage_plan.cc.o.d"
  "/root/repo/src/storage/store_op.cc" "src/CMakeFiles/rheem.dir/storage/store_op.cc.o" "gcc" "src/CMakeFiles/rheem.dir/storage/store_op.cc.o.d"
  "/root/repo/src/storage/transformation.cc" "src/CMakeFiles/rheem.dir/storage/transformation.cc.o" "gcc" "src/CMakeFiles/rheem.dir/storage/transformation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

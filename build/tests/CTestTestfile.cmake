# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/platforms_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/cleaning_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")

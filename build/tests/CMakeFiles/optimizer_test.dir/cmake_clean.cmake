file(REMOVE_RECURSE
  "CMakeFiles/optimizer_test.dir/core/cardinality_test.cc.o"
  "CMakeFiles/optimizer_test.dir/core/cardinality_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/core/cost_model_test.cc.o"
  "CMakeFiles/optimizer_test.dir/core/cost_model_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/core/enumerator_test.cc.o"
  "CMakeFiles/optimizer_test.dir/core/enumerator_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/core/rewrites_test.cc.o"
  "CMakeFiles/optimizer_test.dir/core/rewrites_test.cc.o.d"
  "CMakeFiles/optimizer_test.dir/core/stage_splitter_test.cc.o"
  "CMakeFiles/optimizer_test.dir/core/stage_splitter_test.cc.o.d"
  "optimizer_test"
  "optimizer_test.pdb"
  "optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

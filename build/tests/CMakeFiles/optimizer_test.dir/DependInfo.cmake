
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cardinality_test.cc" "tests/CMakeFiles/optimizer_test.dir/core/cardinality_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/core/cardinality_test.cc.o.d"
  "/root/repo/tests/core/cost_model_test.cc" "tests/CMakeFiles/optimizer_test.dir/core/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/core/cost_model_test.cc.o.d"
  "/root/repo/tests/core/enumerator_test.cc" "tests/CMakeFiles/optimizer_test.dir/core/enumerator_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/core/enumerator_test.cc.o.d"
  "/root/repo/tests/core/rewrites_test.cc" "tests/CMakeFiles/optimizer_test.dir/core/rewrites_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/core/rewrites_test.cc.o.d"
  "/root/repo/tests/core/stage_splitter_test.cc" "tests/CMakeFiles/optimizer_test.dir/core/stage_splitter_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/core/stage_splitter_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rheem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/platforms/javasim_test.cc" "tests/CMakeFiles/platforms_test.dir/platforms/javasim_test.cc.o" "gcc" "tests/CMakeFiles/platforms_test.dir/platforms/javasim_test.cc.o.d"
  "/root/repo/tests/platforms/parity_test.cc" "tests/CMakeFiles/platforms_test.dir/platforms/parity_test.cc.o" "gcc" "tests/CMakeFiles/platforms_test.dir/platforms/parity_test.cc.o.d"
  "/root/repo/tests/platforms/relsim_test.cc" "tests/CMakeFiles/platforms_test.dir/platforms/relsim_test.cc.o" "gcc" "tests/CMakeFiles/platforms_test.dir/platforms/relsim_test.cc.o.d"
  "/root/repo/tests/platforms/sparksim_test.cc" "tests/CMakeFiles/platforms_test.dir/platforms/sparksim_test.cc.o" "gcc" "tests/CMakeFiles/platforms_test.dir/platforms/sparksim_test.cc.o.d"
  "/root/repo/tests/platforms/sql_test.cc" "tests/CMakeFiles/platforms_test.dir/platforms/sql_test.cc.o" "gcc" "tests/CMakeFiles/platforms_test.dir/platforms/sql_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rheem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

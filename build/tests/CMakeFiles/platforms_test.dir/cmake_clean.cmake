file(REMOVE_RECURSE
  "CMakeFiles/platforms_test.dir/platforms/javasim_test.cc.o"
  "CMakeFiles/platforms_test.dir/platforms/javasim_test.cc.o.d"
  "CMakeFiles/platforms_test.dir/platforms/parity_test.cc.o"
  "CMakeFiles/platforms_test.dir/platforms/parity_test.cc.o.d"
  "CMakeFiles/platforms_test.dir/platforms/relsim_test.cc.o"
  "CMakeFiles/platforms_test.dir/platforms/relsim_test.cc.o.d"
  "CMakeFiles/platforms_test.dir/platforms/sparksim_test.cc.o"
  "CMakeFiles/platforms_test.dir/platforms/sparksim_test.cc.o.d"
  "CMakeFiles/platforms_test.dir/platforms/sql_test.cc.o"
  "CMakeFiles/platforms_test.dir/platforms/sql_test.cc.o.d"
  "platforms_test"
  "platforms_test.pdb"
  "platforms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

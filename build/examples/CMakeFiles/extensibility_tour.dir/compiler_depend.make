# Empty compiler generated dependencies file for extensibility_tour.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/extensibility_tour.dir/extensibility_tour.cpp.o"
  "CMakeFiles/extensibility_tour.dir/extensibility_tour.cpp.o.d"
  "extensibility_tour"
  "extensibility_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensibility_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

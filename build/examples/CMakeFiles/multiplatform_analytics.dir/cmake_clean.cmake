file(REMOVE_RECURSE
  "CMakeFiles/multiplatform_analytics.dir/multiplatform_analytics.cpp.o"
  "CMakeFiles/multiplatform_analytics.dir/multiplatform_analytics.cpp.o.d"
  "multiplatform_analytics"
  "multiplatform_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplatform_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

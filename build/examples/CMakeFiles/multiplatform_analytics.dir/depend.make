# Empty dependencies file for multiplatform_analytics.
# This may be replaced when dependencies are built.

// Network service tour: the job service reached over TCP.
//
// Starts a NetServer on an ephemeral loopback port with auth tokens and a
// per-tenant quota, then walks the whole protocol from the client side:
// HELLO with a token, SQL submission, polling, paged result streaming, an
// admission refusal, a rejected credential, and a drained shutdown. The
// wire format is docs/service_protocol.md; the same client drives the
// multi-process soak in bench/service_soak.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/service/net/client.h"
#include "core/service/net/server.h"
#include "core/sql/catalog.h"

using rheem::Config;
using rheem::Dataset;
using rheem::Record;
using rheem::RheemContext;
using rheem::Schema;
using rheem::Status;
using rheem::Value;
using rheem::ValueType;

int main() {
  // --- server side ---------------------------------------------------------
  Config config;
  config.Set("service.net.auth_tokens", "sesame=analytics");
  config.SetInt("service.net.page_bytes", 512);  // tiny pages for the demo
  RheemContext ctx(config);
  if (Status st = ctx.RegisterDefaultPlatforms(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  rheem::sql::InMemoryCatalog catalog;
  std::vector<Record> rows;
  for (int64_t i = 0; i < 100; ++i) {
    rows.push_back(Record({Value(i), Value("item-" + std::to_string(i)),
                           Value(static_cast<double>(i) * 1.5)}));
  }
  Dataset items(std::move(rows), Schema::Of({{"id", ValueType::kInt64},
                                             {"name", ValueType::kString},
                                             {"price", ValueType::kDouble}}));
  if (Status st = catalog.Register("items", items); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  rheem::net::NetServer server(&ctx, &catalog);
  auto port = server.Start(0);  // 0 = pick an ephemeral port
  if (!port.ok()) {
    std::fprintf(stderr, "%s\n", port.status().ToString().c_str());
    return 1;
  }
  std::printf("== server listening on 127.0.0.1:%d ==\n\n", *port);

  // --- a credential the server has never heard of --------------------------
  {
    rheem::net::Client intruder;
    Status st = intruder.Connect("127.0.0.1", *port, "guess");
    std::printf("wrong token      -> %s\n", st.ToString().c_str());
  }

  // --- the happy path ------------------------------------------------------
  rheem::net::Client client;
  if (Status st = client.Connect("127.0.0.1", *port, "sesame"); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("HELLO            -> session %llu, tenant '%s'\n",
              static_cast<unsigned long long>(client.session_id()),
              client.tenant().c_str());

  Schema schema;
  auto job = client.SubmitSql(
      "SELECT name, price FROM items WHERE price > 100", 0, &schema);
  if (!job.ok()) {
    std::fprintf(stderr, "%s\n", job.status().ToString().c_str());
    return 1;
  }
  std::printf("SUBMIT           -> job %llu, %zu columns\n",
              static_cast<unsigned long long>(*job), schema.num_fields());

  auto status = client.WaitDone(*job);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.status().ToString().c_str());
    return 1;
  }
  std::printf("POLL             -> done, %llu rows in %llu pages\n",
              static_cast<unsigned long long>(status->rows),
              static_cast<unsigned long long>(status->pages));

  std::size_t fetched = 0;
  bool last = false;
  for (uint64_t page = 0; !last; ++page) {
    auto chunk = client.FetchPage(*job, page, &last);
    if (!chunk.ok()) {
      std::fprintf(stderr, "%s\n", chunk.status().ToString().c_str());
      return 1;
    }
    fetched += chunk->size();
    std::printf("FETCH page %llu    -> %zu rows%s\n",
                static_cast<unsigned long long>(page), chunk->size(),
                last ? " (last)" : "");
  }
  std::printf("streamed %zu rows through %llu bounded pages\n\n", fetched,
              static_cast<unsigned long long>(status->pages));

  // --- a bad query costs the connection nothing ----------------------------
  auto bad = client.SubmitSql("SELECT nothing FROM nowhere");
  std::printf("bad SQL          -> %s\n", bad.status().ToString().c_str());

  // --- errors the engine would raise in-process arrive as ERROR frames -----
  auto expired = client.SubmitSql("SELECT * FROM items", /*deadline_ms=*/-1);
  if (expired.ok()) {
    auto st = client.WaitDone(*expired);
    if (st.ok()) {
      std::printf("expired deadline -> status code %d (%s)\n",
                  static_cast<int>(st->code), st->message.c_str());
    }
  }

  if (Status st = client.Bye(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("BYE              -> session closed\n");

  // --- drain: finish everything, then stop listening -----------------------
  server.Shutdown(/*drain=*/true);
  auto stats = server.stats();
  std::printf("\n== drained: %lld sessions served, %lld submissions, "
              "%lld pages streamed, %lld auth failures ==\n",
              static_cast<long long>(stats.sessions_opened),
              static_cast<long long>(stats.submits),
              static_cast<long long>(stats.pages_served),
              static_cast<long long>(stats.auth_failures));
  return 0;
}

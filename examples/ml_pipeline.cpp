// ML application walkthrough (paper §2, Figure 2 scenario): the same SVM
// expressed once against the ML operator templates runs unchanged on the
// plain in-process platform and on the cluster-style platform — and the
// optimizer picks the right one per dataset size. Also trains k-means and a
// logistic regression to show the Initialize/Process/Loop templates cover
// the paper's Example 1 algorithm list.

#include <cstdio>

#include "apps/ml/dataset_gen.h"
#include "apps/ml/kmeans.h"
#include "apps/ml/regression.h"
#include "apps/ml/svm.h"

using namespace rheem;  // example code; library code never does this

int main() {
  RheemContext ctx;
  if (auto st = ctx.RegisterDefaultPlatforms(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("== SVM: one implementation, any platform ==\n");
  for (int64_t rows : {500, 50000}) {
    Dataset data = ml::GenerateClassification(rows, 10, 42);
    for (const char* platform : {"javasim", "sparksim", ""}) {
      ml::SvmOptions options;
      options.iterations = 30;
      options.force_platform = platform;
      auto result = ml::TrainSvm(&ctx, data, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      auto acc = ml::SvmAccuracy(result->model, data);
      std::printf("  rows=%-6lld platform=%-9s time=%8.1f ms accuracy=%.3f\n",
                  static_cast<long long>(rows),
                  platform[0] == '\0' ? "optimizer" : platform,
                  result->metrics.TotalSeconds() * 1e3, acc.ValueOr(0.0));
    }
  }

  std::printf("\n== K-means (GetCentroid/SetCentroids with the GroupBy "
              "enhancer, paper 3.2) ==\n");
  Dataset points = ml::GenerateClusters(2000, 4, 3, 7);
  ml::KMeansOptions km;
  km.k = 4;
  km.iterations = 12;
  auto clusters = ml::TrainKMeans(&ctx, points, km);
  if (!clusters.ok()) {
    std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
    return 1;
  }
  auto cost = ml::KMeansCost(clusters->centroids, points);
  std::printf("  k=%d  cost=%.1f  time=%.1f ms\n", km.k, cost.ValueOr(-1),
              clusters->metrics.TotalSeconds() * 1e3);
  for (std::size_t c = 0; c < clusters->centroids.size(); ++c) {
    std::printf("  centroid %zu: (", c);
    for (std::size_t d = 0; d < clusters->centroids[c].size(); ++d) {
      std::printf("%s%.2f", d ? ", " : "", clusters->centroids[c][d]);
    }
    std::printf(")\n");
  }

  std::printf("\n== Logistic regression on the same templates ==\n");
  Dataset labeled = ml::GenerateClassification(3000, 5, 11);
  ml::RegressionOptions lr;
  lr.iterations = 60;
  lr.learning_rate = 0.5;
  auto logistic = ml::TrainLogisticRegression(&ctx, labeled, lr);
  if (!logistic.ok()) {
    std::fprintf(stderr, "%s\n", logistic.status().ToString().c_str());
    return 1;
  }
  std::printf("  accuracy=%.3f  time=%.1f ms\n",
              ml::LogisticAccuracy(logistic->model, labeled).ValueOr(0),
              logistic->metrics.TotalSeconds() * 1e3);
  return 0;
}

// BigDansing on RHEEM (paper §5): rule-based violation detection over an
// employee/tax table with planted errors, the three detection strategies of
// Figure 3 (single Detect UDF, operator pipeline, pipeline + IEJoin), and
// equivalence-class repair of the FD violations.

#include <cstdio>

#include "apps/cleaning/data_gen.h"
#include "apps/cleaning/plan_builder.h"
#include "apps/cleaning/repair.h"

using namespace rheem;  // example code; library code never does this
using namespace rheem::cleaning;

int main() {
  RheemContext ctx;
  if (auto st = ctx.RegisterDefaultPlatforms(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  TaxTableOptions gen;
  gen.rows = 4000;
  gen.fd_noise_rate = 0.03;
  gen.ineq_noise_rate = 0.01;
  Dataset table = GenerateTaxTable(gen);
  std::printf("table: %zu rows, schema %s\n\n", table.size(),
              TaxTableSchema().ToString().c_str());

  // --- phi1: FD zip -> city ------------------------------------------------
  FdRule phi1 = ZipCityRule();
  std::printf("== %s (FD zip -> city) ==\n", phi1.id().c_str());
  for (DetectStrategy strategy :
       {DetectStrategy::kMonolithicUdf, DetectStrategy::kOperatorPipeline}) {
    DetectOptions options;
    options.strategy = strategy;
    auto report = DetectViolations(&ctx, table, phi1, options);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-18s %5zu violations in %8.1f ms\n",
                DetectStrategyToString(strategy), report->violations.size(),
                report->metrics.TotalSeconds() * 1e3);
  }

  // Repair the FD violations by majority vote per equivalence class.
  DetectOptions pipeline;
  auto report = DetectViolations(&ctx, table, phi1, pipeline);
  auto fixes = GenerateFdFixes(table, phi1, report->violations);
  if (!fixes.ok()) {
    std::fprintf(stderr, "%s\n", fixes.status().ToString().c_str());
    return 1;
  }
  auto repaired = ApplyFixes(table, *fixes);
  auto after = DetectViolationsBruteForce(*repaired, phi1);
  std::printf(
      "  repair: %zu fixes over %zu tuples; violations after repair: %zu\n\n",
      fixes->size(), CountFixedTuples(*fixes), after->size());

  // --- phi2: inequality DC salary/tax --------------------------------------
  IneqRule phi2 = SalaryTaxRule();
  std::printf("== %s (salary > salary' AND tax < tax') ==\n", phi2.id().c_str());
  for (DetectStrategy strategy :
       {DetectStrategy::kMonolithicUdf, DetectStrategy::kOperatorPipeline,
        DetectStrategy::kOperatorPipelineIEJoin}) {
    DetectOptions options;
    options.strategy = strategy;
    auto r = DetectViolations(&ctx, table, phi2, options);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-18s %5zu violations in %8.1f ms\n",
                DetectStrategyToString(strategy), r->violations.size(),
                r->metrics.TotalSeconds() * 1e3);
  }
  std::printf(
      "\nThe IEJoin strategy is the paper's extensibility story: a new\n"
      "physical operator plugged into the pool makes the same rule orders of\n"
      "magnitude faster (see bench/fig3_baselines).\n");
  return 0;
}

// The graph application (paper §5 mentions it as the third application under
// construction): PageRank and connected components expressed on RHEEM's loop
// operators, with the same code running on either processing platform.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/graph/connected_components.h"
#include "apps/graph/graph.h"
#include "apps/graph/pagerank.h"

using namespace rheem;  // example code; library code never does this
using namespace rheem::graph;

int main() {
  RheemContext ctx;
  if (auto st = ctx.RegisterDefaultPlatforms(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  EdgeList web = GenerateRandomGraph(200, 4.0, 3);
  std::printf("graph: %lld nodes, %zu edges\n\n",
              static_cast<long long>(web.num_nodes), web.edges.size());

  PageRankOptions pr;
  pr.iterations = 15;
  auto ranks = ComputePageRank(&ctx, web, pr);
  if (!ranks.ok()) {
    std::fprintf(stderr, "%s\n", ranks.status().ToString().c_str());
    return 1;
  }
  std::vector<std::pair<double, int64_t>> top;
  for (const auto& [node, rank] : ranks->ranks) top.emplace_back(rank, node);
  std::sort(top.rbegin(), top.rend());
  std::printf("--- top 5 PageRank nodes (%.1f ms) ---\n",
              ranks->metrics.TotalSeconds() * 1e3);
  for (int i = 0; i < 5 && i < static_cast<int>(top.size()); ++i) {
    std::printf("  node %-4lld rank %.5f\n",
                static_cast<long long>(top[i].second), top[i].first);
  }

  EdgeList clusters = GenerateCliques(4, 6);
  ConnectedComponentsOptions cc;
  cc.iterations = 8;
  auto comps = ComputeConnectedComponents(&ctx, clusters, cc);
  if (!comps.ok()) {
    std::fprintf(stderr, "%s\n", comps.status().ToString().c_str());
    return 1;
  }
  std::map<int64_t, int64_t> sizes;
  for (const auto& [node, comp] : comps->components) ++sizes[comp];
  std::printf("\n--- connected components of 4 cliques (%.1f ms) ---\n",
              comps->metrics.TotalSeconds() * 1e3);
  for (const auto& [comp, size] : sizes) {
    std::printf("  component %-3lld size %lld\n",
                static_cast<long long>(comp), static_cast<long long>(size));
  }
  return 0;
}

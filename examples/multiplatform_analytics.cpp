// The paper's motivating pipeline (§1, the Oil & Gas story): heterogeneous
// data lands in different stores, a relational aggregation cleans and
// reduces it, and an ML model trains on the result — with RHEEM placing each
// part on the platform that suits it and the storage layer deciding where
// the datasets live.

#include <cstdio>

#include "apps/ml/svm.h"
#include "common/rng.h"
#include "core/api/data_quanta.h"
#include "storage/csv_store.h"
#include "storage/hot_buffer.h"
#include "storage/kv_store.h"
#include "storage/mem_column_store.h"
#include "storage/storage_optimizer.h"

using namespace rheem;  // example code; library code never does this

namespace {

/// Synthetic downhole sensor readings: (well id, pressure, temperature,
/// label) where the label says whether the interval turned out productive.
Dataset SensorReadings(int64_t rows) {
  Rng rng(2026);
  std::vector<Record> out;
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t well = rng.NextInt(0, 49);
    const bool productive = rng.NextBool(0.5);
    const double pressure = 200.0 + (productive ? 40 : -40) + 10 * rng.NextGaussian();
    const double temperature = 80.0 + (productive ? 15 : -15) + 5 * rng.NextGaussian();
    out.push_back(Record({Value(well), Value(pressure), Value(temperature),
                          Value(productive ? 1.0 : -1.0)}));
  }
  return Dataset(std::move(out));
}

}  // namespace

int main() {
  // Observability on: process metrics plus a Chrome trace_event file that
  // chrome://tracing or https://ui.perfetto.dev can open directly. See
  // docs/observability.md for the span taxonomy and metric names.
  Config config;
  config.SetBool("metrics.enabled", true);
  config.Set("trace.path", "/tmp/rheem_multiplatform_trace.json");
  RheemContext ctx(config);
  if (auto st = ctx.RegisterDefaultPlatforms(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // --- storage layer: profile-driven placement -----------------------------
  storage::StorageManager storage_manager;
  (void)storage_manager.RegisterBackend(std::make_unique<storage::MemColumnStore>());
  (void)storage_manager.RegisterBackend(
      std::make_unique<storage::CsvStore>("/tmp/rheem_example_store"));
  (void)storage_manager.RegisterBackend(std::make_unique<storage::KvStore>(0));
  storage::StorageOptimizer storage_optimizer(&storage_manager);

  Dataset readings = SensorReadings(30000);
  storage::AccessProfile profile;
  profile.scan_frequency = 10.0;        // analytics scan it over and over
  profile.column_subset_access = true;  // mostly pressure+temperature
  profile.hot_columns = {1, 2};
  auto splan = storage_optimizer.Plan("sensor_readings", profile);
  if (!splan.ok()) {
    std::fprintf(stderr, "%s\n", splan.status().ToString().c_str());
    return 1;
  }
  std::printf("--- storage plan chosen from the access profile ---\n%s\n",
              splan->ToString().c_str());
  (void)storage_manager.Execute(*splan, readings);

  storage::HotDataBuffer hot(&storage_manager, 1LL << 30);
  Dataset working = *hot.Load("sensor_readings").ValueOrDie();

  // --- processing layer: relational prefix + ML core -----------------------
  // Per-well averages via keyed aggregation (a relational-friendly subplan),
  // then an SVM over the per-reading features.
  // The feature map and the aggregation are pinned to different platforms
  // here so the tour reliably produces a cross-platform job — the emitted
  // trace then shows javasim and sparksim stages side by side.
  RheemJob job(&ctx);
  auto per_well =
      job.LoadCollection(working)
          .Map([](const Record& r) {
            return Record({r[0], r[1], r[2], Value(int64_t{1})});
          })
          .OnPlatform("javasim")
          .ReduceByKey(
              [](const Record& r) { return r[0]; },
              [](const Record& a, const Record& b) {
                return Record({a[0], Value(a[1].ToDoubleOr(0) + b[1].ToDoubleOr(0)),
                               Value(a[2].ToDoubleOr(0) + b[2].ToDoubleOr(0)),
                               Value(a[3].ToInt64Or(0) + b[3].ToInt64Or(0))});
              },
              /*key_distinct_ratio=*/0.002)
          .OnPlatform("sparksim")
          .Map([](const Record& r) {
            const double n = static_cast<double>(r[3].ToInt64Or(1));
            return Record({r[0], Value(r[1].ToDoubleOr(0) / n),
                           Value(r[2].ToDoubleOr(0) / n)});
          });
  if (auto plan = per_well.Explain(); plan.ok()) {
    std::printf("--- per-well aggregation plan ---\n%s\n", plan->c_str());
  }
  auto aggregates = per_well.CollectWithMetrics();
  std::printf("per-well aggregates: %zu wells\n\n",
              aggregates.ok() ? aggregates->output.size() : 0);
  if (aggregates.ok() && !aggregates->report.empty()) {
    std::printf("--- per-well job, as executed ---\n%s\n",
                aggregates->report.c_str());
  }

  // Reshape to (label, features) and train the productivity classifier.
  std::vector<Record> training;
  for (const Record& r : working.records()) {
    training.push_back(Record({r[3], Value(std::vector<double>{
                                  r[1].ToDoubleOr(0) / 100.0,
                                  r[2].ToDoubleOr(0) / 100.0})}));
  }
  ml::SvmOptions svm;
  svm.iterations = 40;
  auto model = ml::TrainSvm(&ctx, Dataset(std::move(training)), svm);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("--- productivity classifier ---\n");
  std::printf("trained in %.1f ms (%s)\n",
              model->metrics.TotalSeconds() * 1e3,
              model->metrics.jobs_run > 20 ? "cluster platform"
                                           : "in-process platform");
  std::printf("hot buffer: %lld hit(s), %lld miss(es)\n",
              static_cast<long long>(hot.hits()),
              static_cast<long long>(hot.misses()));
  std::printf("\nexecution trace written to /tmp/rheem_multiplatform_trace.json"
              " (open with chrome://tracing or ui.perfetto.dev)\n");
  return 0;
}

// Tour of the paper's §8 research-agenda features as implemented here:
//  1. a platform added from a declarative text spec (challenge 1),
//  2. the SQL frontend on the relational engine (§3.2),
//  3. adaptive re-optimization driven by execution monitoring (§4.2),
//  4. cost-model calibration from observed runs (challenge 2).

#include <cstdio>

#include "common/rng.h"
#include "core/api/data_quanta.h"
#include "core/executor/adaptive.h"
#include "core/mapping/declarative.h"
#include "core/optimizer/cost_learner.h"
#include "platforms/relsim/sql.h"

using namespace rheem;  // example code; library code never does this

int main() {
  RheemContext ctx;
  if (auto st = ctx.RegisterDefaultPlatforms(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // --- 1. declare a platform in text, no optimizer changes -----------------
  const char* spec = R"(
platform turbo
turbo maps CollectionSource to TurboScan
turbo maps Filter to TurboFilter weight 0.5 context "vectorized predicates"
turbo maps ReduceByKey to TurboAggregate weight 0.4
turbo maps Collect to TurboFetch
turbo cost per_quantum_us 0.005
turbo cost parallelism 4
turbo cost stage_overhead_us 100
)";
  if (auto st = RegisterDeclaredPlatforms(spec, &ctx.platforms()); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  Rng rng(7);
  std::vector<Record> rows;
  for (int i = 0; i < 5000; ++i) {
    rows.push_back(Record({Value(rng.NextInt(0, 9)), Value(rng.NextInt(0, 99))}));
  }
  RheemJob job(&ctx);
  auto agg = job.LoadCollection(Dataset(rows))
                 .Filter([](const Record& r) { return r[1].ToInt64Or(0) > 10; },
                         UdfMeta::Selective(0.9))
                 .ReduceByKey([](const Record& r) { return r[0]; },
                              [](const Record& a, const Record& b) {
                                return Record({a[0], Value(a[1].ToInt64Or(0) +
                                                           b[1].ToInt64Or(0))});
                              });
  std::printf("--- plan with the declared 'turbo' platform in the mix ---\n%s\n",
              agg.Explain().ValueOr("?").c_str());

  // --- 2. the SQL frontend over relsim --------------------------------------
  relsim::Catalog catalog;
  relsim::Table readings(Schema::Of({Field{"well", ValueType::kInt64},
                                     Field{"pressure", ValueType::kDouble}}));
  for (int i = 0; i < 200; ++i) {
    (void)readings.AppendRow(Record({Value(i % 5),
                                     Value(150.0 + rng.NextGaussian() * 30)}));
  }
  (void)catalog.Register("readings", std::move(readings));
  const char* query =
      "SELECT well, COUNT(*) AS n, AVG(pressure) AS avg_p FROM readings "
      "WHERE pressure > 140 GROUP BY well ORDER BY avg_p DESC LIMIT 3";
  std::printf("--- SQL: %s ---\n", query);
  auto table = relsim::ExecuteSql(catalog, query);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", table->ToString().c_str());

  // --- 3. adaptive re-optimization ------------------------------------------
  Plan plan;
  std::vector<Record> big;
  for (int i = 0; i < 40000; ++i) big.push_back(Record({Value(i)}));
  auto* src = plan.Add<CollectionSourceOp>({}, Dataset(std::move(big)));
  PredicateUdf lying;
  lying.fn = [](const Record&) { return true; };
  lying.meta.selectivity = 0.001;  // wrong by 1000x
  auto* filter = plan.Add<FilterOp>({src}, lying);
  MapUdf heavy;
  heavy.fn = [](const Record& r) {
    double x = r[0].ToDoubleOr(0);
    for (int k = 0; k < 300; ++k) x = x * 1.000001 + 0.5;
    return Record({Value(x)});
  };
  heavy.meta.cost_factor = 300.0;
  auto* map = plan.Add<MapOp>({filter}, heavy);
  plan.SetSink(plan.Add<CollectOp>({map}));
  AdaptiveOptions adaptive_options;
  adaptive_options.enumerator.pinned_platforms[src->id()] = "relsim";
  adaptive_options.enumerator.pinned_platforms[filter->id()] = "relsim";
  AdaptiveExecutor adaptive(&ctx.platforms(), &ctx.movement_model());
  auto adapted = adaptive.Execute(plan, adaptive_options);
  if (!adapted.ok()) {
    std::fprintf(stderr, "%s\n", adapted.status().ToString().c_str());
    return 1;
  }
  std::printf("--- adaptive execution ---\n");
  for (const std::string& d : adapted->decisions) {
    std::printf("  %s\n", d.c_str());
  }
  std::printf("  %d re-optimization(s), %zu records out\n\n",
              adapted->reoptimizations, adapted->output.size());

  // --- 4. cost calibration ---------------------------------------------------
  CostCalibrator calibrator;
  calibrator.Observe("javasim", /*estimated=*/1000.0, /*actual=*/2400.0);
  calibrator.Observe("javasim", 500.0, 1300.0);
  calibrator.Observe("sparksim", 8000.0, 7600.0);
  std::printf("--- %s", calibrator.Report().c_str());
  Config suggested = calibrator.SuggestConfig(
      {{"javasim", 0.03}, {"sparksim", 0.03}});
  std::printf("suggested javasim.per_quantum_us = %.4f (was 0.0300)\n",
              suggested.GetDouble("javasim.per_quantum_us", 0).ValueOr(0));
  return 0;
}

// SQL over attached storage, end to end: two CSV-backed tables, queried with
// SELECT / JOIN / GROUP BY through the core SQL frontend. The compiled plans
// are ordinary logical plans — the optimizer's pushdown, platform choice, and
// plan cache all apply with no SQL-specific code. Submitting the same query
// twice (in two spellings) demonstrates that cache fingerprints fold the
// compiled plan, not the SQL text.
//
// Build: cmake --build build --target sql_analytics
// Run:   ./build/examples/sql_analytics

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/api/context.h"
#include "core/service/job_server.h"
#include "core/sql/sql.h"
#include "storage/csv_store.h"
#include "storage/storage_plan.h"

using namespace rheem;  // NOLINT

namespace {

Dataset Orders() {
  std::vector<Record> rows;
  const char* regions[] = {"north", "south", "east", "west"};
  for (int i = 0; i < 400; ++i) {
    rows.push_back(Record({
        Value(static_cast<int64_t>(i)),            // order id
        Value(static_cast<int64_t>(i % 23)),       // customer id
        Value(std::string(regions[i % 4])),        // region
        Value(10.0 + (i * 7 % 90)),                // amount
    }));
  }
  return Dataset(std::move(rows),
                 Schema::Of({{"id", ValueType::kInt64},
                             {"customer", ValueType::kInt64},
                             {"region", ValueType::kString},
                             {"amount", ValueType::kDouble}}));
}

Dataset Customers() {
  std::vector<Record> rows;
  for (int i = 0; i < 23; ++i) {
    rows.push_back(Record({
        Value(static_cast<int64_t>(i)),
        Value("customer-" + std::to_string(i)),
        Value(static_cast<int64_t>(i % 3)),  // tier
    }));
  }
  return Dataset(std::move(rows),
                 Schema::Of({{"id", ValueType::kInt64},
                             {"name", ValueType::kString},
                             {"tier", ValueType::kInt64}}));
}

int Fail(const Status& st) {
  std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  RheemContext ctx;
  if (auto st = ctx.RegisterDefaultPlatforms(); !st.ok()) return Fail(st);

  // --- storage: two real CSV files, schemas persisted in the header --------
  storage::StorageManager manager;
  (void)manager.RegisterBackend(
      std::make_unique<storage::CsvStore>("/tmp/rheem_sql_example"));
  auto* backend = manager.Backend("csv-files").ValueOrDie();
  if (auto st = backend->Put("orders", Orders()); !st.ok()) return Fail(st);
  if (auto st = backend->Put("customers", Customers()); !st.ok())
    return Fail(st);
  if (auto st = ctx.AttachStorage(&manager); !st.ok()) return Fail(st);

  // --- a filter + projection -----------------------------------------------
  auto big = ctx.Sql(
      "SELECT id, amount * 1.08 AS gross FROM orders "
      "WHERE amount > 80 AND region <> 'west' "
      "ORDER BY gross DESC LIMIT 5");
  if (!big.ok()) return Fail(big.status());
  std::printf("--- top gross orders: compiled plan ---\n%s",
              big->PlanText().c_str());
  auto big_rows = big->Collect();
  if (!big_rows.ok()) return Fail(big_rows.status());
  for (const Record& r : big_rows->records()) {
    std::printf("  %s\n", r.ToString().c_str());
  }

  // --- JOIN + GROUP BY ------------------------------------------------------
  auto per_tier = ctx.Sql(
      "SELECT c.tier, SUM(o.amount) AS revenue, COUNT(*) AS orders "
      "FROM orders AS o JOIN customers AS c ON o.customer = c.id "
      "GROUP BY c.tier ORDER BY revenue DESC");
  if (!per_tier.ok()) return Fail(per_tier.status());
  std::printf("\n--- revenue per customer tier: compiled plan ---\n%s",
              per_tier->PlanText().c_str());
  auto tier_rows = per_tier->Collect();
  if (!tier_rows.ok()) return Fail(tier_rows.status());
  for (const Record& r : tier_rows->records()) {
    std::printf("  %s\n", r.ToString().c_str());
  }

  // --- the plan cache sees through spelling --------------------------------
  // Submit one query twice through the JobServer: once as written, once
  // re-spelled (case, whitespace). The second submission hits the plan
  // cache because fingerprints fold the compiled plan, never the SQL text.
  sql::StorageCatalog catalog;
  const auto before = ctx.job_server().stats().cache;
  auto first = ctx.SubmitSql(
      "SELECT region, SUM(amount) AS total FROM orders GROUP BY region",
      catalog);
  if (!first.ok()) return Fail(first.status());
  if (auto r = first->Wait(); !r.ok()) return Fail(r.status());
  auto second = ctx.SubmitSql(
      "select REGION,\n  sum(AMOUNT) as total\nfrom ORDERS group by REGION",
      catalog);
  if (!second.ok()) return Fail(second.status());
  auto r2 = second->Wait();
  if (!r2.ok()) return Fail(r2.status());
  const auto after = ctx.job_server().stats().cache;
  std::printf("\n--- plan cache across two spellings of one query ---\n");
  std::printf("  hits before: %lld  after: %lld (the re-spelled query %s)\n",
              static_cast<long long>(before.hits),
              static_cast<long long>(after.hits),
              after.hits > before.hits ? "hit the cache" : "missed");
  for (const Record& r : r2->output.records()) {
    std::printf("  %s\n", r.ToString().c_str());
  }
  return after.hits > before.hits ? 0 : 1;
}

// Quickstart: the RHEEM fluent API in one file.
//
// Builds a word-count over a small text collection, lets the multi-platform
// optimizer choose where to run it, prints the execution plan (the task
// atoms and their platforms), runs it, and shows the result and metrics.

#include <cstdio>
#include <string>
#include <vector>

#include "core/api/data_quanta.h"

using rheem::Config;
using rheem::DataQuanta;
using rheem::Dataset;
using rheem::Record;
using rheem::RheemContext;
using rheem::RheemJob;
using rheem::UdfMeta;
using rheem::Value;

namespace {

Dataset Lines() {
  const char* text[] = {
      "freedom from platform lock in",
      "one size does not fit all",
      "freedom from storage lock in",
      "platform independence and multi platform execution",
  };
  std::vector<Record> rows;
  for (const char* line : text) rows.push_back(Record({Value(line)}));
  return Dataset(std::move(rows));
}

std::vector<Record> SplitWords(const Record& r) {
  std::vector<Record> words;
  std::string word;
  for (char c : r[0].string_unchecked() + " ") {
    if (c == ' ') {
      if (!word.empty()) words.push_back(Record({Value(word), Value(int64_t{1})}));
      word.clear();
    } else {
      word += c;
    }
  }
  return words;
}

}  // namespace

int main() {
  // 1. A context owns the platform registry; register the built-in
  //    simulated platforms (javasim, sparksim, relsim).
  RheemContext ctx;
  if (auto st = ctx.RegisterDefaultPlatforms(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Build the dataflow. Nothing executes yet.
  RheemJob job(&ctx);
  DataQuanta counts =
      job.LoadCollection(Lines())
          .FlatMap(SplitWords, UdfMeta::Selective(6.0))
          .ReduceByKey([](const Record& r) { return r[0]; },
                       [](const Record& a, const Record& b) {
                         return Record({a[0], Value(a[1].ToInt64Or(0) +
                                                    b[1].ToInt64Or(0))});
                       })
          .Filter([](const Record& r) { return r[1].ToInt64Or(0) >= 2; },
                  UdfMeta::Selective(0.4))
          .Sort([](const Record& r) { return r[1]; });

  // 3. Explain: the optimizer's execution plan, task atoms and platforms.
  if (auto plan = counts.Explain(); plan.ok()) {
    std::printf("--- execution plan ---\n%s\n", plan->c_str());
  }

  // 4. Execute and collect.
  auto result = counts.CollectWithMetrics();
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("--- words seen at least twice ---\n");
  for (const Record& r : result->output.records()) {
    std::printf("%-12s %lld\n", r[0].string_unchecked().c_str(),
                static_cast<long long>(r[1].ToInt64Or(0)));
  }
  std::printf("\nmetrics: %s\n", result->metrics.ToString().c_str());
  return 0;
}

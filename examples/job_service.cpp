// Job service tour: the serving layer above the optimizer.
//
// Spins up a RheemContext whose JobServer admits concurrent submissions
// (service.max_concurrent workers, bounded queue), submits a batch of jobs
// as futures, resubmits one to show the plan cache skipping the optimizer,
// cancels a job cooperatively, gives another a deadline, and drains the
// server on shutdown. See docs/job_service.md for the full design.

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/api/data_quanta.h"
#include "core/service/job_server.h"

using rheem::Config;
using rheem::Dataset;
using rheem::JobHandle;
using rheem::JobOptions;
using rheem::JobServerStats;
using rheem::JobStateToString;
using rheem::Plan;
using rheem::Record;
using rheem::RheemContext;
using rheem::RheemJob;
using rheem::UdfMeta;
using rheem::Value;

namespace {

Dataset Numbers(int n) {
  std::vector<Record> rows;
  for (int i = 0; i < n; ++i) rows.push_back(Record({Value(i)}));
  return Dataset(std::move(rows));
}

// Each quantum "fetches" for 1ms — the I/O-bound shape a serving layer
// overlaps across jobs.
Plan* BuildPipeline(RheemJob* job, int rows) {
  auto sealed = job->LoadCollection(Numbers(rows))
                    .Map(
                        [](const Record& r) {
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(1));
                          return Record({Value(r[0].ToInt64Or(0) * 10)});
                        },
                        UdfMeta::Expensive(10.0))
                    .Count()
                    .Seal();
  if (!sealed.ok()) {
    std::fprintf(stderr, "%s\n", sealed.status().ToString().c_str());
    std::exit(1);
  }
  return sealed.ValueOrDie();
}

}  // namespace

int main() {
  Config config;
  config.SetInt("service.max_concurrent", 4);  // worker threads
  config.SetInt("service.queue_depth", 8);     // waiting jobs beyond that
  // Observability: the server rewrites this Chrome trace after every job,
  // so the final file holds the whole session's job->stage->kernel tree.
  config.SetBool("metrics.enabled", true);
  config.Set("trace.path", "/tmp/rheem_job_service_trace.json");
  RheemContext ctx(config);
  if (!ctx.RegisterDefaultPlatforms().ok()) return 1;

  // --- a batch of concurrent submissions --------------------------------
  std::printf("== submitting 6 jobs to 4 workers ==\n");
  std::vector<std::unique_ptr<RheemJob>> jobs;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(std::make_unique<RheemJob>(&ctx));
    Plan* plan = BuildPipeline(jobs.back().get(), 50 + i);
    auto handle = ctx.Submit(*plan);  // returns a future, does not block
    if (!handle.ok()) return 1;
    handles.push_back(*handle);
  }
  for (JobHandle& h : handles) {
    auto result = h.Wait();
    std::printf("  job %llu: %s, %zu record(s)\n",
                static_cast<unsigned long long>(h.id()),
                JobStateToString(h.state()),
                result.ok() ? result->output.size() : 0);
  }

  // --- plan cache: a repeated shape skips the whole optimizer -----------
  std::printf("== submitting one plan 3 times ==\n");
  RheemJob repeated_job(&ctx);
  Plan* repeated = BuildPipeline(&repeated_job, 50);
  for (int round = 0; round < 3; ++round) {
    auto handle = ctx.Submit(*repeated);
    if (handle.ok()) (void)handle->Wait();
  }
  JobServerStats stats = ctx.job_server().stats();
  std::printf("  plan cache: %lld hits / %lld misses\n",
              static_cast<long long>(stats.cache.hits),
              static_cast<long long>(stats.cache.misses));

  // --- cooperative cancellation and deadlines ---------------------------
  // Occupy every worker first, so the next submissions are decided while
  // still queued (a cancelled queued job never starts; an overdue one fails
  // with DeadlineExceeded at its first stop-condition check).
  std::printf("== cancellation and deadlines ==\n");
  std::vector<std::unique_ptr<RheemJob>> blocker_jobs;
  std::vector<JobHandle> blockers;
  for (int i = 0; i < 4; ++i) {
    blocker_jobs.push_back(std::make_unique<RheemJob>(&ctx));
    auto handle = ctx.Submit(*BuildPipeline(blocker_jobs.back().get(), 200));
    if (handle.ok()) blockers.push_back(*handle);
  }

  RheemJob cancel_job(&ctx);
  auto cancelled = ctx.Submit(*BuildPipeline(&cancel_job, 500));
  cancelled->Cancel();

  RheemJob deadline_job(&ctx);
  JobOptions options;
  options.deadline = std::chrono::milliseconds(20);  // well under queue wait
  auto late = ctx.Submit(*BuildPipeline(&deadline_job, 500), options);

  auto cancel_result = cancelled->Wait();
  std::printf("  cancelled job: %s (%s)\n",
              JobStateToString(cancelled->state()),
              cancel_result.status().ToString().c_str());
  auto late_result = late->Wait();
  std::printf("  overdue job: %s (%s)\n", JobStateToString(late->state()),
              late_result.status().ToString().c_str());
  for (JobHandle& h : blockers) (void)h.Wait();

  // --- graceful shutdown -------------------------------------------------
  ctx.job_server().Shutdown(/*drain=*/true);  // also implied by ~RheemContext
  stats = ctx.job_server().stats();
  std::printf("== final: %lld submitted, %lld succeeded, %lld failed, "
              "%lld cancelled ==\n",
              static_cast<long long>(stats.submitted),
              static_cast<long long>(stats.succeeded),
              static_cast<long long>(stats.failed),
              static_cast<long long>(stats.cancelled));
  std::printf("trace written to /tmp/rheem_job_service_trace.json "
              "(chrome://tracing / ui.perfetto.dev)\n");
  return 0;
}

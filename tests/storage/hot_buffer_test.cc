#include "storage/hot_buffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/mem_column_store.h"

namespace rheem {
namespace storage {
namespace {

Dataset Payload(int rows, int id) {
  std::vector<Record> out;
  for (int i = 0; i < rows; ++i) {
    out.push_back(Record({Value(id), Value(std::string(64, 'x'))}));
  }
  return Dataset(std::move(out));
}

class HotBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(manager_.RegisterBackend(std::make_unique<MemColumnStore>()).ok());
    auto* backend = manager_.Backend("mem-column").ValueOrDie();
    ASSERT_TRUE(backend->Put("a", Payload(10, 1)).ok());
    ASSERT_TRUE(backend->Put("b", Payload(10, 2)).ok());
    ASSERT_TRUE(backend->Put("c", Payload(10, 3)).ok());
  }
  StorageManager manager_;
};

TEST_F(HotBufferTest, SecondLoadIsAHit) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  ASSERT_TRUE(buffer.Load("a").ok());
  EXPECT_EQ(buffer.misses(), 1);
  EXPECT_EQ(buffer.hits(), 0);
  ASSERT_TRUE(buffer.Load("a").ok());
  EXPECT_EQ(buffer.hits(), 1);
  EXPECT_EQ(buffer.resident_entries(), 1u);
}

TEST_F(HotBufferTest, ReturnsSameContentAsBackend) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  auto direct = manager_.Load("b").ValueOrDie();
  auto cached_cold = buffer.Load("b").ValueOrDie();
  auto cached_hot = buffer.Load("b").ValueOrDie();
  EXPECT_EQ(cached_cold->size(), direct.size());
  EXPECT_EQ(cached_hot->size(), direct.size());
  EXPECT_EQ(cached_hot->at(0), direct.at(0));
}

TEST_F(HotBufferTest, HitsShareTheCachedDatasetWithoutCopying) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  auto first = buffer.Load("a").ValueOrDie();
  auto second = buffer.Load("a").ValueOrDie();
  auto third = buffer.Load("a").ValueOrDie();
  // No-copy semantics: every hit returns the very same materialization the
  // miss parsed, not a deep copy of it.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(second.get(), third.get());
  // Caller + caller + caller + the buffer's own entry.
  EXPECT_EQ(first.use_count(), 4);
}

TEST_F(HotBufferTest, EvictedEntrySurvivesWhileCallersHoldIt) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  auto held = buffer.Load("a").ValueOrDie();
  buffer.Clear();
  // The shared_ptr keeps the dataset alive past eviction.
  EXPECT_EQ(held->size(), 10u);
  EXPECT_EQ(held.use_count(), 1);
}

TEST_F(HotBufferTest, EvictsLeastRecentlyUsed) {
  // Capacity fits ~2 datasets of this size.
  const int64_t one = Payload(10, 1).EstimatedBytes();
  HotDataBuffer buffer(&manager_, one * 2 + 10);
  ASSERT_TRUE(buffer.Load("a").ok());
  ASSERT_TRUE(buffer.Load("b").ok());
  ASSERT_TRUE(buffer.Load("a").ok());  // refresh a; b is now LRU
  ASSERT_TRUE(buffer.Load("c").ok());  // evicts b
  EXPECT_EQ(buffer.resident_entries(), 2u);
  ASSERT_TRUE(buffer.Load("b").ok());  // miss again
  EXPECT_EQ(buffer.misses(), 4);       // a, b, c, b
  EXPECT_EQ(buffer.hits(), 1);         // second a
}

TEST_F(HotBufferTest, OversizedDatasetBypassesCache) {
  HotDataBuffer buffer(&manager_, 8);  // tiny capacity
  ASSERT_TRUE(buffer.Load("a").ok());
  EXPECT_EQ(buffer.resident_entries(), 0u);
  ASSERT_TRUE(buffer.Load("a").ok());
  EXPECT_EQ(buffer.hits(), 0);
  EXPECT_EQ(buffer.misses(), 2);
}

TEST_F(HotBufferTest, InvalidateDropsEntry) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  ASSERT_TRUE(buffer.Load("a").ok());
  buffer.Invalidate("a");
  EXPECT_EQ(buffer.resident_entries(), 0u);
  EXPECT_EQ(buffer.resident_bytes(), 0);
  ASSERT_TRUE(buffer.Load("a").ok());
  EXPECT_EQ(buffer.misses(), 2);
  buffer.Invalidate("never-cached");  // no-op
}

TEST_F(HotBufferTest, WriteThroughManagerInvalidatesStaleEntry) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  auto stale = buffer.Load("a").ValueOrDie();
  EXPECT_EQ((*stale).at(0)[0], Value(1));
  // Rewriting the dataset through the manager must drop the buffered copy:
  // the next load re-parses and sees the new content, never a stale read.
  ASSERT_TRUE(manager_.Put("mem-column", "a", Payload(10, 99)).ok());
  EXPECT_EQ(buffer.resident_entries(), 0u);
  auto fresh = buffer.Load("a").ValueOrDie();
  EXPECT_EQ((*fresh).at(0)[0], Value(99));
  EXPECT_EQ(buffer.misses(), 2);
  // Deleting through the manager also invalidates.
  ASSERT_TRUE(manager_.Delete("a").ok());
  EXPECT_EQ(buffer.resident_entries(), 0u);
  EXPECT_TRUE(buffer.Load("a").status().IsNotFound());
}

TEST_F(HotBufferTest, ObserverUnregistersWithTheBuffer) {
  {
    HotDataBuffer buffer(&manager_, 1 << 20);
    ASSERT_TRUE(buffer.Load("a").ok());
  }
  // The destroyed buffer must not be notified of this write.
  ASSERT_TRUE(manager_.Put("mem-column", "a", Payload(10, 7)).ok());
}

TEST_F(HotBufferTest, ClearEmptiesEverything) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  ASSERT_TRUE(buffer.Load("a").ok());
  ASSERT_TRUE(buffer.Load("b").ok());
  buffer.Clear();
  EXPECT_EQ(buffer.resident_entries(), 0u);
  EXPECT_EQ(buffer.resident_bytes(), 0);
}

TEST_F(HotBufferTest, MissingDatasetPropagatesError) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  EXPECT_TRUE(buffer.Load("ghost").status().IsNotFound());
  EXPECT_EQ(buffer.misses(), 1);
}

// Exercised under TSan in CI: concurrent loads, invalidations and writes
// through the manager must be race-free and always return coherent data.
TEST_F(HotBufferTest, ConcurrentLoadsAndInvalidationsAreThreadSafe) {
  const int64_t one = Payload(10, 1).EstimatedBytes();
  HotDataBuffer buffer(&manager_, one * 2 + 10);  // small: forces eviction
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  const char* names[] = {"a", "b", "c"};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kRounds; ++i) {
        const char* name = names[(t + i) % 3];
        if (t == 0 && i % 17 == 0) {
          buffer.Invalidate(name);
          continue;
        }
        if (t == 1 && i % 29 == 0) {
          // Writes through the manager fire the invalidation observer from
          // this thread while others are mid-load.
          if (!manager_.Put("mem-column", name, Payload(10, i)).ok()) {
            failed.store(true);
          }
          continue;
        }
        auto data = buffer.Load(name);
        if (!data.ok() || (*data)->size() != 10u) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  // Threads 0 and 1 skip the load on their invalidate/write rounds
  // (i % 17 == 0 and i % 29 == 0 respectively, including i == 0).
  EXPECT_EQ(buffer.hits() + buffer.misses(),
            kThreads * kRounds - (kRounds / 17 + 1) - (kRounds / 29 + 1));
}

}  // namespace
}  // namespace storage
}  // namespace rheem

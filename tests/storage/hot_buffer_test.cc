#include "storage/hot_buffer.h"

#include <gtest/gtest.h>

#include "storage/mem_column_store.h"

namespace rheem {
namespace storage {
namespace {

Dataset Payload(int rows, int id) {
  std::vector<Record> out;
  for (int i = 0; i < rows; ++i) {
    out.push_back(Record({Value(id), Value(std::string(64, 'x'))}));
  }
  return Dataset(std::move(out));
}

class HotBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(manager_.RegisterBackend(std::make_unique<MemColumnStore>()).ok());
    auto* backend = manager_.Backend("mem-column").ValueOrDie();
    ASSERT_TRUE(backend->Put("a", Payload(10, 1)).ok());
    ASSERT_TRUE(backend->Put("b", Payload(10, 2)).ok());
    ASSERT_TRUE(backend->Put("c", Payload(10, 3)).ok());
  }
  StorageManager manager_;
};

TEST_F(HotBufferTest, SecondLoadIsAHit) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  ASSERT_TRUE(buffer.Load("a").ok());
  EXPECT_EQ(buffer.misses(), 1);
  EXPECT_EQ(buffer.hits(), 0);
  ASSERT_TRUE(buffer.Load("a").ok());
  EXPECT_EQ(buffer.hits(), 1);
  EXPECT_EQ(buffer.resident_entries(), 1u);
}

TEST_F(HotBufferTest, ReturnsSameContentAsBackend) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  auto direct = manager_.Load("b").ValueOrDie();
  auto cached_cold = buffer.Load("b").ValueOrDie();
  auto cached_hot = buffer.Load("b").ValueOrDie();
  EXPECT_EQ(cached_cold.size(), direct.size());
  EXPECT_EQ(cached_hot.size(), direct.size());
  EXPECT_EQ(cached_hot.at(0), direct.at(0));
}

TEST_F(HotBufferTest, EvictsLeastRecentlyUsed) {
  // Capacity fits ~2 datasets of this size.
  const int64_t one = Payload(10, 1).EstimatedBytes();
  HotDataBuffer buffer(&manager_, one * 2 + 10);
  ASSERT_TRUE(buffer.Load("a").ok());
  ASSERT_TRUE(buffer.Load("b").ok());
  ASSERT_TRUE(buffer.Load("a").ok());  // refresh a; b is now LRU
  ASSERT_TRUE(buffer.Load("c").ok());  // evicts b
  EXPECT_EQ(buffer.resident_entries(), 2u);
  ASSERT_TRUE(buffer.Load("b").ok());  // miss again
  EXPECT_EQ(buffer.misses(), 4);       // a, b, c, b
  EXPECT_EQ(buffer.hits(), 1);         // second a
}

TEST_F(HotBufferTest, OversizedDatasetBypassesCache) {
  HotDataBuffer buffer(&manager_, 8);  // tiny capacity
  ASSERT_TRUE(buffer.Load("a").ok());
  EXPECT_EQ(buffer.resident_entries(), 0u);
  ASSERT_TRUE(buffer.Load("a").ok());
  EXPECT_EQ(buffer.hits(), 0);
  EXPECT_EQ(buffer.misses(), 2);
}

TEST_F(HotBufferTest, InvalidateDropsEntry) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  ASSERT_TRUE(buffer.Load("a").ok());
  buffer.Invalidate("a");
  EXPECT_EQ(buffer.resident_entries(), 0u);
  EXPECT_EQ(buffer.resident_bytes(), 0);
  ASSERT_TRUE(buffer.Load("a").ok());
  EXPECT_EQ(buffer.misses(), 2);
  buffer.Invalidate("never-cached");  // no-op
}

TEST_F(HotBufferTest, ClearEmptiesEverything) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  ASSERT_TRUE(buffer.Load("a").ok());
  ASSERT_TRUE(buffer.Load("b").ok());
  buffer.Clear();
  EXPECT_EQ(buffer.resident_entries(), 0u);
  EXPECT_EQ(buffer.resident_bytes(), 0);
}

TEST_F(HotBufferTest, MissingDatasetPropagatesError) {
  HotDataBuffer buffer(&manager_, 1 << 20);
  EXPECT_TRUE(buffer.Load("ghost").status().IsNotFound());
  EXPECT_EQ(buffer.misses(), 1);
}

}  // namespace
}  // namespace storage
}  // namespace rheem

#include <filesystem>

#include <gtest/gtest.h>

#include "storage/csv_store.h"
#include "storage/kv_store.h"
#include "storage/mem_column_store.h"
#include "storage/storage_plan.h"

namespace rheem {
namespace storage {
namespace {

Dataset People() {
  std::vector<Record> rows;
  rows.push_back(Record({Value(1), Value("ada"), Value(3.5)}));
  rows.push_back(Record({Value(2), Value("bob"), Value(2.0)}));
  rows.push_back(Record({Value(3), Value("cyn"), Value(4.25)}));
  return Dataset(std::move(rows));
}

/// Shared backend contract exercised for every implementation.
class BackendContractTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    tmp_ = testing::TempDir() + "/rheem_store_" + GetParam() + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    if (GetParam() == "mem-column") {
      backend_ = std::make_unique<MemColumnStore>();
    } else if (GetParam() == "csv-files") {
      backend_ = std::make_unique<CsvStore>(tmp_);
    } else {
      backend_ = std::make_unique<KvStore>(0);
    }
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(tmp_, ec);
  }

  std::string tmp_;
  std::unique_ptr<StorageBackend> backend_;
};

TEST_P(BackendContractTest, PutGetRoundTrip) {
  ASSERT_TRUE(backend_->Put("people", People()).ok());
  auto out = backend_->Get("people");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 3u);
  // Bag equality (kv-store may reorder by key; keys here are sorted anyway).
  std::multiset<std::string> expected, got;
  const Dataset people = People();
  for (const Record& r : people.records()) expected.insert(r.ToString());
  for (const Record& r : out->records()) got.insert(r.ToString());
  EXPECT_EQ(got, expected);
}

TEST_P(BackendContractTest, GetMissingIsNotFound) {
  EXPECT_TRUE(backend_->Get("ghost").status().IsNotFound());
}

TEST_P(BackendContractTest, ExistsAndList) {
  EXPECT_FALSE(backend_->Exists("people"));
  ASSERT_TRUE(backend_->Put("people", People()).ok());
  EXPECT_TRUE(backend_->Exists("people"));
  EXPECT_EQ(backend_->List(), std::vector<std::string>{"people"});
}

TEST_P(BackendContractTest, DeleteRemoves) {
  ASSERT_TRUE(backend_->Put("people", People()).ok());
  ASSERT_TRUE(backend_->Delete("people").ok());
  EXPECT_FALSE(backend_->Exists("people"));
  EXPECT_TRUE(backend_->Delete("people").IsNotFound());
}

TEST_P(BackendContractTest, OverwriteReplaces) {
  ASSERT_TRUE(backend_->Put("people", People()).ok());
  Dataset one(std::vector<Record>{Record({Value(9), Value("zoe"), Value(1.0)})});
  ASSERT_TRUE(backend_->Put("people", one).ok());
  EXPECT_EQ(backend_->Get("people")->size(), 1u);
}

TEST_P(BackendContractTest, GetColumnsProjects) {
  ASSERT_TRUE(backend_->Put("people", People()).ok());
  auto out = backend_->GetColumns("people", {1});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(out->at(0).size(), 1u);
}

TEST_P(BackendContractTest, GetByKeyFindsMatches) {
  ASSERT_TRUE(backend_->Put("people", People()).ok());
  auto out = backend_->GetByKey("people", 0, Value(2));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->at(0)[1], Value("bob"));
  EXPECT_TRUE(backend_->GetByKey("people", 0, Value(42))->empty());
}

TEST_P(BackendContractTest, EmptyDatasetRoundTrips) {
  ASSERT_TRUE(backend_->Put("empty", Dataset()).ok());
  auto out = backend_->Get("empty");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendContractTest,
                         ::testing::Values("mem-column", "csv-files",
                                           "kv-store"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CsvStoreTest, PersistsAcrossInstances) {
  const std::string dir = testing::TempDir() + "/rheem_csv_persist";
  {
    CsvStore store(dir);
    ASSERT_TRUE(store.Put("t", People()).ok());
  }
  CsvStore reopened(dir);
  EXPECT_TRUE(reopened.Exists("t"));
  EXPECT_EQ(reopened.Get("t")->size(), 3u);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(CsvStoreTest, PreservesTypesAndSpecialChars) {
  const std::string dir = testing::TempDir() + "/rheem_csv_types";
  CsvStore store(dir);
  std::vector<Record> rows;
  rows.push_back(Record({Value(), Value(true), Value(-7), Value(0.125),
                         Value("comma, quote\" and\nnewline"),
                         Value(std::vector<double>{1.5, 2.5})}));
  ASSERT_TRUE(store.Put("tricky", Dataset(std::move(rows))).ok());
  auto out = store.Get("tricky");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->at(0)[0], Value());
  EXPECT_EQ(out->at(0)[1], Value(true));
  EXPECT_EQ(out->at(0)[2], Value(-7));
  EXPECT_EQ(out->at(0)[3], Value(0.125));
  EXPECT_EQ(out->at(0)[4], Value("comma, quote\" and\nnewline"));
  EXPECT_EQ(out->at(0)[5], Value(std::vector<double>{1.5, 2.5}));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(KvStoreTest, PointLookupUsesIndex) {
  KvStore store(0);
  ASSERT_TRUE(store.Put("t", People()).ok());
  auto hit = store.GetByKey("t", 0, Value(3));
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ(hit->at(0)[1], Value("cyn"));
}

TEST(KvStoreTest, LookupOnNonIndexedColumnFallsBackToScan) {
  KvStore store(0);
  ASSERT_TRUE(store.Put("t", People()).ok());
  auto hit = store.GetByKey("t", 1, Value("bob"));
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ(hit->at(0)[0], Value(2));
}

TEST(KvStoreTest, DuplicateKeysKeepAllRecords) {
  KvStore store(0);
  std::vector<Record> rows;
  rows.push_back(Record({Value(1), Value("a")}));
  rows.push_back(Record({Value(1), Value("b")}));
  ASSERT_TRUE(store.Put("t", Dataset(std::move(rows))).ok());
  EXPECT_EQ(store.GetByKey("t", 0, Value(1))->size(), 2u);
  EXPECT_EQ(store.Get("t")->size(), 2u);
}

TEST(MemColumnStoreTest, NativeTableAccess) {
  MemColumnStore store;
  ASSERT_TRUE(store.Put("t", People()).ok());
  auto table = store.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 3u);
  EXPECT_EQ((*table)->num_columns(), 3u);
}

TEST(StorageManagerTest, RoutesByExistence) {
  StorageManager manager;
  ASSERT_TRUE(manager.RegisterBackend(std::make_unique<MemColumnStore>()).ok());
  ASSERT_TRUE(manager.RegisterBackend(std::make_unique<KvStore>(0)).ok());
  ASSERT_TRUE(manager.Backend("mem-column").ValueOrDie()->Put("a", People()).ok());
  ASSERT_TRUE(manager.Backend("kv-store").ValueOrDie()->Put("b", People()).ok());
  EXPECT_EQ(manager.Locate("a").ValueOrDie()->name(), "mem-column");
  EXPECT_EQ(manager.Locate("b").ValueOrDie()->name(), "kv-store");
  EXPECT_EQ(manager.Load("b")->size(), 3u);
  EXPECT_TRUE(manager.Locate("c").status().IsNotFound());
  EXPECT_TRUE(manager.Backend("nope").status().IsNotFound());
}

TEST(StorageManagerTest, DuplicateBackendRejected) {
  StorageManager manager;
  ASSERT_TRUE(manager.RegisterBackend(std::make_unique<MemColumnStore>()).ok());
  EXPECT_TRUE(manager.RegisterBackend(std::make_unique<MemColumnStore>())
                  .IsAlreadyExists());
}

TEST(StorageManagerTest, ExecutesPlanWithTransformAndKeyedAtom) {
  StorageManager manager;
  ASSERT_TRUE(manager.RegisterBackend(std::make_unique<KvStore>(0)).ok());
  StoragePlan plan;
  StorageAtom atom;
  atom.backend = "kv-store";
  atom.dataset = "scores";
  atom.key_column = 1;  // index by name
  atom.transform.Add(TransformStep::Project({1, 2}));
  plan.atoms.push_back(atom);
  ASSERT_TRUE(manager.Execute(plan, People()).ok());
  auto* kv = dynamic_cast<KvStore*>(manager.Backend("kv-store").ValueOrDie());
  // Projected layout: (name, score); keyed by column... projected column 1
  // of the atom refers to the *projected* record, i.e. the score. The atom
  // key column applies post-transform; look up by original column 0 of the
  // projected shape instead.
  auto by_name = kv->GetByKey("scores", 0, Value("bob"));
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->size(), 1u);
  EXPECT_NE(plan.ToString().find("kv-store"), std::string::npos);
}

}  // namespace
}  // namespace storage
}  // namespace rheem

#include "storage/storage_optimizer.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "storage/csv_store.h"
#include "storage/kv_store.h"
#include "storage/mem_column_store.h"

namespace rheem {
namespace storage {
namespace {

Dataset People() {
  std::vector<Record> rows;
  rows.push_back(Record({Value(2), Value("bob"), Value(2.0)}));
  rows.push_back(Record({Value(1), Value("ada"), Value(3.5)}));
  return Dataset(std::move(rows));
}

class StorageOptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tmp_ = testing::TempDir() + "/rheem_optimizer_store_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(manager_.RegisterBackend(std::make_unique<MemColumnStore>()).ok());
    ASSERT_TRUE(manager_.RegisterBackend(std::make_unique<CsvStore>(tmp_)).ok());
    ASSERT_TRUE(manager_.RegisterBackend(std::make_unique<KvStore>(0)).ok());
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(tmp_, ec);
  }

  std::string tmp_;
  StorageManager manager_;
};

TEST_F(StorageOptimizerTest, LookupHeavyProfileChoosesKvStore) {
  StorageOptimizer optimizer(&manager_);
  AccessProfile profile;
  profile.scan_frequency = 0.1;
  profile.point_lookup_frequency = 50.0;
  profile.key_column = 0;
  auto plan = optimizer.Plan("sessions", profile);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->atoms.size(), 1u);
  EXPECT_EQ(plan->atoms[0].backend, "kv-store");
  EXPECT_EQ(plan->atoms[0].key_column, 0);
}

TEST_F(StorageOptimizerTest, ColumnSubsetScansChooseColumnar) {
  StorageOptimizer optimizer(&manager_);
  AccessProfile profile;
  profile.scan_frequency = 20.0;
  profile.column_subset_access = true;
  profile.hot_columns = {2};
  auto plan = optimizer.Plan("metrics", profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->atoms[0].backend, "mem-column");
}

TEST_F(StorageOptimizerTest, PersistenceConstraintForcesCsv) {
  StorageOptimizer optimizer(&manager_);
  AccessProfile profile;
  profile.requires_persistence = true;
  profile.scan_frequency = 10.0;
  auto plan = optimizer.Plan("archive", profile);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->atoms[0].backend, "csv-files");
}

TEST_F(StorageOptimizerTest, UnsatisfiableConstraintFails) {
  StorageManager only_mem;
  ASSERT_TRUE(only_mem.RegisterBackend(std::make_unique<MemColumnStore>()).ok());
  StorageOptimizer optimizer(&only_mem);
  AccessProfile profile;
  profile.requires_persistence = true;
  EXPECT_TRUE(optimizer.Plan("x", profile).status().IsNotFound());
}

TEST_F(StorageOptimizerTest, RangeFilterColumnAddsSortTransform) {
  StorageOptimizer optimizer(&manager_);
  AccessProfile profile;
  profile.range_filter_column = 0;
  auto plan = optimizer.Plan("sorted", profile);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->atoms[0].transform.size(), 1u);
  EXPECT_EQ(plan->atoms[0].transform.steps()[0].kind, TransformKind::kSortBy);
}

TEST_F(StorageOptimizerTest, StoreExecutesPlanEndToEnd) {
  StorageOptimizer optimizer(&manager_);
  AccessProfile profile;
  profile.range_filter_column = 0;
  ASSERT_TRUE(optimizer.Store("people", People(), profile).ok());
  auto loaded = manager_.Load("people");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  // The sort transform ran on upload.
  EXPECT_EQ(loaded->at(0)[0], Value(1));
}

TEST_F(StorageOptimizerTest, ScoreOrdersBackendsSensibly) {
  AccessProfile lookups;
  lookups.point_lookup_frequency = 100.0;
  lookups.scan_frequency = 0.0;
  EXPECT_LT(StorageOptimizer::Score(KvStore(0).traits(), lookups),
            StorageOptimizer::Score(MemColumnStore().traits(), lookups));
  AccessProfile scans;
  scans.scan_frequency = 100.0;
  scans.column_subset_access = true;
  EXPECT_LT(StorageOptimizer::Score(MemColumnStore().traits(), scans),
            StorageOptimizer::Score(CsvStore("/tmp/x").traits(), scans));
}

}  // namespace
}  // namespace storage
}  // namespace rheem

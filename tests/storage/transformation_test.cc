#include "storage/transformation.h"

#include <gtest/gtest.h>

namespace rheem {
namespace storage {
namespace {

Dataset Rows() {
  std::vector<Record> rows;
  rows.push_back(Record({Value(3), Value("c"), Value(30)}));
  rows.push_back(Record({Value(1), Value("a"), Value(10)}));
  rows.push_back(Record({Value(2), Value("b"), Value(20)}));
  rows.push_back(Record({Value(1), Value("a"), Value(10)}));  // duplicate
  return Dataset(std::move(rows));
}

TEST(TransformationTest, IdentityPlanPassesThrough) {
  TransformationPlan plan;
  auto out = plan.Apply(Rows());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 4u);
  EXPECT_EQ(plan.ToString(), "<identity>");
}

TEST(TransformationTest, ProjectStep) {
  TransformationPlan plan;
  plan.Add(TransformStep::Project({1}));
  auto out = plan.Apply(Rows());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at(0), Record({Value("c")}));
}

TEST(TransformationTest, SortAscendingAndDescending) {
  TransformationPlan asc;
  asc.Add(TransformStep::SortBy(0));
  auto up = asc.Apply(Rows());
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->at(0)[0], Value(1));
  EXPECT_EQ(up->at(3)[0], Value(3));

  TransformationPlan desc;
  desc.Add(TransformStep::SortBy(0, /*ascending=*/false));
  auto down = desc.Apply(Rows());
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->at(0)[0], Value(3));
}

TEST(TransformationTest, FilterStep) {
  TransformationPlan plan;
  PredicateUdf pred;
  pred.fn = [](const Record& r) { return r[2].ToInt64Or(0) >= 20; };
  plan.Add(TransformStep::Filter(pred));
  auto out = plan.Apply(Rows());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(TransformationTest, DedupeStep) {
  TransformationPlan plan;
  plan.Add(TransformStep::Dedupe());
  auto out = plan.Apply(Rows());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST(TransformationTest, StepsComposeInOrder) {
  // Filter out small values, then project name, then dedupe, then sort.
  TransformationPlan plan;
  PredicateUdf pred;
  pred.fn = [](const Record& r) { return r[2].ToInt64Or(0) >= 10; };
  plan.Add(TransformStep::Filter(pred))
      .Add(TransformStep::Project({1}))
      .Add(TransformStep::Dedupe())
      .Add(TransformStep::SortBy(0));
  auto out = plan.Apply(Rows());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(out->at(0)[0], Value("a"));
  EXPECT_EQ(out->at(2)[0], Value("c"));
  EXPECT_NE(plan.ToString().find("Filter"), std::string::npos);
  EXPECT_NE(plan.ToString().find("SortBy"), std::string::npos);
}

TEST(TransformationTest, SortColumnOutOfRangeFails) {
  TransformationPlan plan;
  plan.Add(TransformStep::SortBy(9));
  EXPECT_TRUE(plan.Apply(Rows()).status().IsOutOfRange());
}

TEST(TransformationTest, ProjectColumnOutOfRangeFails) {
  TransformationPlan plan;
  plan.Add(TransformStep::Project({7}));
  EXPECT_FALSE(plan.Apply(Rows()).ok());
}

TEST(TransformationTest, EmptyInputIsFine) {
  TransformationPlan plan;
  plan.Add(TransformStep::SortBy(0)).Add(TransformStep::Dedupe());
  auto out = plan.Apply(Dataset());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

}  // namespace
}  // namespace storage
}  // namespace rheem

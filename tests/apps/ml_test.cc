#include <cmath>

#include <gtest/gtest.h>

#include "apps/ml/dataset_gen.h"
#include "apps/ml/kmeans.h"
#include "apps/ml/ml_operators.h"
#include "apps/ml/regression.h"
#include "apps/ml/svm.h"

namespace rheem {
namespace ml {
namespace {

class MlTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok()); }
  RheemContext ctx_;
};

TEST(DatasetGenTest, ClassificationShapeAndDeterminism) {
  Dataset a = GenerateClassification(100, 5, 7);
  Dataset b = GenerateClassification(100, 5, 7);
  ASSERT_EQ(a.size(), 100u);
  EXPECT_EQ(a.at(0).size(), 2u);
  EXPECT_EQ(a.at(0)[1].double_list_unchecked().size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i), b.at(i));
    const double label = a.at(i)[0].ToDoubleOr(0);
    EXPECT_TRUE(label == 1.0 || label == -1.0);
  }
  Dataset c = GenerateClassification(100, 5, 8);
  EXPECT_NE(a.at(0), c.at(0));
}

TEST(DatasetGenTest, ClustersCarryTrueLabels) {
  Dataset d = GenerateClusters(60, 3, 2, 5);
  ASSERT_EQ(d.size(), 60u);
  for (const Record& r : d.records()) {
    const double label = r[0].ToDoubleOr(-1);
    EXPECT_GE(label, 0.0);
    EXPECT_LT(label, 3.0);
  }
}

TEST(DatasetGenTest, LibSvmRoundTrip) {
  Dataset original = GenerateClassification(20, 4, 3);
  const std::string text = ToLibSvmFormat(original);
  EXPECT_NE(text.find(":"), std::string::npos);
  auto parsed = ParseLibSvmFormat(text, 4);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed->at(i)[0], original.at(i)[0]);
    const auto& xs = original.at(i)[1].double_list_unchecked();
    const auto& ys = parsed->at(i)[1].double_list_unchecked();
    ASSERT_EQ(xs.size(), ys.size());
    for (std::size_t d = 0; d < xs.size(); ++d) {
      EXPECT_NEAR(xs[d], ys[d], 1e-8);
    }
  }
}

TEST(DatasetGenTest, LibSvmParserRejectsBadInput) {
  EXPECT_FALSE(ParseLibSvmFormat("1 5:1.0", 4).ok());   // index out of range
  EXPECT_FALSE(ParseLibSvmFormat("1 a:b:c", 4).ok());   // malformed pair
  EXPECT_FALSE(ParseLibSvmFormat("1 1:0.5", 0).ok());   // bad dims
  auto with_comments = ParseLibSvmFormat("# comment\n1 1:2.0\n\n", 2);
  ASSERT_TRUE(with_comments.ok());
  EXPECT_EQ(with_comments->size(), 1u);
}

TEST_F(MlTest, SvmLearnsSeparableData) {
  Dataset train = GenerateClassification(400, 4, 11, /*separation=*/2.5);
  SvmOptions options;
  options.iterations = 60;
  options.learning_rate = 0.5;
  auto result = TrainSvm(&ctx_, train, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto accuracy = SvmAccuracy(result->model, train);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.95);
  EXPECT_EQ(result->model.weights.size(), 4u);
}

TEST_F(MlTest, SvmSameModelOnBothPlatforms) {
  Dataset train = GenerateClassification(150, 3, 13);
  SvmOptions options;
  options.iterations = 20;
  options.force_platform = "javasim";
  auto java = TrainSvm(&ctx_, train, options);
  options.force_platform = "sparksim";
  auto spark = TrainSvm(&ctx_, train, options);
  ASSERT_TRUE(java.ok()) << java.status().ToString();
  ASSERT_TRUE(spark.ok()) << spark.status().ToString();
  ASSERT_EQ(java->model.weights.size(), spark->model.weights.size());
  for (std::size_t i = 0; i < java->model.weights.size(); ++i) {
    EXPECT_NEAR(java->model.weights[i], spark->model.weights[i], 1e-9);
  }
  EXPECT_NEAR(java->model.bias, spark->model.bias, 1e-9);
}

TEST_F(MlTest, SvmRejectsBadInput) {
  SvmOptions options;
  EXPECT_FALSE(TrainSvm(&ctx_, Dataset(), options).ok());
  Dataset bad(std::vector<Record>{Record({Value(1.0), Value("not-features")})});
  EXPECT_FALSE(TrainSvm(&ctx_, bad, options).ok());
}

TEST_F(MlTest, KMeansRecoversWellSeparatedClusters) {
  Dataset points = GenerateClusters(300, 3, 2, 17, /*spread=*/0.3);
  KMeansOptions options;
  options.k = 3;
  options.iterations = 15;
  auto result = TrainKMeans(&ctx_, points, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->centroids.size(), 3u);
  auto cost = KMeansCost(result->centroids, points);
  ASSERT_TRUE(cost.ok());
  // With spread 0.3 and 2 dims, within-cluster variance ~ 2*0.09 per point.
  EXPECT_LT(*cost / 300.0, 1.0);
}

TEST_F(MlTest, KMeansValidatesArguments) {
  KMeansOptions options;
  options.k = 0;
  EXPECT_FALSE(TrainKMeans(&ctx_, GenerateClusters(10, 2, 2, 1), options).ok());
  options.k = 50;
  EXPECT_FALSE(TrainKMeans(&ctx_, GenerateClusters(10, 2, 2, 1), options).ok());
}

TEST_F(MlTest, LinearRegressionFitsLinearData) {
  Dataset train = GenerateRegression(300, 3, 19, /*noise=*/0.01);
  RegressionOptions options;
  options.iterations = 200;
  options.learning_rate = 0.3;
  auto result = TrainLinearRegression(&ctx_, train, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto mse = MeanSquaredError(result->model, train);
  ASSERT_TRUE(mse.ok());
  EXPECT_LT(*mse, 0.05);
}

TEST_F(MlTest, LogisticRegressionClassifies) {
  Dataset train = GenerateClassification(300, 3, 23, /*separation=*/2.0);
  RegressionOptions options;
  options.iterations = 80;
  options.learning_rate = 0.5;
  auto result = TrainLogisticRegression(&ctx_, train, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto acc = LogisticAccuracy(result->model, train);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.93);
}

TEST_F(MlTest, RunMlProgramRequiresAllUdfs) {
  MlProgram incomplete;
  incomplete.init = []() { return Dataset(); };
  MlRunOptions run;
  EXPECT_TRUE(RunMlProgram(&ctx_, incomplete, Dataset(), run)
                  .status()
                  .IsInvalidArgument());
}

TEST(MlOperatorsTest, InitializeAndProcessApplyPerQuantum) {
  InitializeOperator init([](const Record& r) {
    return Record({r[0], Value(0.0)});
  });
  std::vector<Record> out;
  ASSERT_TRUE(init.ApplyOp(Record({Value(5)}), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][1], Value(0.0));

  ProcessOperator process(
      [](const Record& r) { return Record({Value(r[0].ToDoubleOr(0) * 2)}); },
      3.0);
  out.clear();
  ASSERT_TRUE(process.ApplyOp(Record({Value(2.0)}), &out).ok());
  EXPECT_EQ(out[0][0], Value(4.0));
  EXPECT_DOUBLE_EQ(process.CostHint(), 3.0);
}

TEST(MlOperatorsTest, LoopIsControlFlowTemplate) {
  LoopOperator loop([](const Dataset& state, int iter) {
    return iter < 3 && !state.empty();
  });
  std::vector<Record> out;
  EXPECT_TRUE(loop.ApplyOp(Record(), &out).IsUnsupported());
  Dataset st(std::vector<Record>{Record({Value(1)})});
  EXPECT_TRUE(loop.ShouldContinue(st, 0));
  EXPECT_FALSE(loop.ShouldContinue(st, 5));
  EXPECT_FALSE(loop.ShouldContinue(Dataset(), 0));
}

TEST_F(MlTest, WrapperPathRunsCustomLogicalOperator) {
  // A custom per-quantum LogicalOperator dropped into a plan is wrapped by
  // a FlatMap physical operator (paper §3.2).
  RheemJob job(&ctx_);
  auto quanta = job.LoadCollection(GenerateClassification(10, 2, 29));
  // Insert a ProcessOperator as a raw logical node.
  auto* process = job.logical_plan().Add<ProcessOperator>(
      std::vector<Operator*>{/*filled below*/},
      [](const Record& r) { return Record({r[0]}); }, 1.0);
  // Hand-wire: process consumes the source produced by LoadCollection.
  process->AddInput(job.logical_plan().op(0));
  auto* collect = job.logical_plan().Add<GenericLogicalOp>(
      std::vector<Operator*>{process}, OpKind::kCollect);
  job.logical_plan().SetSink(collect);
  auto result = ctx_.Execute(job.logical_plan());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output.size(), 10u);
  EXPECT_EQ(result->output.at(0).size(), 1u);
  (void)quanta;
}

}  // namespace
}  // namespace ml
}  // namespace rheem

#include <gtest/gtest.h>

#include "apps/graph/connected_components.h"
#include "apps/graph/graph.h"
#include "apps/graph/pagerank.h"

namespace rheem {
namespace graph {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok()); }
  RheemContext ctx_;
};

TEST(GraphGenTest, RandomGraphDeterministicAndSane) {
  EdgeList a = GenerateRandomGraph(50, 3.0, 7);
  EdgeList b = GenerateRandomGraph(50, 3.0, 7);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges.at(i), b.edges.at(i));
  }
  for (const Record& e : a.edges.records()) {
    EXPECT_NE(e[0], e[1]);  // no self loops
    EXPECT_GE(e[0].ToInt64Or(-1), 0);
    EXPECT_LT(e[0].ToInt64Or(-1), 50);
  }
  // Every node has at least one out-edge.
  EXPECT_EQ(a.OutDegrees().size(), 50u);
}

TEST(GraphGenTest, CliquesAreComplete) {
  EdgeList g = GenerateCliques(2, 3);
  EXPECT_EQ(g.num_nodes, 6);
  EXPECT_EQ(g.edges.size(), 2u * 3u * 2u);  // k * n*(n-1)
  EXPECT_EQ(g.Nodes().size(), 6u);
}

TEST(GraphGenTest, OutDegreesCountEdges) {
  std::vector<Record> edges;
  edges.push_back(Record({Value(int64_t{0}), Value(int64_t{1})}));
  edges.push_back(Record({Value(int64_t{0}), Value(int64_t{2})}));
  edges.push_back(Record({Value(int64_t{1}), Value(int64_t{0})}));
  EdgeList g;
  g.edges = Dataset(std::move(edges));
  auto degrees = g.OutDegrees();
  EXPECT_EQ(degrees.at(0), 2);
  EXPECT_EQ(degrees.at(1), 1);
  EXPECT_EQ(degrees.count(2), 0u);
}

TEST_F(GraphTest, PageRankMatchesReference) {
  EdgeList g = GenerateRandomGraph(40, 3.0, 11);
  PageRankOptions options;
  options.iterations = 10;
  auto result = ComputePageRank(&ctx_, g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto reference = PageRankReference(g, 10, options.damping);
  ASSERT_EQ(result->ranks.size(), reference.size());
  for (const auto& [node, rank] : reference) {
    ASSERT_TRUE(result->ranks.count(node) > 0) << "node " << node;
    EXPECT_NEAR(result->ranks.at(node), rank, 1e-9) << "node " << node;
  }
}

TEST_F(GraphTest, PageRankMassConserved) {
  EdgeList g = GenerateRandomGraph(30, 2.0, 13);
  PageRankOptions options;
  options.iterations = 15;
  auto result = ComputePageRank(&ctx_, g, options);
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (const auto& [node, rank] : result->ranks) {
    EXPECT_GT(rank, 0.0);
    total += rank;
  }
  // With every node having out-edges, rank mass is conserved.
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST_F(GraphTest, PageRankHubOutranksLeaves) {
  // Star: all point to node 0; node 0 points to node 1.
  std::vector<Record> edges;
  for (int64_t i = 1; i < 10; ++i) {
    edges.push_back(Record({Value(i), Value(int64_t{0})}));
  }
  edges.push_back(Record({Value(int64_t{0}), Value(int64_t{1})}));
  EdgeList g;
  g.edges = Dataset(std::move(edges));
  PageRankOptions options;
  options.iterations = 20;
  auto result = ComputePageRank(&ctx_, g, options);
  ASSERT_TRUE(result.ok());
  for (int64_t i = 2; i < 10; ++i) {
    EXPECT_GT(result->ranks.at(0), result->ranks.at(i));
  }
}

TEST_F(GraphTest, PageRankEmptyGraphRejected) {
  EdgeList empty;
  EXPECT_FALSE(ComputePageRank(&ctx_, empty, {}).ok());
}

TEST_F(GraphTest, ConnectedComponentsFindCliques) {
  EdgeList g = GenerateCliques(3, 4);
  ConnectedComponentsOptions options;
  options.iterations = 6;
  auto result = ComputeConnectedComponents(&ctx_, g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto reference = ConnectedComponentsReference(g);
  EXPECT_EQ(result->components.size(), 12u);
  for (const auto& [node, comp] : reference) {
    EXPECT_EQ(result->components.at(node), comp) << "node " << node;
  }
  // Three distinct labels: 0, 4, 8.
  EXPECT_EQ(result->components.at(5), 4);
  EXPECT_EQ(result->components.at(11), 8);
}

TEST_F(GraphTest, ConnectedComponentsOnChain) {
  // Undirected chain 0-1-2-3 (both directions).
  std::vector<Record> edges;
  for (int64_t i = 0; i < 3; ++i) {
    edges.push_back(Record({Value(i), Value(i + 1)}));
    edges.push_back(Record({Value(i + 1), Value(i)}));
  }
  EdgeList g;
  g.edges = Dataset(std::move(edges));
  ConnectedComponentsOptions options;
  options.iterations = 5;  // >= diameter
  auto result = ComputeConnectedComponents(&ctx_, g, options);
  ASSERT_TRUE(result.ok());
  for (const auto& [node, comp] : result->components) {
    EXPECT_EQ(comp, 0) << "node " << node;
  }
}

TEST_F(GraphTest, ConvergingVariantMatchesFixedRounds) {
  EdgeList g = GenerateCliques(3, 5);
  ConnectedComponentsOptions options;
  options.iterations = 50;  // generous safety bound; convergence stops early
  auto converging = ComputeConnectedComponentsConverging(&ctx_, g, options);
  ASSERT_TRUE(converging.ok()) << converging.status().ToString();
  auto reference = ConnectedComponentsReference(g);
  ASSERT_EQ(converging->components.size(), reference.size());
  for (const auto& [node, comp] : reference) {
    EXPECT_EQ(converging->components.at(node), comp) << "node " << node;
  }
}

TEST_F(GraphTest, ConvergingVariantStopsEarly) {
  // A clique converges in ~2 rounds; with a 100-round budget the DoWhile
  // version must run far fewer jobs than the fixed-round version would.
  EdgeList g = GenerateCliques(1, 8);
  ConnectedComponentsOptions options;
  options.iterations = 100;
  options.force_platform = "sparksim";  // jobs_run counts iterations there
  auto result = ComputeConnectedComponentsConverging(&ctx_, g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->metrics.jobs_run, 10);
  for (const auto& [node, comp] : result->components) {
    EXPECT_EQ(comp, 0);
  }
}

TEST_F(GraphTest, GraphAppsAgreeAcrossPlatforms) {
  EdgeList g = GenerateRandomGraph(25, 2.0, 17);
  PageRankOptions java;
  java.iterations = 8;
  java.force_platform = "javasim";
  PageRankOptions spark = java;
  spark.force_platform = "sparksim";
  auto a = ComputePageRank(&ctx_, g, java);
  auto b = ComputePageRank(&ctx_, g, spark);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  for (const auto& [node, rank] : a->ranks) {
    EXPECT_NEAR(b->ranks.at(node), rank, 1e-9);
  }
}

TEST(ConnectedComponentsReferenceTest, UnionFindBasics) {
  EdgeList g = GenerateCliques(2, 2);  // components {0,1}, {2,3}
  auto comps = ConnectedComponentsReference(g);
  EXPECT_EQ(comps.at(0), 0);
  EXPECT_EQ(comps.at(1), 0);
  EXPECT_EQ(comps.at(2), 2);
  EXPECT_EQ(comps.at(3), 2);
}

}  // namespace
}  // namespace graph
}  // namespace rheem

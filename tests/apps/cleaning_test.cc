#include <algorithm>

#include <gtest/gtest.h>

#include "apps/cleaning/data_gen.h"
#include "apps/cleaning/operators.h"
#include "apps/cleaning/plan_builder.h"
#include "apps/cleaning/repair.h"

namespace rheem {
namespace cleaning {
namespace {

class CleaningTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok()); }
  RheemContext ctx_;
};

Dataset SmallDirtyTable() {
  TaxTableOptions options;
  options.rows = 300;
  options.seed = 5;
  options.fd_noise_rate = 0.05;
  options.ineq_noise_rate = 0.03;
  return GenerateTaxTable(options);
}

TEST(DataGenTest, TableMatchesSchemaAndIsDeterministic) {
  TaxTableOptions options;
  options.rows = 50;
  Dataset a = GenerateTaxTable(options);
  Dataset b = GenerateTaxTable(options);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_TRUE(a.Validate().ok());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(DataGenTest, CleanTableHasNoViolations) {
  TaxTableOptions options;
  options.rows = 120;
  options.fd_noise_rate = 0.0;
  options.ineq_noise_rate = 0.0;
  Dataset clean = GenerateTaxTable(options);
  auto fd = DetectViolationsBruteForce(clean, ZipCityRule());
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(fd->empty());
  auto ineq = DetectViolationsBruteForce(clean, SalaryTaxRule());
  ASSERT_TRUE(ineq.ok());
  EXPECT_TRUE(ineq->empty());
}

TEST(DataGenTest, NoiseplantsViolations) {
  Dataset dirty = SmallDirtyTable();
  auto fd = DetectViolationsBruteForce(dirty, ZipCityRule());
  ASSERT_TRUE(fd.ok());
  EXPECT_GT(fd->size(), 0u);
  auto ineq = DetectViolationsBruteForce(dirty, SalaryTaxRule());
  ASSERT_TRUE(ineq.ok());
  EXPECT_GT(ineq->size(), 0u);
}

TEST(RuleTest, FdScopeBlockDetect) {
  FdRule rule = ZipCityRule();
  EXPECT_EQ(rule.ScopeColumns(), (std::vector<int>{1, 2}));
  EXPECT_TRUE(rule.symmetric());
  // Scoped layout: (tid, zip, city).
  Record t1({Value(int64_t{0}), Value(11111), Value("springfield")});
  Record t2({Value(int64_t{1}), Value(11111), Value("shelbyville")});
  Record t3({Value(int64_t{2}), Value(11111), Value("springfield")});
  Record t4({Value(int64_t{3}), Value(22222), Value("springfield")});
  EXPECT_TRUE(rule.Detect(t1, t2));
  EXPECT_FALSE(rule.Detect(t1, t3));  // same zip, same city
  EXPECT_FALSE(rule.Detect(t1, t4));  // different zip
  KeyUdf block = rule.BlockKey();
  ASSERT_TRUE(static_cast<bool>(block.fn));
  EXPECT_EQ(block.fn(t1), block.fn(t2));
  EXPECT_NE(block.fn(t1), block.fn(t4));
}

TEST(RuleTest, IneqDetectAndSpec) {
  IneqRule rule = SalaryTaxRule();
  EXPECT_FALSE(rule.symmetric());
  // Scoped layout: (tid, salary, tax).
  Record rich_low_tax({Value(int64_t{0}), Value(200.0), Value(10.0)});
  Record poor_high_tax({Value(int64_t{1}), Value(100.0), Value(20.0)});
  EXPECT_TRUE(rule.Detect(rich_low_tax, poor_high_tax));
  EXPECT_FALSE(rule.Detect(poor_high_tax, rich_low_tax));
  IEJoinSpec spec = rule.ScopedIEJoinSpec();
  EXPECT_EQ(spec.left_col1, 1);
  EXPECT_EQ(spec.op1, CompareOp::kGreater);
  EXPECT_EQ(spec.left_col2, 2);
  EXPECT_EQ(spec.op2, CompareOp::kLess);
}

TEST(RuleTest, UdfRuleWrapsArbitraryPredicate) {
  UdfRule rule(
      "same_state_diff_name", {5, 0},
      [](const Record& a, const Record& b) {
        return a[1] == b[1] && a[2] != b[2];
      },
      [](const Record& r) { return r[1]; }, /*symmetric=*/true);
  EXPECT_EQ(rule.kind(), RuleKind::kUdf);
  EXPECT_TRUE(static_cast<bool>(rule.BlockKey().fn));
}

TEST(OperatorsTest, ScopeProjectsWithTidFirst) {
  FdRule rule = ZipCityRule();
  // Full table row + tid appended (as ZipWithId produces).
  Record row({Value("emp"), Value(12345), Value("metropolis"), Value(1.0),
              Value(0.2), Value("NY"), Value(int64_t{7})});
  auto scoped = ScopeOperator::ScopeRecord(rule, row);
  ASSERT_TRUE(scoped.ok());
  EXPECT_EQ(*scoped, Record({Value(int64_t{7}), Value(12345),
                             Value("metropolis")}));
  ScopeOperator op(&rule);
  std::vector<Record> out;
  ASSERT_TRUE(op.ApplyOp(row, &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(OperatorsTest, IterateEnumeratesPairs) {
  EXPECT_EQ(IterateOperator::CandidatePairs(4, true).size(), 6u);
  EXPECT_EQ(IterateOperator::CandidatePairs(4, false).size(), 12u);
  EXPECT_TRUE(IterateOperator::CandidatePairs(0, true).empty());
  EXPECT_TRUE(IterateOperator::CandidatePairs(1, true).empty());
}

TEST(OperatorsTest, DetectPairEmitsCanonicalViolation) {
  FdRule rule = ZipCityRule();
  Record t1({Value(int64_t{9}), Value(1), Value("a")});
  Record t2({Value(int64_t{3}), Value(1), Value("b")});
  std::vector<Record> out;
  DetectOperator::DetectPair(rule, t1, t2, &out);
  ASSERT_EQ(out.size(), 1u);
  auto v = ViolationFromRecord(out[0]).ValueOrDie();
  EXPECT_EQ(v.tid1, 3);  // symmetric rules canonicalize tid order
  EXPECT_EQ(v.tid2, 9);
}

TEST(OperatorsTest, GenFixProposesBothSidesForFd) {
  FdRule rule = ZipCityRule();
  Record t1({Value(int64_t{0}), Value(1), Value("a")});
  Record t2({Value(int64_t{1}), Value(1), Value("b")});
  Violation v{rule.id(), 0, 1};
  auto fixes = GenFixOperator::FixesFor(rule, v, t1, t2);
  ASSERT_EQ(fixes.size(), 2u);
  EXPECT_EQ(fixes[0].tid, 0);
  EXPECT_EQ(fixes[0].column, 2);
  EXPECT_EQ(fixes[0].suggestion, Value("b"));
  EXPECT_EQ(fixes[1].suggestion, Value("a"));
}

TEST_F(CleaningTest, AllStrategiesAgreeWithBruteForceOnFd) {
  Dataset table = SmallDirtyTable();
  FdRule rule = ZipCityRule();
  auto expected = DetectViolationsBruteForce(table, rule).ValueOrDie();
  for (DetectStrategy strategy :
       {DetectStrategy::kMonolithicUdf, DetectStrategy::kOperatorPipeline,
        DetectStrategy::kDeclarativeExpr}) {
    DetectOptions options;
    options.strategy = strategy;
    auto report = DetectViolations(&ctx_, table, rule, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->violations, expected)
        << DetectStrategyToString(strategy);
  }
}

TEST_F(CleaningTest, AllStrategiesAgreeWithBruteForceOnInequality) {
  TaxTableOptions gen;
  gen.rows = 120;  // quadratic baselines stay fast
  gen.seed = 9;
  gen.ineq_noise_rate = 0.05;
  Dataset table = GenerateTaxTable(gen);
  IneqRule rule = SalaryTaxRule();
  auto expected = DetectViolationsBruteForce(table, rule).ValueOrDie();
  ASSERT_GT(expected.size(), 0u);
  for (DetectStrategy strategy :
       {DetectStrategy::kMonolithicUdf, DetectStrategy::kOperatorPipeline,
        DetectStrategy::kOperatorPipelineIEJoin,
        DetectStrategy::kDeclarativeExpr}) {
    DetectOptions options;
    options.strategy = strategy;
    auto report = DetectViolations(&ctx_, table, rule, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->violations, expected)
        << DetectStrategyToString(strategy);
  }
}

TEST_F(CleaningTest, StrategiesAgreeAcrossPlatforms) {
  Dataset table = SmallDirtyTable();
  FdRule rule = ZipCityRule();
  DetectOptions on_java;
  on_java.force_platform = "javasim";
  DetectOptions on_spark;
  on_spark.force_platform = "sparksim";
  auto java = DetectViolations(&ctx_, table, rule, on_java);
  auto spark = DetectViolations(&ctx_, table, rule, on_spark);
  ASSERT_TRUE(java.ok()) << java.status().ToString();
  ASSERT_TRUE(spark.ok()) << spark.status().ToString();
  EXPECT_EQ(java->violations, spark->violations);
}

TEST_F(CleaningTest, DeclarativeStrategyRejectsOpaqueUdfRules) {
  // A UdfRule's pair predicate is a closure; it has no expression form, so
  // the declarative strategy must refuse rather than silently fall back.
  UdfRule rule(
      "same_state_diff_name", {5, 0},
      [](const Record& a, const Record& b) {
        return a[1] == b[1] && a[2] != b[2];
      },
      [](const Record& r) { return r[1]; }, /*symmetric=*/true);
  DetectOptions options;
  options.strategy = DetectStrategy::kDeclarativeExpr;
  EXPECT_TRUE(DetectViolations(&ctx_, SmallDirtyTable(), rule, options)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CleaningTest, IEJoinStrategyRejectsNonInequalityRules) {
  FdRule rule = ZipCityRule();
  DetectOptions options;
  options.strategy = DetectStrategy::kOperatorPipelineIEJoin;
  EXPECT_TRUE(DetectViolations(&ctx_, SmallDirtyTable(), rule, options)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CleaningTest, RepairEliminatesFdViolations) {
  Dataset table = SmallDirtyTable();
  FdRule rule = ZipCityRule();
  auto violations = DetectViolationsBruteForce(table, rule).ValueOrDie();
  ASSERT_GT(violations.size(), 0u);
  auto fixes = GenerateFdFixes(table, rule, violations);
  ASSERT_TRUE(fixes.ok()) << fixes.status().ToString();
  EXPECT_GT(fixes->size(), 0u);
  EXPECT_GT(CountFixedTuples(*fixes), 0u);
  auto repaired = ApplyFixes(table, *fixes);
  ASSERT_TRUE(repaired.ok());
  auto after = DetectViolationsBruteForce(*repaired, rule).ValueOrDie();
  EXPECT_TRUE(after.empty());
  // Repair touches only the city column.
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table.at(i)[0], repaired->at(i)[0]);
    EXPECT_EQ(table.at(i)[1], repaired->at(i)[1]);
    EXPECT_EQ(table.at(i)[3], repaired->at(i)[3]);
  }
}

TEST_F(CleaningTest, RepairMajorityVoteKeepsDominantValue) {
  // Three tuples share zip 1: two say "right", one says "wrong".
  std::vector<Record> rows;
  for (const char* city : {"right", "right", "wrong"}) {
    rows.push_back(Record({Value("n"), Value(1), Value(city), Value(1.0),
                           Value(0.2), Value("QA")}));
  }
  Dataset table(std::move(rows));
  FdRule rule = ZipCityRule();
  auto violations = DetectViolationsBruteForce(table, rule).ValueOrDie();
  auto fixes = GenerateFdFixes(table, rule, violations).ValueOrDie();
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_EQ(fixes[0].tid, 2);
  EXPECT_EQ(fixes[0].suggestion, Value("right"));
}

TEST(RepairTest, ApplyFixesValidatesBounds) {
  Dataset table(std::vector<Record>{Record({Value(1)})});
  EXPECT_FALSE(ApplyFixes(table, {Fix{5, 0, Value(2)}}).ok());
  EXPECT_FALSE(ApplyFixes(table, {Fix{0, 9, Value(2)}}).ok());
  // Null suggestions are skipped, not errors.
  auto out = ApplyFixes(table, {Fix{0, 0, Value()}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at(0)[0], Value(1));
}

TEST_F(CleaningTest, ViolationReportRendering) {
  Dataset table = SmallDirtyTable();
  DetectOptions options;
  auto report = DetectViolations(&ctx_, table, ZipCityRule(), options);
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToString(3);
  EXPECT_NE(text.find("violation"), std::string::npos);
}

TEST(ViolationTest, RecordRoundTrip) {
  Violation v{"rule_x", 3, 9};
  auto back = ViolationFromRecord(ViolationToRecord(v)).ValueOrDie();
  EXPECT_EQ(back, v);
  EXPECT_FALSE(ViolationFromRecord(Record({Value(1)})).ok());
}

}  // namespace
}  // namespace cleaning
}  // namespace rheem

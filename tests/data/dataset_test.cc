#include "data/dataset.h"

#include <gtest/gtest.h>

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

TEST(DatasetTest, AppendAllCopiesAndMoves) {
  Dataset a = Numbers(3);
  Dataset b = Numbers(2);
  a.AppendAll(b);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(b.size(), 2u);
  Dataset c = Numbers(2);
  a.AppendAll(std::move(c));
  EXPECT_EQ(a.size(), 7u);
}

TEST(DatasetTest, MoveAppendIntoEmptyStealsVector) {
  Dataset a;
  Dataset b = Numbers(4);
  a.AppendAll(std::move(b));
  EXPECT_EQ(a.size(), 4u);
}

TEST(DatasetTest, SplitIntoBalancedChunks) {
  Dataset d = Numbers(10);
  auto parts = d.SplitInto(3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 4u);
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 3u);
  // Order preserved across the split.
  EXPECT_EQ(parts[0].at(0)[0], Value(0));
  EXPECT_EQ(parts[2].at(2)[0], Value(9));
}

TEST(DatasetTest, SplitIntoMorePartsThanRows) {
  auto parts = Numbers(2).SplitInto(5);
  ASSERT_EQ(parts.size(), 5u);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, 2u);
}

TEST(DatasetTest, SplitIntoZeroBecomesOne) {
  auto parts = Numbers(3).SplitInto(0);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 3u);
}

TEST(DatasetTest, SplitPreservesSchema) {
  Dataset d(std::vector<Record>{Record({Value(1)})},
            Schema::Of({Field{"x", ValueType::kInt64}}));
  auto parts = d.SplitInto(2);
  EXPECT_TRUE(parts[0].has_schema());
  EXPECT_EQ(parts[0].schema().field(0).name, "x");
}

TEST(DatasetTest, SortIsStable) {
  std::vector<Record> records;
  records.push_back(Record({Value(1), Value("first")}));
  records.push_back(Record({Value(0), Value("a")}));
  records.push_back(Record({Value(1), Value("second")}));
  Dataset d(std::move(records));
  d.Sort([](const Record& a, const Record& b) {
    return a[0].Compare(b[0]) < 0;
  });
  EXPECT_EQ(d.at(0)[1], Value("a"));
  EXPECT_EQ(d.at(1)[1], Value("first"));
  EXPECT_EQ(d.at(2)[1], Value("second"));
}

TEST(DatasetTest, ValidateUsesSchema) {
  Dataset d(std::vector<Record>{Record({Value("not an int")})},
            Schema::Of({Field{"x", ValueType::kInt64}}));
  EXPECT_FALSE(d.Validate().ok());
  Dataset ok(std::vector<Record>{Record({Value(1)})},
             Schema::Of({Field{"x", ValueType::kInt64}}));
  EXPECT_TRUE(ok.Validate().ok());
  // No schema: vacuously valid.
  EXPECT_TRUE(Numbers(3).Validate().ok());
}

TEST(DatasetTest, EstimatedBytesAccumulates) {
  EXPECT_EQ(Dataset().EstimatedBytes(), 0);
  EXPECT_GT(Numbers(10).EstimatedBytes(), Numbers(1).EstimatedBytes());
}

TEST(DatasetTest, ToStringTruncates) {
  const std::string s = Numbers(20).ToString(3);
  EXPECT_NE(s.find("20 rows"), std::string::npos);
  EXPECT_NE(s.find("17 more"), std::string::npos);
}

}  // namespace
}  // namespace rheem

#include "data/schema.h"

#include <gtest/gtest.h>

namespace rheem {
namespace {

Schema MakeSchema() {
  return Schema::Of({Field{"id", ValueType::kInt64},
                     Field{"name", ValueType::kString},
                     Field{"score", ValueType::kDouble}});
}

TEST(SchemaTest, IndexOfFindsByName) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.IndexOf("id").ValueOrDie(), 0);
  EXPECT_EQ(s.IndexOf("score").ValueOrDie(), 2);
  EXPECT_TRUE(s.IndexOf("missing").status().IsNotFound());
}

TEST(SchemaTest, ValidateAcceptsMatchingRecord) {
  Schema s = MakeSchema();
  EXPECT_TRUE(s.ValidateRecord(Record({Value(1), Value("a"), Value(1.5)})).ok());
}

TEST(SchemaTest, ValidateAcceptsNullAnywhere) {
  Schema s = MakeSchema();
  EXPECT_TRUE(
      s.ValidateRecord(Record({Value(), Value(), Value()})).ok());
}

TEST(SchemaTest, ValidateWidensIntToDouble) {
  Schema s = MakeSchema();
  EXPECT_TRUE(s.ValidateRecord(Record({Value(1), Value("a"), Value(2)})).ok());
}

TEST(SchemaTest, ValidateRejectsArityMismatch) {
  Schema s = MakeSchema();
  EXPECT_TRUE(s.ValidateRecord(Record({Value(1)})).IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsTypeMismatch) {
  Schema s = MakeSchema();
  EXPECT_FALSE(
      s.ValidateRecord(Record({Value("oops"), Value("a"), Value(1.0)})).ok());
  // double where int64 declared is NOT accepted (only widening, not
  // narrowing).
  EXPECT_FALSE(
      s.ValidateRecord(Record({Value(1.5), Value("a"), Value(1.0)})).ok());
}

TEST(SchemaTest, ConcatRenamesDuplicates) {
  Schema s = MakeSchema();
  Schema joined = Schema::Concat(s, s);
  EXPECT_EQ(joined.num_fields(), 6u);
  EXPECT_EQ(joined.field(0).name, "id");
  EXPECT_EQ(joined.field(3).name, "id_r");
  EXPECT_EQ(joined.field(4).name, "name_r");
}

TEST(SchemaTest, ConcatTripleAvoidsCollisionChain) {
  Schema s = Schema::Of({Field{"x", ValueType::kInt64}});
  Schema ss = Schema::Concat(s, s);
  Schema sss = Schema::Concat(ss, s);
  EXPECT_EQ(sss.field(0).name, "x");
  EXPECT_EQ(sss.field(1).name, "x_r");
  EXPECT_EQ(sss.field(2).name, "x_r_r");
}

TEST(SchemaTest, ProjectSubset) {
  Schema p = MakeSchema().Project({2, 0});
  EXPECT_EQ(p.num_fields(), 2u);
  EXPECT_EQ(p.field(0).name, "score");
  EXPECT_EQ(p.field(1).name, "id");
}

TEST(SchemaTest, EqualityStructural) {
  EXPECT_EQ(MakeSchema(), MakeSchema());
  Schema other = Schema::Of({Field{"id", ValueType::kInt64}});
  EXPECT_FALSE(MakeSchema() == other);
}

TEST(SchemaTest, ToStringListsFields) {
  EXPECT_EQ(MakeSchema().ToString(), "{id:int64, name:string, score:double}");
}

}  // namespace
}  // namespace rheem

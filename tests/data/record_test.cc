#include "data/record.h"

#include <gtest/gtest.h>

namespace rheem {
namespace {

TEST(RecordTest, ConstructionAndAccess) {
  Record r({Value(1), Value("a")});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], Value(1));
  EXPECT_EQ(r.at(1), Value("a"));
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(Record().empty());
}

TEST(RecordTest, AppendGrows) {
  Record r;
  r.Append(Value(1));
  r.Append(Value(2));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r[1], Value(2));
}

TEST(RecordTest, ConcatOrdersLeftThenRight) {
  Record l({Value(1), Value(2)});
  Record r({Value("x")});
  Record c = Record::Concat(l, r);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], Value(1));
  EXPECT_EQ(c[2], Value("x"));
}

TEST(RecordTest, ConcatWithEmpty) {
  Record l({Value(1)});
  EXPECT_EQ(Record::Concat(l, Record()), l);
  EXPECT_EQ(Record::Concat(Record(), l), l);
}

TEST(RecordTest, ProjectReordersAndDuplicates) {
  Record r({Value("a"), Value("b"), Value("c")});
  Record p = r.Project({2, 0, 2});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], Value("c"));
  EXPECT_EQ(p[1], Value("a"));
  EXPECT_EQ(p[2], Value("c"));
}

TEST(RecordTest, LexicographicCompare) {
  EXPECT_LT(Record({Value(1), Value(2)}), Record({Value(1), Value(3)}));
  EXPECT_LT(Record({Value(1)}), Record({Value(1), Value(0)}));
  EXPECT_EQ(Record({Value(1)}).Compare(Record({Value(1)})), 0);
  EXPECT_LT(Record(), Record({Value()}));
}

TEST(RecordTest, EqualityAndHash) {
  Record a({Value(1), Value("x")});
  Record b({Value(1), Value("x")});
  Record c({Value(1), Value("y")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(RecordTest, NumericEqualityAcrossIntDouble) {
  EXPECT_EQ(Record({Value(2)}), Record({Value(2.0)}));
  EXPECT_EQ(Record({Value(2)}).Hash(), Record({Value(2.0)}).Hash());
}

TEST(RecordTest, ToStringRendering) {
  EXPECT_EQ(Record({Value(1), Value("a")}).ToString(), "(1, a)");
  EXPECT_EQ(Record().ToString(), "()");
}

TEST(RecordTest, EstimatedSizeGrowsWithFields) {
  Record small({Value(1)});
  Record big({Value(1), Value(std::string(200, 'x'))});
  EXPECT_LT(small.EstimatedSize(), big.EstimatedSize());
}

}  // namespace
}  // namespace rheem

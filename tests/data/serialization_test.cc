#include "data/serialization.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rheem {
namespace {

Record MixedRecord() {
  return Record({Value(), Value(true), Value(int64_t{-42}), Value(3.25),
                 Value("hello \n world"), Value(std::vector<double>{1.5, -2.5})});
}

TEST(SerializationTest, RecordRoundTrip) {
  std::string buf;
  Serializer::EncodeRecord(MixedRecord(), &buf);
  std::size_t offset = 0;
  auto decoded = Serializer::DecodeRecord(buf, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, MixedRecord());
  EXPECT_EQ(offset, buf.size());
}

TEST(SerializationTest, EncodedSizeMatchesActual) {
  std::string buf;
  Serializer::EncodeRecord(MixedRecord(), &buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size()),
            Serializer::EncodedSize(MixedRecord()));
}

TEST(SerializationTest, DatasetRoundTrip) {
  std::vector<Record> records;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    records.push_back(Record({Value(rng.NextInt(-100, 100)),
                              Value(rng.NextDouble()),
                              Value("s" + std::to_string(i))}));
  }
  Dataset original(std::move(records));
  const std::string wire = Serializer::EncodeDataset(original);
  EXPECT_EQ(static_cast<int64_t>(wire.size()),
            Serializer::EncodedSize(original));
  auto decoded = Serializer::DecodeDataset(wire);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded->at(i), original.at(i));
  }
}

TEST(SerializationTest, EmptyDatasetRoundTrip) {
  auto decoded = Serializer::DecodeDataset(Serializer::EncodeDataset(Dataset()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(SerializationTest, EmptyRecordRoundTrip) {
  std::string buf;
  Serializer::EncodeRecord(Record(), &buf);
  std::size_t offset = 0;
  auto decoded = Serializer::DecodeRecord(buf, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(SerializationTest, TruncatedBufferIsIoError) {
  std::string buf;
  Serializer::EncodeRecord(MixedRecord(), &buf);
  for (std::size_t cut : {std::size_t{0}, std::size_t{2}, buf.size() / 2,
                          buf.size() - 1}) {
    std::size_t offset = 0;
    auto r = Serializer::DecodeRecord(buf.substr(0, cut), &offset);
    EXPECT_TRUE(r.status().IsIoError()) << "cut at " << cut;
  }
}

TEST(SerializationTest, GarbageTypeTagIsIoError) {
  std::string buf;
  Serializer::EncodeRecord(Record({Value(1)}), &buf);
  buf[4] = '\x7f';  // corrupt the first field's tag
  std::size_t offset = 0;
  EXPECT_TRUE(Serializer::DecodeRecord(buf, &offset).status().IsIoError());
}

TEST(SerializationTest, ConsecutiveRecordsShareBuffer) {
  std::string buf;
  Serializer::EncodeRecord(Record({Value(1)}), &buf);
  Serializer::EncodeRecord(Record({Value("two")}), &buf);
  std::size_t offset = 0;
  auto first = Serializer::DecodeRecord(buf, &offset);
  auto second = Serializer::DecodeRecord(buf, &offset);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*first)[0], Value(1));
  EXPECT_EQ((*second)[0], Value("two"));
  EXPECT_EQ(offset, buf.size());
}

TEST(SerializationTest, PropertyRandomRecordsRoundTrip) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> fields;
    const int n = static_cast<int>(rng.NextBounded(6));
    for (int f = 0; f < n; ++f) {
      switch (rng.NextBounded(6)) {
        case 0: fields.emplace_back(); break;
        case 1: fields.emplace_back(rng.NextBool()); break;
        case 2: fields.emplace_back(rng.NextInt(-1000, 1000)); break;
        case 3: fields.emplace_back(rng.NextGaussian()); break;
        case 4:
          fields.emplace_back(std::string(rng.NextBounded(20), 'x'));
          break;
        default: {
          std::vector<double> xs(rng.NextBounded(5));
          for (auto& x : xs) x = rng.NextDouble();
          fields.emplace_back(std::move(xs));
        }
      }
    }
    Record original(std::move(fields));
    std::string buf;
    Serializer::EncodeRecord(original, &buf);
    std::size_t offset = 0;
    auto decoded = Serializer::DecodeRecord(buf, &offset);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, original);
  }
}

}  // namespace
}  // namespace rheem

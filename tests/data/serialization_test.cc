#include "data/serialization.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rheem {
namespace {

Record MixedRecord() {
  return Record({Value(), Value(true), Value(int64_t{-42}), Value(3.25),
                 Value("hello \n world"), Value(std::vector<double>{1.5, -2.5})});
}

TEST(SerializationTest, RecordRoundTrip) {
  std::string buf;
  Serializer::EncodeRecord(MixedRecord(), &buf);
  std::size_t offset = 0;
  auto decoded = Serializer::DecodeRecord(buf, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, MixedRecord());
  EXPECT_EQ(offset, buf.size());
}

TEST(SerializationTest, EncodedSizeMatchesActual) {
  std::string buf;
  Serializer::EncodeRecord(MixedRecord(), &buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size()),
            Serializer::EncodedSize(MixedRecord()));
}

TEST(SerializationTest, DatasetRoundTrip) {
  std::vector<Record> records;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    records.push_back(Record({Value(rng.NextInt(-100, 100)),
                              Value(rng.NextDouble()),
                              Value("s" + std::to_string(i))}));
  }
  Dataset original(std::move(records));
  const std::string wire = Serializer::EncodeDataset(original);
  EXPECT_EQ(static_cast<int64_t>(wire.size()),
            Serializer::EncodedSize(original));
  auto decoded = Serializer::DecodeDataset(wire);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded->at(i), original.at(i));
  }
}

TEST(SerializationTest, EmptyDatasetRoundTrip) {
  auto decoded = Serializer::DecodeDataset(Serializer::EncodeDataset(Dataset()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(SerializationTest, EmptyRecordRoundTrip) {
  std::string buf;
  Serializer::EncodeRecord(Record(), &buf);
  std::size_t offset = 0;
  auto decoded = Serializer::DecodeRecord(buf, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(SerializationTest, TruncatedBufferIsIoError) {
  std::string buf;
  Serializer::EncodeRecord(MixedRecord(), &buf);
  for (std::size_t cut : {std::size_t{0}, std::size_t{2}, buf.size() / 2,
                          buf.size() - 1}) {
    std::size_t offset = 0;
    auto r = Serializer::DecodeRecord(buf.substr(0, cut), &offset);
    EXPECT_TRUE(r.status().IsIoError()) << "cut at " << cut;
  }
}

TEST(SerializationTest, GarbageTypeTagIsIoError) {
  std::string buf;
  Serializer::EncodeRecord(Record({Value(1)}), &buf);
  buf[4] = '\x7f';  // corrupt the first field's tag
  std::size_t offset = 0;
  EXPECT_TRUE(Serializer::DecodeRecord(buf, &offset).status().IsIoError());
}

TEST(SerializationTest, ConsecutiveRecordsShareBuffer) {
  std::string buf;
  Serializer::EncodeRecord(Record({Value(1)}), &buf);
  Serializer::EncodeRecord(Record({Value("two")}), &buf);
  std::size_t offset = 0;
  auto first = Serializer::DecodeRecord(buf, &offset);
  auto second = Serializer::DecodeRecord(buf, &offset);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*first)[0], Value(1));
  EXPECT_EQ((*second)[0], Value("two"));
  EXPECT_EQ(offset, buf.size());
}

TEST(SerializationTest, PropertyRandomRecordsRoundTrip) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> fields;
    const int n = static_cast<int>(rng.NextBounded(6));
    for (int f = 0; f < n; ++f) {
      switch (rng.NextBounded(6)) {
        case 0: fields.emplace_back(); break;
        case 1: fields.emplace_back(rng.NextBool()); break;
        case 2: fields.emplace_back(rng.NextInt(-1000, 1000)); break;
        case 3: fields.emplace_back(rng.NextGaussian()); break;
        case 4:
          fields.emplace_back(std::string(rng.NextBounded(20), 'x'));
          break;
        default: {
          std::vector<double> xs(rng.NextBounded(5));
          for (auto& x : xs) x = rng.NextDouble();
          fields.emplace_back(std::move(xs));
        }
      }
    }
    Record original(std::move(fields));
    std::string buf;
    Serializer::EncodeRecord(original, &buf);
    std::size_t offset = 0;
    auto decoded = Serializer::DecodeRecord(buf, &offset);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, original);
  }
}

// --- untrusted-input hardening ---------------------------------------------
// The network service feeds these decoders bytes straight off a socket, so
// declared counts are attacker-controlled. None of the following may crash,
// over-read (ASan-checked in CI) or allocate proportionally to the claim.

std::string LittleEndianBytes(uint64_t v, int n) {
  std::string out;
  for (int i = 0; i < n; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  return out;
}

TEST(SerializationHardeningTest, HugeFieldCountIsRejectedBeforeAllocating) {
  // A 12-byte frame claiming 4 billion fields must fail fast, not reserve.
  std::string buf = LittleEndianBytes(0xfffffff0u, 4);
  buf += LittleEndianBytes(0, 8);  // a few junk bytes
  std::size_t offset = 0;
  auto r = Serializer::DecodeRecord(buf, &offset);
  EXPECT_TRUE(r.status().IsIoError()) << r.status().ToString();
}

TEST(SerializationHardeningTest, HugeRowCountIsRejectedBeforeAllocating) {
  std::string buf = LittleEndianBytes(0xffffffffffffff00ull, 8);
  buf += LittleEndianBytes(0, 4);
  auto r = Serializer::DecodeDataset(buf);
  EXPECT_TRUE(r.status().IsIoError()) << r.status().ToString();
}

TEST(SerializationHardeningTest, HugeDoubleListLengthIsRejectedBeforeAllocating) {
  std::string buf = LittleEndianBytes(1, 4);  // one field
  buf += LittleEndianBytes(static_cast<uint64_t>(ValueType::kDoubleList), 1);
  buf += LittleEndianBytes(0xfffffff0u, 4);  // ~32 GB worth of doubles
  std::size_t offset = 0;
  auto r = Serializer::DecodeRecord(buf, &offset);
  EXPECT_TRUE(r.status().IsIoError()) << r.status().ToString();
}

TEST(SerializationHardeningTest, HugeStringLengthIsRejected) {
  std::string buf = LittleEndianBytes(1, 4);
  buf += LittleEndianBytes(static_cast<uint64_t>(ValueType::kString), 1);
  buf += LittleEndianBytes(0xffffff00u, 4);
  buf += "abc";
  std::size_t offset = 0;
  auto r = Serializer::DecodeRecord(buf, &offset);
  EXPECT_TRUE(r.status().IsIoError()) << r.status().ToString();
}

TEST(SerializationHardeningTest, TrailingBytesAfterDeclaredRowsAreRejected) {
  Dataset ds(std::vector<Record>{Record({Value(int64_t{1})}),
                                 Record({Value("x")})});
  std::string wire = Serializer::EncodeDataset(ds);
  // A torn/concatenated frame: valid encoding plus junk must not silently
  // decode to the two declared rows.
  for (const std::string& junk : {std::string(1, '\0'), std::string("junk")}) {
    auto r = Serializer::DecodeDataset(wire + junk);
    EXPECT_TRUE(r.status().IsIoError()) << r.status().ToString();
  }
  // Two concatenated frames are not one frame.
  auto r = Serializer::DecodeDataset(wire + wire);
  EXPECT_TRUE(r.status().IsIoError()) << r.status().ToString();
  // The untouched frame still round-trips.
  ASSERT_TRUE(Serializer::DecodeDataset(wire).ok());
}

Dataset RandomDataset(Rng* rng) {
  std::vector<Record> records;
  const int rows = static_cast<int>(rng->NextBounded(8));
  for (int i = 0; i < rows; ++i) {
    std::vector<Value> fields;
    const int n = static_cast<int>(rng->NextBounded(5));
    for (int f = 0; f < n; ++f) {
      switch (rng->NextBounded(6)) {
        case 0: fields.emplace_back(); break;
        case 1: fields.emplace_back(rng->NextBool()); break;
        case 2: fields.emplace_back(rng->NextInt(-1000, 1000)); break;
        case 3: fields.emplace_back(rng->NextDouble()); break;
        case 4: {
          std::string s;
          const int len = static_cast<int>(rng->NextBounded(24));
          for (int c = 0; c < len; ++c) {
            s.push_back(static_cast<char>(rng->NextBounded(256)));
          }
          fields.emplace_back(std::move(s));
          break;
        }
        default: {
          std::vector<double> xs(rng->NextBounded(4));
          for (auto& x : xs) x = rng->NextDouble();
          fields.emplace_back(std::move(xs));
        }
      }
    }
    records.push_back(Record(std::move(fields)));
  }
  return Dataset(std::move(records));
}

// Fuzz: random truncations and bit flips over valid encodings must return
// errors or valid records — never crash, hang or read out of bounds. Runs
// under ASan in CI (sanitizer job), where any over-read aborts the test.
TEST(SerializationHardeningTest, FuzzTruncationsAndBitFlipsNeverCrash) {
  Rng rng(20260808);
  for (int trial = 0; trial < 400; ++trial) {
    Dataset ds = RandomDataset(&rng);
    const std::string wire = Serializer::EncodeDataset(ds);

    // Every truncation point: must be IoError, never OK (a shorter frame
    // cannot satisfy the trailing-bytes contract either way).
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      auto r = Serializer::DecodeDataset(wire.substr(0, cut));
      EXPECT_FALSE(r.ok()) << "truncated frame decoded at cut " << cut;
    }

    // Random bit flips: decode may succeed (a flipped payload bit is still
    // a valid value) but must never crash; when it succeeds the result must
    // re-encode within the input's length bound (no over-read amplification).
    for (int flips = 0; flips < 32; ++flips) {
      std::string mutated = wire;
      if (mutated.empty()) break;
      const std::size_t pos = rng.NextBounded(mutated.size());
      mutated[pos] = static_cast<char>(
          mutated[pos] ^ static_cast<char>(1u << rng.NextBounded(8)));
      auto r = Serializer::DecodeDataset(mutated);
      if (r.ok()) {
        EXPECT_LE(Serializer::EncodedSize(*r),
                  static_cast<int64_t>(mutated.size()));
      }
    }

    // Random garbage of the same length as the frame.
    std::string garbage(wire.size(), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.NextBounded(256));
    (void)Serializer::DecodeDataset(garbage);  // must not crash
  }
}

}  // namespace
}  // namespace rheem

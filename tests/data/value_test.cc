#include "data/value.h"

#include <gtest/gtest.h>

namespace rheem {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value(int64_t{1}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(1).type(), ValueType::kInt64);
  EXPECT_EQ(Value(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("s").type(), ValueType::kString);
  EXPECT_EQ(Value(std::vector<double>{1.0}).type(), ValueType::kDoubleList);
}

TEST(ValueTest, CheckedAccessorsMatchType) {
  EXPECT_EQ(Value(true).AsBool().ValueOrDie(), true);
  EXPECT_EQ(Value(42).AsInt64().ValueOrDie(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble().ValueOrDie(), 2.5);
  EXPECT_EQ(Value("hi").AsString().ValueOrDie(), "hi");
  EXPECT_EQ(Value(std::vector<double>{1, 2}).AsDoubleList().ValueOrDie(),
            (std::vector<double>{1, 2}));
}

TEST(ValueTest, CheckedAccessorsRejectWrongType) {
  EXPECT_FALSE(Value(1).AsBool().ok());
  EXPECT_FALSE(Value("x").AsInt64().ok());
  EXPECT_FALSE(Value("x").AsDouble().ok());
  EXPECT_FALSE(Value(1).AsString().ok());
  EXPECT_FALSE(Value(1.0).AsDoubleList().ok());
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value(3).AsDouble().ValueOrDie(), 3.0);
}

TEST(ValueTest, ToDoubleOrFallbacks) {
  EXPECT_DOUBLE_EQ(Value(2).ToDoubleOr(-1), 2.0);
  EXPECT_DOUBLE_EQ(Value(2.5).ToDoubleOr(-1), 2.5);
  EXPECT_DOUBLE_EQ(Value(true).ToDoubleOr(-1), 1.0);
  EXPECT_DOUBLE_EQ(Value("x").ToDoubleOr(-1), -1.0);
  EXPECT_DOUBLE_EQ(Value().ToDoubleOr(-1), -1.0);
}

TEST(ValueTest, ToInt64OrFallbacks) {
  EXPECT_EQ(Value(7).ToInt64Or(-1), 7);
  EXPECT_EQ(Value(7.9).ToInt64Or(-1), 7);
  EXPECT_EQ(Value("x").ToInt64Or(-1), -1);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_NE(Value(2), Value(2.5));
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // null < bool < numeric < string < list
  EXPECT_LT(Value(), Value(false));
  EXPECT_LT(Value(true), Value(0));
  EXPECT_LT(Value(999), Value("a"));
  EXPECT_LT(Value("z"), Value(std::vector<double>{}));
}

TEST(ValueTest, OrderingWithinTypes) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(-1.5), Value(1));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value(false), Value(true));
  EXPECT_LT(Value(std::vector<double>{1, 2}), Value(std::vector<double>{1, 3}));
  EXPECT_LT(Value(std::vector<double>{1}), Value(std::vector<double>{1, 0}));
}

TEST(ValueTest, NullEqualsOnlyNull) {
  EXPECT_EQ(Value(), Value::Null());
  EXPECT_NE(Value(), Value(0));
  EXPECT_NE(Value(), Value(""));
}

TEST(ValueTest, CompareIsAntisymmetric) {
  const Value values[] = {Value(),       Value(true),  Value(-3),
                          Value(2.5),    Value("txt"), Value(std::vector<double>{1})};
  for (const Value& a : values) {
    for (const Value& b : values) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a));
    }
  }
}

TEST(ValueTest, HashEqualValuesCollide) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value(std::vector<double>{1, 2}).Hash(),
            Value(std::vector<double>{1, 2}).Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(std::vector<double>{1, 2}).ToString(), "[1,2]");
}

TEST(ValueTest, EstimatedSizeScalesWithPayload) {
  EXPECT_LT(Value(1).EstimatedSize(), Value(std::string(100, 'x')).EstimatedSize());
  EXPECT_EQ(Value(std::vector<double>(10)).EstimatedSize(), 88);
}

}  // namespace
}  // namespace rheem

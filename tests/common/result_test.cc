#include "common/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace rheem {
namespace {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto add_one = [](int x) -> Result<int> {
    RHEEM_ASSIGN_OR_RETURN(int v, ParsePositive(x));
    return v + 1;
  };
  ASSERT_TRUE(add_one(5).ok());
  EXPECT_EQ(add_one(5).ValueOrDie(), 6);
  EXPECT_TRUE(add_one(-5).status().IsInvalidArgument());
}

TEST(ResultTest, CopySemantics) {
  Result<std::string> a = std::string("abc");
  Result<std::string> b = a;
  EXPECT_EQ(*a, "abc");
  EXPECT_EQ(*b, "abc");
  Result<std::string> e = Status::Internal("err");
  b = e;
  EXPECT_FALSE(b.ok());
  EXPECT_TRUE(b.status().IsInternal());
}

}  // namespace
}  // namespace rheem

#include "common/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace rheem {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(7);
  const uint64_t first = a.NextU64();
  a.NextU64();
  a.Seed(7);
  EXPECT_EQ(a.NextU64(), first);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(42);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble(-2.5, 4.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 4.5);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesProbability) {
  Rng rng(14);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(RngTest, UniformityChiSquaredSmoke) {
  // 16 buckets over NextBounded(16); chi^2 should be far below the
  // catastrophic range for 15 dof.
  Rng rng(15);
  std::vector<int> buckets(16, 0);
  const int n = 16000;
  for (int i = 0; i < n; ++i) ++buckets[rng.NextBounded(16)];
  double chi2 = 0.0;
  const double expected = n / 16.0;
  for (int b : buckets) {
    chi2 += (b - expected) * (b - expected) / expected;
  }
  EXPECT_LT(chi2, 50.0);
}

}  // namespace
}  // namespace rheem

#include "common/status.h"

#include <gtest/gtest.h>

namespace rheem {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::InvalidPlan("x").IsInvalidPlan());
  EXPECT_TRUE(Status::ExecutionError("x").IsExecutionError());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("thing missing").message(), "thing missing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidPlan("no sink").ToString(), "InvalidPlan: no sink");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::IoError("disk gone");
  Status b = a;  // copy ctor
  EXPECT_TRUE(b.IsIoError());
  EXPECT_EQ(b.message(), "disk gone");
  Status c;
  c = a;  // copy assign
  EXPECT_TRUE(c.IsIoError());
  // Copying OK over non-OK resets.
  c = Status::OK();
  EXPECT_TRUE(c.ok());
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status a = Status::Internal("boom");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::NotFound("key").WithContext("loading config");
  EXPECT_EQ(st.message(), "loading config: key");
  EXPECT_TRUE(st.IsNotFound());
  // OK statuses ignore context.
  EXPECT_TRUE(Status::OK().WithContext("whatever").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::IoError("inner"); };
  auto outer = [&]() -> Status {
    RHEEM_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(outer().IsIoError());

  auto succeeds = []() -> Status { return Status::OK(); };
  auto outer_ok = [&]() -> Status {
    RHEEM_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(outer_ok().IsInternal());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kExecutionError),
               "ExecutionError");
}

}  // namespace
}  // namespace rheem

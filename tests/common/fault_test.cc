#include "common/fault.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/config.h"
#include "common/metrics.h"

namespace rheem {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Clear();
    FaultInjector::Global().Seed(42);
    FaultInjector::Global().set_enabled(true);
  }
  void TearDown() override {
    FaultInjector::Global().set_enabled(false);
    FaultInjector::Global().Clear();
  }
};

TEST_F(FaultInjectorTest, DisabledHitsAreFree) {
  FaultInjector::Global().set_enabled(false);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(FaultInjector::Global().Hit("test.site").ok());
  }
  EXPECT_EQ(FaultInjector::Global().hits("test.site"), 0);
}

TEST_F(FaultInjectorTest, NthFiresExactlyOnce) {
  ASSERT_TRUE(
      FaultInjector::Global().AddSpec("test.nth", FaultTrigger::Nth(3)).ok());
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    Status st = FaultInjector::Global().Hit("test.nth");
    if (!st.ok()) {
      ++failures;
      EXPECT_TRUE(st.IsExecutionError());
      EXPECT_NE(st.message().find("test.nth"), std::string::npos);
      EXPECT_NE(st.message().find("hit 3"), std::string::npos);
      EXPECT_NE(st.message().find("seed 42"), std::string::npos);
    }
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(FaultInjector::Global().hits("test.nth"), 10);
  EXPECT_EQ(FaultInjector::Global().fired("test.nth"), 1);
}

TEST_F(FaultInjectorTest, EveryKRespectsLimit) {
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("test.every", FaultTrigger::EveryK(3, /*max_fires=*/2))
                  .ok());
  int failures = 0;
  for (int i = 0; i < 20; ++i) {
    if (!FaultInjector::Global().Hit("test.every").ok()) ++failures;
  }
  EXPECT_EQ(failures, 2);  // hits 3 and 6; the limit stops hit 9
}

TEST_F(FaultInjectorTest, MatchFiltersByDetailSubstring) {
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("test.match", FaultTrigger::EveryK(1, /*max_fires=*/-1),
                           "platform=sparksim,")
                  .ok());
  EXPECT_TRUE(
      FaultInjector::Global().Hit("test.match", "platform=javasim,").ok());
  EXPECT_FALSE(
      FaultInjector::Global().Hit("test.match", "platform=sparksim,").ok());
  EXPECT_TRUE(
      FaultInjector::Global().Hit("test.match", "platform=relsim,").ok());
  EXPECT_EQ(FaultInjector::Global().hits("test.match"), 3);
  EXPECT_EQ(FaultInjector::Global().fired("test.match"), 1);
}

TEST_F(FaultInjectorTest, NthCountsMatchedHitsNotSiteHits) {
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("test.nthmatch", FaultTrigger::Nth(2), "stage=1,")
                  .ok());
  // Interleave non-matching hits; only the 2nd *matching* hit fires.
  EXPECT_TRUE(FaultInjector::Global().Hit("test.nthmatch", "stage=0,").ok());
  EXPECT_TRUE(FaultInjector::Global().Hit("test.nthmatch", "stage=1,").ok());
  EXPECT_TRUE(FaultInjector::Global().Hit("test.nthmatch", "stage=0,").ok());
  EXPECT_FALSE(FaultInjector::Global().Hit("test.nthmatch", "stage=1,").ok());
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicInSeed) {
  auto run = [](uint64_t seed) {
    FaultInjector::Global().Clear();
    FaultInjector::Global().Seed(seed);
    EXPECT_TRUE(FaultInjector::Global()
                    .AddSpec("test.prob", FaultTrigger::Probability(0.3))
                    .ok());
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!FaultInjector::Global().Hit("test.prob").ok());
    }
    return fired;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b);  // same seed, same decisions
  EXPECT_NE(a, c);  // different seed explores a different schedule
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 20);   // ~60 expected at p=0.3
  EXPECT_LT(fires, 120);
}

TEST_F(FaultInjectorTest, SeedResetsHitState) {
  ASSERT_TRUE(
      FaultInjector::Global().AddSpec("test.reseed", FaultTrigger::Nth(1)).ok());
  EXPECT_FALSE(FaultInjector::Global().Hit("test.reseed").ok());
  EXPECT_TRUE(FaultInjector::Global().Hit("test.reseed").ok());
  FaultInjector::Global().Seed(42);  // replay: the same schedule again
  EXPECT_FALSE(FaultInjector::Global().Hit("test.reseed").ok());
}

TEST_F(FaultInjectorTest, ParseSpecRoundTrip) {
  ASSERT_TRUE(FaultInjector::Global()
                  .ParseSpec("test.parse:nth=2; "
                             "test.parse2@platform=sparksim,:every=3:limit=1")
                  .ok());
  EXPECT_TRUE(FaultInjector::Global().Hit("test.parse").ok());
  EXPECT_FALSE(FaultInjector::Global().Hit("test.parse").ok());
  EXPECT_TRUE(FaultInjector::Global().Hit("test.parse").ok());  // nth limit=1

  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(
        FaultInjector::Global().Hit("test.parse2", "platform=sparksim,").ok());
  }
  EXPECT_FALSE(
      FaultInjector::Global().Hit("test.parse2", "platform=sparksim,").ok());
  // limit=1 exhausted: the 6th matched hit does not fire.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(
        FaultInjector::Global().Hit("test.parse2", "platform=sparksim,").ok());
  }
}

TEST_F(FaultInjectorTest, ParseSpecRejectsMalformedEntries) {
  EXPECT_FALSE(FaultInjector::Global().ParseSpec("siteonly").ok());
  EXPECT_FALSE(FaultInjector::Global().ParseSpec("site:bogus=1").ok());
  EXPECT_FALSE(FaultInjector::Global().ParseSpec("site:limit=2").ok());
  EXPECT_FALSE(FaultInjector::Global().ParseSpec("site:nth=0").ok());
  EXPECT_FALSE(FaultInjector::Global().ParseSpec("site:p=1.5").ok());
}

TEST_F(FaultInjectorTest, ExportsCountersThroughMetricsRegistry) {
  MetricsRegistry::Global().Reset();
  MetricsRegistry::Global().set_enabled(true);
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("test.metrics", FaultTrigger::Nth(2))
                  .ok());
  for (int i = 0; i < 5; ++i) {
    (void)FaultInjector::Global().Hit("test.metrics");
  }
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("fault.test.metrics.hits"), 5);
  EXPECT_EQ(snap.counter("fault.test.metrics.fired"), 1);
  MetricsRegistry::Global().set_enabled(false);
}

TEST_F(FaultInjectorTest, ApplyFaultConfigWiresSeedSpecAndEnable) {
  FaultInjector::Global().set_enabled(false);
  Config config;
  config.SetInt("fault.seed", 99);
  config.Set("fault.spec", "test.config:nth=1");
  ApplyFaultConfig(config);
  EXPECT_TRUE(FaultInjector::Global().enabled());
  EXPECT_EQ(FaultInjector::Global().seed(), 99u);
  EXPECT_FALSE(FaultInjector::Global().Hit("test.config").ok());

  Config off;
  off.SetBool("fault.enabled", false);
  ApplyFaultConfig(off);
  EXPECT_FALSE(FaultInjector::Global().enabled());
}

TEST_F(FaultInjectorTest, ConcurrentHitsHonorFireLimit) {
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("test.race", FaultTrigger::EveryK(1, /*max_fires=*/8))
                  .ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 100; ++i) {
        if (!FaultInjector::Global().Hit("test.race").ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 8);  // the limit is exact even under races
  EXPECT_EQ(FaultInjector::Global().hits("test.race"), 800);
}

}  // namespace
}  // namespace rheem

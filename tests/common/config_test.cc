#include "common/config.h"

#include <gtest/gtest.h>

namespace rheem {
namespace {

TEST(ConfigTest, MissingKeyFallsBack) {
  Config c;
  EXPECT_EQ(c.GetInt("absent", 7).ValueOrDie(), 7);
  EXPECT_EQ(c.GetDouble("absent", 1.5).ValueOrDie(), 1.5);
  EXPECT_EQ(c.GetBool("absent", true).ValueOrDie(), true);
  EXPECT_EQ(c.GetString("absent", "dflt").ValueOrDie(), "dflt");
  EXPECT_FALSE(c.Has("absent"));
}

TEST(ConfigTest, TypedSettersRoundTrip) {
  Config c;
  c.SetInt("i", -12);
  c.SetDouble("d", 2.25);
  c.SetBool("b", true);
  c.Set("s", "text");
  EXPECT_EQ(c.GetInt("i", 0).ValueOrDie(), -12);
  EXPECT_DOUBLE_EQ(c.GetDouble("d", 0).ValueOrDie(), 2.25);
  EXPECT_TRUE(c.GetBool("b", false).ValueOrDie());
  EXPECT_EQ(c.GetString("s", "").ValueOrDie(), "text");
  EXPECT_TRUE(c.Has("i"));
}

TEST(ConfigTest, MalformedValuesAreErrorsNotFallbacks) {
  Config c;
  c.Set("i", "12abc");
  c.Set("d", "x");
  c.Set("b", "maybe");
  EXPECT_TRUE(c.GetInt("i", 0).status().IsInvalidArgument());
  EXPECT_TRUE(c.GetDouble("d", 0).status().IsInvalidArgument());
  EXPECT_TRUE(c.GetBool("b", false).status().IsInvalidArgument());
}

TEST(ConfigTest, BoolSpellings) {
  Config c;
  for (const char* t : {"true", "TRUE", "1", "yes"}) {
    c.Set("k", t);
    EXPECT_TRUE(c.GetBool("k", false).ValueOrDie()) << t;
  }
  for (const char* f : {"false", "0", "no", "No"}) {
    c.Set("k", f);
    EXPECT_FALSE(c.GetBool("k", true).ValueOrDie()) << f;
  }
}

TEST(ConfigTest, IntParsesAsDoubleToo) {
  Config c;
  c.SetInt("k", 5);
  EXPECT_DOUBLE_EQ(c.GetDouble("k", 0).ValueOrDie(), 5.0);
}

TEST(ConfigTest, MergeFromOtherWins) {
  Config a;
  a.SetInt("x", 1);
  a.SetInt("keep", 9);
  Config b;
  b.SetInt("x", 2);
  b.SetInt("new", 3);
  a.MergeFrom(b);
  EXPECT_EQ(a.GetInt("x", 0).ValueOrDie(), 2);
  EXPECT_EQ(a.GetInt("keep", 0).ValueOrDie(), 9);
  EXPECT_EQ(a.GetInt("new", 0).ValueOrDie(), 3);
}

TEST(ConfigTest, OverwriteSameKey) {
  Config c;
  c.SetInt("k", 1);
  c.SetInt("k", 2);
  EXPECT_EQ(c.GetInt("k", 0).ValueOrDie(), 2);
  EXPECT_EQ(c.entries().size(), 1u);
}

}  // namespace
}  // namespace rheem

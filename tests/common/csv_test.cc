#include "common/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace rheem {
namespace {

TEST(CsvCodecTest, ParsesPlainLine) {
  CsvCodec codec;
  auto fields = codec.ParseLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvCodecTest, ParsesQuotedFieldWithComma) {
  CsvCodec codec;
  auto fields = codec.ParseLine(R"(a,"b,c",d)");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b,c", "d"}));
}

TEST(CsvCodecTest, ParsesEscapedQuotes) {
  CsvCodec codec;
  auto fields = codec.ParseLine(R"("say ""hi""",x)");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(CsvCodecTest, EmptyFields) {
  CsvCodec codec;
  auto fields = codec.ParseLine(",,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 3u);
}

TEST(CsvCodecTest, RejectsUnterminatedQuote) {
  CsvCodec codec;
  EXPECT_FALSE(codec.ParseLine(R"("oops)").ok());
}

TEST(CsvCodecTest, RejectsMidFieldQuote) {
  CsvCodec codec;
  EXPECT_FALSE(codec.ParseLine(R"(ab"cd",x)").ok());
}

TEST(CsvCodecTest, FormatQuotesOnlyWhenNeeded) {
  CsvCodec codec;
  EXPECT_EQ(codec.FormatLine({"a", "b"}), "a,b");
  EXPECT_EQ(codec.FormatLine({"a,b"}), "\"a,b\"");
  EXPECT_EQ(codec.FormatLine({"he said \"x\""}), "\"he said \"\"x\"\"\"");
}

TEST(CsvCodecTest, FormatParseRoundTrip) {
  CsvCodec codec;
  const std::vector<std::string> original{"plain", "with,comma", "with\"quote",
                                          "", "multi\nline"};
  auto parsed = codec.ParseLine(codec.FormatLine(original));
  // Note: embedded newline survives quoting in a document context; at line
  // level we use ParseDocument.
  auto doc = codec.ParseDocument(codec.FormatLine(original) + "\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->size(), 1u);
  EXPECT_EQ((*doc)[0], original);
  (void)parsed;
}

TEST(CsvCodecTest, DocumentHandlesCrLfAndQuotedNewlines) {
  CsvCodec codec;
  auto rows = codec.ParseDocument("a,b\r\n\"x\ny\",z\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"x\ny", "z"}));
}

TEST(CsvCodecTest, CustomDelimiter) {
  CsvCodec codec('\t');
  auto fields = codec.ParseLine("a\tb");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b"}));
}

TEST(FileIoTest, WriteThenReadRoundTrip) {
  const std::string path = testing::TempDir() + "/rheem_csv_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello\nworld");
  std::remove(path.c_str());
}

TEST(FileIoTest, ReadMissingFileIsIoError) {
  EXPECT_TRUE(ReadFileToString("/nonexistent/definitely/not/here").status()
                  .IsIoError());
}

}  // namespace
}  // namespace rheem

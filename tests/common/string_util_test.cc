#include "common/string_util.h"

#include <gtest/gtest.h>

namespace rheem {
namespace {

TEST(SplitStringTest, Basic) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitStringTest, KeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(JoinStringsTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"x", "yy", "zzz"};
  EXPECT_EQ(JoinStrings(parts, "::"), "x::yy::zzz");
  EXPECT_EQ(SplitString(JoinStrings(parts, ","), ','), parts);
}

TEST(JoinStringsTest, EmptyAndSingle) {
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" a b "), "a b");
}

TEST(PrefixSuffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("rheem.platforms", "rheem."));
  EXPECT_FALSE(StartsWith("rheem", "rheem."));
  EXPECT_TRUE(EndsWith("table.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "table.csv"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo-123"), "hello-123");
}

TEST(FormatCountTest, ThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(-1234567), "-1,234,567");
}

TEST(FormatDurationTest, AdaptiveUnits) {
  EXPECT_EQ(FormatDuration(2.5), "2.500 s");
  EXPECT_EQ(FormatDuration(0.0123), "12.300 ms");
  EXPECT_EQ(FormatDuration(0.000045), "45.0 us");
}

TEST(FormatBytesTest, BinaryUnits) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MiB");
}

}  // namespace
}  // namespace rheem

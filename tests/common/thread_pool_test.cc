#include "common/thread_pool.h"

#include <atomic>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

namespace rheem {
namespace {

TEST(ThreadPoolTest, RunsScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::promise<void> done;
  auto fut = done.get_future();
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&]() {
      if (counter.fetch_add(1) + 1 == 100) done.set_value();
    });
  }
  fut.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto fut = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto fut = pool.Submit([]() { return 1; });
  EXPECT_EQ(fut.get(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(16,
                       [](std::size_t i) {
                         if (i == 7) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ActuallyUsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.ParallelFor(64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Schedule([&]() { counter.fetch_add(1); });
    }
  }  // destructor must flush or drop without deadlock/crash
  SUCCEED();
}

TEST(ThreadPoolTest, PendingReportsQueuedTasks) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  ASSERT_TRUE(pool.Schedule([&]() {
    started.set_value();
    gate.wait();
  }));
  started.get_future().wait();  // the only worker is now blocked
  EXPECT_EQ(pool.pending(), 0u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pool.Schedule([gate]() { gate.wait(); }));
  }
  EXPECT_EQ(pool.pending(), 5u);
  release.set_value();
}

TEST(ThreadPoolTest, ScheduleAfterShutdownReturnsFalse) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.Schedule([]() {}));
  pool.Shutdown();
  // Must refuse (and not deadlock): no worker would ever run the task.
  EXPECT_FALSE(pool.Schedule([]() { FAIL() << "ran after shutdown"; }));
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> calls{0};
  pool.ParallelFor(8, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);  // falls back to the calling thread
}

TEST(ThreadPoolTest, DefaultPoolIsUsable) {
  auto fut = DefaultThreadPool().Submit([]() { return 5; });
  EXPECT_EQ(fut.get(), 5);
  EXPECT_GE(DefaultThreadPool().num_threads(), 2u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // ParallelFor is work-claiming: the caller drains indices itself, so a
  // pool worker may start a nested ParallelFor on the same pool even when
  // every other worker is busy doing the same.
  ThreadPool pool(2);
  std::atomic<int> inner_calls{0};
  pool.ParallelFor(4, [&](std::size_t) {
    pool.ParallelFor(8, [&](std::size_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 4 * 8);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(16,
                       [](std::size_t i) {
                         if (i % 2 == 0) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

}  // namespace
}  // namespace rheem

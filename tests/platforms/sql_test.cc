#include "platforms/relsim/sql.h"

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace rheem {
namespace relsim {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table emp(Schema::Of({Field{"id", ValueType::kInt64},
                          Field{"dept", ValueType::kString},
                          Field{"salary", ValueType::kDouble},
                          Field{"age", ValueType::kInt64}}));
    ASSERT_TRUE(emp.AppendRow(Record({Value(1), Value("eng"), Value(100.0), Value(30)})).ok());
    ASSERT_TRUE(emp.AppendRow(Record({Value(2), Value("eng"), Value(120.0), Value(35)})).ok());
    ASSERT_TRUE(emp.AppendRow(Record({Value(3), Value("ops"), Value(90.0), Value(28)})).ok());
    ASSERT_TRUE(emp.AppendRow(Record({Value(4), Value("ops"), Value(80.0), Value(41)})).ok());
    ASSERT_TRUE(emp.AppendRow(Record({Value(5), Value("hr"), Value(70.0), Value(50)})).ok());
    ASSERT_TRUE(catalog_.Register("emp", std::move(emp)).ok());
  }
  Catalog catalog_;
};

TEST_F(SqlTest, SelectStar) {
  auto t = ExecuteSql(catalog_, "SELECT * FROM emp");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 5u);
  EXPECT_EQ(t->num_columns(), 4u);
}

TEST_F(SqlTest, WhereComparisonAndLogic) {
  auto t = ExecuteSql(
      catalog_, "SELECT id FROM emp WHERE salary >= 90 AND dept <> 'hr'");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 3u);
  auto t2 = ExecuteSql(catalog_,
                       "SELECT id FROM emp WHERE dept = 'hr' OR age > 40");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->num_rows(), 2u);  // ids 4 and 5
  auto t3 = ExecuteSql(catalog_, "SELECT id FROM emp WHERE NOT dept = 'eng'");
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(t3->num_rows(), 3u);
}

TEST_F(SqlTest, ComputedProjectionWithAlias) {
  auto t = ExecuteSql(catalog_,
                      "SELECT id, salary * 1.1 AS raised FROM emp WHERE id = 1");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->schema().field(1).name, "raised");
  EXPECT_NEAR(t->at(0, 1).ToDoubleOr(0), 110.0, 1e-9);
}

TEST_F(SqlTest, ArithmeticPrecedence) {
  auto t = ExecuteSql(catalog_, "SELECT 2 + 3 * 4 AS v FROM emp LIMIT 1");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0, 0), Value(14));
  auto t2 = ExecuteSql(catalog_, "SELECT (2 + 3) * 4 AS v FROM emp LIMIT 1");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->at(0, 0), Value(20));
}

TEST_F(SqlTest, UnaryMinus) {
  auto t = ExecuteSql(catalog_, "SELECT -age AS neg FROM emp WHERE id = 1");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->at(0, 0), Value(-30));
}

TEST_F(SqlTest, GroupByWithAggregates) {
  auto t = ExecuteSql(catalog_,
                      "SELECT dept, COUNT(*) AS n, SUM(salary) AS total, "
                      "AVG(age) AS avg_age FROM emp GROUP BY dept "
                      "ORDER BY dept");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->at(0, 0), Value("eng"));
  EXPECT_EQ(t->at(0, 1), Value(int64_t{2}));
  EXPECT_EQ(t->at(0, 2), Value(220.0));
  EXPECT_EQ(t->at(0, 3), Value(32.5));
}

TEST_F(SqlTest, GlobalAggregate) {
  auto t = ExecuteSql(catalog_, "SELECT COUNT(*) AS n, MAX(salary) AS top FROM emp");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->at(0, 0), Value(int64_t{5}));
  EXPECT_EQ(t->at(0, 1), Value(120.0));
}

TEST_F(SqlTest, AggregateWithWhere) {
  auto t = ExecuteSql(catalog_,
                      "SELECT MIN(salary) AS low FROM emp WHERE dept = 'eng'");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0, 0), Value(100.0));
}

TEST_F(SqlTest, OrderByDescAndLimit) {
  auto t = ExecuteSql(catalog_,
                      "SELECT id, salary FROM emp ORDER BY salary DESC LIMIT 2");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->at(0, 0), Value(2));
  EXPECT_EQ(t->at(1, 0), Value(1));
}

TEST_F(SqlTest, LimitLargerThanTableIsNoOp) {
  auto t = ExecuteSql(catalog_, "SELECT * FROM emp LIMIT 100");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 5u);
}

TEST_F(SqlTest, KeywordsAreCaseInsensitive) {
  auto t = ExecuteSql(catalog_,
                      "select dept, count(*) as n from emp group by dept "
                      "order by n desc limit 1");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->at(0, 1), Value(int64_t{2}));
}

TEST_F(SqlTest, ParseErrorsAreReported) {
  EXPECT_FALSE(ExecuteSql(catalog_, "SELECT FROM emp").ok());
  EXPECT_FALSE(ExecuteSql(catalog_, "SELECT * emp").ok());
  EXPECT_FALSE(ExecuteSql(catalog_, "SELECT * FROM emp WHERE").ok());
  EXPECT_FALSE(ExecuteSql(catalog_, "SELECT * FROM emp garbage").ok());
  EXPECT_FALSE(ExecuteSql(catalog_, "SELECT SUM(*) FROM emp").ok());
  EXPECT_FALSE(ExecuteSql(catalog_, "SELECT * FROM emp WHERE name = 'x").ok());
  EXPECT_FALSE(ExecuteSql(catalog_, "SELECT * FROM emp LIMIT x").ok());
}

TEST_F(SqlTest, SemanticErrorsAreReported) {
  // Unknown table / column.
  EXPECT_TRUE(ExecuteSql(catalog_, "SELECT * FROM ghosts").status().IsNotFound());
  EXPECT_FALSE(ExecuteSql(catalog_, "SELECT nope FROM emp").ok());
  // Non-aggregate item outside GROUP BY.
  EXPECT_FALSE(
      ExecuteSql(catalog_, "SELECT age, COUNT(*) FROM emp GROUP BY dept").ok());
  // Star mixed with aggregation.
  EXPECT_FALSE(ExecuteSql(catalog_, "SELECT *, COUNT(*) FROM emp").ok());
}

TEST_F(SqlTest, ExplainRendersNormalizedQuery) {
  auto text = ExplainSql(
      "select dept, sum(salary) from emp where age > 30 group by dept "
      "order by dept limit 3");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text,
            "SELECT dept, SUM(salary) FROM emp WHERE (age > 30) "
            "GROUP BY dept ORDER BY dept ASC LIMIT 3");
}

TEST_F(SqlTest, ExplainRejectsBadQuery) {
  EXPECT_FALSE(ExplainSql("DELETE FROM emp").ok());
}

TEST_F(SqlTest, StringLiteralQuotingSharedWithCoreDialect) {
  Table people(Schema::Of({Field{"name", ValueType::kString}}));
  ASSERT_TRUE(people.AppendRow(Record({Value("O'Brien")})).ok());
  ASSERT_TRUE(people.AppendRow(Record({Value("caf\xC3\xA9")})).ok());
  ASSERT_TRUE(catalog_.Register("people", std::move(people)).ok());

  // SQL-standard '' escaping for an embedded quote.
  auto r = ExecuteSql(catalog_,
                      "SELECT name FROM people WHERE name = 'O''Brien'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->at(0, 0), Value("O'Brien"));

  // Non-ASCII bytes pass through literals untouched.
  auto r2 = ExecuteSql(catalog_,
                       "SELECT name FROM people WHERE name = 'caf\xC3\xA9'");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r2->num_rows(), 1u);
  EXPECT_EQ(r2->at(0, 0), Value("caf\xC3\xA9"));

  // The shared helper both dialects emit parses back to the same literal.
  EXPECT_EQ(SqlQuoteString("O'Brien"), "'O''Brien'");
  auto r3 = ExecuteSql(catalog_, "SELECT name FROM people WHERE name = " +
                                     SqlQuoteString("it's 'quoted'"));
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_EQ(r3->num_rows(), 0u);

  // Render round-trip: the normalized query re-quotes through the helper
  // and stays parseable.
  auto text =
      ExplainSql("SELECT name FROM people WHERE name = 'O''Brien'");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("'O''Brien'"), std::string::npos);
}

class SqlJoinTest : public SqlTest {
 protected:
  void SetUp() override {
    SqlTest::SetUp();
    Table depts(Schema::Of({Field{"name", ValueType::kString},
                            Field{"floor", ValueType::kInt64}}));
    ASSERT_TRUE(depts.AppendRow(Record({Value("eng"), Value(3)})).ok());
    ASSERT_TRUE(depts.AppendRow(Record({Value("ops"), Value(1)})).ok());
    ASSERT_TRUE(catalog_.Register("depts", std::move(depts)).ok());
  }
};

TEST_F(SqlJoinTest, EquiJoinProducesConcatenatedRows) {
  auto t = ExecuteSql(catalog_,
                      "SELECT id, name, floor FROM emp JOIN depts "
                      "ON dept = name ORDER BY id");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // hr has no matching department: inner join drops id 5.
  ASSERT_EQ(t->num_rows(), 4u);
  EXPECT_EQ(t->at(0, 0), Value(1));
  EXPECT_EQ(t->at(0, 1), Value("eng"));
  EXPECT_EQ(t->at(0, 2), Value(3));
}

TEST_F(SqlJoinTest, JoinComposesWithWhereAndAggregation) {
  auto t = ExecuteSql(catalog_,
                      "SELECT floor, SUM(salary) AS total FROM emp JOIN depts "
                      "ON dept = name WHERE salary >= 90 GROUP BY floor "
                      "ORDER BY floor");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->at(0, 0), Value(1));    // ops floor
  EXPECT_EQ(t->at(0, 1), Value(90.0));
  EXPECT_EQ(t->at(1, 1), Value(220.0));
}

TEST_F(SqlJoinTest, JoinErrorsReported) {
  EXPECT_FALSE(ExecuteSql(catalog_, "SELECT * FROM emp JOIN ON x = y").ok());
  EXPECT_FALSE(ExecuteSql(catalog_, "SELECT * FROM emp JOIN depts").ok());
  EXPECT_FALSE(
      ExecuteSql(catalog_, "SELECT * FROM emp JOIN depts ON dept = nope").ok());
  EXPECT_TRUE(ExecuteSql(catalog_, "SELECT * FROM emp JOIN ghosts ON a = b")
                  .status()
                  .IsNotFound());
}

TEST_F(SqlJoinTest, ExplainRendersJoin) {
  auto text = ExplainSql("select * from emp join depts on dept = name");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "SELECT * FROM emp JOIN depts ON dept = name");
}

}  // namespace
}  // namespace relsim
}  // namespace rheem

#include "platforms/javasim/javasim_platform.h"

#include <gtest/gtest.h>

#include "core/optimizer/stage_splitter.h"
#include "platforms/javasim/javasim_operators.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

MapUdf PlusOne() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    return Record({Value(r[0].ToInt64Or(0) + 1)});
  };
  return udf;
}

TEST(JavaSimPlatformTest, DeclaresFullOperatorCoverage) {
  Config config;
  JavaSimPlatform java(config);
  MapOp map(PlusOne());
  CountOp count;
  IEJoinOp iejoin(IEJoinSpec{});
  EXPECT_TRUE(java.Supports(map));
  EXPECT_TRUE(java.Supports(count));
  EXPECT_TRUE(java.Supports(iejoin));
  EXPECT_EQ(java.name(), "javasim");
}

TEST(JavaSimPlatformTest, ExecutesStageWithBoundaryInput) {
  Config config;
  JavaSimPlatform java(config);
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(4));
  auto* m = plan.Add<MapOp>({src}, PlusOne());
  auto* sink = plan.Add<CollectOp>({m});
  plan.SetSink(sink);
  PlatformAssignment a;
  a.by_op = {{src->id(), &java}, {m->id(), &java}, {sink->id(), &java}};
  auto eplan = StageSplitter::Split(plan, std::move(a)).ValueOrDie();

  ExecutionMetrics metrics;
  auto out = java.ExecuteStage(eplan.stages[0], {}, &metrics);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].at(0)[0], Value(1));
  EXPECT_EQ((*out)[0].at(3)[0], Value(4));
}

TEST(JavaSimWalkerTest, ZipWithIdCountsAcrossOperators) {
  ExecutionMetrics metrics;
  javasim::DatasetWalker walker(&metrics);
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(3));
  auto* z1 = plan.Add<ZipWithIdOp>({src});
  auto* p = plan.Add<ProjectOp>({z1}, std::vector<int>{0});
  auto* z2 = plan.Add<ZipWithIdOp>({p});
  plan.SetSink(z2);
  auto topo = plan.TopologicalOrder().ValueOrDie();
  ASSERT_TRUE(walker.RunOps(topo, {}).ok());
  const Dataset* out = walker.ResultOf(z2->id()).ValueOrDie();
  // Ids keep increasing across the second ZipWithId (3..5).
  EXPECT_EQ(out->at(0)[1], Value(int64_t{3}));
}

TEST(JavaSimWalkerTest, MissingInputIsExecutionError) {
  ExecutionMetrics metrics;
  javasim::DatasetWalker walker(&metrics);
  Plan plan;
  auto* marker = plan.Add<LoopStateOp>({});
  auto* m = plan.Add<MapOp>({marker}, PlusOne());
  plan.SetSink(m);
  // Markers unbound: evaluating them must fail loudly.
  auto topo = plan.TopologicalOrder().ValueOrDie();
  EXPECT_TRUE(walker.RunOps(topo, {}).IsExecutionError());
}

TEST(JavaSimWalkerTest, NestedLoopsExecute) {
  // Outer loop runs 2 iterations of a body that itself loops 3 times,
  // incrementing a counter: total 6 increments.
  auto inner_body = std::make_shared<Plan>();
  {
    auto* st = inner_body->Add<LoopStateOp>({});
    auto* m = inner_body->Add<MapOp>({st}, PlusOne());
    inner_body->SetSink(m);
  }
  auto outer_body = std::make_shared<Plan>();
  {
    auto* st = outer_body->Add<LoopStateOp>({});
    auto* dt = outer_body->Add<LoopDataOp>({});
    auto* inner = outer_body->Add<RepeatOp>({st, dt}, 3, inner_body);
    outer_body->SetSink(inner);
  }
  Plan plan;
  auto* init = plan.Add<CollectionSourceOp>(
      {}, Dataset(std::vector<Record>{Record({Value(int64_t{0})})}));
  auto* data = plan.Add<CollectionSourceOp>({}, Numbers(1));
  auto* loop = plan.Add<RepeatOp>({init, data}, 2, outer_body);
  plan.SetSink(loop);

  ExecutionMetrics metrics;
  javasim::DatasetWalker walker(&metrics);
  auto topo = plan.TopologicalOrder().ValueOrDie();
  ASSERT_TRUE(walker.RunOps(topo, {}).ok());
  const Dataset* out = walker.ResultOf(loop->id()).ValueOrDie();
  EXPECT_EQ(out->at(0)[0], Value(int64_t{6}));
}

TEST(JavaSimPlatformTest, CostModelHasNoFixedOverheads) {
  Config config;
  JavaSimPlatform java(config);
  EXPECT_DOUBLE_EQ(java.cost_model().StageOverheadMicros(), 0.0);
  EXPECT_DOUBLE_EQ(java.cost_model().JobOverheadMicros(), 0.0);
}

}  // namespace
}  // namespace rheem

#include "platforms/relsim/relsim_platform.h"

#include <gtest/gtest.h>

#include "core/optimizer/stage_splitter.h"
#include "platforms/relsim/catalog.h"
#include "platforms/relsim/expression.h"
#include "platforms/relsim/rel_exec.h"
#include "platforms/relsim/relsim_operators.h"
#include "platforms/relsim/table.h"

namespace rheem {
namespace relsim {
namespace {

Table EmployeeTable() {
  Table t(Schema::Of({Field{"id", ValueType::kInt64},
                      Field{"dept", ValueType::kString},
                      Field{"salary", ValueType::kDouble}}));
  EXPECT_TRUE(t.AppendRow(Record({Value(1), Value("eng"), Value(100.0)})).ok());
  EXPECT_TRUE(t.AppendRow(Record({Value(2), Value("eng"), Value(120.0)})).ok());
  EXPECT_TRUE(t.AppendRow(Record({Value(3), Value("ops"), Value(90.0)})).ok());
  EXPECT_TRUE(t.AppendRow(Record({Value(4), Value("ops"), Value(80.0)})).ok());
  return t;
}

TEST(TableTest, ColumnarRoundTrip) {
  Table t = EmployeeTable();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.at(1, 2), Value(120.0));
  Dataset d = t.ToDataset();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_TRUE(d.has_schema());
  auto back = Table::FromDataset(d);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 4u);
  EXPECT_EQ(back->schema().field(1).name, "dept");
}

TEST(TableTest, SchemaInferredWithoutExplicitOne) {
  Dataset d(std::vector<Record>{Record({Value(1), Value("x")})});
  auto t = Table::FromDataset(d);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, ValueType::kInt64);
  EXPECT_EQ(t->schema().field(1).type, ValueType::kString);
}

TEST(TableTest, ArityMismatchRejected) {
  Table t(Schema::Of({Field{"a", ValueType::kInt64}}));
  EXPECT_FALSE(t.AppendRow(Record({Value(1), Value(2)})).ok());
}

TEST(ExpressionTest, ColumnLiteralComparison) {
  Table t = EmployeeTable();
  auto e = expr::Cmp(RelCompare::kGt, expr::Col("salary"), expr::Lit(Value(95.0)));
  EXPECT_TRUE(EvalPredicate(e, t, 0).ValueOrDie());   // 100 > 95
  EXPECT_FALSE(EvalPredicate(e, t, 3).ValueOrDie());  // 80 > 95
}

TEST(ExpressionTest, ArithmeticAndLogic) {
  Table t = EmployeeTable();
  // salary * 2 >= 200 AND dept = "eng"
  auto e = expr::And(
      expr::Cmp(RelCompare::kGe,
                expr::Arith(RelArith::kMul, expr::Col(2), expr::Lit(Value(2.0))),
                expr::Lit(Value(200.0))),
      expr::Cmp(RelCompare::kEq, expr::Col(1), expr::Lit(Value("eng"))));
  EXPECT_TRUE(EvalPredicate(e, t, 0).ValueOrDie());
  EXPECT_FALSE(EvalPredicate(e, t, 2).ValueOrDie());
}

TEST(ExpressionTest, NotAndOr) {
  Table t = EmployeeTable();
  auto is_eng = expr::Cmp(RelCompare::kEq, expr::Col(1), expr::Lit(Value("eng")));
  auto not_eng = expr::Not(is_eng);
  EXPECT_FALSE(EvalPredicate(not_eng, t, 0).ValueOrDie());
  EXPECT_TRUE(EvalPredicate(not_eng, t, 2).ValueOrDie());
  auto anything = expr::Or(is_eng, not_eng);
  EXPECT_TRUE(EvalPredicate(anything, t, 1).ValueOrDie());
}

TEST(ExpressionTest, NullComparisonIsFalsy) {
  Table t(Schema::Of({Field{"x", ValueType::kInt64}}));
  ASSERT_TRUE(t.AppendRow(Record({Value()})).ok());
  auto e = expr::Cmp(RelCompare::kEq, expr::Col(0), expr::Lit(Value(1)));
  EXPECT_FALSE(EvalPredicate(e, t, 0).ValueOrDie());
}

TEST(ExpressionTest, DivisionByZeroFails) {
  Table t = EmployeeTable();
  auto e = expr::Arith(RelArith::kDiv, expr::Col(2), expr::Lit(Value(0.0)));
  EXPECT_FALSE(e->Eval(t, 0).ok());
}

TEST(ExpressionTest, UnknownColumnNameFails) {
  Table t = EmployeeTable();
  auto e = expr::Col("nope");
  EXPECT_TRUE(e->Eval(t, 0).status().IsNotFound());
}

TEST(RelExecTest, FilterTable) {
  Table t = EmployeeTable();
  auto out = FilterTable(
      t, expr::Cmp(RelCompare::kEq, expr::Col("dept"), expr::Lit(Value("eng"))));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
}

TEST(RelExecTest, ProjectTableKeepsNames) {
  auto out = ProjectTable(EmployeeTable(), {2, 0});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().field(0).name, "salary");
  EXPECT_EQ(out->at(0, 1), Value(1));
}

TEST(RelExecTest, ProjectExprsComputes) {
  auto out = ProjectExprs(
      EmployeeTable(),
      {{"double_salary",
        expr::Arith(RelArith::kMul, expr::Col("salary"), expr::Lit(Value(2.0)))}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at(1, 0), Value(240.0));
}

TEST(RelExecTest, HashAggregateGrouped) {
  auto out = HashAggregate(EmployeeTable(), {1},
                           {AggSpec{AggKind::kCount, 0, "n"},
                            AggSpec{AggKind::kSum, 2, "total"},
                            AggSpec{AggKind::kAvg, 2, "avg"},
                            AggSpec{AggKind::kMax, 2, "top"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);  // eng, ops (sorted by group key)
  EXPECT_EQ(out->at(0, 0), Value("eng"));
  EXPECT_EQ(out->at(0, 1), Value(int64_t{2}));
  EXPECT_EQ(out->at(0, 2), Value(220.0));
  EXPECT_EQ(out->at(0, 3), Value(110.0));
  EXPECT_EQ(out->at(0, 4), Value(120.0));
}

TEST(RelExecTest, HashAggregateGlobal) {
  auto out = HashAggregate(EmployeeTable(), {},
                           {AggSpec{AggKind::kCount, 0, "n"},
                            AggSpec{AggKind::kMin, 2, "lowest"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->at(0, 0), Value(int64_t{4}));
  EXPECT_EQ(out->at(0, 1), Value(80.0));
}

TEST(RelExecTest, HashJoinTables) {
  Table depts(Schema::Of({Field{"dept", ValueType::kString},
                          Field{"floor", ValueType::kInt64}}));
  ASSERT_TRUE(depts.AppendRow(Record({Value("eng"), Value(3)})).ok());
  ASSERT_TRUE(depts.AppendRow(Record({Value("hr"), Value(1)})).ok());
  auto out = HashJoinTables(EmployeeTable(), 1, depts, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);  // two eng employees
  EXPECT_EQ(out->schema().num_fields(), 5u);
}

TEST(RelExecTest, OrderByDescending) {
  auto out = OrderBy(EmployeeTable(), 2, /*ascending=*/false);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at(0, 2), Value(120.0));
  EXPECT_EQ(out->at(3, 2), Value(80.0));
}

TEST(RelExecTest, DistinctTable) {
  Table t(Schema::Of({Field{"x", ValueType::kInt64}}));
  for (int v : {1, 2, 1, 3, 2}) {
    ASSERT_TRUE(t.AppendRow(Record({Value(v)})).ok());
  }
  auto out = DistinctTable(t);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);
}

TEST(CatalogTest, RegisterGetDropList) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("emp", EmployeeTable()).ok());
  EXPECT_TRUE(catalog.Register("emp", EmployeeTable()).IsAlreadyExists());
  EXPECT_TRUE(catalog.Has("emp"));
  EXPECT_EQ(catalog.Get("emp").ValueOrDie()->num_rows(), 4u);
  EXPECT_EQ(catalog.List(), std::vector<std::string>{"emp"});
  ASSERT_TRUE(catalog.Drop("emp").ok());
  EXPECT_TRUE(catalog.Get("emp").status().IsNotFound());
  EXPECT_TRUE(catalog.Drop("emp").IsNotFound());
}

TEST(RelSimPlatformTest, SupportsRelationalSubsetOnly) {
  Config config;
  RelSimPlatform rel(config);
  CountOp count;
  CrossProductOp cross;
  EXPECT_TRUE(rel.Supports(count));
  EXPECT_TRUE(rel.Supports(cross));
  MapUdf udf;
  udf.fn = [](const Record& r) { return r; };
  MapOp map(udf);
  EXPECT_FALSE(rel.Supports(map));
  SampleOp sample(0.5, 1);
  EXPECT_FALSE(rel.Supports(sample));
  IEJoinOp iejoin(IEJoinSpec{});
  EXPECT_FALSE(rel.Supports(iejoin));
}

TEST(RelSimPlatformTest, ExecutesRelationalStage) {
  Config config;
  RelSimPlatform rel(config);
  Plan plan;
  std::vector<Record> rows;
  for (int i = 0; i < 20; ++i) rows.push_back(Record({Value(i % 4), Value(i)}));
  auto* src = plan.Add<CollectionSourceOp>({}, Dataset(std::move(rows)));
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  ReduceUdf red;
  red.fn = [](const Record& a, const Record& b) {
    return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
  };
  auto* agg = plan.Add<ReduceByKeyOp>({src}, key, red);
  auto* sink = plan.Add<CollectOp>({agg});
  plan.SetSink(sink);
  PlatformAssignment a;
  a.by_op = {{src->id(), &rel}, {agg->id(), &rel}, {sink->id(), &rel}};
  auto eplan = StageSplitter::Split(plan, std::move(a)).ValueOrDie();
  ExecutionMetrics metrics;
  auto out = rel.ExecuteStage(eplan.stages[0], {}, &metrics);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ((*out)[0].size(), 4u);
  EXPECT_GT(metrics.sim_overhead_micros, 0);
}

TEST(RelSimPlatformTest, IngestRoundTripsThroughColumnarFormat) {
  Dataset d(std::vector<Record>{Record({Value(1), Value("a")}),
                                Record({Value(2), Value("b")})});
  auto out = IngestThroughTableFormat(d);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->at(1), d.at(1));
}

}  // namespace
}  // namespace relsim
}  // namespace rheem

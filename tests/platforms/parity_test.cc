#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/api/data_quanta.h"

namespace rheem {
namespace {

/// Cross-platform parity: the same physical pipeline must produce the same
/// bag of records regardless of the platform the optimizer (or a forced
/// choice) lands it on. This is the correctness backbone of platform
/// independence — the property the whole paper leans on.
class ParityTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok());
  }

  static std::multiset<std::string> AsMultiset(const Dataset& d) {
    std::multiset<std::string> out;
    for (const Record& r : d.records()) out.insert(r.ToString());
    return out;
  }

  static Dataset RandomPairs(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<Record> rows;
    for (int i = 0; i < n; ++i) {
      rows.push_back(Record({Value(rng.NextInt(0, 20)),
                             Value(rng.NextInt(-50, 50))}));
    }
    return Dataset(std::move(rows));
  }

  /// Reference result computed single-threaded on javasim.
  Dataset Reference(const std::function<DataQuanta(RheemJob*)>& build) {
    RheemJob job(&ctx_);
    job.options().force_platform = "javasim";
    auto out = build(&job).Collect();
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ValueOr(Dataset());
  }

  void ExpectParity(const std::function<DataQuanta(RheemJob*)>& build) {
    Dataset expected = Reference(build);
    RheemJob job(&ctx_);
    job.options().force_platform = GetParam();
    auto got = build(&job).Collect();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(AsMultiset(*got), AsMultiset(expected));
  }

  RheemContext ctx_;
};

TEST_P(ParityTest, MapFilterFlatMap) {
  ExpectParity([](RheemJob* job) {
    return job->LoadCollection(RandomPairs(500, 1))
        .Map([](const Record& r) {
          return Record({r[0], Value(r[1].ToInt64Or(0) * 3)});
        })
        .Filter([](const Record& r) { return r[1].ToInt64Or(0) > 0; })
        .FlatMap([](const Record& r) {
          return std::vector<Record>{r, Record({r[0]})};
        });
  });
}

TEST_P(ParityTest, ReduceByKeySum) {
  ExpectParity([](RheemJob* job) {
    return job->LoadCollection(RandomPairs(800, 2))
        .ReduceByKey([](const Record& r) { return r[0]; },
                     [](const Record& a, const Record& b) {
                       return Record({a[0], Value(a[1].ToInt64Or(0) +
                                                  b[1].ToInt64Or(0))});
                     });
  });
}

TEST_P(ParityTest, GroupByCounts) {
  ExpectParity([](RheemJob* job) {
    return job->LoadCollection(RandomPairs(400, 3))
        .GroupByKey([](const Record& r) { return r[0]; },
                    [](const Value& key, const std::vector<Record>& members) {
                      return std::vector<Record>{Record(
                          {key, Value(static_cast<int64_t>(members.size()))})};
                    });
  });
}

TEST_P(ParityTest, DistinctAndSort) {
  ExpectParity([](RheemJob* job) {
    return job->LoadCollection(RandomPairs(600, 4))
        .Project({0})
        .Distinct()
        .Sort([](const Record& r) { return r[0]; });
  });
}

TEST_P(ParityTest, JoinOnKey) {
  ExpectParity([](RheemJob* job) {
    auto left = job->LoadCollection(RandomPairs(200, 5));
    auto right = job->LoadCollection(RandomPairs(150, 6));
    return left.Join(right, [](const Record& r) { return r[0]; },
                     [](const Record& r) { return r[0]; });
  });
}

TEST_P(ParityTest, IterativeLoop) {
  ExpectParity([](RheemJob* job) {
    auto state = job->LoadCollection(
        Dataset(std::vector<Record>{Record({Value(int64_t{0})})}));
    auto data = job->LoadCollection(RandomPairs(100, 7));
    return state.Repeat(5, data, [](DataQuanta st, DataQuanta dt) {
      auto sum = dt.GlobalReduce([](const Record& a, const Record& b) {
        return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
      });
      return st.BroadcastMap(sum, [](const Record& s, const Dataset& agg) {
        const int64_t add = agg.empty() ? 0 : agg.at(0)[1].ToInt64Or(0);
        return Record({Value(s[0].ToInt64Or(0) + add)});
      });
    });
  });
}

TEST_P(ParityTest, CountAndGlobalReduce) {
  ExpectParity([](RheemJob* job) {
    return job->LoadCollection(RandomPairs(321, 8)).Count();
  });
}

INSTANTIATE_TEST_SUITE_P(Platforms, ParityTest,
                         ::testing::Values("javasim", "sparksim"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

/// relsim only supports the relational subset; give it its own parity checks.
class RelationalParityTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok()); }
  RheemContext ctx_;
};

TEST_F(RelationalParityTest, RelsimMatchesJavasimOnAggregation) {
  auto build = [](RheemJob* job) {
    Rng rng(11);
    std::vector<Record> rows;
    for (int i = 0; i < 300; ++i) {
      rows.push_back(Record({Value(rng.NextInt(0, 9)), Value(rng.NextInt(0, 99))}));
    }
    return job->LoadCollection(Dataset(std::move(rows)))
        .Filter([](const Record& r) { return r[1].ToInt64Or(0) >= 50; })
        .ReduceByKey([](const Record& r) { return r[0]; },
                     [](const Record& a, const Record& b) {
                       return Record({a[0], Value(a[1].ToInt64Or(0) +
                                                  b[1].ToInt64Or(0))});
                     });
  };
  RheemJob j1(&ctx_);
  j1.options().force_platform = "javasim";
  RheemJob j2(&ctx_);
  j2.options().force_platform = "relsim";
  auto a = build(&j1).Collect();
  auto b = build(&j2).Collect();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  std::multiset<std::string> ma, mb;
  for (const Record& r : a->records()) ma.insert(r.ToString());
  for (const Record& r : b->records()) mb.insert(r.ToString());
  EXPECT_EQ(ma, mb);
}

}  // namespace
}  // namespace rheem

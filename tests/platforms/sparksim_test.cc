#include "platforms/sparksim/sparksim_platform.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/optimizer/stage_splitter.h"
#include "platforms/sparksim/rdd.h"
#include "platforms/sparksim/scheduler.h"
#include "platforms/sparksim/shuffle.h"
#include "platforms/sparksim/sparksim_operators.h"

namespace rheem {
namespace {

using sparksim::Rdd;

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

TEST(RddTest, FromDatasetPartitionsAndGathersInOrder) {
  Rdd rdd = Rdd::FromDataset(Numbers(10), 3);
  EXPECT_EQ(rdd.num_partitions(), 3u);
  EXPECT_EQ(rdd.TotalRows(), 10u);
  Dataset gathered = rdd.Gather();
  ASSERT_EQ(gathered.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(gathered.at(static_cast<std::size_t>(i))[0], Value(i));
  }
}

TEST(RddTest, SingleHoldsOnePartition) {
  Rdd rdd = Rdd::Single(Numbers(4));
  EXPECT_EQ(rdd.num_partitions(), 1u);
  EXPECT_EQ(rdd.TotalRows(), 4u);
}

TEST(SparkOverheadTest, ConfigOverridesDefaults) {
  Config config;
  config.SetDouble("sparksim.job_submit_us", 123.0);
  auto m = sparksim::SparkOverheadModel::FromConfig(config);
  EXPECT_DOUBLE_EQ(m.job_submit_us, 123.0);
  EXPECT_DOUBLE_EQ(m.stage_us, sparksim::SparkOverheadModel().stage_us);
}

TEST(TaskSchedulerTest, ChargesPerTaskOverhead) {
  ThreadPool pool(2);
  sparksim::SparkOverheadModel overhead;
  overhead.task_us = 100.0;
  sparksim::TaskScheduler scheduler(&pool, overhead);
  ExecutionMetrics metrics;
  std::atomic<int> ran{0};
  Stopwatch wall;
  ASSERT_TRUE(scheduler
                  .RunTasks(5, &metrics,
                            [&](std::size_t) {
                              ran.fetch_add(1);
                              return Status::OK();
                            })
                  .ok());
  const int64_t wall_us = wall.ElapsedMicros();
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(metrics.tasks_launched, 5);
  // 5 x 100us of launch overhead plus the virtual-clock correction, which
  // can subtract at most the measured batch wall time.
  EXPECT_LE(metrics.sim_overhead_micros, 500);
  EXPECT_GE(metrics.sim_overhead_micros, 500 - wall_us);
}

TEST(TaskSchedulerTest, VirtualClusterClockModelsSlotParallelism) {
  // Four CPU-bound tasks on a 4-slot scheduler: regardless of how many real
  // cores the host has, wall + simulated correction must land between the
  // longest single task (perfect parallelism) and the serial sum.
  ThreadPool pool(4);
  sparksim::SparkOverheadModel overhead;
  overhead.task_us = 0.0;
  sparksim::TaskScheduler scheduler(&pool, overhead);
  ExecutionMetrics metrics;
  std::vector<int64_t> task_us(4, 0);
  Stopwatch wall;
  ASSERT_TRUE(scheduler
                  .RunTasks(4, &metrics,
                            [&](std::size_t i) {
                              ThreadCpuTimer cpu;
                              volatile double x = 1.0;
                              for (int k = 0; k < 4000000; ++k) {
                                x = x * 1.0000001 + 1e-9;
                              }
                              task_us[i] = cpu.ElapsedMicros();
                              return Status::OK();
                            })
                  .ok());
  const int64_t wall_us = wall.ElapsedMicros();
  int64_t longest = 0, total = 0;
  for (int64_t t : task_us) {
    longest = std::max(longest, t);
    total += t;
  }
  const int64_t modeled = wall_us + metrics.sim_overhead_micros;
  EXPECT_GE(modeled, total / 4 / 2);  // not faster than 4-way parallel (slack 2x)
  EXPECT_LE(modeled, total);          // never slower than serial execution
  EXPECT_GE(modeled, longest / 2);
}

TEST(TaskSchedulerTest, FirstErrorWinsDeterministically) {
  ThreadPool pool(4);
  sparksim::TaskScheduler scheduler(&pool, {});
  ExecutionMetrics metrics;
  Status st = scheduler.RunTasks(8, &metrics, [](std::size_t i) -> Status {
    if (i == 2) return Status::ExecutionError("task2");
    if (i == 6) return Status::ExecutionError("task6");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "task2");
}

TEST(ShuffleTest, ByKeyGroupsKeysIntoSamePartition) {
  Rdd in = Rdd::FromDataset(Numbers(100), 4);
  KeyUdf key;
  key.fn = [](const Record& r) { return Value(r[0].ToInt64Or(0) % 10); };
  ThreadPool pool(4);
  sparksim::TaskScheduler scheduler(&pool, {});
  ExecutionMetrics metrics;
  auto out = sparksim::ShuffleByKey(in, key, 4, &scheduler, &metrics);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->TotalRows(), 100u);
  EXPECT_GT(metrics.shuffle_bytes, 0);
  // Every key must live in exactly one partition.
  std::map<int64_t, std::set<std::size_t>> where;
  for (std::size_t p = 0; p < out->num_partitions(); ++p) {
    for (const Record& r : out->partition(p).records()) {
      where[r[0].ToInt64Or(0) % 10].insert(p);
    }
  }
  for (const auto& [k, parts] : where) {
    EXPECT_EQ(parts.size(), 1u) << "key " << k;
  }
}

TEST(ShuffleTest, PreservesRecordMultiset) {
  Rdd in = Rdd::FromDataset(Numbers(57), 3);
  ThreadPool pool(2);
  sparksim::TaskScheduler scheduler(&pool, {});
  ExecutionMetrics metrics;
  auto out = sparksim::ShuffleByRecordHash(in, 5, &scheduler, &metrics);
  ASSERT_TRUE(out.ok());
  std::multiset<int64_t> before, after;
  const Dataset gathered_in = in.Gather();
  const Dataset gathered_out = out->Gather();
  for (const Record& r : gathered_in.records()) before.insert(r[0].ToInt64Or(0));
  for (const Record& r : gathered_out.records()) after.insert(r[0].ToInt64Or(0));
  EXPECT_EQ(before, after);
}

TEST(SparkSimPlatformTest, StageExecutionChargesOverheads) {
  Config config;
  config.SetInt("sparksim.slots", 4);
  SparkSimPlatform spark(config);
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(100));
  MapUdf udf;
  udf.fn = [](const Record& r) { return Record({Value(r[0].ToInt64Or(0) * 2)}); };
  auto* m = plan.Add<MapOp>({src}, udf);
  auto* sink = plan.Add<CollectOp>({m});
  plan.SetSink(sink);
  PlatformAssignment a;
  a.by_op = {{src->id(), &spark}, {m->id(), &spark}, {sink->id(), &spark}};
  auto eplan = StageSplitter::Split(plan, std::move(a)).ValueOrDie();
  ExecutionMetrics metrics;
  auto out = spark.ExecuteStage(eplan.stages[0], {}, &metrics);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ((*out)[0].size(), 100u);
  EXPECT_GT(metrics.sim_overhead_micros, 0);
  EXPECT_GT(metrics.tasks_launched, 0);
  EXPECT_EQ(metrics.jobs_run, 1);
}

TEST(SparkSimPlatformTest, LoopChargesJobPerIteration) {
  Config config;
  config.SetDouble("sparksim.job_submit_us", 1000.0);
  config.SetDouble("sparksim.stage_us", 0.0);
  config.SetDouble("sparksim.task_us", 0.0);
  config.SetDouble("sparksim.collect_fixed_us", 0.0);
  config.SetDouble("sparksim.shuffle_fixed_us", 0.0);
  SparkSimPlatform spark(config);

  auto body = std::make_shared<Plan>();
  auto* st = body->Add<LoopStateOp>({});
  MapUdf inc;
  inc.fn = [](const Record& r) { return Record({Value(r[0].ToInt64Or(0) + 1)}); };
  auto* m = body->Add<MapOp>({st}, inc);
  body->SetSink(m);

  Plan plan;
  auto* init = plan.Add<CollectionSourceOp>(
      {}, Dataset(std::vector<Record>{Record({Value(int64_t{0})})}));
  auto* data = plan.Add<CollectionSourceOp>({}, Numbers(1));
  auto* loop = plan.Add<RepeatOp>({init, data}, 25, body);
  plan.SetSink(loop);
  PlatformAssignment a;
  a.by_op = {{init->id(), &spark}, {data->id(), &spark}, {loop->id(), &spark}};
  auto eplan = StageSplitter::Split(plan, std::move(a)).ValueOrDie();
  ExecutionMetrics metrics;
  Stopwatch wall;
  auto out = spark.ExecuteStage(eplan.stages[0], {}, &metrics);
  const int64_t wall_us = wall.ElapsedMicros();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ((*out)[0].at(0)[0], Value(int64_t{25}));
  // 1 outer submission + 25 per-iteration submissions; the virtual-clock
  // correction can subtract at most the measured wall time.
  EXPECT_EQ(metrics.jobs_run, 26);
  EXPECT_GE(metrics.sim_overhead_micros, 26 * 1000 - wall_us);
}

TEST(SparkSimPlatformTest, PartitionsConfigurable) {
  Config config;
  config.SetInt("sparksim.partitions", 3);
  SparkSimPlatform spark(config);
  EXPECT_EQ(spark.num_partitions(), 3u);
}

TEST(SparkSimPlatformTest, RelationalOpsUnsupportedListEmpty) {
  // sparksim maps the whole pool: spot-check a few exotic kinds.
  Config config;
  SparkSimPlatform spark(config);
  CrossProductOp cross;
  EXPECT_TRUE(spark.Supports(cross));
  auto body = std::make_shared<Plan>();
  auto* st = body->Add<LoopStateOp>({});
  body->SetSink(st);
  RepeatOp loop(2, body);
  EXPECT_TRUE(spark.Supports(loop));
}

}  // namespace
}  // namespace rheem

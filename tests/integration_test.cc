// End-to-end integration across the storage layer, the cleaning application,
// the ML application and the multi-platform optimizer — the paper's §1
// pipeline compressed into one test: dirty data arrives, is placed by the
// storage optimizer, cleaned by BigDansing, and fed to ML, with every layer
// touching the others through public APIs only.

#include <filesystem>

#include <gtest/gtest.h>

#include "apps/cleaning/data_gen.h"
#include "apps/cleaning/plan_builder.h"
#include "apps/cleaning/repair.h"
#include "apps/ml/regression.h"
#include "core/api/data_quanta.h"
#include "storage/csv_store.h"
#include "storage/hot_buffer.h"
#include "storage/kv_store.h"
#include "storage/mem_column_store.h"
#include "storage/storage_optimizer.h"

namespace rheem {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/rheem_integration_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok());
    ASSERT_TRUE(storage_.RegisterBackend(
                            std::make_unique<storage::MemColumnStore>())
                    .ok());
    ASSERT_TRUE(storage_.RegisterBackend(
                            std::make_unique<storage::CsvStore>(dir_))
                    .ok());
    ASSERT_TRUE(
        storage_.RegisterBackend(std::make_unique<storage::KvStore>(0)).ok());
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
  RheemContext ctx_;
  storage::StorageManager storage_;
};

TEST_F(IntegrationTest, StoreCleanAnalyzePipeline) {
  // 1. Dirty data arrives and the storage optimizer places it (persistent:
  //    raw regulatory data must survive restarts -> CSV backend).
  cleaning::TaxTableOptions gen;
  gen.rows = 800;
  gen.seed = 31;
  gen.fd_noise_rate = 0.04;
  Dataset dirty = cleaning::GenerateTaxTable(gen);
  storage::StorageOptimizer storage_optimizer(&storage_);
  storage::AccessProfile profile;
  profile.requires_persistence = true;
  profile.scan_frequency = 5.0;
  ASSERT_TRUE(storage_optimizer.Store("tax_raw", dirty, profile).ok());
  EXPECT_EQ(storage_.Locate("tax_raw").ValueOrDie()->name(), "csv-files");

  // 2. Analytics re-read it through the hot buffer (one parse).
  storage::HotDataBuffer hot(&storage_, 1LL << 30);
  Dataset working = *hot.Load("tax_raw").ValueOrDie();
  (void)hot.Load("tax_raw").ValueOrDie();
  EXPECT_EQ(hot.misses(), 1);
  EXPECT_EQ(hot.hits(), 1);
  ASSERT_EQ(working.size(), dirty.size());

  // 3. BigDansing detects and repairs the FD violations.
  cleaning::FdRule rule = cleaning::ZipCityRule();
  auto report = cleaning::DetectViolations(&ctx_, working, rule, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GT(report->violations.size(), 0u);
  auto fixes = cleaning::GenerateFdFixes(working, rule, report->violations);
  ASSERT_TRUE(fixes.ok());
  Dataset repaired = cleaning::ApplyFixes(working, *fixes).ValueOrDie();
  auto after = cleaning::DetectViolations(&ctx_, repaired, rule, {});
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->violations.empty());

  // 4. The cleaned table is re-stored for column-subset analytics (columnar)
  //    and a model trains on features derived from it.
  storage::AccessProfile analytic_profile;
  analytic_profile.scan_frequency = 20.0;
  analytic_profile.column_subset_access = true;
  analytic_profile.hot_columns = {3, 4};
  ASSERT_TRUE(
      storage_optimizer.Store("tax_clean", repaired, analytic_profile).ok());
  EXPECT_EQ(storage_.Locate("tax_clean").ValueOrDie()->name(), "mem-column");
  Dataset features =
      storage_.Locate("tax_clean").ValueOrDie()
          ->GetColumns("tax_clean", {3, 4})
          .ValueOrDie();

  // salary (col 0 of the projection) predicts tax (col 1): tax = 0.2*salary
  // after repair kept the clean rows intact.
  std::vector<Record> training;
  for (const Record& r : features.records()) {
    training.push_back(
        Record({Value(r[1].ToDoubleOr(0) / 1e4),
                Value(std::vector<double>{r[0].ToDoubleOr(0) / 1e5})}));
  }
  ml::RegressionOptions options;
  options.iterations = 150;
  options.learning_rate = 0.5;
  auto model =
      ml::TrainLinearRegression(&ctx_, Dataset(std::move(training)), options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // Slope recovers the 0.2 tax rate (scaled: y/1e4 = 2 * x/1e5).
  ASSERT_EQ(model->model.weights.size(), 1u);
  EXPECT_NEAR(model->model.weights[0], 2.0, 0.3);
}

TEST_F(IntegrationTest, MultiPlatformPlanWithDeclaredAndBuiltInPlatforms) {
  // A single job whose optimizer may pick among all three built-in
  // platforms; verify the result is platform-agnostic by comparing against
  // the forced-javasim run.
  std::vector<Record> rows;
  for (int i = 0; i < 3000; ++i) {
    rows.push_back(Record({Value(i % 12), Value(i)}));
  }
  Dataset data(rows);
  auto build = [&](RheemJob* job) {
    return job->LoadCollection(data)
        .Filter([](const Record& r) { return r[1].ToInt64Or(0) % 3 == 0; },
                UdfMeta::Selective(0.33))
        .ReduceByKey([](const Record& r) { return r[0]; },
                     [](const Record& a, const Record& b) {
                       return Record({a[0], Value(a[1].ToInt64Or(0) +
                                                  b[1].ToInt64Or(0))});
                     })
        .TopK(3, [](const Record& r) { return r[1]; }, /*ascending=*/false);
  };
  RheemJob free_choice(&ctx_);
  RheemJob forced(&ctx_);
  forced.options().force_platform = "javasim";
  auto a = build(&free_choice).Collect();
  auto b = build(&forced).Collect();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a->at(i), b->at(i));
  }
}

TEST_F(IntegrationTest, MonitoredRunFeedsCostCalibration) {
  // Execute a job with a monitor, then verify its records are usable as
  // calibration inputs (the §4.2 feedback loop wiring).
  RheemJob job(&ctx_);
  ExecutionMonitor monitor;
  job.options().monitor = &monitor;
  std::vector<Record> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back(Record({Value(i)}));
  auto out = job.LoadCollection(Dataset(std::move(rows)))
                 .Map([](const Record& r) {
                   return Record({Value(r[0].ToInt64Or(0) * 2)});
                 })
                 .Collect();
  ASSERT_TRUE(out.ok());
  ASSERT_FALSE(monitor.records().empty());
  for (const auto& record : monitor.records()) {
    EXPECT_TRUE(record.succeeded);
    EXPECT_FALSE(record.platform.empty());
  }
}

}  // namespace
}  // namespace rheem

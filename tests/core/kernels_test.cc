#include "core/operators/kernels.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rheem {
namespace kernels {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

Dataset KeyValues(std::vector<std::pair<int, int>> pairs) {
  std::vector<Record> records;
  for (auto [k, v] : pairs) records.push_back(Record({Value(k), Value(v)}));
  return Dataset(std::move(records));
}

MapUdf PlusOne() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    return Record({Value(r[0].ToInt64Or(0) + 1)});
  };
  return udf;
}

KeyUdf FirstField() {
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  return key;
}

ReduceUdf SumSecond() {
  ReduceUdf udf;
  udf.fn = [](const Record& a, const Record& b) {
    return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
  };
  return udf;
}

std::multiset<std::string> AsMultiset(const Dataset& d) {
  std::multiset<std::string> out;
  for (const Record& r : d.records()) out.insert(r.ToString());
  return out;
}

TEST(MapKernelTest, AppliesUdfToEveryQuantum) {
  auto out = Map(PlusOne(), Numbers(5));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 5u);
  EXPECT_EQ(out->at(0)[0], Value(1));
  EXPECT_EQ(out->at(4)[0], Value(5));
}

TEST(MapKernelTest, EmptyInputEmptyOutput) {
  auto out = Map(PlusOne(), Dataset());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(MapKernelTest, EmptyUdfIsError) {
  EXPECT_FALSE(Map(MapUdf{}, Numbers(1)).ok());
}

TEST(FlatMapKernelTest, ExpandsAndDrops) {
  FlatMapUdf udf;
  udf.fn = [](const Record& r) -> std::vector<Record> {
    const int64_t v = r[0].ToInt64Or(0);
    if (v % 2 == 0) return {};          // drop evens
    return {r, r};                       // duplicate odds
  };
  auto out = FlatMap(udf, Numbers(4));  // 0,1,2,3
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 4u);  // 1,1,3,3
}

TEST(FilterKernelTest, KeepsMatching) {
  PredicateUdf udf;
  udf.fn = [](const Record& r) { return r[0].ToInt64Or(0) >= 3; };
  auto out = Filter(udf, Numbers(6));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST(ProjectKernelTest, SelectsColumns) {
  auto out = Project({1}, KeyValues({{1, 10}, {2, 20}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at(0), Record({Value(10)}));
}

TEST(ProjectKernelTest, OutOfRangeColumnFails) {
  EXPECT_TRUE(Project({5}, Numbers(2)).status().IsOutOfRange());
  EXPECT_TRUE(Project({-1}, Numbers(2)).status().IsInvalidArgument());
}

TEST(DistinctKernelTest, RemovesDuplicatesKeepsFirstOrder) {
  auto out = Distinct(KeyValues({{1, 1}, {2, 2}, {1, 1}, {3, 3}, {2, 2}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(out->at(0)[0], Value(1));
  EXPECT_EQ(out->at(1)[0], Value(2));
  EXPECT_EQ(out->at(2)[0], Value(3));
}

TEST(SortKernelTest, SortsByKeyAscending) {
  auto out = SortByKey(FirstField(), KeyValues({{3, 0}, {1, 0}, {2, 0}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at(0)[0], Value(1));
  EXPECT_EQ(out->at(2)[0], Value(3));
}

TEST(SortKernelTest, StableOnTies) {
  auto out = SortByKey(FirstField(), KeyValues({{1, 10}, {0, 0}, {1, 20}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at(1)[1], Value(10));
  EXPECT_EQ(out->at(2)[1], Value(20));
}

TEST(SampleKernelTest, FractionBoundsRespected) {
  EXPECT_FALSE(Sample(-0.1, 1, Numbers(10)).ok());
  EXPECT_FALSE(Sample(1.1, 1, Numbers(10)).ok());
  auto all = Sample(1.0, 1, Numbers(10));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 10u);
  auto none = Sample(0.0, 1, Numbers(10));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(SampleKernelTest, DeterministicAndRoughlyProportional) {
  auto a = Sample(0.3, 99, Numbers(10000));
  auto b = Sample(0.3, 99, Numbers(10000));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(AsMultiset(*a), AsMultiset(*b));
  EXPECT_NEAR(static_cast<double>(a->size()), 3000.0, 200.0);
}

TEST(ZipWithIdKernelTest, AppendsSequentialIds) {
  auto out = ZipWithId(100, Numbers(3));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at(0)[1], Value(int64_t{100}));
  EXPECT_EQ(out->at(2)[1], Value(int64_t{102}));
}

TEST(ReduceByKeyKernelTest, SumsPerKeyDeterministically) {
  auto out = ReduceByKey(FirstField(), SumSecond(),
                         KeyValues({{1, 10}, {2, 5}, {1, 7}, {2, 5}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  // std::map ordering: key 1 first.
  EXPECT_EQ(out->at(0), Record({Value(1), Value(17)}));
  EXPECT_EQ(out->at(1), Record({Value(2), Value(10)}));
}

TEST(ReduceByKeyKernelTest, SingleKeySingleOutput) {
  auto out = ReduceByKey(FirstField(), SumSecond(),
                         KeyValues({{1, 1}, {1, 2}, {1, 3}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->at(0)[1], Value(6));
}

TEST(GroupByKernelsTest, HashAndSortAgree) {
  GroupUdf group;
  group.fn = [](const Value& key, const std::vector<Record>& members) {
    return std::vector<Record>{
        Record({key, Value(static_cast<int64_t>(members.size()))})};
  };
  Rng rng(5);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 500; ++i) {
    pairs.emplace_back(static_cast<int>(rng.NextBounded(13)), i);
  }
  auto hash = HashGroupBy(FirstField(), group, KeyValues(pairs));
  auto sort = SortGroupBy(FirstField(), group, KeyValues(pairs));
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(sort.ok());
  EXPECT_EQ(AsMultiset(*hash), AsMultiset(*sort));
}

TEST(GroupByKernelsTest, GroupUdfSeesAllMembersInOrder) {
  GroupUdf group;
  group.fn = [](const Value& key, const std::vector<Record>& members) {
    std::vector<Record> out;
    for (const auto& m : members) out.push_back(Record({key, m[1]}));
    return out;
  };
  auto out = HashGroupBy(FirstField(), group,
                         KeyValues({{1, 10}, {1, 20}, {2, 30}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(out->at(0), Record({Value(1), Value(10)}));
  EXPECT_EQ(out->at(1), Record({Value(1), Value(20)}));
}

TEST(GlobalReduceKernelTest, FoldsToOneRecord) {
  ReduceUdf udf;
  udf.fn = [](const Record& a, const Record& b) {
    return Record({Value(a[0].ToInt64Or(0) + b[0].ToInt64Or(0))});
  };
  auto out = GlobalReduce(udf, Numbers(10));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->at(0)[0], Value(45));
}

TEST(GlobalReduceKernelTest, EmptyInputYieldsEmpty) {
  ReduceUdf udf;
  udf.fn = [](const Record& a, const Record&) { return a; };
  auto out = GlobalReduce(udf, Dataset());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(CountKernelTest, ReportsCardinality) {
  auto out = Count(Numbers(7));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at(0)[0], Value(int64_t{7}));
  EXPECT_EQ(Count(Dataset())->at(0)[0], Value(int64_t{0}));
}

TEST(BroadcastMapKernelTest, SideInputVisibleToEveryCall) {
  BroadcastMapUdf udf;
  udf.fn = [](const Record& r, const Dataset& side) {
    return Record(
        {r[0], Value(static_cast<int64_t>(side.size()))});
  };
  auto out = BroadcastMap(udf, Numbers(3), Numbers(9));
  ASSERT_TRUE(out.ok());
  for (const Record& r : out->records()) {
    EXPECT_EQ(r[1], Value(int64_t{9}));
  }
}

TEST(HashJoinKernelTest, MatchesOnKeys) {
  auto out = HashJoin(FirstField(), FirstField(),
                      KeyValues({{1, 10}, {2, 20}, {3, 30}}),
                      KeyValues({{2, 200}, {3, 300}, {4, 400}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->at(0), Record({Value(2), Value(20), Value(2), Value(200)}));
}

TEST(HashJoinKernelTest, DuplicateKeysProduceCrossOfRuns) {
  auto out = HashJoin(FirstField(), FirstField(),
                      KeyValues({{1, 1}, {1, 2}}),
                      KeyValues({{1, 3}, {1, 4}, {1, 5}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 6u);
}

TEST(JoinKernelsTest, HashAndSortMergeAgreeOnRandomData) {
  Rng rng(8);
  std::vector<std::pair<int, int>> l, r;
  for (int i = 0; i < 300; ++i) {
    l.emplace_back(static_cast<int>(rng.NextBounded(40)), i);
    r.emplace_back(static_cast<int>(rng.NextBounded(40)), 1000 + i);
  }
  auto hj = HashJoin(FirstField(), FirstField(), KeyValues(l), KeyValues(r));
  auto smj = SortMergeJoin(FirstField(), FirstField(), KeyValues(l), KeyValues(r));
  ASSERT_TRUE(hj.ok());
  ASSERT_TRUE(smj.ok());
  EXPECT_EQ(AsMultiset(*hj), AsMultiset(*smj));
  EXPECT_GT(hj->size(), 0u);
}

TEST(ThetaJoinKernelTest, ArbitraryPredicate) {
  ThetaUdf udf;
  udf.fn = [](const Record& a, const Record& b) {
    return a[0].ToInt64Or(0) + b[0].ToInt64Or(0) == 4;
  };
  auto out = ThetaJoin(udf, Numbers(5), Numbers(5));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 5u);  // (0,4),(1,3),(2,2),(3,1),(4,0)
}

TEST(CrossProductKernelTest, FullPairSpace) {
  auto out = CrossProduct(Numbers(3), Numbers(4));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 12u);
  EXPECT_EQ(out->at(0).size(), 2u);
}

TEST(CrossProductKernelTest, EmptySideYieldsEmpty) {
  EXPECT_TRUE(CrossProduct(Numbers(3), Dataset())->empty());
  EXPECT_TRUE(CrossProduct(Dataset(), Numbers(3))->empty());
}

TEST(UnionKernelTest, ConcatenatesBagSemantics) {
  auto out = Union(Numbers(2), Numbers(3));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 5u);
  // Duplicates retained (bag union).
  auto dup = Union(Numbers(2), Numbers(2));
  EXPECT_EQ(dup->size(), 4u);
}

// Property: filter(p) then filter(q) == filter(q) then filter(p) == filter(p&&q)
TEST(KernelPropertyTest, FilterCommutesAndFuses) {
  PredicateUdf p;
  p.fn = [](const Record& r) { return r[0].ToInt64Or(0) % 2 == 0; };
  PredicateUdf q;
  q.fn = [](const Record& r) { return r[0].ToInt64Or(0) > 10; };
  PredicateUdf pq;
  pq.fn = [&](const Record& r) { return p.fn(r) && q.fn(r); };
  Dataset in = Numbers(100);
  auto a = Filter(q, Filter(p, in).ValueOrDie());
  auto b = Filter(p, Filter(q, in).ValueOrDie());
  auto c = Filter(pq, in);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(AsMultiset(*a), AsMultiset(*b));
  EXPECT_EQ(AsMultiset(*a), AsMultiset(*c));
}

// Property: ReduceByKey(sum) total equals global sum regardless of keys.
TEST(KernelPropertyTest, ReduceByKeyPreservesTotal) {
  Rng rng(21);
  std::vector<std::pair<int, int>> pairs;
  int64_t expected = 0;
  for (int i = 0; i < 1000; ++i) {
    const int v = static_cast<int>(rng.NextInt(-50, 50));
    pairs.emplace_back(static_cast<int>(rng.NextBounded(17)), v);
    expected += v;
  }
  auto reduced = ReduceByKey(FirstField(), SumSecond(), KeyValues(pairs));
  ASSERT_TRUE(reduced.ok());
  int64_t total = 0;
  for (const Record& r : reduced->records()) total += r[1].ToInt64Or(0);
  EXPECT_EQ(total, expected);
}

// Property: Distinct is idempotent.
TEST(KernelPropertyTest, DistinctIdempotent) {
  Rng rng(22);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 400; ++i) {
    pairs.emplace_back(static_cast<int>(rng.NextBounded(20)),
                       static_cast<int>(rng.NextBounded(3)));
  }
  auto once = Distinct(KeyValues(pairs));
  auto twice = Distinct(*once);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(AsMultiset(*once), AsMultiset(*twice));
}

// Property: sort output is a permutation and is ordered.
TEST(KernelPropertyTest, SortPermutationAndOrdered) {
  Rng rng(23);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 500; ++i) {
    pairs.emplace_back(static_cast<int>(rng.NextInt(-100, 100)), i);
  }
  Dataset in = KeyValues(pairs);
  auto sorted = SortByKey(FirstField(), in);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(AsMultiset(in), AsMultiset(*sorted));
  for (std::size_t i = 1; i < sorted->size(); ++i) {
    EXPECT_LE(sorted->at(i - 1)[0].ToInt64Or(0), sorted->at(i)[0].ToInt64Or(0));
  }
}

}  // namespace
}  // namespace kernels
}  // namespace rheem

// End-to-end and adversarial coverage for the network job service: wire
// codec round trips, a decoder fuzz pass (random truncations and bit flips
// over valid frames must fail cleanly, never crash or over-read — run under
// ASan/TSan in CI), and live loopback sessions exercising auth, tenant
// quotas, paged result streaming, cancellation, deadlines, and the ways a
// malformed client poisons its own connection but never the server.

#include "core/service/net/server.h"

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/api/context.h"
#include "core/service/net/client.h"
#include "core/sql/sql.h"
#include "data/serialization.h"

namespace rheem {
namespace net {
namespace {

// --- wire codec round trips -------------------------------------------------

TEST(WireCodecTest, HelloRoundTrip) {
  HelloFrame in;
  in.auth_token = "secret";
  in.tenant = "acme";
  std::string payload;
  in.Encode(&payload);
  auto out = HelloFrame::Decode(payload);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->version, kProtocolVersion);
  EXPECT_EQ(out->auth_token, "secret");
  EXPECT_EQ(out->tenant, "acme");
}

TEST(WireCodecTest, SubmitRoundTrip) {
  SubmitFrame in;
  in.deadline_ms = -7;
  in.use_plan_cache = false;
  in.use_result_cache = true;
  in.text = "SELECT * FROM emp";
  std::string payload;
  in.Encode(&payload);
  auto out = SubmitFrame::Decode(payload);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->kind, SubmitKind::kSql);
  EXPECT_EQ(out->deadline_ms, -7);
  EXPECT_FALSE(out->use_plan_cache);
  EXPECT_TRUE(out->use_result_cache);
  EXPECT_EQ(out->text, "SELECT * FROM emp");
}

TEST(WireCodecTest, SubmitOkCarriesSchema) {
  SubmitOkFrame in;
  in.job_id = 42;
  in.schema = Schema::Of({{"id", ValueType::kInt64},
                          {"name", ValueType::kString},
                          {"score", ValueType::kDouble}});
  std::string payload;
  in.Encode(&payload);
  auto out = SubmitOkFrame::Decode(payload);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->job_id, 42u);
  EXPECT_EQ(out->schema, in.schema);
}

TEST(WireCodecTest, StatusAndPageAndErrorRoundTrip) {
  StatusFrame st;
  st.job_id = 7;
  st.state = 2;
  st.done = true;
  st.code = 0;
  st.rows = 1000;
  st.pages = 3;
  std::string payload;
  st.Encode(&payload);
  auto st2 = StatusFrame::Decode(payload);
  ASSERT_TRUE(st2.ok());
  EXPECT_EQ(st2->rows, 1000u);
  EXPECT_EQ(st2->pages, 3u);
  EXPECT_TRUE(st2->done);

  PageFrame pg;
  pg.job_id = 7;
  pg.page = 2;
  pg.last = true;
  pg.dataset_bytes = Serializer::EncodeDataset(
      Dataset({Record({Value(int64_t{1}), Value("x")})}));
  payload.clear();
  pg.Encode(&payload);
  auto pg2 = PageFrame::Decode(payload, kDefaultMaxFrameBytes);
  ASSERT_TRUE(pg2.ok());
  EXPECT_TRUE(pg2->last);
  EXPECT_EQ(pg2->dataset_bytes, pg.dataset_bytes);

  const Status original = Status::ResourceExhausted("quota");
  ErrorFrame err = ErrorFrame::FromStatus(original);
  payload.clear();
  err.Encode(&payload);
  auto err2 = ErrorFrame::Decode(payload);
  ASSERT_TRUE(err2.ok());
  EXPECT_EQ(err2->ToStatus().code(), original.code());
  EXPECT_EQ(err2->ToStatus().message(), original.message());
}

TEST(WireCodecTest, TrailingBytesAreRejected) {
  JobIdFrame in;
  in.job_id = 9;
  std::string payload;
  in.Encode(&payload);
  payload.push_back('\0');
  EXPECT_FALSE(JobIdFrame::Decode(payload).ok());
}

TEST(WireCodecTest, OversizedStringIsRejectedBeforeAllocating) {
  // A HELLO claiming a ~4 GiB auth token must fail on the ceiling check,
  // not attempt the allocation.
  std::string payload;
  PutU32(kProtocolVersion, &payload);
  PutU32(0xfffffff0u, &payload);  // declared token length
  payload += "abc";
  EXPECT_FALSE(HelloFrame::Decode(payload).ok());
}

TEST(WireCodecTest, FuzzTruncationsAndBitFlipsNeverCrash) {
  Rng rng(20260808);
  std::vector<std::string> corpus;
  {
    std::string p;
    HelloFrame h;
    h.auth_token = "token-token";
    h.tenant = "tenant";
    h.Encode(&p);
    corpus.push_back(p);
    p.clear();
    SubmitFrame s;
    s.text = "SELECT a, b FROM t WHERE a > 10";
    s.deadline_ms = 1234;
    s.Encode(&p);
    corpus.push_back(p);
    p.clear();
    SubmitOkFrame ok;
    ok.job_id = 77;
    ok.schema = Schema::Of({{"a", ValueType::kInt64},
                            {"b", ValueType::kString}});
    ok.Encode(&p);
    corpus.push_back(p);
    p.clear();
    StatusFrame st;
    st.job_id = 77;
    st.done = true;
    st.code = 10;
    st.message = "resource exhausted";
    st.Encode(&p);
    corpus.push_back(p);
    p.clear();
    PageFrame pg;
    pg.job_id = 77;
    pg.page = 1;
    pg.dataset_bytes = Serializer::EncodeDataset(Dataset(
        {Record({Value(1.5), Value("abc")}), Record({Value(2.5), Value("d")})}));
    pg.Encode(&p);
    corpus.push_back(p);
    p.clear();
    FetchFrame f;
    f.job_id = 77;
    f.page = 3;
    f.Encode(&p);
    corpus.push_back(p);
  }

  auto decode_all = [](const std::string& p) {
    // Feed the mutated payload to every decoder; none may crash.
    (void)HelloFrame::Decode(p);
    (void)SubmitFrame::Decode(p);
    (void)JobIdFrame::Decode(p);
    (void)FetchFrame::Decode(p);
    (void)HelloOkFrame::Decode(p);
    (void)SubmitOkFrame::Decode(p);
    (void)StatusFrame::Decode(p);
    (void)PageFrame::Decode(p, kDefaultMaxFrameBytes);
    (void)ErrorFrame::Decode(p);
  };

  for (const std::string& valid : corpus) {
    // Every strict prefix must decode to an error, never crash.
    for (std::size_t len = 0; len < valid.size(); ++len) {
      decode_all(valid.substr(0, len));
    }
    // Random bit flips.
    for (int trial = 0; trial < 200; ++trial) {
      std::string mutated = valid;
      const int flips = 1 + static_cast<int>(rng.NextU64() % 4);
      for (int f = 0; f < flips; ++f) {
        const std::size_t pos = rng.NextU64() % mutated.size();
        mutated[pos] = static_cast<char>(
            mutated[pos] ^ static_cast<char>(1u << (rng.NextU64() % 8)));
      }
      decode_all(mutated);
    }
    // Random garbage of the same length.
    for (int trial = 0; trial < 50; ++trial) {
      std::string garbage(valid.size(), '\0');
      for (char& c : garbage) {
        c = static_cast<char>(rng.NextU64() & 0xff);
      }
      decode_all(garbage);
    }
  }
}

// --- live server fixture ----------------------------------------------------

class NetServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok());
    std::vector<Record> rows;
    for (int64_t i = 0; i < 300; ++i) {
      rows.push_back(Record({Value(i), Value("row-" + std::to_string(i)),
                             Value(static_cast<double>(i) * 0.5)}));
    }
    Dataset emp(std::move(rows), Schema::Of({{"id", ValueType::kInt64},
                                             {"name", ValueType::kString},
                                             {"score", ValueType::kDouble}}));
    ASSERT_TRUE(catalog_.Register("emp", emp).ok());
  }

  void StartServer() {
    server_ = std::make_unique<NetServer>(&ctx_, &catalog_);
    auto port = server_->Start(0);
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
    ASSERT_GT(port_, 0);
  }

  void TearDown() override {
    if (server_) server_->Shutdown(/*drain=*/true);
  }

  RheemContext ctx_;
  sql::InMemoryCatalog catalog_;
  std::unique_ptr<NetServer> server_;
  int port_ = 0;
};

TEST_F(NetServiceTest, SubmitPollFetchMatchesDirectExecution) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  EXPECT_EQ(client.tenant(), "default");

  Schema schema;
  auto job = client.SubmitSql("SELECT id, score FROM emp WHERE id < 10",
                              /*deadline_ms=*/0, &schema);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(schema, Schema::Of({{"id", ValueType::kInt64},
                                {"score", ValueType::kDouble}}));

  auto over_wire = client.FetchAll(*job);
  ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();

  auto stmt = ctx_.Sql("SELECT id, score FROM emp WHERE id < 10", catalog_);
  ASSERT_TRUE(stmt.ok());
  auto direct = stmt->Collect();
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(over_wire->size(), direct->size());
  for (std::size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ(over_wire->at(i), direct->at(i)) << "row " << i;
  }
  EXPECT_TRUE(client.Bye().ok());
}

TEST_F(NetServiceTest, LargeResultStreamsAcrossManyBoundedPages) {
  // Tiny pages force SELECT * over 300 rows to span many FETCHes; the
  // server re-encodes one page at a time.
  ctx_.mutable_config().SetInt("service.net.page_bytes", 256);
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());

  auto job = client.SubmitSql("SELECT * FROM emp");
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  auto status = client.WaitDone(*job);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(status->code, 0) << status->message;
  EXPECT_EQ(status->rows, 300u);
  EXPECT_GT(status->pages, 10u) << "pages should be bounded by page_bytes";

  std::size_t rows_seen = 0;
  bool last = false;
  for (uint64_t page = 0; page < status->pages; ++page) {
    auto chunk = client.FetchPage(*job, page, &last);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    EXPECT_GT(chunk->size(), 0u);
    rows_seen += chunk->size();
    EXPECT_EQ(last, page + 1 == status->pages);
  }
  EXPECT_EQ(rows_seen, 300u);

  // One page past the end is OutOfRange, and the connection survives it.
  auto beyond = client.FetchPage(*job, status->pages);
  EXPECT_TRUE(beyond.status().IsOutOfRange()) << beyond.status().ToString();
  auto again = client.FetchPage(*job, 0);
  EXPECT_TRUE(again.ok()) << "connection should survive an OutOfRange fetch";
  EXPECT_TRUE(client.Bye().ok());
}

TEST_F(NetServiceTest, AuthTokenGatesSessionsAndResolvesTenant) {
  ctx_.mutable_config().Set("service.net.auth_tokens",
                            "sesame=acme,letmein=globex");
  StartServer();

  Client bad;
  Status st = bad.Connect("127.0.0.1", port_, "wrong-token");
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(bad.connected());

  // Claiming another token's tenant is refused too.
  Client liar;
  EXPECT_FALSE(liar.Connect("127.0.0.1", port_, "sesame", "globex").ok());

  Client good;
  ASSERT_TRUE(good.Connect("127.0.0.1", port_, "sesame").ok());
  EXPECT_EQ(good.tenant(), "acme");
  auto job = good.SubmitSql("SELECT id FROM emp WHERE id = 1");
  ASSERT_TRUE(job.ok());
  auto rows = good.FetchAll(*job);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_TRUE(good.Bye().ok());

  EXPECT_GE(server_->stats().auth_failures, 2);
}

TEST_F(NetServiceTest, TenantQuotaRejectsWithResourceExhausted) {
  ctx_.mutable_config().SetInt("service.net.tenant_max_active_jobs", 0);
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  auto job = client.SubmitSql("SELECT * FROM emp");
  EXPECT_TRUE(job.status().IsResourceExhausted()) << job.status().ToString();
  // The refusal was admission-time: nothing was compiled or submitted, and
  // the connection is still usable.
  EXPECT_EQ(server_->stats().submits, 0);
  EXPECT_EQ(server_->stats().quota_rejections, 1);
  auto poll = client.Poll(12345);
  EXPECT_TRUE(poll.status().IsNotFound()) << poll.status().ToString();
  EXPECT_TRUE(client.Bye().ok());
}

TEST_F(NetServiceTest, BadSqlFailsButConnectionSurvives) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  auto bad = client.SubmitSql("SELEKT * FROM emp");
  EXPECT_TRUE(bad.status().IsInvalidArgument()) << bad.status().ToString();
  auto good = client.SubmitSql("SELECT id FROM emp WHERE id < 3");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  auto rows = client.FetchAll(*good);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_TRUE(client.Bye().ok());
}

TEST_F(NetServiceTest, ExpiredDeadlineResolvesDeadlineExceededOverTheWire) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  auto job = client.SubmitSql("SELECT * FROM emp", /*deadline_ms=*/-5);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  auto status = client.WaitDone(*job);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(status->code,
            static_cast<uint8_t>(StatusCode::kDeadlineExceeded))
      << status->message;
  // Fetching a failed job surfaces its terminal status, not a page.
  auto fetch = client.FetchAll(*job);
  EXPECT_EQ(fetch.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(client.Bye().ok());
}

TEST_F(NetServiceTest, CancelIsAcknowledged) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  auto job = client.SubmitSql("SELECT * FROM emp");
  ASSERT_TRUE(job.ok());
  EXPECT_TRUE(client.Cancel(*job).ok());
  auto status = client.WaitDone(*job);
  ASSERT_TRUE(status.ok());
  // The job either finished before the cancel landed or was cancelled;
  // both are terminal.
  EXPECT_TRUE(status->done);
  EXPECT_TRUE(client.Cancel(12345).IsNotFound());
  EXPECT_TRUE(client.Bye().ok());
}

TEST_F(NetServiceTest, FrameBeforeHelloPoisonsOnlyThatConnection) {
  StartServer();
  // Speak the wire format by hand: POLL before HELLO.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  JobIdFrame poll;
  poll.job_id = 1;
  std::string payload;
  poll.Encode(&payload);
  ASSERT_TRUE(WriteFrame(fd, FrameType::kPoll, payload).ok());
  auto reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, FrameType::kError);
  auto err = ErrorFrame::Decode(reply->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err->ToStatus().IsIoError());
  // The server hung up on us...
  auto eof = ReadFrame(fd);
  EXPECT_FALSE(eof.ok());
  ::close(fd);

  // ...but keeps serving everyone else.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  auto job = client.SubmitSql("SELECT id FROM emp WHERE id = 0");
  ASSERT_TRUE(job.ok());
  EXPECT_TRUE(client.FetchAll(*job).ok());
  EXPECT_TRUE(client.Bye().ok());
  EXPECT_GE(server_->stats().protocol_errors, 1);
}

TEST_F(NetServiceTest, OversizedFrameHeaderClosesTheConnection) {
  StartServer();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // Header declaring a 1 GiB payload: the server must refuse to buffer it
  // and close, long before 1 GiB of anything is allocated.
  unsigned char header[5] = {0x00, 0x00, 0x00, 0x40,
                             static_cast<unsigned char>(FrameType::kHello)};
  ASSERT_EQ(::send(fd, header, sizeof(header), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(header)));
  auto eof = ReadFrame(fd);
  EXPECT_FALSE(eof.ok());
  ::close(fd);
}

TEST_F(NetServiceTest, DrainShutdownRejectsNewSubmitsButFinishesOldJobs) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  auto job = client.SubmitSql("SELECT * FROM emp WHERE id < 50");
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(client.WaitDone(*job).ok());

  std::thread shutdown([this]() { server_->Shutdown(/*drain=*/true); });
  shutdown.join();
  server_.reset();

  // New connections are refused once the listener is gone.
  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", port_).ok());
}

TEST_F(NetServiceTest, StatsCountTheSessionLifecycle) {
  StartServer();
  {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
    auto job = client.SubmitSql("SELECT id FROM emp WHERE id < 5");
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE(client.FetchAll(*job).ok());
    ASSERT_TRUE(client.Bye().ok());
  }
  // BYE is processed before the session unwinds; give teardown a moment.
  for (int i = 0; i < 200 && server_->stats().sessions_closed < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  NetServerStats s = server_->stats();
  EXPECT_EQ(s.sessions_opened, 1);
  EXPECT_EQ(s.sessions_closed, 1);
  EXPECT_EQ(s.sessions_active, 0u);
  EXPECT_EQ(s.submits, 1);
  EXPECT_GE(s.frames_received, 4);  // HELLO, SUBMIT, >=1 POLL/FETCH, BYE
  EXPECT_GE(s.pages_served, 1);
}

}  // namespace
}  // namespace net
}  // namespace rheem

// Randomized differential testing of the whole compilation stack: randomly
// generated dataflow pipelines are executed with the multi-platform optimizer
// free to choose (and split) platforms, forced onto javasim, forced onto
// sparksim, and — where the plan is expressible — forced onto relsim. All
// results must be bag-equal: the platform-independence contract under
// thousands of operator combinations no hand-written test would cover.
//
// Every divergence message carries the plan's tape seed. To replay one plan,
// re-run the test with RHEEM_FUZZ_SEED=<seed> (one round, that exact plan).
// CI rotates coverage across runs via RHEEM_FUZZ_SEED_OFFSET, which shifts
// the per-shard base seeds without touching the generator.

#include <cstdlib>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/api/data_quanta.h"
#include "core/service/job_server.h"

namespace rheem {
namespace {

std::multiset<std::string> AsMultiset(const Dataset& d) {
  std::multiset<std::string> out;
  for (const Record& r : d.records()) out.insert(r.ToString());
  return out;
}

uint64_t EnvSeedOffset() {
  const char* s = std::getenv("RHEEM_FUZZ_SEED_OFFSET");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 0;
}

bool EnvReplaySeed(uint64_t* seed) {
  const char* s = std::getenv("RHEEM_FUZZ_SEED");
  if (s == nullptr) return false;
  *seed = std::strtoull(s, nullptr, 10);
  return true;
}

/// Random (key:int64, value:int64) dataset.
Dataset RandomPairs(Rng* rng, int max_rows) {
  const int rows = 1 + static_cast<int>(rng->NextBounded(
                           static_cast<uint64_t>(max_rows)));
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    out.push_back(
        Record({Value(rng->NextInt(0, 15)), Value(rng->NextInt(-100, 100))}));
  }
  return Dataset(std::move(out));
}

/// Appends 1..6 random operators to `q`, keeping the (key, value) shape
/// invariant so every operator remains applicable.
///
/// `order_stable` tracks whether the pipeline's element order is still the
/// same on every platform (narrow order-preserving ops only). Sample's keep
/// decision is a function of global element position, so it is only a fair
/// differential case while order is stable; afterwards the generator
/// substitutes a deterministic Map to keep the random tape aligned.
DataQuanta RandomPipeline(Rng* rng, RheemJob* job, DataQuanta q) {
  const int steps = 1 + static_cast<int>(rng->NextBounded(6));
  bool order_stable = true;
  for (int s = 0; s < steps; ++s) {
    switch (rng->NextBounded(12)) {
      case 0:
        q = q.Map([](const Record& r) {
          return Record({r[0], Value(r[1].ToInt64Or(0) + 1)});
        });
        break;
      case 1: {
        const int64_t threshold = rng->NextInt(-50, 50);
        q = q.Filter([threshold](const Record& r) {
          return r[1].ToInt64Or(0) >= threshold;
        });
        break;
      }
      case 2:
        q = q.FlatMap([](const Record& r) {
          std::vector<Record> out{r};
          if (r[1].ToInt64Or(0) % 2 == 0) {
            out.push_back(Record({r[0], Value(r[1].ToInt64Or(0) / 2)}));
          }
          return out;
        });
        break;
      case 3:
        q = q.Distinct();
        order_stable = false;
        break;
      case 4:
        q = q.Sort([](const Record& r) { return r[1]; });
        order_stable = false;  // ties may gather in platform-dependent order
        break;
      case 5:
        q = q.ReduceByKey(
            [](const Record& r) { return r[0]; },
            [](const Record& a, const Record& b) {
              return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
            });
        order_stable = false;
        break;
      case 6:
        q = q.Union(job->LoadCollection(RandomPairs(rng, 50)));
        order_stable = false;
        break;
      case 7:
        // Total key (no cross-record ties): platforms may order equal keys
        // differently, which would be a legal divergence, not a bug.
        q = q.TopK(1 + static_cast<int64_t>(rng->NextBounded(20)),
                   [](const Record& r) {
                     return Value(r[1].ToInt64Or(0) * 16 + r[0].ToInt64Or(0));
                   },
                   rng->NextBool());
        order_stable = false;
        break;
      case 8:
        q = q.GroupByKey(
            [](const Record& r) { return r[0]; },
            [](const Value& key, const std::vector<Record>& members) {
              return std::vector<Record>{Record(
                  {key, Value(static_cast<int64_t>(members.size()))})};
            });
        order_stable = false;
        break;
      case 9: {
        // Equi-join against a small random build side. Join output is the
        // concatenation (lk, lv, rk, rv); fold back to the 2-field shape.
        DataQuanta side = job->LoadCollection(RandomPairs(rng, 20));
        q = q.Join(
                 side, [](const Record& r) { return r[0]; },
                 [](const Record& r) { return r[0]; })
                .Map([](const Record& r) {
                  return Record({r[0], Value(r[1].ToInt64Or(0) * 7 +
                                             r[3].ToInt64Or(0))});
                });
        order_stable = false;
        break;
      }
      case 10: {
        // CoGroup: tag each side with a marker column, union, and group by
        // key with an order-insensitive combine (member order inside a group
        // is platform-dependent, so the aggregate must not depend on it).
        DataQuanta side = job->LoadCollection(RandomPairs(rng, 30));
        DataQuanta left = q.Map([](const Record& r) {
          return Record({r[0], r[1], Value(static_cast<int64_t>(0))});
        });
        DataQuanta right = side.Map([](const Record& r) {
          return Record({r[0], r[1], Value(static_cast<int64_t>(1))});
        });
        q = left.Union(right).GroupByKey(
            [](const Record& r) { return r[0]; },
            [](const Value& key, const std::vector<Record>& members) {
              int64_t left_sum = 0, right_sum = 0;
              int64_t left_n = 0, right_n = 0;
              for (const Record& m : members) {
                if (m[2].ToInt64Or(0) == 0) {
                  left_sum += m[1].ToInt64Or(0);
                  ++left_n;
                } else {
                  right_sum += m[1].ToInt64Or(0);
                  ++right_n;
                }
              }
              return std::vector<Record>{
                  Record({key, Value(left_sum * 31 + right_sum + left_n * 7 +
                                     right_n)})};
            });
        order_stable = false;
        break;
      }
      default: {
        const double fraction =
            0.2 + 0.05 * static_cast<double>(rng->NextBounded(13));
        const uint64_t sample_seed = rng->NextU64();
        if (order_stable) {
          q = q.Sample(fraction, sample_seed);
        } else {
          // Same tape draws, deterministic substitute.
          q = q.Map([](const Record& r) {
            return Record({r[0], Value(r[1].ToInt64Or(0) ^ 1)});
          });
        }
        break;
      }
    }
  }
  return q;
}

class FuzzPlansTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok()); }
  RheemContext ctx_;
};

// 16 shards x 32 rounds = 512 random plans, each executed on every backend.
TEST_P(FuzzPlansTest, DifferentialBackendsAgree) {
  uint64_t replay = 0;
  const bool has_replay = EnvReplaySeed(&replay);
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1 + EnvSeedOffset());
  const int rounds = has_replay ? 1 : 32;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = has_replay ? replay : rng.NextU64();
    // Build from the same random tape once per execution mode.
    auto run = [&](const std::string& force) {
      Rng tape(seed);
      RheemJob job(&ctx_);
      job.options().force_platform = force;
      DataQuanta q = job.LoadCollection(RandomPairs(&tape, 200));
      q = RandomPipeline(&tape, &job, q);
      return q.Collect();
    };
    auto reference = run("javasim");
    ASSERT_TRUE(reference.ok())
        << "javasim failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
        << reference.status().ToString();
    const auto expect = AsMultiset(*reference);

    for (const char* force : {"", "sparksim"}) {
      auto got = run(force);
      ASSERT_TRUE(got.ok())
          << "backend '" << force
          << "' failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
          << got.status().ToString();
      EXPECT_EQ(AsMultiset(*got), expect)
          << "backend '" << force
          << "' diverged; replay with RHEEM_FUZZ_SEED=" << seed;
    }

    // relsim covers a relational subset; a plan it cannot express skips
    // (Unsupported from enumeration), but an execution failure or a result
    // divergence on an expressible plan is a bug.
    auto rel = run("relsim");
    if (rel.ok()) {
      EXPECT_EQ(AsMultiset(*rel), expect)
          << "backend 'relsim' diverged; replay with RHEEM_FUZZ_SEED=" << seed;
    } else {
      ASSERT_TRUE(rel.status().IsUnsupported())
          << "backend 'relsim' failed (not a mere expressibility skip); "
          << "replay with RHEEM_FUZZ_SEED=" << seed << ": "
          << rel.status().ToString();
    }
  }
}

// Reuse-differential mode: every random plan runs three times against one
// JobServer — once with the result cache opted out (the reference), once
// cold (populating the cache), once warm (served from it). All three must be
// bag-equal: a cache-served stage result that differs from the computed one
// is a reuse bug, not a legal divergence. 16 shards x 32 rounds = 512 plans.
TEST_P(FuzzPlansTest, ReuseDifferentialColdWarmAgree) {
  uint64_t replay = 0;
  const bool has_replay = EnvReplaySeed(&replay);
  Rng rng(static_cast<uint64_t>(GetParam()) * 15485863 + 5 + EnvSeedOffset());
  const int rounds = has_replay ? 1 : 32;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = has_replay ? replay : rng.NextU64();
    // Build from the same random tape once per submission, so the three
    // submissions carry identical plans (and identical fingerprints).
    auto run = [&](bool use_result_cache) {
      Rng tape(seed);
      RheemJob job(&ctx_);
      DataQuanta q = job.LoadCollection(RandomPairs(&tape, 200));
      q = RandomPipeline(&tape, &job, q);
      auto plan = q.Seal();
      EXPECT_TRUE(plan.ok()) << plan.status().ToString();
      JobOptions options;
      options.use_result_cache = use_result_cache;
      auto handle = ctx_.Submit(**plan, options);
      if (!handle.ok()) return Result<ExecutionResult>(handle.status());
      return handle->Wait();
    };
    auto reference = run(/*use_result_cache=*/false);
    ASSERT_TRUE(reference.ok())
        << "reference failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
        << reference.status().ToString();
    const auto expect = AsMultiset(reference->output);

    auto cold = run(/*use_result_cache=*/true);
    ASSERT_TRUE(cold.ok())
        << "cold run failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
        << cold.status().ToString();
    EXPECT_EQ(AsMultiset(cold->output), expect)
        << "cold run diverged; replay with RHEEM_FUZZ_SEED=" << seed;

    auto warm = run(/*use_result_cache=*/true);
    ASSERT_TRUE(warm.ok())
        << "warm run failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
        << warm.status().ToString();
    EXPECT_EQ(AsMultiset(warm->output), expect)
        << "warm run diverged; replay with RHEEM_FUZZ_SEED=" << seed;
    EXPECT_GE(warm->metrics.stages_reused, 1)
        << "warm run reused nothing; replay with RHEEM_FUZZ_SEED=" << seed;
  }
}

TEST_P(FuzzPlansTest, ExplainAlwaysCompiles) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 3 + EnvSeedOffset());
  for (int round = 0; round < 4; ++round) {
    RheemJob job(&ctx_);
    DataQuanta q = job.LoadCollection(RandomPairs(&rng, 100));
    q = RandomPipeline(&rng, &job, q);
    auto text = q.Explain();
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_NE(text->find("stage 0"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPlansTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace rheem

// Randomized differential testing of the whole compilation stack: randomly
// generated dataflow pipelines are executed with the multi-platform optimizer
// free to choose (and split) platforms, forced onto javasim, forced onto
// sparksim, and — where the plan is expressible — forced onto relsim. All
// results must be bag-equal: the platform-independence contract under
// thousands of operator combinations no hand-written test would cover.
//
// Every divergence message carries the plan's tape seed. To replay one plan,
// re-run the test with RHEEM_FUZZ_SEED=<seed> (one round, that exact plan).
// CI rotates coverage across runs via RHEEM_FUZZ_SEED_OFFSET, which shifts
// the per-shard base seeds without touching the generator.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/api/data_quanta.h"
#include "core/operators/kernels.h"
#include "core/service/job_server.h"
#include "core/sql/sql.h"
#include "random_plans.h"

namespace rheem {
namespace {

using testutil::AsMultiset;
using testutil::RandomPairs;
using testutil::RandomPipeline;

uint64_t EnvSeedOffset() { return testutil::EnvU64("RHEEM_FUZZ_SEED_OFFSET"); }

bool EnvReplaySeed(uint64_t* seed) {
  return testutil::EnvReplaySeed("RHEEM_FUZZ_SEED", seed);
}

/// Differential suites compare repeated runs of one plan, so the shared
/// context must not learn between them: a statistics-catalog hit on the
/// second compilation could legally change the platform assignment and break
/// the "same plan, same stages" premise the oracles rest on. The adaptive
/// differential below exercises the learning/re-optimization machinery with
/// per-run contexts instead.
inline Config NoLearningConfig() {
  Config config;
  config.SetBool("stats.enabled", false);
  return config;
}

class FuzzPlansTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok()); }
  RheemContext ctx_{NoLearningConfig()};
};

// 16 shards x 32 rounds = 512 random plans, each executed on every backend.
TEST_P(FuzzPlansTest, DifferentialBackendsAgree) {
  uint64_t replay = 0;
  const bool has_replay = EnvReplaySeed(&replay);
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1 + EnvSeedOffset());
  const int rounds = has_replay ? 1 : 32;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = has_replay ? replay : rng.NextU64();
    // Build from the same random tape once per execution mode.
    auto run = [&](const std::string& force) {
      Rng tape(seed);
      RheemJob job(&ctx_);
      job.options().force_platform = force;
      DataQuanta q = job.LoadCollection(RandomPairs(&tape, 200));
      q = RandomPipeline(&tape, &job, q);
      return q.Collect();
    };
    auto reference = run("javasim");
    ASSERT_TRUE(reference.ok())
        << "javasim failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
        << reference.status().ToString();
    const auto expect = AsMultiset(*reference);

    for (const char* force : {"", "sparksim"}) {
      auto got = run(force);
      ASSERT_TRUE(got.ok())
          << "backend '" << force
          << "' failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
          << got.status().ToString();
      EXPECT_EQ(AsMultiset(*got), expect)
          << "backend '" << force
          << "' diverged; replay with RHEEM_FUZZ_SEED=" << seed;
    }

    // relsim covers a relational subset; a plan it cannot express skips
    // (Unsupported from enumeration), but an execution failure or a result
    // divergence on an expressible plan is a bug.
    auto rel = run("relsim");
    if (rel.ok()) {
      EXPECT_EQ(AsMultiset(*rel), expect)
          << "backend 'relsim' diverged; replay with RHEEM_FUZZ_SEED=" << seed;
    } else {
      ASSERT_TRUE(rel.status().IsUnsupported())
          << "backend 'relsim' failed (not a mere expressibility skip); "
          << "replay with RHEEM_FUZZ_SEED=" << seed << ": "
          << rel.status().ToString();
    }
  }
}

// Reuse-differential mode: every random plan runs three times against one
// JobServer — once with the result cache opted out (the reference), once
// cold (populating the cache), once warm (served from it). All three must be
// bag-equal: a cache-served stage result that differs from the computed one
// is a reuse bug, not a legal divergence. 16 shards x 32 rounds = 512 plans.
TEST_P(FuzzPlansTest, ReuseDifferentialColdWarmAgree) {
  uint64_t replay = 0;
  const bool has_replay = EnvReplaySeed(&replay);
  Rng rng(static_cast<uint64_t>(GetParam()) * 15485863 + 5 + EnvSeedOffset());
  const int rounds = has_replay ? 1 : 32;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = has_replay ? replay : rng.NextU64();
    // Build from the same random tape once per submission, so the three
    // submissions carry identical plans (and identical fingerprints).
    auto run = [&](bool use_result_cache) {
      Rng tape(seed);
      RheemJob job(&ctx_);
      DataQuanta q = job.LoadCollection(RandomPairs(&tape, 200));
      q = RandomPipeline(&tape, &job, q);
      auto plan = q.Seal();
      EXPECT_TRUE(plan.ok()) << plan.status().ToString();
      JobOptions options;
      options.use_result_cache = use_result_cache;
      auto handle = ctx_.Submit(**plan, options);
      if (!handle.ok()) return Result<ExecutionResult>(handle.status());
      return handle->Wait();
    };
    auto reference = run(/*use_result_cache=*/false);
    ASSERT_TRUE(reference.ok())
        << "reference failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
        << reference.status().ToString();
    const auto expect = AsMultiset(reference->output);

    auto cold = run(/*use_result_cache=*/true);
    ASSERT_TRUE(cold.ok())
        << "cold run failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
        << cold.status().ToString();
    EXPECT_EQ(AsMultiset(cold->output), expect)
        << "cold run diverged; replay with RHEEM_FUZZ_SEED=" << seed;

    auto warm = run(/*use_result_cache=*/true);
    ASSERT_TRUE(warm.ok())
        << "warm run failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
        << warm.status().ToString();
    EXPECT_EQ(AsMultiset(warm->output), expect)
        << "warm run diverged; replay with RHEEM_FUZZ_SEED=" << seed;
    EXPECT_GE(warm->metrics.stages_reused, 1)
        << "warm run reused nothing; replay with RHEEM_FUZZ_SEED=" << seed;
  }
}

// Expression-vs-closure differential mode: the same random pipeline spec is
// realized twice — once through the declarative expression overloads (which
// the optimizer splits, pushes down, batch-evaluates, and fingerprints) and
// once through independently-written closures that never touch the expression
// interpreter. The closure build on javasim is the reference; the declarative
// build must be bag-equal on javasim, the free optimizer, and sparksim, and
// on relsim where expressible. 16 shards x 32 rounds = 512 plans.
TEST_P(FuzzPlansTest, DeclarativeClosureDifferentialAgree) {
  uint64_t replay = 0;
  const bool has_replay = EnvReplaySeed(&replay);
  Rng rng(static_cast<uint64_t>(GetParam()) * 6700417 + 7 + EnvSeedOffset());
  const int rounds = has_replay ? 1 : 32;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = has_replay ? replay : rng.NextU64();
    auto run = [&](bool declarative, const std::string& force) {
      Rng tape(seed);
      RheemJob job(&ctx_);
      job.options().force_platform = force;
      DataQuanta q = job.LoadCollection(RandomPairs(&tape, 200));
      q = testutil::RandomExprPipeline(&tape, &job, q, declarative);
      return q.Collect();
    };
    auto reference = run(/*declarative=*/false, "javasim");
    ASSERT_TRUE(reference.ok())
        << "closure reference failed; replay with RHEEM_FUZZ_SEED=" << seed
        << ": " << reference.status().ToString();
    const auto expect = AsMultiset(*reference);

    for (const char* force : {"javasim", "", "sparksim"}) {
      auto got = run(/*declarative=*/true, force);
      ASSERT_TRUE(got.ok())
          << "declarative build on '" << force
          << "' failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
          << got.status().ToString();
      EXPECT_EQ(AsMultiset(*got), expect)
          << "declarative build on '" << force
          << "' diverged from closure reference; replay with RHEEM_FUZZ_SEED="
          << seed;
    }

    auto rel = run(/*declarative=*/true, "relsim");
    if (rel.ok()) {
      EXPECT_EQ(AsMultiset(*rel), expect)
          << "declarative build on 'relsim' diverged; replay with "
          << "RHEEM_FUZZ_SEED=" << seed;
    } else {
      ASSERT_TRUE(rel.status().IsUnsupported())
          << "declarative build on 'relsim' failed (not a mere "
          << "expressibility skip); replay with RHEEM_FUZZ_SEED=" << seed
          << ": " << rel.status().ToString();
    }
  }
}

// Batch-vs-row differential mode: the same declarative plan is executed with
// the columnar batch kernels enabled and with the process-wide columnar
// switch forced off (every kernel takes its row-at-a-time path, exactly what
// RHEEM_FORCE_ROW=1 does at startup). The row build on javasim is the
// reference; the columnar build must be bag-equal on javasim, the free
// optimizer, and sparksim. Declarative pipelines are used because they are
// the ones the vectorized evaluator and columnar aggregates actually
// accelerate; the generator's agg step exercises the columnar ReduceByKey
// accumulators specifically. 16 shards x 24 rounds = 384 plans.
TEST_P(FuzzPlansTest, ColumnarRowDifferentialAgree) {
  uint64_t replay = 0;
  const bool has_replay = EnvReplaySeed(&replay);
  Rng rng(static_cast<uint64_t>(GetParam()) * 32452843 + 11 + EnvSeedOffset());
  const int rounds = has_replay ? 1 : 24;
  const bool entry_columnar = kernels::ColumnarEnabled();
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = has_replay ? replay : rng.NextU64();
    auto run = [&](bool columnar, const std::string& force) {
      kernels::SetColumnarEnabled(columnar);
      Rng tape(seed);
      RheemJob job(&ctx_);
      job.options().force_platform = force;
      DataQuanta q = job.LoadCollection(RandomPairs(&tape, 200));
      q = testutil::RandomExprPipeline(&tape, &job, q, /*declarative=*/true);
      auto out = q.Collect();
      kernels::SetColumnarEnabled(entry_columnar);
      return out;
    };
    auto reference = run(/*columnar=*/false, "javasim");
    ASSERT_TRUE(reference.ok())
        << "row reference failed; replay with RHEEM_FUZZ_SEED=" << seed
        << ": " << reference.status().ToString();
    const auto expect = AsMultiset(*reference);

    for (const char* force : {"javasim", "", "sparksim"}) {
      auto got = run(/*columnar=*/true, force);
      ASSERT_TRUE(got.ok())
          << "columnar build on '" << force
          << "' failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
          << got.status().ToString();
      EXPECT_EQ(AsMultiset(*got), expect)
          << "columnar build on '" << force
          << "' diverged from row reference; replay with RHEEM_FUZZ_SEED="
          << seed;
    }
  }
}

// SQL-vs-plan differential: each round generates one random query in two
// independent representations — SQL text compiled through the frontend
// (tokenizer, parser, analyzer, plan compiler) and a hand-built closure
// pipeline that never touches the SQL stack or the expression IR. The
// hand-built plan on javasim is the reference; the SQL-compiled plan must be
// bag-equal on javasim, the free optimizer, and sparksim (relsim where
// expressible). 16 shards x 32 rounds = 512 queries.
TEST_P(FuzzPlansTest, SqlPlanDifferentialAgree) {
  uint64_t replay = 0;
  const bool has_replay = EnvReplaySeed(&replay);
  Rng rng(static_cast<uint64_t>(GetParam()) * 86028121 + 13 + EnvSeedOffset());
  const int rounds = has_replay ? 1 : 32;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = has_replay ? replay : rng.NextU64();
    Rng tape(seed);
    const testutil::SqlTwinCase twin = testutil::RandomSqlTwin(&tape);

    RheemJob job(&ctx_);
    job.options().force_platform = "javasim";
    auto reference = twin.hand(&job).Collect();
    ASSERT_TRUE(reference.ok())
        << "hand-built reference failed; replay with RHEEM_FUZZ_SEED=" << seed
        << ": " << reference.status().ToString() << "\nSQL: " << twin.sql;
    const auto expect = AsMultiset(*reference);

    sql::InMemoryCatalog catalog;
    for (const auto& entry : twin.tables) {
      ASSERT_TRUE(catalog.Register(entry.first, entry.second).ok());
    }
    auto stmt = ctx_.Sql(twin.sql, catalog);
    ASSERT_TRUE(stmt.ok()) << "SQL failed to compile; replay with "
                           << "RHEEM_FUZZ_SEED=" << seed << ": "
                           << stmt.status().ToString() << "\nSQL: " << twin.sql;

    for (const char* force : {"javasim", "", "sparksim"}) {
      ExecutionOptions options;
      options.force_platform = force;
      auto got = stmt->Collect(options);
      ASSERT_TRUE(got.ok())
          << "SQL plan on backend '" << force
          << "' failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
          << got.status().ToString() << "\nSQL: " << twin.sql;
      EXPECT_EQ(AsMultiset(*got), expect)
          << "SQL plan diverged from hand-built plan on backend '" << force
          << "'; replay with RHEEM_FUZZ_SEED=" << seed << "\nSQL: " << twin.sql
          << "\nplan:\n"
          << stmt->PlanText();
    }

    ExecutionOptions rel_options;
    rel_options.force_platform = "relsim";
    auto rel = stmt->Collect(rel_options);
    if (rel.ok()) {
      EXPECT_EQ(AsMultiset(*rel), expect)
          << "SQL plan diverged on relsim; replay with RHEEM_FUZZ_SEED="
          << seed << "\nSQL: " << twin.sql;
    } else {
      ASSERT_TRUE(rel.status().IsUnsupported())
          << "relsim failed (not a mere expressibility skip); replay with "
          << "RHEEM_FUZZ_SEED=" << seed << ": " << rel.status().ToString()
          << "\nSQL: " << twin.sql;
    }
  }
}

// Adaptive-vs-static differential: every random plan is prefixed with a
// filter whose selectivity hint lies by ~500x and a pinned platform boundary
// right behind it, so the compile-time estimates are provably wrong and the
// executor's progressive re-optimization has a mid-job decision point. The
// honest-hint run is the reference; the lying run with re-optimization armed
// and the lying run with re-optimization disabled (static) must both be
// bag-equal with it — a mid-flight re-plan may change platforms, never
// results. Decisions, job metrics and the registry counter must reconcile:
// decisions.size() == metrics.reoptimizations == reoptimizations_total
// delta. 16 shards x 24 rounds = 384 plans.
TEST_P(FuzzPlansTest, AdaptiveStaticDifferentialAgree) {
  uint64_t replay = 0;
  const bool has_replay = EnvReplaySeed(&replay);
  Rng rng(static_cast<uint64_t>(GetParam()) * 49979687 + 17 + EnvSeedOffset());
  const int rounds = has_replay ? 1 : 24;

  MetricsRegistry& registry = MetricsRegistry::Global();
  const bool metrics_were_enabled = registry.enabled();
  registry.set_enabled(true);
  int64_t total_reopts = 0;

  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = has_replay ? replay : rng.NextU64();
    // Per-run contexts: the adaptive run must not learn this plan's actual
    // cardinalities before it executes, or nothing would be mis-estimated.
    auto run = [&](double hint, int64_t max_reopts) {
      Config config;
      config.SetBool("stats.enabled", false);
      config.SetBool("metrics.enabled", true);
      config.SetInt("executor.max_reoptimizations", max_reopts);
      RheemContext ctx(config);
      EXPECT_TRUE(ctx.RegisterDefaultPlatforms().ok());
      Rng tape(seed);
      RheemJob job(&ctx);
      DataQuanta q = job.LoadCollection(RandomPairs(&tape, 200));
      // The lie: `hint` promises almost nothing survives; everything does.
      q = q.Filter([](const Record&) { return true; }, UdfMeta{hint, 1.0})
              .OnPlatform("javasim");
      // Pinned boundary: the lying filter's stage is never the final stage.
      q = q.Map([](const Record& r) { return Record({r[0], r[1]}); })
              .OnPlatform("sparksim");
      q = RandomPipeline(&tape, &job, q);
      return q.CollectWithMetrics();
    };

    auto reference = run(/*hint=*/1.0, /*max_reopts=*/2);
    ASSERT_TRUE(reference.ok())
        << "honest run failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
        << reference.status().ToString();
    const auto expect = AsMultiset(reference->output);

    const MetricsSnapshot before = registry.Snapshot();
    auto adaptive = run(/*hint=*/0.002, /*max_reopts=*/2);
    const MetricsSnapshot after = registry.Snapshot();
    ASSERT_TRUE(adaptive.ok())
        << "adaptive run failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
        << adaptive.status().ToString();
    EXPECT_EQ(AsMultiset(adaptive->output), expect)
        << "adaptive run diverged; replay with RHEEM_FUZZ_SEED=" << seed;
    EXPECT_EQ(static_cast<int64_t>(adaptive->decisions.size()),
              adaptive->metrics.reoptimizations)
        << "decisions do not reconcile; replay with RHEEM_FUZZ_SEED=" << seed;
    EXPECT_EQ(after.counter("executor.reoptimizations_total") -
                  before.counter("executor.reoptimizations_total"),
              adaptive->metrics.reoptimizations)
        << "registry counter off; replay with RHEEM_FUZZ_SEED=" << seed;
    if (adaptive->metrics.reoptimizations > 0) {
      EXPECT_NE(adaptive->report.find("re-optimized:"), std::string::npos)
          << "re-plan missing from report; replay with RHEEM_FUZZ_SEED="
          << seed;
    }
    total_reopts += adaptive->metrics.reoptimizations;

    auto static_run = run(/*hint=*/0.002, /*max_reopts=*/0);
    ASSERT_TRUE(static_run.ok())
        << "static run failed; replay with RHEEM_FUZZ_SEED=" << seed << ": "
        << static_run.status().ToString();
    EXPECT_EQ(AsMultiset(static_run->output), expect)
        << "static run diverged; replay with RHEEM_FUZZ_SEED=" << seed;
    EXPECT_EQ(static_run->metrics.reoptimizations, 0);
    EXPECT_TRUE(static_run->decisions.empty());
  }
  // Across a shard, the 500x lie must actually trigger (a plan needs >= 4
  // source rows for the error to clear the 3x threshold; all-tiny shards are
  // astronomically unlikely).
  if (!has_replay) EXPECT_GE(total_reopts, 1);
  registry.set_enabled(metrics_were_enabled);
}

TEST_P(FuzzPlansTest, ExplainAlwaysCompiles) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 3 + EnvSeedOffset());
  for (int round = 0; round < 4; ++round) {
    RheemJob job(&ctx_);
    DataQuanta q = job.LoadCollection(RandomPairs(&rng, 100));
    q = RandomPipeline(&rng, &job, q);
    auto text = q.Explain();
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_NE(text->find("stage 0"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPlansTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace rheem

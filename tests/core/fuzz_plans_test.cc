// Randomized end-to-end fuzzing of the whole compilation stack: randomly
// generated dataflow pipelines are executed once with the multi-platform
// optimizer free to choose (and split) platforms, and once forced onto the
// single-threaded reference platform. The results must be bag-equal — the
// platform-independence contract under thousands of operator combinations no
// hand-written test would cover.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/api/data_quanta.h"

namespace rheem {
namespace {

std::multiset<std::string> AsMultiset(const Dataset& d) {
  std::multiset<std::string> out;
  for (const Record& r : d.records()) out.insert(r.ToString());
  return out;
}

/// Random (key:int64, value:int64) dataset.
Dataset RandomPairs(Rng* rng, int max_rows) {
  const int rows = 1 + static_cast<int>(rng->NextBounded(
                           static_cast<uint64_t>(max_rows)));
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    out.push_back(
        Record({Value(rng->NextInt(0, 15)), Value(rng->NextInt(-100, 100))}));
  }
  return Dataset(std::move(out));
}

/// Appends 1..6 random operators to `q`, keeping the (key, value) shape
/// invariant so every operator remains applicable.
DataQuanta RandomPipeline(Rng* rng, RheemJob* job, DataQuanta q) {
  const int steps = 1 + static_cast<int>(rng->NextBounded(6));
  for (int s = 0; s < steps; ++s) {
    switch (rng->NextBounded(9)) {
      case 0:
        q = q.Map([](const Record& r) {
          return Record({r[0], Value(r[1].ToInt64Or(0) + 1)});
        });
        break;
      case 1: {
        const int64_t threshold = rng->NextInt(-50, 50);
        q = q.Filter([threshold](const Record& r) {
          return r[1].ToInt64Or(0) >= threshold;
        });
        break;
      }
      case 2:
        q = q.FlatMap([](const Record& r) {
          std::vector<Record> out{r};
          if (r[1].ToInt64Or(0) % 2 == 0) {
            out.push_back(Record({r[0], Value(r[1].ToInt64Or(0) / 2)}));
          }
          return out;
        });
        break;
      case 3:
        q = q.Distinct();
        break;
      case 4:
        q = q.Sort([](const Record& r) { return r[1]; });
        break;
      case 5:
        q = q.ReduceByKey(
            [](const Record& r) { return r[0]; },
            [](const Record& a, const Record& b) {
              return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
            });
        break;
      case 6:
        q = q.Union(job->LoadCollection(RandomPairs(rng, 50)));
        break;
      case 7:
        // Total key (no cross-record ties): platforms may order equal keys
        // differently, which would be a legal divergence, not a bug.
        q = q.TopK(1 + static_cast<int64_t>(rng->NextBounded(20)),
                   [](const Record& r) {
                     return Value(r[1].ToInt64Or(0) * 16 + r[0].ToInt64Or(0));
                   },
                   rng->NextBool());
        break;
      default:
        q = q.GroupByKey(
            [](const Record& r) { return r[0]; },
            [](const Value& key, const std::vector<Record>& members) {
              return std::vector<Record>{Record(
                  {key, Value(static_cast<int64_t>(members.size()))})};
            });
        break;
    }
  }
  return q;
}

class FuzzPlansTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok()); }
  RheemContext ctx_;
};

TEST_P(FuzzPlansTest, OptimizerChoiceMatchesReferencePlatform) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  // Build twice from the same random tape: once per execution mode.
  for (int round = 0; round < 4; ++round) {
    const uint64_t seed = rng.NextU64();
    auto run = [&](const std::string& force) {
      Rng tape(seed);
      RheemJob job(&ctx_);
      job.options().force_platform = force;
      DataQuanta q = job.LoadCollection(RandomPairs(&tape, 300));
      q = RandomPipeline(&tape, &job, q);
      return q.Collect();
    };
    auto optimized = run("");
    auto reference = run("javasim");
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_EQ(AsMultiset(*optimized), AsMultiset(*reference))
        << "seed " << seed;
  }
}

TEST_P(FuzzPlansTest, ExplainAlwaysCompiles) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 3);
  for (int round = 0; round < 4; ++round) {
    RheemJob job(&ctx_);
    DataQuanta q = job.LoadCollection(RandomPairs(&rng, 100));
    q = RandomPipeline(&rng, &job, q);
    auto text = q.Explain();
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_NE(text->find("stage 0"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPlansTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace rheem

// StatisticsCatalog invariants: record/lookup semantics, geometric-mean cost
// factors, platform-free fingerprinting, and — mirroring the serialization
// hardening suite — persistence hardening: truncated, bit-flipped or garbage
// stats files must be rejected with IoError, counted in
// `stats_catalog.corrupt_total`, and must never leave the catalog partially
// loaded. Runs under ASan in CI (sanitizer job), where any over-read aborts.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/api/data_quanta.h"
#include "core/operators/physical_ops.h"
#include "core/optimizer/stats_catalog.h"
#include "core/service/job_server.h"

namespace rheem {
namespace {

class StatsCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    MetricsRegistry::Global().set_enabled(true);
  }
  void TearDown() override { MetricsRegistry::Global().set_enabled(false); }

  static int64_t CounterValue(const std::string& name) {
    return MetricsRegistry::Global().counter(name)->value();
  }
};

TEST_F(StatsCatalogTest, RecordAndLookupCardinality) {
  StatisticsCatalog catalog;
  Estimate out;
  EXPECT_FALSE(catalog.LookupCardinality(42, &out));
  EXPECT_EQ(CounterValue("stats_catalog.misses"), 1);

  catalog.RecordCardinality(42, 1000.0, 48.0);
  ASSERT_TRUE(catalog.LookupCardinality(42, &out));
  EXPECT_EQ(out.cardinality, 1000.0);
  EXPECT_EQ(out.avg_bytes, 48.0);
  EXPECT_EQ(CounterValue("stats_catalog.hits"), 1);

  // Last write wins: a fresh observation replaces the stale one.
  catalog.RecordCardinality(42, 500.0, 32.0);
  ASSERT_TRUE(catalog.LookupCardinality(42, &out));
  EXPECT_EQ(out.cardinality, 500.0);
  EXPECT_EQ(catalog.cardinality_entries(), 1u);
  EXPECT_EQ(CounterValue("stats_catalog.updates_total"), 2);
}

TEST_F(StatsCatalogTest, RejectsNonFiniteObservations) {
  StatisticsCatalog catalog;
  catalog.RecordCardinality(1, std::nan(""), 32.0);
  catalog.RecordCardinality(2, -5.0, 32.0);
  catalog.RecordCostRatio("Map", "javasim", 0.0);
  catalog.RecordCostRatio("Map", "javasim", -1.0);
  catalog.RecordCostRatio("Map", "javasim", std::nan(""));
  EXPECT_EQ(catalog.cardinality_entries(), 0u);
  EXPECT_EQ(catalog.cost_entries(), 0u);
  EXPECT_EQ(catalog.version(), 0);
}

TEST_F(StatsCatalogTest, CostFactorIsClampedGeometricMean) {
  StatisticsCatalog catalog;
  EXPECT_EQ(catalog.CostFactor("Map", "javasim"), 1.0);  // unknown: neutral

  catalog.RecordCostRatio("Map", "javasim", 4.0);
  catalog.RecordCostRatio("Map", "javasim", 1.0);
  EXPECT_NEAR(catalog.CostFactor("Map", "javasim"), 2.0, 1e-9);  // sqrt(4*1)

  // One wild observation cannot blind the enumerator: clamped to [0.05, 20].
  StatisticsCatalog wild;
  wild.RecordCostRatio("Join", "sparksim", 1e9);
  EXPECT_EQ(wild.CostFactor("Join", "sparksim"), 20.0);
  wild.RecordCostRatio("Filter", "relsim", 1e-9);
  EXPECT_EQ(wild.CostFactor("Filter", "relsim"), 0.05);

  // Distinct (op, platform) keys do not bleed into each other.
  EXPECT_EQ(wild.CostFactor("Join", "relsim"), 1.0);
}

TEST_F(StatsCatalogTest, EncodeDecodeRoundTrips) {
  StatisticsCatalog catalog;
  catalog.RecordCardinality(0, 0.0, 16.0);
  catalog.RecordCardinality(0xdeadbeefcafef00dull, 123456.0, 64.5);
  catalog.RecordCostRatio("Map", "javasim", 2.0);
  catalog.RecordCostRatio("Map", "javasim", 8.0);
  catalog.RecordCostRatio("Join", "sparksim", 0.25);

  StatisticsCatalog loaded;
  ASSERT_TRUE(loaded.DecodeFrom(catalog.Encode()).ok());
  EXPECT_EQ(loaded.cardinality_entries(), catalog.cardinality_entries());
  EXPECT_EQ(loaded.cost_entries(), catalog.cost_entries());
  Estimate est;
  ASSERT_TRUE(loaded.LookupCardinality(0xdeadbeefcafef00dull, &est));
  EXPECT_EQ(est.cardinality, 123456.0);
  EXPECT_EQ(est.avg_bytes, 64.5);
  EXPECT_NEAR(loaded.CostFactor("Map", "javasim"),
              catalog.CostFactor("Map", "javasim"), 1e-12);
  EXPECT_NEAR(loaded.CostFactor("Join", "sparksim"),
              catalog.CostFactor("Join", "sparksim"), 1e-12);
}

TEST_F(StatsCatalogTest, SaveAndLoadFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/rheem_stats_catalog_rt";
  StatisticsCatalog catalog;
  catalog.RecordCardinality(7, 700.0, 24.0);
  catalog.RecordCostRatio("Sort", "javasim", 1.5);
  ASSERT_TRUE(catalog.SaveToFile(path).ok());

  StatisticsCatalog loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  Estimate est;
  EXPECT_TRUE(loaded.LookupCardinality(7, &est));
  EXPECT_EQ(est.cardinality, 700.0);
  std::remove(path.c_str());

  EXPECT_FALSE(loaded.LoadFromFile(path + ".does_not_exist").ok());
}

/// Random catalog for the hardening fuzz: random fingerprints, cardinalities
/// and (op, platform) cost keys, so truncation/flip coverage is not tied to
/// one fixed payload shape.
StatisticsCatalog* FillRandom(StatisticsCatalog* catalog, Rng* rng) {
  const int cards = 1 + static_cast<int>(rng->NextBounded(8));
  for (int i = 0; i < cards; ++i) {
    catalog->RecordCardinality(rng->NextU64(),
                               static_cast<double>(rng->NextBounded(1 << 20)),
                               1.0 + static_cast<double>(rng->NextBounded(256)));
  }
  const int costs = static_cast<int>(rng->NextBounded(6));
  for (int i = 0; i < costs; ++i) {
    std::string op(1 + rng->NextBounded(6), 'a');
    for (auto& c : op) c = static_cast<char>('a' + rng->NextBounded(26));
    catalog->RecordCostRatio(op, rng->NextBool() ? "javasim" : "sparksim",
                             0.1 + static_cast<double>(rng->NextBounded(50)));
  }
  return catalog;
}

// Mirrors SerializationHardeningTest.FuzzTruncationsAndBitFlipsNeverCrash for
// the stats file: because the framing is checksummed, EVERY truncation and
// EVERY bit flip must be rejected (not just "never crash"), every rejection
// must increment `stats_catalog.corrupt_total`, and the target catalog's
// contents must survive each failed load bit-for-bit.
TEST_F(StatsCatalogTest, FuzzTruncationsAndBitFlipsNeverLoad) {
  Rng rng(20260808);
  for (int trial = 0; trial < 40; ++trial) {
    StatisticsCatalog source;
    FillRandom(&source, &rng);
    const std::string framed = source.Encode();

    StatisticsCatalog target;
    target.RecordCardinality(99, 42.0, 32.0);  // canary entry
    const int64_t version_before = target.version();
    auto expect_unchanged = [&](const char* what) {
      Estimate est;
      ASSERT_TRUE(target.LookupCardinality(99, &est)) << what;
      EXPECT_EQ(est.cardinality, 42.0) << what;
      EXPECT_EQ(target.cardinality_entries(), 1u) << what;
      EXPECT_EQ(target.version(), version_before) << what;
    };

    // Every truncation point: a shorter frame cannot carry a valid checksum
    // over its remaining payload.
    for (std::size_t cut = 0; cut < framed.size();
         cut += 1 + rng.NextBounded(7)) {
      const int64_t corrupt_before = CounterValue("stats_catalog.corrupt_total");
      auto status = target.DecodeFrom(framed.substr(0, cut));
      EXPECT_TRUE(status.IsIoError()) << "truncated frame loaded at cut " << cut;
      EXPECT_EQ(CounterValue("stats_catalog.corrupt_total"), corrupt_before + 1)
          << "rejection not counted at cut " << cut;
    }
    expect_unchanged("after truncations");

    // Random bit flips: magic, checksum or payload — all must be rejected.
    for (int flips = 0; flips < 32; ++flips) {
      std::string mutated = framed;
      const std::size_t pos = rng.NextBounded(mutated.size());
      mutated[pos] = static_cast<char>(
          mutated[pos] ^ static_cast<char>(1u << rng.NextBounded(8)));
      if (mutated == framed) continue;
      EXPECT_TRUE(target.DecodeFrom(mutated).IsIoError())
          << "bit-flipped frame loaded (flip at byte " << pos << ")";
    }
    expect_unchanged("after bit flips");

    // Random garbage of the same length.
    std::string garbage(framed.size(), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.NextBounded(256));
    EXPECT_FALSE(target.DecodeFrom(garbage).ok());
    expect_unchanged("after garbage");

    // The untouched frame still loads, and replaces the canary wholesale.
    ASSERT_TRUE(target.DecodeFrom(framed).ok());
    EXPECT_EQ(target.cardinality_entries(), source.cardinality_entries());
    EXPECT_FALSE(target.LookupCardinality(99, nullptr));
  }
}

TEST_F(StatsCatalogTest, RejectsHostileDeclaredCounts) {
  // A forged header declaring 2^40 entries must be rejected by the
  // allocation-bomb guard, not parsed until memory runs out. Build a frame
  // with a correct checksum over a hostile payload.
  const std::string payload = "cards 1099511627776\ncosts 0\n";
  uint64_t h = 1469598103934665603ull;
  for (char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char checksum[17];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(h));
  const std::string framed = std::string("RSTC1") + checksum + payload;

  StatisticsCatalog catalog;
  EXPECT_TRUE(catalog.DecodeFrom(framed).IsIoError());
  EXPECT_EQ(catalog.cardinality_entries(), 0u);
}

TEST_F(StatsCatalogTest, FingerprintsArePlatformFreeAndDataSensitive) {
  auto build = [](int rows) {
    auto plan = std::make_unique<Plan>();
    std::vector<Record> records;
    for (int i = 0; i < rows; ++i) records.push_back(Record({Value(i)}));
    auto* src =
        plan->Add<CollectionSourceOp>({}, Dataset(std::move(records)));
    PredicateUdf pred;
    pred.fn = [](const Record&) { return true; };
    auto* filter = plan->Add<FilterOp>({src}, pred);
    plan->SetSink(plan->Add<CollectOp>({filter}));
    return plan;
  };

  auto a = build(100);
  auto b = build(100);   // same structure, same data
  auto c = build(101);   // same structure, different data
  auto fa = ComputeCardinalityFingerprints(*a);
  auto fb = ComputeCardinalityFingerprints(*b);
  auto fc = ComputeCardinalityFingerprints(*c);
  ASSERT_TRUE(fa.ok() && fb.ok() && fc.ok());
  ASSERT_EQ(fa->size(), 3u);

  // Identical dataflows fingerprint identically operator-for-operator —
  // regardless of operator ids, which differ between the two plans.
  auto values = [](const std::map<int, uint64_t>& m) {
    std::vector<uint64_t> out;
    for (const auto& [id, fp] : m) out.push_back(fp);
    return out;
  };
  EXPECT_EQ(values(*fa), values(*fb));
  // Different source data must not share learned cardinalities.
  EXPECT_NE(values(*fa), values(*fc));
}

// End-to-end learning loop: the first execution of a plan through a context
// records observed cardinalities; the second compilation of the same
// dataflow is served from the catalog (hits), so even a lying selectivity
// hint is planned with measured numbers and needs no mid-job re-plan.
TEST_F(StatsCatalogTest, SecondCompilationIsServedFromLearnedStatistics) {
  Config config;
  config.SetBool("metrics.enabled", true);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  ASSERT_NE(ctx.stats_catalog(), nullptr);

  auto run = [&]() {
    RheemJob job(&ctx);
    std::vector<Record> rows;
    for (int i = 0; i < 500; ++i) rows.push_back(Record({Value(i)}));
    DataQuanta q = job.LoadCollection(Dataset(std::move(rows)));
    // The hint claims 1-in-1000 survive; everything actually does.
    q = q.Filter([](const Record&) { return true; }, UdfMeta{0.001, 1.0})
            .OnPlatform("javasim");
    q = q.Map([](const Record& r) { return r; }).OnPlatform("sparksim");
    return q.CollectWithMetrics();
  };

  const int64_t version0 = ctx.stats_catalog()->version();
  auto cold = run();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(ctx.stats_catalog()->version(), version0);  // job fed the catalog
  EXPECT_GE(cold->metrics.reoptimizations, 1);          // the lie was caught

  const int64_t hits_before = CounterValue("stats_catalog.hits");
  auto warm = run();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GT(CounterValue("stats_catalog.hits"), hits_before);
  // Learned cardinalities override the lying hint: no mid-job re-plan.
  EXPECT_EQ(warm->metrics.reoptimizations, 0);
  EXPECT_EQ(warm->output.size(), cold->output.size());
}

// stats.path round trip through the context/JobServer lifecycle: a context
// configured with a stats file loads it at construction and persists it at
// Shutdown, so learned statistics survive process restarts.
TEST_F(StatsCatalogTest, StatsPathPersistsAcrossContexts) {
  const std::string path = ::testing::TempDir() + "/rheem_stats_persist";
  std::remove(path.c_str());

  Config config;
  config.Set("stats.path", path);
  {
    RheemContext ctx(config);
    ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
    RheemJob job(&ctx);
    std::vector<Record> rows;
    for (int i = 0; i < 100; ++i) rows.push_back(Record({Value(i)}));
    DataQuanta q = job.LoadCollection(Dataset(std::move(rows)));
    q = q.Map([](const Record& r) { return r; });
    auto plan = q.Seal();
    ASSERT_TRUE(plan.ok());
    auto handle = ctx.Submit(**plan);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    ASSERT_TRUE(handle->Wait().ok());
    ctx.job_server().Shutdown(/*drain=*/true);  // autosaves the catalog
  }

  StatisticsCatalog loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok())
      << "JobServer::Shutdown did not persist the stats catalog";
  EXPECT_GT(loaded.cardinality_entries(), 0u);

  // A corrupt stats file must not break context construction: the load is
  // rejected (counted) and the context starts with an empty catalog.
  {
    ASSERT_TRUE(WriteStringToFile(path, "RSTC1junkjunkjunkjun").ok());
    const int64_t corrupt_before = CounterValue("stats_catalog.corrupt_total");
    RheemContext ctx(config);
    ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
    ASSERT_NE(ctx.stats_catalog(), nullptr);
    EXPECT_EQ(ctx.stats_catalog()->cardinality_entries(), 0u);
    EXPECT_GT(CounterValue("stats_catalog.corrupt_total"), corrupt_before);
  }
  std::remove(path.c_str());
}

TEST_F(StatsCatalogTest, DisabledStatsLeavesContextWithoutCatalog) {
  Config config;
  config.SetBool("stats.enabled", false);
  RheemContext ctx(config);
  EXPECT_EQ(ctx.stats_catalog(), nullptr);
}

}  // namespace
}  // namespace rheem

// Columnar engine suite: Dataset <-> Batch round-trips (including the cases
// conversion must reject), selection-vector correctness at every size around
// the morsel boundary, batch-kernel vs row-kernel parity, and shared
// read-only batch use from many threads (runs under TSan in CI:
// RHEEM_SANITIZE=thread builds this binary).
#include "data/batch.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/expr/expr.h"
#include "core/operators/kernels.h"
#include "data/schema.h"

namespace rheem {
namespace {

constexpr std::size_t kMorsel = 256;

kernels::KernelOptions Par() {
  kernels::KernelOptions opts;
  opts.parallel = true;
  opts.morsel_size = kMorsel;
  return opts;
}

std::vector<std::size_t> BoundarySizes() {
  return {0, 1, kMorsel - 1, kMorsel, 10 * kMorsel + 7};
}

void ExpectSameDataset(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.records()[i], b.records()[i]) << "row " << i;
  }
}

void ExpectRoundTrip(const Dataset& in) {
  auto batch = Batch::FromDataset(in);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ExpectSameDataset(in, batch->ToDataset());
}

// --- round-trips ------------------------------------------------------------

TEST(BatchRoundTrip, Empty) {
  ExpectRoundTrip(Dataset());
  auto batch = Batch::FromDataset(Dataset());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 0u);
  EXPECT_EQ(batch->num_columns(), 0u);
}

TEST(BatchRoundTrip, SingleRow) {
  ExpectRoundTrip(Dataset(std::vector<Record>{
      Record({Value(int64_t{42}), Value(2.5), Value("hi"), Value(true)})}));
}

TEST(BatchRoundTrip, NullsEverywhere) {
  std::vector<Record> rows;
  rows.push_back(Record({Value::Null(), Value(int64_t{1})}));
  rows.push_back(Record({Value(int64_t{2}), Value::Null()}));
  rows.push_back(Record({Value::Null(), Value::Null()}));
  ExpectRoundTrip(Dataset(std::move(rows)));
}

TEST(BatchRoundTrip, AllNullColumn) {
  std::vector<Record> rows;
  for (int i = 0; i < 5; ++i) {
    rows.push_back(Record({Value::Null(), Value(int64_t{i})}));
  }
  Dataset in(std::move(rows));
  auto batch = Batch::FromDataset(in);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->column(0).type, ValueType::kNull);
  ExpectSameDataset(in, batch->ToDataset());
}

TEST(BatchRoundTrip, MixedTypesAcrossColumns) {
  std::vector<Record> rows;
  for (int64_t i = 0; i < 100; ++i) {
    rows.push_back(Record({Value(i), Value(i * 0.5), Value(i % 2 == 0),
                           Value("s" + std::to_string(i)),
                           i % 3 == 0 ? Value::Null() : Value(i * 7)}));
  }
  ExpectRoundTrip(Dataset(std::move(rows)));
}

TEST(BatchRoundTrip, NonUtf8AndEmbeddedNulBytes) {
  std::string raw;
  raw.push_back('\0');
  raw.push_back('\xff');
  raw.push_back('\xfe');
  raw.push_back('a');
  raw.push_back('\0');
  std::vector<Record> rows;
  rows.push_back(Record({Value(raw)}));
  rows.push_back(Record({Value(std::string())}));  // empty string != null
  rows.push_back(Record({Value(std::string(3, '\xc0'))}));
  Dataset in(std::move(rows));
  auto batch = Batch::FromDataset(in);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->column(0).StringAt(0), std::string_view(raw));
  EXPECT_EQ(batch->column(0).StringAt(1), std::string_view());
  ExpectSameDataset(in, batch->ToDataset());
}

TEST(BatchRoundTrip, RejectsRaggedArity) {
  std::vector<Record> rows;
  rows.push_back(Record({Value(int64_t{1}), Value(int64_t{2})}));
  rows.push_back(Record({Value(int64_t{3})}));
  EXPECT_FALSE(Batch::FromDataset(Dataset(std::move(rows))).ok());
}

TEST(BatchRoundTrip, RejectsMixedIntDoubleColumn) {
  std::vector<Record> rows;
  rows.push_back(Record({Value(int64_t{1})}));
  rows.push_back(Record({Value(1.5)}));
  EXPECT_FALSE(Batch::FromDataset(Dataset(std::move(rows))).ok());
}

TEST(BatchRoundTrip, PrefixConversionTreatsShortRecordsAsNull) {
  std::vector<Record> rows;
  rows.push_back(Record({Value(int64_t{1}), Value(int64_t{10})}));
  rows.push_back(Record({Value(int64_t{2})}));  // no column 1
  auto batch = Batch::FromDatasetPrefix(Dataset(std::move(rows)), 2);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->column(1).ValueAt(0), Value(int64_t{10}));
  EXPECT_TRUE(batch->column(1).IsNull(1));
}

TEST(BatchRoundTrip, ValidateAgainstSchema) {
  std::vector<Record> rows;
  rows.push_back(Record({Value(int64_t{1}), Value("x")}));
  auto batch = Batch::FromDataset(Dataset(std::move(rows)));
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch
                  ->ValidateAgainst(Schema::Of({{"id", ValueType::kInt64},
                                                {"name", ValueType::kString}}))
                  .ok());
  EXPECT_FALSE(batch
                   ->ValidateAgainst(Schema::Of({{"id", ValueType::kString},
                                                 {"name", ValueType::kString}}))
                   .ok());
  EXPECT_FALSE(
      batch->ValidateAgainst(Schema::Of({{"id", ValueType::kInt64}})).ok());
}

// --- selection vectors at morsel boundaries ---------------------------------

Dataset MakeInput(std::size_t n) {
  std::vector<Record> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back(Record({Value(static_cast<int64_t>(i % 17)),
                           Value(static_cast<int64_t>(i))}));
  }
  return Dataset(std::move(rows));
}

PredicateUdf KeepOddSecond() {
  auto udf = expr::MakePredicateUdf(
      expr::Ne(expr::Mod(expr::Field(1, ValueType::kInt64), expr::Lit(2)),
               expr::Lit(0)));
  EXPECT_TRUE(udf.ok());
  return std::move(udf).ValueOrDie();
}

TEST(BatchSelection, FilterBatchMatchesRowFilterAtEverySize) {
  const PredicateUdf pred = KeepOddSecond();
  for (std::size_t n : BoundarySizes()) {
    const Dataset in = MakeInput(n);
    auto expected = kernels::Filter(pred, in, kernels::KernelOptions::Serial());
    ASSERT_TRUE(expected.ok());
    for (const bool parallel : {false, true}) {
      auto batch = Batch::FromDataset(in);
      ASSERT_TRUE(batch.ok());
      kernels::KernelOptions opts =
          parallel ? Par() : kernels::KernelOptions::Serial();
      ASSERT_TRUE(kernels::FilterBatch(pred, &*batch, opts).ok());
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " parallel=" + std::to_string(parallel));
      ExpectSameDataset(*expected, batch->ToDataset());
      // The selection lists physical row ids in ascending (= input) order.
      if (batch->has_selection()) {
        const auto& sel = batch->selection();
        for (std::size_t i = 1; i < sel.size(); ++i) {
          ASSERT_LT(sel[i - 1], sel[i]);
        }
      }
    }
  }
}

TEST(BatchSelection, RefilteringNarrowsExistingSelection) {
  const Dataset in = MakeInput(10 * kMorsel + 7);
  auto batch = Batch::FromDataset(in);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(kernels::FilterBatch(KeepOddSecond(), &*batch, Par()).ok());
  const std::size_t after_first = batch->num_selected();
  // Second predicate over the already-narrowed batch: i % 3 == 0.
  auto second = expr::MakePredicateUdf(
      expr::Eq(expr::Mod(expr::Field(1, ValueType::kInt64), expr::Lit(3)),
               expr::Lit(0)));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(kernels::FilterBatch(*second, &*batch, Par()).ok());
  ASSERT_LT(batch->num_selected(), after_first);
  const Dataset narrowed = batch->ToDataset();
  for (const Record& r : narrowed.records()) {
    const int64_t v = r[1].ToInt64Or(0);
    EXPECT_NE(v % 2, 0);
    EXPECT_EQ(v % 3, 0);
  }
}

TEST(BatchSelection, MapBatchMatchesRowMapAtEverySize) {
  auto map = expr::MakeMapUdf(
      {expr::Field(0, ValueType::kInt64),
       expr::Add(expr::Field(1, ValueType::kInt64), expr::Lit(1000))});
  ASSERT_TRUE(map.ok());
  for (std::size_t n : BoundarySizes()) {
    const Dataset in = MakeInput(n);
    auto expected = kernels::Map(*map, in, kernels::KernelOptions::Serial());
    ASSERT_TRUE(expected.ok());
    for (const bool parallel : {false, true}) {
      auto batch = Batch::FromDataset(in);
      ASSERT_TRUE(batch.ok());
      kernels::KernelOptions opts =
          parallel ? Par() : kernels::KernelOptions::Serial();
      auto out = kernels::MapBatch(*map, *batch, opts);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " parallel=" + std::to_string(parallel));
      ExpectSameDataset(*expected, out->ToDataset());
    }
  }
}

TEST(BatchSelection, ReduceByKeyBatchMatchesRowReduce) {
  auto key = expr::MakeKeyUdf(expr::Field(0, ValueType::kInt64));
  ASSERT_TRUE(key.ok());
  auto reduce = MakeAggReduceUdf({{0, AggKind::kFirst}, {1, AggKind::kSum}});
  ASSERT_TRUE(reduce.ok());
  for (std::size_t n : BoundarySizes()) {
    const Dataset in = MakeInput(n);
    auto expected = kernels::ReduceByKey(*key, *reduce, in,
                                         kernels::KernelOptions::Serial());
    ASSERT_TRUE(expected.ok());
    for (const bool parallel : {false, true}) {
      auto batch = Batch::FromDataset(in);
      ASSERT_TRUE(batch.ok());
      kernels::KernelOptions opts =
          parallel ? Par() : kernels::KernelOptions::Serial();
      auto out = kernels::ReduceByKeyBatch(*key, *reduce, *batch, opts);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " parallel=" + std::to_string(parallel));
      ExpectSameDataset(*expected, *out);
    }
  }
}

// --- row/columnar engine parity through the Dataset kernels -----------------

TEST(ColumnarParity, DatasetKernelsIdenticalWithColumnarOnAndOff) {
  auto map = expr::MakeMapUdf(
      {expr::Field(0, ValueType::kInt64),
       expr::Mod(expr::Mul(expr::Field(1, ValueType::kInt64), expr::Lit(3)),
                 expr::Lit(97))});
  ASSERT_TRUE(map.ok());
  const PredicateUdf pred = KeepOddSecond();
  auto key = expr::MakeKeyUdf(expr::Field(0, ValueType::kInt64));
  ASSERT_TRUE(key.ok());
  auto reduce = MakeAggReduceUdf({{0, AggKind::kFirst}, {1, AggKind::kSum}});
  ASSERT_TRUE(reduce.ok());
  for (std::size_t n : BoundarySizes()) {
    const Dataset in = MakeInput(n);
    kernels::KernelOptions row = Par();
    row.columnar = false;
    kernels::KernelOptions col = Par();
    col.columnar = true;
    auto run = [&](const kernels::KernelOptions& opts) -> Dataset {
      auto mapped = kernels::Map(*map, in, opts);
      EXPECT_TRUE(mapped.ok());
      auto narrowed = kernels::Filter(pred, *mapped, opts);
      EXPECT_TRUE(narrowed.ok());
      auto reduced = kernels::ReduceByKey(*key, *reduce, *narrowed, opts);
      EXPECT_TRUE(reduced.ok());
      return *reduced;
    };
    ExpectSameDataset(run(row), run(col));
  }
}

TEST(ColumnarParity, RuntimeSwitchForcesRowPath) {
  // SetColumnarEnabled(false) must leave results identical (it only changes
  // the engine); restore the entry state afterwards.
  const bool was = kernels::ColumnarEnabled();
  const Dataset in = MakeInput(kMorsel + 3);
  const PredicateUdf pred = KeepOddSecond();
  kernels::SetColumnarEnabled(true);
  auto on = kernels::Filter(pred, in, Par());
  kernels::SetColumnarEnabled(false);
  auto off = kernels::Filter(pred, in, Par());
  kernels::SetColumnarEnabled(was);
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(off.ok());
  ExpectSameDataset(*off, *on);
}

// --- shared read-only batches across threads (TSan) -------------------------

TEST(ColumnarThreading, EightThreadsShareReadOnlyBatch) {
  const Dataset in = MakeInput(10 * kMorsel + 7);
  auto shared = Batch::FromDataset(in);
  ASSERT_TRUE(shared.ok());
  const Batch& batch = *shared;
  const PredicateUdf pred = KeepOddSecond();
  auto map = expr::MakeMapUdf(
      {expr::Field(0, ValueType::kInt64),
       expr::Add(expr::Field(1, ValueType::kInt64), expr::Lit(7))});
  ASSERT_TRUE(map.ok());

  auto expected_filter =
      kernels::Filter(pred, in, kernels::KernelOptions::Serial());
  ASSERT_TRUE(expected_filter.ok());
  auto expected_map =
      kernels::Map(*map, in, kernels::KernelOptions::Serial());
  ASSERT_TRUE(expected_map.ok());

  std::vector<std::thread> threads;
  std::vector<int> failures(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int iter = 0; iter < 4; ++iter) {
        // Each thread filters its own copy-on-write view: the shared batch's
        // columns are only ever read.
        Batch local = batch;
        if (!kernels::FilterBatch(pred, &local,
                                  kernels::KernelOptions::Serial())
                 .ok() ||
            local.num_selected() != expected_filter->size()) {
          failures[t] = 1;
          return;
        }
        auto out =
            kernels::MapBatch(*map, batch, kernels::KernelOptions::Serial());
        if (!out.ok() || out->num_rows() != expected_map->size()) {
          failures[t] = 1;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace rheem

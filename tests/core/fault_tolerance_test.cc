#include <atomic>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/executor/executor.h"
#include "core/operators/physical_ops.h"
#include "core/optimizer/enumerator.h"
#include "platforms/javasim/javasim_platform.h"
#include "platforms/sparksim/sparksim_platform.h"
#include "platforms/sparksim/scheduler.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

MapUdf PlusOne() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    return Record({Value(r[0].ToInt64Or(0) + 1)});
  };
  return udf;
}

TEST(TaskRetryTest, FlakyTaskSucceedsWithinBudget) {
  ThreadPool pool(2);
  sparksim::TaskScheduler scheduler(&pool, {}, /*task_retries=*/3);
  ExecutionMetrics metrics;
  std::atomic<int> failures_left{2};
  Status st = scheduler.RunTasks(4, &metrics, [&](std::size_t i) -> Status {
    if (i == 1 && failures_left.fetch_sub(1) > 0) {
      return Status::ExecutionError("flaky task");
    }
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(metrics.retries, 2);
  // Retries count as extra task launches.
  EXPECT_EQ(metrics.tasks_launched, 4 + 2);
}

TEST(TaskRetryTest, PermanentFailureExhaustsBudget) {
  ThreadPool pool(2);
  sparksim::TaskScheduler scheduler(&pool, {}, /*task_retries=*/2);
  ExecutionMetrics metrics;
  std::atomic<int> attempts{0};
  Status st = scheduler.RunTasks(1, &metrics, [&](std::size_t) -> Status {
    attempts.fetch_add(1);
    return Status::ExecutionError("broken");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(attempts.load(), 3);  // 1 + 2 retries
  EXPECT_EQ(metrics.retries, 2);
}

TEST(TaskRetryTest, ZeroRetriesMeansSingleAttempt) {
  ThreadPool pool(2);
  sparksim::TaskScheduler scheduler(&pool, {}, /*task_retries=*/0);
  ExecutionMetrics metrics;
  std::atomic<int> attempts{0};
  Status st = scheduler.RunTasks(1, &metrics, [&](std::size_t) -> Status {
    attempts.fetch_add(1);
    return Status::ExecutionError("broken");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_EQ(metrics.retries, 0);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique directory per test: ctest runs tests of this suite in parallel.
    dir_ = testing::TempDir() + "/rheem_checkpoints_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Two-platform plan: javasim stage feeding a sparksim stage.
  ExecutionPlan MakePlan(Plan* plan, Platform* java, Platform* spark) {
    auto* src = plan->Add<CollectionSourceOp>({}, Numbers(20));
    auto* m1 = plan->Add<MapOp>({src}, PlusOne());
    auto* m2 = plan->Add<MapOp>({m1}, PlusOne());
    auto* sink = plan->Add<CollectOp>({m2});
    plan->SetSink(sink);
    PlatformAssignment a;
    a.by_op = {{src->id(), java}, {m1->id(), java},
               {m2->id(), spark}, {sink->id(), spark}};
    return StageSplitter::Split(*plan, std::move(a)).ValueOrDie();
  }

  std::string dir_;
};

TEST_F(CheckpointTest, SecondRunRestoresInsteadOfExecuting) {
  Config platform_config;
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java, &spark);

  Config config;
  config.Set("executor.checkpoint_dir", dir_);
  config.Set("executor.job_id", "ckpt_test");

  CrossPlatformExecutor first(config);
  ExecutionMonitor monitor1;
  first.set_monitor(&monitor1);
  auto run1 = first.Execute(eplan);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  EXPECT_EQ(run1->metrics.stages_run, 2);
  // Checkpoint files exist for both stages' products.
  EXPECT_FALSE(std::filesystem::is_empty(dir_));

  CrossPlatformExecutor second(config);
  ExecutionMonitor monitor2;
  second.set_monitor(&monitor2);
  auto run2 = second.Execute(eplan);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  // Nothing executed: both stages restored.
  EXPECT_EQ(run2->metrics.stages_run, 0);
  int restored = 0;
  for (const auto& record : monitor2.records()) {
    if (record.error == "restored from checkpoint") ++restored;
  }
  EXPECT_EQ(restored, 2);
  ASSERT_EQ(run2->output.size(), run1->output.size());
  EXPECT_EQ(run2->output.at(0), run1->output.at(0));
}

TEST_F(CheckpointTest, RecoveryResumesAfterMidJobFailure) {
  Config platform_config;
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java, &spark);

  Config config;
  config.Set("executor.checkpoint_dir", dir_);
  config.Set("executor.job_id", "resume_test");
  config.SetInt("executor.max_retries", 0);

  // First run: the second stage fails permanently.
  CrossPlatformExecutor failing(config);
  failing.set_failure_injector([](const Stage& stage, int) -> Status {
    if (stage.id() == 1) return Status::ExecutionError("platform outage");
    return Status::OK();
  });
  auto run1 = failing.Execute(eplan);
  ASSERT_FALSE(run1.ok());

  // Second run: the outage is over; stage 0 restores from its checkpoint.
  CrossPlatformExecutor recovering(config);
  ExecutionMonitor monitor;
  recovering.set_monitor(&monitor);
  auto run2 = recovering.Execute(eplan);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  EXPECT_EQ(run2->metrics.stages_run, 1);  // only the failed stage re-ran
  EXPECT_EQ(run2->output.size(), 20u);
  EXPECT_EQ(run2->output.at(0)[0], Value(2));
}

TEST_F(CheckpointTest, DifferentJobIdsDoNotCollide) {
  Config platform_config;
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java, &spark);

  Config config_a;
  config_a.Set("executor.checkpoint_dir", dir_);
  config_a.Set("executor.job_id", "job_a");
  CrossPlatformExecutor a(config_a);
  ASSERT_TRUE(a.Execute(eplan).ok());

  Config config_b;
  config_b.Set("executor.checkpoint_dir", dir_);
  config_b.Set("executor.job_id", "job_b");
  CrossPlatformExecutor b(config_b);
  auto run_b = b.Execute(eplan);
  ASSERT_TRUE(run_b.ok());
  EXPECT_EQ(run_b->metrics.stages_run, 2);  // no cross-job restoration
}

// Injected failures under fully parallel execution (DAG-parallel stages AND
// morsel-parallel kernels): retries must reproduce the failure-free result
// byte for byte, and both the process-wide retry counter and the stage span
// attempt tags must record every attempt.
TEST(ParallelRetryTest, RetriesKeepResultsIdenticalAndFullyAccounted) {
  MetricsRegistry::Global().Reset();
  MetricsRegistry::Global().set_enabled(true);
  Tracer::Global().Clear();
  Tracer::Global().set_enabled(true);

  Config platform_config;
  platform_config.SetBool("kernels.parallel", true);
  platform_config.SetInt("kernels.morsel_size", 16);
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);

  // Diamond: two independent javasim source stages feeding one sparksim
  // union stage, so parallel_stages actually overlaps stage attempts.
  Plan plan;
  auto* src1 = plan.Add<CollectionSourceOp>({}, Numbers(200));
  auto* m1 = plan.Add<MapOp>({src1}, PlusOne());
  auto* src2 = plan.Add<CollectionSourceOp>({}, Numbers(200));
  auto* m2 = plan.Add<MapOp>({src2}, PlusOne());
  auto* u = plan.Add<UnionOp>({m1, m2});
  auto* sink = plan.Add<CollectOp>({u});
  plan.SetSink(sink);
  PlatformAssignment a;
  a.by_op = {{src1->id(), &java}, {m1->id(), &java},   {src2->id(), &java},
             {m2->id(), &java},   {u->id(), &spark},   {sink->id(), &spark}};
  ExecutionPlan eplan = StageSplitter::Split(plan, std::move(a)).ValueOrDie();
  const int num_stages = static_cast<int>(eplan.stages.size());
  ASSERT_GE(num_stages, 2);

  Config config;
  config.SetBool("executor.parallel_stages", true);
  config.SetBool("metrics.enabled", true);
  config.SetBool("trace.enabled", true);
  config.SetInt("executor.max_retries", 2);

  // Failure-free reference run.
  CrossPlatformExecutor clean(config);
  auto reference = clean.Execute(eplan);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  Tracer::Global().Clear();

  // Every stage's first attempt fails; the retry must succeed.
  CrossPlatformExecutor flaky(config);
  ExecutionMonitor monitor;
  flaky.set_monitor(&monitor);
  flaky.set_failure_injector([](const Stage&, int attempt) -> Status {
    if (attempt == 0) return Status::ExecutionError("injected outage");
    return Status::OK();
  });
  auto retried = flaky.Execute(eplan);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();

  // Byte-identical output despite retries + parallel stages + morsels.
  ASSERT_EQ(retried->output.size(), reference->output.size());
  for (std::size_t i = 0; i < reference->output.size(); ++i) {
    EXPECT_EQ(retried->output.at(i).ToString(), reference->output.at(i).ToString())
        << "row " << i << " differs after retry";
  }

  // Each stage retried exactly once, in the job metrics and the registry.
  EXPECT_EQ(retried->metrics.retries, num_stages);
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(after.counter("executor.retries_total") -
                before.counter("executor.retries_total"),
            num_stages);
  EXPECT_EQ(after.counter("executor.stage_attempts_total") -
                before.counter("executor.stage_attempts_total"),
            2 * num_stages);

  // The monitor saw two attempts per stage (one failed, one succeeded)...
  EXPECT_EQ(static_cast<int>(monitor.records().size()), 2 * num_stages);
  EXPECT_EQ(monitor.failures(), num_stages);

  // ...and the trace carries one span per attempt, tagged with the attempt
  // number and its outcome.
  std::map<std::string, std::set<std::string>> attempts_by_stage;
  std::map<std::string, std::map<std::string, std::string>> outcome;
  for (const SpanRecord& s : Tracer::Global().Spans()) {
    if (s.name != "stage") continue;
    EXPECT_TRUE(s.closed());
    std::string stage_tag, attempt_tag, succeeded_tag;
    for (const auto& [k, v] : s.tags) {
      if (k == "stage") stage_tag = v;
      if (k == "attempt") attempt_tag = v;
      if (k == "succeeded") succeeded_tag = v;
    }
    attempts_by_stage[stage_tag].insert(attempt_tag);
    outcome[stage_tag][attempt_tag] = succeeded_tag;
  }
  EXPECT_EQ(static_cast<int>(attempts_by_stage.size()), num_stages);
  for (const auto& [stage_tag, attempts] : attempts_by_stage) {
    EXPECT_EQ(attempts, (std::set<std::string>{"0", "1"}))
        << "stage " << stage_tag << " attempts not fully traced";
    EXPECT_EQ(outcome[stage_tag]["0"], "false") << "stage " << stage_tag;
    EXPECT_EQ(outcome[stage_tag]["1"], "true") << "stage " << stage_tag;
  }

  MetricsRegistry::Global().set_enabled(false);
  Tracer::Global().set_enabled(false);
  Tracer::Global().Clear();
}

}  // namespace
}  // namespace rheem

#include <atomic>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/executor/executor.h"
#include "core/operators/physical_ops.h"
#include "core/optimizer/enumerator.h"
#include "platforms/javasim/javasim_platform.h"
#include "platforms/sparksim/sparksim_platform.h"
#include "platforms/sparksim/scheduler.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

MapUdf PlusOne() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    return Record({Value(r[0].ToInt64Or(0) + 1)});
  };
  return udf;
}

TEST(TaskRetryTest, FlakyTaskSucceedsWithinBudget) {
  ThreadPool pool(2);
  sparksim::TaskScheduler scheduler(&pool, {}, /*task_retries=*/3);
  ExecutionMetrics metrics;
  std::atomic<int> failures_left{2};
  Status st = scheduler.RunTasks(4, &metrics, [&](std::size_t i) -> Status {
    if (i == 1 && failures_left.fetch_sub(1) > 0) {
      return Status::ExecutionError("flaky task");
    }
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(metrics.retries, 2);
  // Retries count as extra task launches.
  EXPECT_EQ(metrics.tasks_launched, 4 + 2);
}

TEST(TaskRetryTest, PermanentFailureExhaustsBudget) {
  ThreadPool pool(2);
  sparksim::TaskScheduler scheduler(&pool, {}, /*task_retries=*/2);
  ExecutionMetrics metrics;
  std::atomic<int> attempts{0};
  Status st = scheduler.RunTasks(1, &metrics, [&](std::size_t) -> Status {
    attempts.fetch_add(1);
    return Status::ExecutionError("broken");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(attempts.load(), 3);  // 1 + 2 retries
  EXPECT_EQ(metrics.retries, 2);
}

TEST(TaskRetryTest, ZeroRetriesMeansSingleAttempt) {
  ThreadPool pool(2);
  sparksim::TaskScheduler scheduler(&pool, {}, /*task_retries=*/0);
  ExecutionMetrics metrics;
  std::atomic<int> attempts{0};
  Status st = scheduler.RunTasks(1, &metrics, [&](std::size_t) -> Status {
    attempts.fetch_add(1);
    return Status::ExecutionError("broken");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_EQ(metrics.retries, 0);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique directory per test: ctest runs tests of this suite in parallel.
    dir_ = testing::TempDir() + "/rheem_checkpoints_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Two-platform plan: javasim stage feeding a sparksim stage.
  ExecutionPlan MakePlan(Plan* plan, Platform* java, Platform* spark) {
    auto* src = plan->Add<CollectionSourceOp>({}, Numbers(20));
    auto* m1 = plan->Add<MapOp>({src}, PlusOne());
    auto* m2 = plan->Add<MapOp>({m1}, PlusOne());
    auto* sink = plan->Add<CollectOp>({m2});
    plan->SetSink(sink);
    PlatformAssignment a;
    a.by_op = {{src->id(), java}, {m1->id(), java},
               {m2->id(), spark}, {sink->id(), spark}};
    return StageSplitter::Split(*plan, std::move(a)).ValueOrDie();
  }

  std::string dir_;
};

TEST_F(CheckpointTest, SecondRunRestoresInsteadOfExecuting) {
  Config platform_config;
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java, &spark);

  Config config;
  config.Set("executor.checkpoint_dir", dir_);
  config.Set("executor.job_id", "ckpt_test");

  CrossPlatformExecutor first(config);
  ExecutionMonitor monitor1;
  first.set_monitor(&monitor1);
  auto run1 = first.Execute(eplan);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  EXPECT_EQ(run1->metrics.stages_run, 2);
  // Checkpoint files exist for both stages' products.
  EXPECT_FALSE(std::filesystem::is_empty(dir_));

  CrossPlatformExecutor second(config);
  ExecutionMonitor monitor2;
  second.set_monitor(&monitor2);
  auto run2 = second.Execute(eplan);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  // Nothing executed: both stages restored.
  EXPECT_EQ(run2->metrics.stages_run, 0);
  int restored = 0;
  for (const auto& record : monitor2.records()) {
    if (record.error == "restored from checkpoint") ++restored;
  }
  EXPECT_EQ(restored, 2);
  ASSERT_EQ(run2->output.size(), run1->output.size());
  EXPECT_EQ(run2->output.at(0), run1->output.at(0));
}

TEST_F(CheckpointTest, RecoveryResumesAfterMidJobFailure) {
  Config platform_config;
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java, &spark);

  Config config;
  config.Set("executor.checkpoint_dir", dir_);
  config.Set("executor.job_id", "resume_test");
  config.SetInt("executor.max_retries", 0);

  // First run: the second stage fails permanently.
  CrossPlatformExecutor failing(config);
  failing.set_failure_injector([](const Stage& stage, int) -> Status {
    if (stage.id() == 1) return Status::ExecutionError("platform outage");
    return Status::OK();
  });
  auto run1 = failing.Execute(eplan);
  ASSERT_FALSE(run1.ok());

  // Second run: the outage is over; stage 0 restores from its checkpoint.
  CrossPlatformExecutor recovering(config);
  ExecutionMonitor monitor;
  recovering.set_monitor(&monitor);
  auto run2 = recovering.Execute(eplan);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  EXPECT_EQ(run2->metrics.stages_run, 1);  // only the failed stage re-ran
  EXPECT_EQ(run2->output.size(), 20u);
  EXPECT_EQ(run2->output.at(0)[0], Value(2));
}

TEST_F(CheckpointTest, DifferentJobIdsDoNotCollide) {
  Config platform_config;
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java, &spark);

  Config config_a;
  config_a.Set("executor.checkpoint_dir", dir_);
  config_a.Set("executor.job_id", "job_a");
  CrossPlatformExecutor a(config_a);
  ASSERT_TRUE(a.Execute(eplan).ok());

  Config config_b;
  config_b.Set("executor.checkpoint_dir", dir_);
  config_b.Set("executor.job_id", "job_b");
  CrossPlatformExecutor b(config_b);
  auto run_b = b.Execute(eplan);
  ASSERT_TRUE(run_b.ok());
  EXPECT_EQ(run_b->metrics.stages_run, 2);  // no cross-job restoration
}

}  // namespace
}  // namespace rheem

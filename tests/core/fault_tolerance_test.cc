#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/executor/executor.h"
#include "core/operators/physical_ops.h"
#include "core/optimizer/enumerator.h"
#include "platforms/javasim/javasim_platform.h"
#include "platforms/sparksim/sparksim_platform.h"
#include "platforms/sparksim/scheduler.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

MapUdf PlusOne() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    return Record({Value(r[0].ToInt64Or(0) + 1)});
  };
  return udf;
}

TEST(TaskRetryTest, FlakyTaskSucceedsWithinBudget) {
  ThreadPool pool(2);
  sparksim::TaskScheduler scheduler(&pool, {}, /*task_retries=*/3);
  ExecutionMetrics metrics;
  std::atomic<int> failures_left{2};
  Status st = scheduler.RunTasks(4, &metrics, [&](std::size_t i) -> Status {
    if (i == 1 && failures_left.fetch_sub(1) > 0) {
      return Status::ExecutionError("flaky task");
    }
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(metrics.retries, 2);
  // Retries count as extra task launches.
  EXPECT_EQ(metrics.tasks_launched, 4 + 2);
}

TEST(TaskRetryTest, PermanentFailureExhaustsBudget) {
  ThreadPool pool(2);
  sparksim::TaskScheduler scheduler(&pool, {}, /*task_retries=*/2);
  ExecutionMetrics metrics;
  std::atomic<int> attempts{0};
  Status st = scheduler.RunTasks(1, &metrics, [&](std::size_t) -> Status {
    attempts.fetch_add(1);
    return Status::ExecutionError("broken");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(attempts.load(), 3);  // 1 + 2 retries
  EXPECT_EQ(metrics.retries, 2);
}

TEST(TaskRetryTest, ZeroRetriesMeansSingleAttempt) {
  ThreadPool pool(2);
  sparksim::TaskScheduler scheduler(&pool, {}, /*task_retries=*/0);
  ExecutionMetrics metrics;
  std::atomic<int> attempts{0};
  Status st = scheduler.RunTasks(1, &metrics, [&](std::size_t) -> Status {
    attempts.fetch_add(1);
    return Status::ExecutionError("broken");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_EQ(metrics.retries, 0);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique directory per test: ctest runs tests of this suite in parallel.
    dir_ = testing::TempDir() + "/rheem_checkpoints_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Two-platform plan: javasim stage feeding a sparksim stage.
  ExecutionPlan MakePlan(Plan* plan, Platform* java, Platform* spark) {
    auto* src = plan->Add<CollectionSourceOp>({}, Numbers(20));
    auto* m1 = plan->Add<MapOp>({src}, PlusOne());
    auto* m2 = plan->Add<MapOp>({m1}, PlusOne());
    auto* sink = plan->Add<CollectOp>({m2});
    plan->SetSink(sink);
    PlatformAssignment a;
    a.by_op = {{src->id(), java}, {m1->id(), java},
               {m2->id(), spark}, {sink->id(), spark}};
    return StageSplitter::Split(*plan, std::move(a)).ValueOrDie();
  }

  std::string dir_;
};

TEST_F(CheckpointTest, SecondRunRestoresInsteadOfExecuting) {
  Config platform_config;
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java, &spark);

  Config config;
  config.Set("executor.checkpoint_dir", dir_);
  config.Set("executor.job_id", "ckpt_test");

  CrossPlatformExecutor first(config);
  ExecutionMonitor monitor1;
  first.set_monitor(&monitor1);
  auto run1 = first.Execute(eplan);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  EXPECT_EQ(run1->metrics.stages_run, 2);
  // Checkpoint files exist for both stages' products.
  EXPECT_FALSE(std::filesystem::is_empty(dir_));

  CrossPlatformExecutor second(config);
  ExecutionMonitor monitor2;
  second.set_monitor(&monitor2);
  auto run2 = second.Execute(eplan);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  // Nothing executed: both stages restored.
  EXPECT_EQ(run2->metrics.stages_run, 0);
  int restored = 0;
  for (const auto& record : monitor2.records()) {
    if (record.error == "restored from checkpoint") ++restored;
  }
  EXPECT_EQ(restored, 2);
  ASSERT_EQ(run2->output.size(), run1->output.size());
  EXPECT_EQ(run2->output.at(0), run1->output.at(0));
}

TEST_F(CheckpointTest, RecoveryResumesAfterMidJobFailure) {
  Config platform_config;
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java, &spark);

  Config config;
  config.Set("executor.checkpoint_dir", dir_);
  config.Set("executor.job_id", "resume_test");
  config.SetInt("executor.max_retries", 0);

  // First run: the second stage fails permanently.
  CrossPlatformExecutor failing(config);
  FaultInjector::Global().Clear();
  FaultInjector::Global().Seed(1);
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.stage_attempt", FaultTrigger::EveryK(1),
                           "stage=1,")
                  .ok());
  FaultInjector::Global().set_enabled(true);
  auto run1 = failing.Execute(eplan);
  FaultInjector::Global().set_enabled(false);
  FaultInjector::Global().Clear();
  ASSERT_FALSE(run1.ok());

  // Second run: the outage is over; stage 0 restores from its checkpoint.
  CrossPlatformExecutor recovering(config);
  ExecutionMonitor monitor;
  recovering.set_monitor(&monitor);
  auto run2 = recovering.Execute(eplan);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  EXPECT_EQ(run2->metrics.stages_run, 1);  // only the failed stage re-ran
  EXPECT_EQ(run2->output.size(), 20u);
  EXPECT_EQ(run2->output.at(0)[0], Value(2));
}

TEST_F(CheckpointTest, CorruptCheckpointIsDetectedAndReExecuted) {
  MetricsRegistry::Global().Reset();
  MetricsRegistry::Global().set_enabled(true);

  Config platform_config;
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java, &spark);

  Config config;
  config.Set("executor.checkpoint_dir", dir_);
  config.Set("executor.job_id", "torn_test");

  // First run succeeds, but the first checkpoint write is torn: only half
  // the framed bytes reach disk.
  CrossPlatformExecutor first(config);
  FaultInjector::Global().Clear();
  FaultInjector::Global().Seed(1);
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.checkpoint_write", FaultTrigger::Nth(1))
                  .ok());
  FaultInjector::Global().set_enabled(true);
  auto run1 = first.Execute(eplan);
  FaultInjector::Global().set_enabled(false);
  FaultInjector::Global().Clear();
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();

  // Second run: the torn checkpoint fails its checksum and that stage
  // re-executes; the intact checkpoint still restores. Silent restoration
  // of a corrupt file would surface here as a wrong or short output.
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  CrossPlatformExecutor second(config);
  ExecutionMonitor monitor;
  second.set_monitor(&monitor);
  auto run2 = second.Execute(eplan);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.counter("executor.checkpoints_corrupt_total") -
                before.counter("executor.checkpoints_corrupt_total"),
            1);
  EXPECT_EQ(run2->metrics.stages_run, 1);  // the corrupted stage re-ran
  int restored = 0;
  for (const auto& record : monitor.records()) {
    if (record.error == "restored from checkpoint") ++restored;
  }
  EXPECT_EQ(restored, 1);  // the intact stage restored
  ASSERT_EQ(run2->output.size(), run1->output.size());
  EXPECT_EQ(run2->output.at(0), run1->output.at(0));

  MetricsRegistry::Global().set_enabled(false);
}

TEST_F(CheckpointTest, DifferentJobIdsDoNotCollide) {
  Config platform_config;
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java, &spark);

  Config config_a;
  config_a.Set("executor.checkpoint_dir", dir_);
  config_a.Set("executor.job_id", "job_a");
  CrossPlatformExecutor a(config_a);
  ASSERT_TRUE(a.Execute(eplan).ok());

  Config config_b;
  config_b.Set("executor.checkpoint_dir", dir_);
  config_b.Set("executor.job_id", "job_b");
  CrossPlatformExecutor b(config_b);
  auto run_b = b.Execute(eplan);
  ASSERT_TRUE(run_b.ok());
  EXPECT_EQ(run_b->metrics.stages_run, 2);  // no cross-job restoration
}

// Injected failures under fully parallel execution (DAG-parallel stages AND
// morsel-parallel kernels): retries must reproduce the failure-free result
// byte for byte, and both the process-wide retry counter and the stage span
// attempt tags must record every attempt.
TEST(ParallelRetryTest, RetriesKeepResultsIdenticalAndFullyAccounted) {
  MetricsRegistry::Global().Reset();
  MetricsRegistry::Global().set_enabled(true);
  Tracer::Global().Clear();
  Tracer::Global().set_enabled(true);

  Config platform_config;
  platform_config.SetBool("kernels.parallel", true);
  platform_config.SetInt("kernels.morsel_size", 16);
  JavaSimPlatform java(platform_config);
  SparkSimPlatform spark(platform_config);

  // Diamond: two independent javasim source stages feeding one sparksim
  // union stage, so parallel_stages actually overlaps stage attempts.
  Plan plan;
  auto* src1 = plan.Add<CollectionSourceOp>({}, Numbers(200));
  auto* m1 = plan.Add<MapOp>({src1}, PlusOne());
  auto* src2 = plan.Add<CollectionSourceOp>({}, Numbers(200));
  auto* m2 = plan.Add<MapOp>({src2}, PlusOne());
  auto* u = plan.Add<UnionOp>({m1, m2});
  auto* sink = plan.Add<CollectOp>({u});
  plan.SetSink(sink);
  PlatformAssignment a;
  a.by_op = {{src1->id(), &java}, {m1->id(), &java},   {src2->id(), &java},
             {m2->id(), &java},   {u->id(), &spark},   {sink->id(), &spark}};
  ExecutionPlan eplan = StageSplitter::Split(plan, std::move(a)).ValueOrDie();
  const int num_stages = static_cast<int>(eplan.stages.size());
  ASSERT_GE(num_stages, 2);

  Config config;
  config.SetBool("executor.parallel_stages", true);
  config.SetBool("metrics.enabled", true);
  config.SetBool("trace.enabled", true);
  config.SetInt("executor.max_retries", 2);

  // Failure-free reference run.
  CrossPlatformExecutor clean(config);
  auto reference = clean.Execute(eplan);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  Tracer::Global().Clear();

  // Every stage's first attempt fails; the retry must succeed.
  CrossPlatformExecutor flaky(config);
  ExecutionMonitor monitor;
  flaky.set_monitor(&monitor);
  FaultInjector::Global().Clear();
  FaultInjector::Global().Seed(1);
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.stage_attempt", FaultTrigger::EveryK(1),
                           "attempt=0")
                  .ok());
  FaultInjector::Global().set_enabled(true);
  auto retried = flaky.Execute(eplan);
  FaultInjector::Global().set_enabled(false);
  FaultInjector::Global().Clear();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();

  // Byte-identical output despite retries + parallel stages + morsels.
  ASSERT_EQ(retried->output.size(), reference->output.size());
  for (std::size_t i = 0; i < reference->output.size(); ++i) {
    EXPECT_EQ(retried->output.at(i).ToString(), reference->output.at(i).ToString())
        << "row " << i << " differs after retry";
  }

  // Each stage retried exactly once, in the job metrics and the registry.
  EXPECT_EQ(retried->metrics.retries, num_stages);
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(after.counter("executor.retries_total") -
                before.counter("executor.retries_total"),
            num_stages);
  EXPECT_EQ(after.counter("executor.stage_attempts_total") -
                before.counter("executor.stage_attempts_total"),
            2 * num_stages);

  // The monitor saw two attempts per stage (one failed, one succeeded)...
  EXPECT_EQ(static_cast<int>(monitor.records().size()), 2 * num_stages);
  EXPECT_EQ(monitor.failures(), num_stages);

  // ...and the trace carries one span per attempt, tagged with the attempt
  // number and its outcome.
  std::map<std::string, std::set<std::string>> attempts_by_stage;
  std::map<std::string, std::map<std::string, std::string>> outcome;
  for (const SpanRecord& s : Tracer::Global().Spans()) {
    if (s.name != "stage") continue;
    EXPECT_TRUE(s.closed());
    std::string stage_tag, attempt_tag, succeeded_tag;
    for (const auto& [k, v] : s.tags) {
      if (k == "stage") stage_tag = v;
      if (k == "attempt") attempt_tag = v;
      if (k == "succeeded") succeeded_tag = v;
    }
    attempts_by_stage[stage_tag].insert(attempt_tag);
    outcome[stage_tag][attempt_tag] = succeeded_tag;
  }
  EXPECT_EQ(static_cast<int>(attempts_by_stage.size()), num_stages);
  for (const auto& [stage_tag, attempts] : attempts_by_stage) {
    EXPECT_EQ(attempts, (std::set<std::string>{"0", "1"}))
        << "stage " << stage_tag << " attempts not fully traced";
    EXPECT_EQ(outcome[stage_tag]["0"], "false") << "stage " << stage_tag;
    EXPECT_EQ(outcome[stage_tag]["1"], "true") << "stage " << stage_tag;
  }

  MetricsRegistry::Global().set_enabled(false);
  Tracer::Global().set_enabled(false);
  Tracer::Global().Clear();
}

// Platform failover: with EnableFailover armed, a platform that keeps
// failing is blacked out and the remaining work is re-planned onto the
// healthy platforms.
class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Config platform_config;
    ASSERT_TRUE(
        registry_.Register(std::make_unique<JavaSimPlatform>(platform_config))
            .ok());
    ASSERT_TRUE(
        registry_.Register(std::make_unique<SparkSimPlatform>(platform_config))
            .ok());
    java_ = *registry_.Get("javasim");
    spark_ = *registry_.Get("sparksim");
    FaultInjector::Global().set_enabled(false);
    FaultInjector::Global().Clear();
  }
  void TearDown() override {
    FaultInjector::Global().set_enabled(false);
    FaultInjector::Global().Clear();
  }

  /// javasim stage feeding a sparksim stage; platforms live in `registry_`
  /// so a failover re-plan can resolve them by name.
  ExecutionPlan MakePlan(Plan* plan) {
    auto* src = plan->Add<CollectionSourceOp>({}, Numbers(20));
    auto* m1 = plan->Add<MapOp>({src}, PlusOne());
    auto* m2 = plan->Add<MapOp>({m1}, PlusOne());
    auto* sink = plan->Add<CollectOp>({m2});
    plan->SetSink(sink);
    PlatformAssignment a;
    a.by_op = {{src->id(), java_}, {m1->id(), java_},
               {m2->id(), spark_}, {sink->id(), spark_}};
    return StageSplitter::Split(*plan, std::move(a)).ValueOrDie();
  }

  PlatformRegistry registry_;
  MovementCostModel movement_;
  Platform* java_ = nullptr;
  Platform* spark_ = nullptr;
};

TEST_F(FailoverTest, BlackoutMidJobCompletesOnSurvivingPlatform) {
  MetricsRegistry::Global().Reset();
  MetricsRegistry::Global().set_enabled(true);

  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan);

  Config config;  // defaults: max_retries=2, failover_threshold=3
  config.SetInt("executor.retry_backoff_us", 0);
  CrossPlatformExecutor executor(config);
  executor.EnableFailover(&registry_, &movement_);

  // sparksim is down for the whole job: every attempt there fails. The
  // first stage completes on javasim, the second exhausts its retries,
  // sparksim blacks out, and the remaining work re-plans onto javasim.
  FaultInjector::Global().Clear();
  FaultInjector::Global().Seed(7);
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.stage_attempt", FaultTrigger::EveryK(1),
                           "platform=sparksim")
                  .ok());
  FaultInjector::Global().set_enabled(true);
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  auto out = executor.Execute(eplan);
  FaultInjector::Global().set_enabled(false);
  FaultInjector::Global().Clear();

  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->output.size(), 20u);
  EXPECT_EQ(out->output.at(0)[0], Value(2));  // 0 -> +1 -> +1
  EXPECT_GE(out->metrics.failovers, 1);
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.counter("executor.failovers_total") -
                before.counter("executor.failovers_total"),
            1);
  // The EXPLAIN ANALYZE report surfaces the event.
  EXPECT_NE(out->report.find("failover:"), std::string::npos) << out->report;
  EXPECT_NE(out->report.find("'sparksim' blacked out"), std::string::npos)
      << out->report;

  MetricsRegistry::Global().set_enabled(false);
}

TEST_F(FailoverTest, WithoutArmingBlackoutFailsTheJob) {
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan);

  Config config;
  config.SetInt("executor.retry_backoff_us", 0);
  CrossPlatformExecutor executor(config);  // EnableFailover NOT called

  FaultInjector::Global().Clear();
  FaultInjector::Global().Seed(7);
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.stage_attempt", FaultTrigger::EveryK(1),
                           "platform=sparksim")
                  .ok());
  FaultInjector::Global().set_enabled(true);
  auto out = executor.Execute(eplan);
  FaultInjector::Global().set_enabled(false);
  FaultInjector::Global().Clear();

  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().ToString().find("after 3 attempt"),
            std::string::npos)
      << out.status().ToString();
}

// Retry backoff is deadline-aware and cancellation-aware: a job that would
// otherwise sleep through a long exponential backoff stops as soon as its
// stop condition trips.
class RetryBackoffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().set_enabled(false);
    FaultInjector::Global().Clear();
  }
  void TearDown() override {
    FaultInjector::Global().set_enabled(false);
    FaultInjector::Global().Clear();
  }

  /// Single javasim stage whose every attempt fails by injection.
  ExecutionPlan MakePlan(Plan* plan, Platform* java) {
    auto* src = plan->Add<CollectionSourceOp>({}, Numbers(10));
    auto* sink = plan->Add<CollectOp>({src});
    plan->SetSink(sink);
    PlatformAssignment a;
    a.by_op = {{src->id(), java}, {sink->id(), java}};
    return StageSplitter::Split(*plan, std::move(a)).ValueOrDie();
  }
};

TEST_F(RetryBackoffTest, DeadlineBoundsRetryBackoff) {
  Config platform_config;
  JavaSimPlatform java(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java);

  Config config;
  config.SetInt("executor.max_retries", 50);
  config.SetInt("executor.retry_backoff_us", 20000);  // 20ms, doubling
  CrossPlatformExecutor executor(config);
  StopCondition stop;
  stop.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(150);
  stop.has_deadline = true;
  executor.set_stop_condition(stop);

  FaultInjector::Global().Seed(1);
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.stage_attempt", FaultTrigger::EveryK(1))
                  .ok());
  FaultInjector::Global().set_enabled(true);
  const auto start = std::chrono::steady_clock::now();
  auto out = executor.Execute(eplan);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  FaultInjector::Global().set_enabled(false);

  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded()) << out.status().ToString();
  // No runaway sleeps: 50 doubling retries unbounded would take minutes.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST_F(RetryBackoffTest, CancellationFiresDuringBackoff) {
  Config platform_config;
  JavaSimPlatform java(platform_config);
  Plan plan;
  ExecutionPlan eplan = MakePlan(&plan, &java);

  Config config;
  config.SetInt("executor.max_retries", 50);
  config.SetInt("executor.retry_backoff_us", 200000);  // 200ms per retry
  CrossPlatformExecutor executor(config);
  CancelToken token;
  StopCondition stop;
  stop.token = &token;
  executor.set_stop_condition(stop);
  ExecutionMonitor monitor;
  executor.set_monitor(&monitor);

  FaultInjector::Global().Seed(1);
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.stage_attempt", FaultTrigger::EveryK(1))
                  .ok());
  FaultInjector::Global().set_enabled(true);
  std::thread canceller([&token]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  auto out = executor.Execute(eplan);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  canceller.join();
  FaultInjector::Global().set_enabled(false);

  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsCancelled()) << out.status().ToString();
  // Cancelled inside the first backoff window, not after draining all 50
  // retries (which would take ~10s at the cap).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
  EXPECT_EQ(monitor.records().size(), 1u);  // only the first attempt ran
}

}  // namespace
}  // namespace rheem

#include "core/optimizer/cardinality.h"

#include <gtest/gtest.h>

#include "core/operators/physical_ops.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

MapUdf Identity() {
  MapUdf udf;
  udf.fn = [](const Record& r) { return r; };
  return udf;
}

TEST(CardinalityTest, SourceReportsTrueSize) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(123));
  auto* sink = plan.Add<CollectOp>({src});
  plan.SetSink(sink);
  auto est = CardinalityEstimator::Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(src->id()).cardinality, 123.0);
  EXPECT_DOUBLE_EQ(est->at(sink->id()).cardinality, 123.0);
}

TEST(CardinalityTest, FilterScalesBySelectivity) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(1000));
  PredicateUdf pred;
  pred.fn = [](const Record&) { return true; };
  pred.meta.selectivity = 0.25;
  auto* f = plan.Add<FilterOp>({src}, pred);
  plan.SetSink(plan.Add<CollectOp>({f}));
  auto est = CardinalityEstimator::Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(f->id()).cardinality, 250.0);
}

TEST(CardinalityTest, FlatMapCanExpand) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(100));
  FlatMapUdf fm;
  fm.fn = [](const Record& r) { return std::vector<Record>{r, r, r}; };
  fm.meta.selectivity = 3.0;
  auto* f = plan.Add<FlatMapOp>({src}, fm);
  plan.SetSink(plan.Add<CollectOp>({f}));
  auto est = CardinalityEstimator::Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(f->id()).cardinality, 300.0);
}

TEST(CardinalityTest, ReduceByKeyUsesDistinctRatioHint) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(1000));
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  key.meta.selectivity = 0.02;
  ReduceUdf red;
  red.fn = [](const Record& a, const Record&) { return a; };
  auto* r = plan.Add<ReduceByKeyOp>({src}, key, red);
  plan.SetSink(plan.Add<CollectOp>({r}));
  auto est = CardinalityEstimator::Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(r->id()).cardinality, 20.0);
}

TEST(CardinalityTest, CrossProductMultiplies) {
  Plan plan;
  auto* a = plan.Add<CollectionSourceOp>({}, Numbers(30));
  auto* b = plan.Add<CollectionSourceOp>({}, Numbers(40));
  auto* x = plan.Add<CrossProductOp>({a, b});
  plan.SetSink(plan.Add<CollectOp>({x}));
  auto est = CardinalityEstimator::Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(x->id()).cardinality, 1200.0);
}

TEST(CardinalityTest, GlobalReduceAndCountCollapseToOne) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(500));
  auto* c = plan.Add<CountOp>({src});
  plan.SetSink(plan.Add<CollectOp>({c}));
  auto est = CardinalityEstimator::Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(c->id()).cardinality, 1.0);
}

TEST(CardinalityTest, UnionAdds) {
  Plan plan;
  auto* a = plan.Add<CollectionSourceOp>({}, Numbers(10));
  auto* b = plan.Add<CollectionSourceOp>({}, Numbers(15));
  auto* u = plan.Add<UnionOp>({a, b});
  plan.SetSink(plan.Add<CollectOp>({u}));
  auto est = CardinalityEstimator::Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(u->id()).cardinality, 25.0);
}

TEST(CardinalityTest, ExternalEstimatesBindMarkers) {
  Plan body;
  auto* state = body.Add<LoopStateOp>({});
  auto* m = body.Add<MapOp>({state}, Identity());
  body.SetSink(m);
  EstimateMap external;
  external[state->id()] = Estimate{42.0, 16.0};
  auto est = CardinalityEstimator::Estimate(body, external);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(m->id()).cardinality, 42.0);
}

TEST(CardinalityTest, UnboundMarkersDefaultToEmpty) {
  Plan body;
  auto* state = body.Add<LoopStateOp>({});
  body.SetSink(state);
  auto est = CardinalityEstimator::Estimate(body);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(state->id()).cardinality, 0.0);
}

TEST(CardinalityTest, AvgBytesComesFromSampledSource) {
  Plan plan;
  std::vector<Record> wide;
  wide.push_back(Record({Value(std::string(100, 'x'))}));
  auto* src = plan.Add<CollectionSourceOp>({}, Dataset(std::move(wide)));
  plan.SetSink(plan.Add<CollectOp>({src}));
  auto est = CardinalityEstimator::Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->at(src->id()).avg_bytes, 100.0);
}

TEST(CardinalityTest, SamplesScaleByFraction) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(1000));
  auto* s = plan.Add<SampleOp>({src}, 0.1, 42);
  plan.SetSink(plan.Add<CollectOp>({s}));
  auto est = CardinalityEstimator::Estimate(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->at(s->id()).cardinality, 100.0);
}

}  // namespace
}  // namespace rheem

#include "core/optimizer/fingerprint.h"

#include <gtest/gtest.h>

#include "core/api/data_quanta.h"
#include "core/expr/expr.h"
#include "core/operators/physical_ops.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

MapUdf PlusOne() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    return Record({Value(r[0].ToInt64Or(0) + 1)});
  };
  return udf;
}

/// src -> map -> collect over Numbers(n), with a parameterizable TopK tail.
uint64_t PhysicalPipelineFp(int n, int64_t k, bool ascending) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(n));
  auto* map = plan.Add<MapOp>({src}, PlusOne());
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  auto* topk = plan.Add<TopKOp>({map}, key, k, ascending);
  auto* sink = plan.Add<CollectOp>({topk});
  plan.SetSink(sink);
  auto fp = PlanFingerprint::Compute(plan);
  EXPECT_TRUE(fp.ok()) << fp.status().ToString();
  return fp.ValueOr(0);
}

TEST(FingerprintTest, IdenticalPlansAgree) {
  EXPECT_EQ(PhysicalPipelineFp(10, 3, true), PhysicalPipelineFp(10, 3, true));
}

TEST(FingerprintTest, ParameterChangesFingerprint) {
  const uint64_t base = PhysicalPipelineFp(10, 3, true);
  EXPECT_NE(base, PhysicalPipelineFp(10, 5, true));   // k
  EXPECT_NE(base, PhysicalPipelineFp(10, 3, false));  // sort direction
}

TEST(FingerprintTest, SourceDataChangesFingerprint) {
  EXPECT_NE(PhysicalPipelineFp(10, 3, true), PhysicalPipelineFp(11, 3, true));
}

TEST(FingerprintTest, StructureChangesFingerprint) {
  Plan one;
  auto* src1 = one.Add<CollectionSourceOp>({}, Numbers(10));
  auto* map1 = one.Add<MapOp>({src1}, PlusOne());
  one.SetSink(one.Add<CollectOp>({map1}));

  Plan two;
  auto* src2 = two.Add<CollectionSourceOp>({}, Numbers(10));
  auto* map2a = two.Add<MapOp>({src2}, PlusOne());
  auto* map2b = two.Add<MapOp>({map2a}, PlusOne());
  two.SetSink(two.Add<CollectOp>({map2b}));

  auto fp_one = PlanFingerprint::Compute(one);
  auto fp_two = PlanFingerprint::Compute(two);
  ASSERT_TRUE(fp_one.ok());
  ASSERT_TRUE(fp_two.ok());
  EXPECT_NE(*fp_one, *fp_two);
}

TEST(FingerprintTest, PlanWithoutSinkIsAnError) {
  Plan plan;
  plan.Add<CollectionSourceOp>({}, Numbers(3));
  EXPECT_FALSE(PlanFingerprint::Compute(plan).ok());
}

TEST(FingerprintTest, LogicalPlansFingerprintViaSeal) {
  RheemContext ctx;
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  auto build = [&ctx](double selectivity) {
    auto job = std::make_unique<RheemJob>(&ctx);
    Plan* plan =
        job->LoadCollection(Numbers(10))
            .Filter([](const Record& r) { return r[0].ToInt64Or(0) > 3; },
                    UdfMeta::Selective(selectivity))
            .Seal()
            .ValueOrDie();
    auto fp = PlanFingerprint::Compute(*plan);
    EXPECT_TRUE(fp.ok()) << fp.status().ToString();
    return fp.ValueOr(0);
  };
  EXPECT_EQ(build(0.5), build(0.5));  // same pipeline -> same key
  EXPECT_NE(build(0.5), build(0.9));  // UDF metadata participates
}

TEST(FingerprintTest, DeclarativeConstantChangesFingerprint) {
  // The plan-cache soundness fix: closure predicates hash only by shape, so
  // two filters differing in a constant used to collide. Declarative
  // predicates fold their canonical encoding — including every literal.
  RheemContext ctx;
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  auto build = [&ctx](int64_t threshold) {
    auto job = std::make_unique<RheemJob>(&ctx);
    Plan* plan = job->LoadCollection(Numbers(10))
                     .Filter(expr::Gt(expr::Field(0, ValueType::kInt64),
                                      expr::Lit(threshold)))
                     .Seal()
                     .ValueOrDie();
    return PlanFingerprint::Compute(*plan).ValueOr(0);
  };
  EXPECT_EQ(build(3), build(3));
  EXPECT_NE(build(3), build(4));  // same shape, different constant
}

TEST(FingerprintTest, DeclarativePhysicalTokensFoldExpressions) {
  auto fp = [](int64_t threshold) {
    Plan plan;
    auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
    auto udf = expr::MakePredicateUdf(
                   expr::Gt(expr::Field(0, ValueType::kInt64),
                            expr::Lit(threshold)))
                   .ValueOrDie();
    auto* f = plan.Add<FilterOp>({src}, udf);
    plan.SetSink(plan.Add<CollectOp>({f}));
    return PlanFingerprint::Compute(plan).ValueOr(0);
  };
  EXPECT_EQ(fp(3), fp(3));
  EXPECT_NE(fp(3), fp(4));  // result-cache keys distinguish constants too
}

TEST(FingerprintTest, CommutedConjunctionsShareFingerprint) {
  // Conjunction normalization: a AND b fingerprints like b AND a.
  auto fp = [](bool flipped) {
    Plan plan;
    auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
    auto a = expr::Gt(expr::Field(0, ValueType::kInt64), expr::Lit(2));
    auto b = expr::Lt(expr::Field(0, ValueType::kInt64), expr::Lit(8));
    auto udf = expr::MakePredicateUdf(flipped ? expr::And(b, a)
                                              : expr::And(a, b))
                   .ValueOrDie();
    auto* f = plan.Add<FilterOp>({src}, udf);
    plan.SetSink(plan.Add<CollectOp>({f}));
    return PlanFingerprint::Compute(plan).ValueOr(0);
  };
  EXPECT_EQ(fp(false), fp(true));
}

TEST(FingerprintTest, DatasetHashCoversContent) {
  const uint64_t a = PlanFingerprint::OfDataset(Numbers(5));
  const uint64_t b = PlanFingerprint::OfDataset(Numbers(5));
  const uint64_t c = PlanFingerprint::OfDataset(Numbers(6));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace rheem

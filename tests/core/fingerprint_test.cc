#include "core/optimizer/fingerprint.h"

#include <gtest/gtest.h>

#include "core/api/data_quanta.h"
#include "core/operators/physical_ops.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

MapUdf PlusOne() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    return Record({Value(r[0].ToInt64Or(0) + 1)});
  };
  return udf;
}

/// src -> map -> collect over Numbers(n), with a parameterizable TopK tail.
uint64_t PhysicalPipelineFp(int n, int64_t k, bool ascending) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(n));
  auto* map = plan.Add<MapOp>({src}, PlusOne());
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  auto* topk = plan.Add<TopKOp>({map}, key, k, ascending);
  auto* sink = plan.Add<CollectOp>({topk});
  plan.SetSink(sink);
  auto fp = PlanFingerprint::Compute(plan);
  EXPECT_TRUE(fp.ok()) << fp.status().ToString();
  return fp.ValueOr(0);
}

TEST(FingerprintTest, IdenticalPlansAgree) {
  EXPECT_EQ(PhysicalPipelineFp(10, 3, true), PhysicalPipelineFp(10, 3, true));
}

TEST(FingerprintTest, ParameterChangesFingerprint) {
  const uint64_t base = PhysicalPipelineFp(10, 3, true);
  EXPECT_NE(base, PhysicalPipelineFp(10, 5, true));   // k
  EXPECT_NE(base, PhysicalPipelineFp(10, 3, false));  // sort direction
}

TEST(FingerprintTest, SourceDataChangesFingerprint) {
  EXPECT_NE(PhysicalPipelineFp(10, 3, true), PhysicalPipelineFp(11, 3, true));
}

TEST(FingerprintTest, StructureChangesFingerprint) {
  Plan one;
  auto* src1 = one.Add<CollectionSourceOp>({}, Numbers(10));
  auto* map1 = one.Add<MapOp>({src1}, PlusOne());
  one.SetSink(one.Add<CollectOp>({map1}));

  Plan two;
  auto* src2 = two.Add<CollectionSourceOp>({}, Numbers(10));
  auto* map2a = two.Add<MapOp>({src2}, PlusOne());
  auto* map2b = two.Add<MapOp>({map2a}, PlusOne());
  two.SetSink(two.Add<CollectOp>({map2b}));

  auto fp_one = PlanFingerprint::Compute(one);
  auto fp_two = PlanFingerprint::Compute(two);
  ASSERT_TRUE(fp_one.ok());
  ASSERT_TRUE(fp_two.ok());
  EXPECT_NE(*fp_one, *fp_two);
}

TEST(FingerprintTest, PlanWithoutSinkIsAnError) {
  Plan plan;
  plan.Add<CollectionSourceOp>({}, Numbers(3));
  EXPECT_FALSE(PlanFingerprint::Compute(plan).ok());
}

TEST(FingerprintTest, LogicalPlansFingerprintViaSeal) {
  RheemContext ctx;
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  auto build = [&ctx](double selectivity) {
    auto job = std::make_unique<RheemJob>(&ctx);
    Plan* plan =
        job->LoadCollection(Numbers(10))
            .Filter([](const Record& r) { return r[0].ToInt64Or(0) > 3; },
                    UdfMeta::Selective(selectivity))
            .Seal()
            .ValueOrDie();
    auto fp = PlanFingerprint::Compute(*plan);
    EXPECT_TRUE(fp.ok()) << fp.status().ToString();
    return fp.ValueOr(0);
  };
  EXPECT_EQ(build(0.5), build(0.5));  // same pipeline -> same key
  EXPECT_NE(build(0.5), build(0.9));  // UDF metadata participates
}

TEST(FingerprintTest, DatasetHashCoversContent) {
  const uint64_t a = PlanFingerprint::OfDataset(Numbers(5));
  const uint64_t b = PlanFingerprint::OfDataset(Numbers(5));
  const uint64_t c = PlanFingerprint::OfDataset(Numbers(6));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace rheem

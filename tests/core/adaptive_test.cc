#include "core/executor/adaptive.h"

#include <gtest/gtest.h>

#include "core/executor/executor.h"
#include "core/operators/physical_ops.h"
#include "platforms/javasim/javasim_platform.h"
#include "platforms/relsim/relsim_platform.h"
#include "platforms/sparksim/sparksim_platform.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

class AdaptiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Config config;
    ASSERT_TRUE(registry_.Register(std::make_unique<JavaSimPlatform>(config)).ok());
    ASSERT_TRUE(registry_.Register(std::make_unique<SparkSimPlatform>(config)).ok());
    ASSERT_TRUE(registry_.Register(std::make_unique<RelSimPlatform>(config)).ok());
  }
  PlatformRegistry registry_;
  MovementCostModel movement_;
};

/// Plan whose Filter lies about its selectivity: the hint promises `hint`,
/// the predicate actually keeps everything. A pinned relsim prefix forces a
/// stage boundary after the filter so the adaptive executor has a
/// mid-flight decision point.
struct LyingPlan {
  Plan plan;
  FilterOp* filter = nullptr;
  MapOp* map = nullptr;
  EnumeratorOptions options;
};

std::unique_ptr<LyingPlan> BuildLyingPlan(int rows, double hint) {
  auto built = std::make_unique<LyingPlan>();
  auto* src = built->plan.Add<CollectionSourceOp>({}, Numbers(rows));
  PredicateUdf pred;
  pred.fn = [](const Record&) { return true; };  // actually keeps everything
  pred.meta.selectivity = hint;                  // ...but claims otherwise
  built->filter = built->plan.Add<FilterOp>({src}, pred);
  MapUdf udf;
  udf.fn = [](const Record& r) {
    double x = r[0].ToDoubleOr(0);
    for (int k = 0; k < 200; ++k) x = x * 1.000001 + 0.5;
    return Record({Value(x)});
  };
  udf.meta.cost_factor = 200.0;
  built->map = built->plan.Add<MapOp>({built->filter}, udf);
  auto* sink = built->plan.Add<CollectOp>({built->map});
  built->plan.SetSink(sink);
  built->options.pinned_platforms[src->id()] = "relsim";
  built->options.pinned_platforms[built->filter->id()] = "relsim";
  return built;
}

TEST_F(AdaptiveTest, ExecutesPlainPlanWithoutAdaptation) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(100));
  MapUdf udf;
  udf.fn = [](const Record& r) { return Record({Value(r[0].ToInt64Or(0) + 1)}); };
  auto* m = plan.Add<MapOp>({src}, udf);
  plan.SetSink(plan.Add<CollectOp>({m}));
  AdaptiveExecutor executor(&registry_, &movement_);
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output.size(), 100u);
  EXPECT_EQ(result->output.at(0)[0], Value(1));
  EXPECT_EQ(result->reoptimizations, 0);
}

TEST_F(AdaptiveTest, ReoptimizesWhenSelectivityHintIsWrong) {
  auto lying = BuildLyingPlan(60000, /*hint=*/0.0005);
  AdaptiveExecutor executor(&registry_, &movement_);
  AdaptiveOptions options;
  options.enumerator = lying->options;
  options.reoptimize_threshold = 3.0;
  auto result = executor.Execute(lying->plan, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The filter "estimated" 30 records but produced 60000: adaptation fires.
  EXPECT_EQ(result->reoptimizations, 1);
  ASSERT_EQ(result->decisions.size(), 1u);
  EXPECT_NE(result->decisions[0].find("Filter"), std::string::npos);
  // All records survive the (lying) filter and get mapped.
  EXPECT_EQ(result->output.size(), 60000u);
}

TEST_F(AdaptiveTest, AccurateHintNeedsNoAdaptation) {
  auto honest = BuildLyingPlan(60000, /*hint=*/1.0);
  AdaptiveExecutor executor(&registry_, &movement_);
  AdaptiveOptions options;
  options.enumerator = honest->options;
  auto result = executor.Execute(honest->plan, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reoptimizations, 0);
  EXPECT_EQ(result->output.size(), 60000u);
}

TEST_F(AdaptiveTest, InvalidOptionsAreRejectedAtSubmit) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
  plan.SetSink(plan.Add<CollectOp>({src}));
  AdaptiveExecutor executor(&registry_, &movement_);

  // A threshold <= 1.0 can never be exceeded by the symmetric error ratio
  // (always >= 1): it used to silently disable adaptation, now it errors.
  AdaptiveOptions bad_threshold;
  bad_threshold.reoptimize_threshold = 1.0;
  auto r1 = executor.Execute(plan, bad_threshold);
  ASSERT_TRUE(r1.status().IsInvalidArgument()) << r1.status().ToString();
  EXPECT_NE(r1.status().ToString().find("reoptimize_threshold"),
            std::string::npos);

  AdaptiveOptions negative_budget;
  negative_budget.max_reoptimizations = -1;
  auto r2 = executor.Execute(plan, negative_budget);
  ASSERT_TRUE(r2.status().IsInvalidArgument()) << r2.status().ToString();
  EXPECT_NE(r2.status().ToString().find("max_reoptimizations"),
            std::string::npos);

  // Zero stays valid: it means "adaptation off", not a typo.
  AdaptiveOptions disabled;
  disabled.max_reoptimizations = 0;
  EXPECT_TRUE(executor.Execute(plan, disabled).ok());
}

TEST_F(AdaptiveTest, ExecutorConfigValidationMatchesAdaptiveOptions) {
  // The folded-in executor path validates the same knobs from config keys.
  auto run = [&](double threshold, int64_t budget) {
    Plan plan;
    auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
    plan.SetSink(plan.Add<CollectOp>({src}));
    auto estimates = CardinalityEstimator::Estimate(plan).ValueOrDie();
    Enumerator enumerator(&registry_, &movement_);
    auto assignment = enumerator.Run(plan, estimates, {}).ValueOrDie();
    auto eplan = StageSplitter::Split(plan, std::move(assignment)).ValueOrDie();
    Config config;
    config.SetDouble("executor.reoptimize_threshold", threshold);
    config.SetInt("executor.max_reoptimizations", budget);
    CrossPlatformExecutor executor(config);
    return executor.Execute(eplan).status();
  };
  EXPECT_TRUE(run(0.5, 2).IsInvalidArgument());
  EXPECT_TRUE(run(3.0, -1).IsInvalidArgument());
  EXPECT_TRUE(run(3.0, 0).ok());
}

TEST_F(AdaptiveTest, AdaptationRespectsMaxReoptimizations) {
  auto lying = BuildLyingPlan(20000, /*hint=*/0.0001);
  AdaptiveExecutor executor(&registry_, &movement_);
  AdaptiveOptions options;
  options.enumerator = lying->options;
  options.max_reoptimizations = 0;  // adaptation disabled
  auto result = executor.Execute(lying->plan, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reoptimizations, 0);
  EXPECT_EQ(result->output.size(), 20000u);
}

TEST_F(AdaptiveTest, ExecutedWorkIsNotRedone) {
  auto lying = BuildLyingPlan(30000, /*hint=*/0.001);
  AdaptiveExecutor executor(&registry_, &movement_);
  AdaptiveOptions options;
  options.enumerator = lying->options;
  auto result = executor.Execute(lying->plan, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->reoptimizations, 1);
  // The relsim prefix ran once; after re-optimization only the remaining
  // stage(s) execute: total stages executed stays small (prefix + <=2).
  EXPECT_LE(result->metrics.stages_run, 3);
  EXPECT_EQ(result->output.size(), 30000u);
}

TEST_F(AdaptiveTest, ResultMatchesStaticExecutorOutput) {
  auto lying = BuildLyingPlan(5000, /*hint=*/0.001);
  AdaptiveExecutor executor(&registry_, &movement_);
  AdaptiveOptions options;
  options.enumerator = lying->options;
  auto adaptive = executor.Execute(lying->plan, options);
  ASSERT_TRUE(adaptive.ok());

  auto honest = BuildLyingPlan(5000, /*hint=*/0.001);
  auto estimates = CardinalityEstimator::Estimate(honest->plan).ValueOrDie();
  Enumerator enumerator(&registry_, &movement_);
  auto assignment =
      enumerator.Run(honest->plan, estimates, honest->options).ValueOrDie();
  auto eplan =
      StageSplitter::Split(honest->plan, std::move(assignment)).ValueOrDie();
  CrossPlatformExecutor static_executor;
  auto expected = static_executor.Execute(eplan);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(adaptive->output.size(), expected->output.size());
  for (std::size_t i = 0; i < adaptive->output.size(); ++i) {
    EXPECT_EQ(adaptive->output.at(i), expected->output.at(i));
  }
}

}  // namespace
}  // namespace rheem

#include "core/executor/result_cache.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/executor/executor.h"
#include "core/operators/physical_ops.h"
#include "core/optimizer/enumerator.h"
#include "platforms/javasim/javasim_platform.h"
#include "platforms/sparksim/sparksim_platform.h"

namespace rheem {
namespace {

Dataset Numbers(int n, int offset = 0) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i + offset)}));
  return Dataset(std::move(records));
}

std::shared_ptr<const Dataset> Shared(int n) {
  return std::make_shared<const Dataset>(Numbers(n));
}

MapUdf PlusOne() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    return Record({Value(r[0].ToInt64Or(0) + 1)});
  };
  return udf;
}

TEST(ResultCacheTest, LookupReturnsInsertedDatasetWithoutCopying) {
  ResultCache cache(1 << 20);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.Lookup(1), nullptr);
  auto data = Shared(10);
  cache.Insert(1, data);
  auto hit = cache.Lookup(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), data.get());  // shared, not copied
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.inserts, 1);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedByBytes) {
  const int64_t one = Numbers(10).EstimatedBytes();
  ResultCache cache(one * 2 + 10);
  cache.Insert(1, Shared(10));
  cache.Insert(2, Shared(10));
  ASSERT_NE(cache.Lookup(1), nullptr);  // refresh 1; 2 is now LRU
  cache.Insert(3, Shared(10));          // evicts 2
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_NE(cache.Lookup(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(ResultCacheTest, OversizedDatasetBypasses) {
  ResultCache cache(8);
  cache.Insert(1, Shared(100));
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(1, Shared(10));
  EXPECT_EQ(cache.Lookup(1), nullptr);
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 0);  // disabled lookups are not counted
}

TEST(ResultCacheTest, ClearEmptiesEntries) {
  ResultCache cache(1 << 20);
  cache.Insert(1, Shared(10));
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0);
  EXPECT_EQ(cache.Lookup(1), nullptr);
}

TEST(ResultCacheTest, ConcurrentInsertLookupIsThreadSafe) {
  const int64_t one = Numbers(10).EstimatedBytes();
  ResultCache cache(one * 3 + 10);  // small: concurrent evictions too
  constexpr int kThreads = 8;
  constexpr int kRounds = 300;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kRounds; ++i) {
        const uint64_t key = static_cast<uint64_t>((t + i) % 7);
        if (i % 3 == 0) {
          cache.Insert(key, Shared(10));
        } else {
          auto hit = cache.Lookup(key);
          if (hit != nullptr && hit->size() != 10u) failed.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
}

class SubPlanFingerprintTest : public ::testing::Test {
 protected:
  SubPlanFingerprintTest() : java_(config_), spark_(config_) {}

  /// src -> map -> map -> sink, everything on `platform`.
  ExecutionPlan Build(Plan* plan, Platform* platform, int source_rows) {
    auto* src = plan->Add<CollectionSourceOp>({}, Numbers(source_rows));
    auto* m1 = plan->Add<MapOp>({src}, PlusOne());
    auto* m2 = plan->Add<MapOp>({m1}, PlusOne());
    auto* sink = plan->Add<CollectOp>({m2});
    plan->SetSink(sink);
    PlatformAssignment a;
    for (auto* op : {static_cast<Operator*>(src), static_cast<Operator*>(m1),
                     static_cast<Operator*>(m2),
                     static_cast<Operator*>(sink)}) {
      a.by_op[op->id()] = platform;
    }
    return StageSplitter::Split(*plan, std::move(a)).ValueOrDie();
  }

  Config config_;
  JavaSimPlatform java_;
  SparkSimPlatform spark_;
};

TEST_F(SubPlanFingerprintTest, EqualSubPlansShareFingerprints) {
  Plan p1, p2;
  ExecutionPlan e1 = Build(&p1, &java_, 10);
  ExecutionPlan e2 = Build(&p2, &java_, 10);
  auto f1 = ComputeSubPlanFingerprints(e1).ValueOrDie();
  auto f2 = ComputeSubPlanFingerprints(e2).ValueOrDie();
  ASSERT_EQ(f1.size(), 4u);
  // Same structure, content and platform: every operator's sub-plan
  // fingerprint matches across the two independent plans.
  for (const auto& [op_id, fp] : f1) EXPECT_EQ(fp, f2.at(op_id));
}

TEST_F(SubPlanFingerprintTest, SourceContentChangesEveryDownstreamFingerprint) {
  Plan p1, p2;
  ExecutionPlan e1 = Build(&p1, &java_, 10);
  ExecutionPlan e2 = Build(&p2, &java_, 11);
  auto f1 = ComputeSubPlanFingerprints(e1).ValueOrDie();
  auto f2 = ComputeSubPlanFingerprints(e2).ValueOrDie();
  for (const auto& [op_id, fp] : f1) EXPECT_NE(fp, f2.at(op_id));
}

TEST_F(SubPlanFingerprintTest, PlatformIsPartOfTheFingerprint) {
  Plan p1, p2;
  ExecutionPlan e1 = Build(&p1, &java_, 10);
  ExecutionPlan e2 = Build(&p2, &spark_, 10);
  auto f1 = ComputeSubPlanFingerprints(e1).ValueOrDie();
  auto f2 = ComputeSubPlanFingerprints(e2).ValueOrDie();
  // Platforms agree on bags, not on order; cached results must never leak
  // across platform assignments.
  for (const auto& [op_id, fp] : f1) EXPECT_NE(fp, f2.at(op_id));
}

TEST_F(SubPlanFingerprintTest, SharedPrefixSharesFingerprints) {
  // Plan A: src -> m1 -> m2 -> sink.  Plan B: src -> m1 -> sink.  The
  // src/m1 prefix is identical, so a job running B after A reuses A's m1
  // result even though the plans differ downstream.
  Plan a, b;
  auto* sa = a.Add<CollectionSourceOp>({}, Numbers(10));
  auto* ma1 = a.Add<MapOp>({sa}, PlusOne());
  auto* ma2 = a.Add<MapOp>({ma1}, PlusOne());
  auto* ka = a.Add<CollectOp>({ma2});
  a.SetSink(ka);
  PlatformAssignment aa;
  for (int id : {sa->id(), ma1->id(), ma2->id(), ka->id()}) {
    aa.by_op[id] = &java_;
  }
  ExecutionPlan ea = StageSplitter::Split(a, std::move(aa)).ValueOrDie();

  auto* sb = b.Add<CollectionSourceOp>({}, Numbers(10));
  auto* mb1 = b.Add<MapOp>({sb}, PlusOne());
  auto* kb = b.Add<CollectOp>({mb1});
  b.SetSink(kb);
  PlatformAssignment ab;
  for (int id : {sb->id(), mb1->id(), kb->id()}) ab.by_op[id] = &java_;
  ExecutionPlan eb = StageSplitter::Split(b, std::move(ab)).ValueOrDie();

  auto fa = ComputeSubPlanFingerprints(ea).ValueOrDie();
  auto fb = ComputeSubPlanFingerprints(eb).ValueOrDie();
  EXPECT_EQ(fa.at(sa->id()), fb.at(sb->id()));
  EXPECT_EQ(fa.at(ma1->id()), fb.at(mb1->id()));
  EXPECT_NE(fa.at(ka->id()), fb.at(kb->id()));  // different inputs
}

class ExecutorResultCacheTest : public ::testing::Test {
 protected:
  ExecutorResultCacheTest() : java_(config_), spark_(config_) {}

  ExecutionPlan MakePlan(Plan* plan, int rows) {
    auto* src = plan->Add<CollectionSourceOp>({}, Numbers(rows));
    auto* m1 = plan->Add<MapOp>({src}, PlusOne());
    auto* m2 = plan->Add<MapOp>({m1}, PlusOne());
    auto* sink = plan->Add<CollectOp>({m2});
    plan->SetSink(sink);
    PlatformAssignment a;
    a.by_op = {{src->id(), &java_}, {m1->id(), &java_},
               {m2->id(), &spark_}, {sink->id(), &spark_}};
    return StageSplitter::Split(*plan, std::move(a)).ValueOrDie();
  }

  Config config_;
  JavaSimPlatform java_;
  SparkSimPlatform spark_;
};

TEST_F(ExecutorResultCacheTest, WarmRunSkipsEveryStage) {
  ResultCache cache(1 << 24);
  Plan p1;
  ExecutionPlan e1 = MakePlan(&p1, 10);
  CrossPlatformExecutor cold;
  cold.set_result_cache(&cache);
  auto cold_result = cold.Execute(e1);
  ASSERT_TRUE(cold_result.ok()) << cold_result.status().ToString();
  EXPECT_EQ(cold_result->metrics.stages_run, 2);
  EXPECT_EQ(cold_result->metrics.stages_reused, 0);

  // A structurally equal plan compiled separately: every stage reuses.
  Plan p2;
  ExecutionPlan e2 = MakePlan(&p2, 10);
  CrossPlatformExecutor warm;
  warm.set_result_cache(&cache);
  auto warm_result = warm.Execute(e2);
  ASSERT_TRUE(warm_result.ok()) << warm_result.status().ToString();
  EXPECT_EQ(warm_result->metrics.stages_run, 0);
  EXPECT_EQ(warm_result->metrics.stages_reused, 2);
  EXPECT_EQ(warm_result->metrics.moved_bytes, 0);  // no boundary crossed
  ASSERT_EQ(warm_result->output.size(), cold_result->output.size());
  for (std::size_t i = 0; i < warm_result->output.size(); ++i) {
    EXPECT_EQ(warm_result->output.at(i), cold_result->output.at(i));
  }
}

TEST_F(ExecutorResultCacheTest, DifferentSourceContentDoesNotReuse) {
  ResultCache cache(1 << 24);
  Plan p1, p2;
  ExecutionPlan e1 = MakePlan(&p1, 10);
  ExecutionPlan e2 = MakePlan(&p2, 12);
  CrossPlatformExecutor ex1, ex2;
  ex1.set_result_cache(&cache);
  ex2.set_result_cache(&cache);
  ASSERT_TRUE(ex1.Execute(e1).ok());
  auto result = ex2.Execute(e2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.stages_reused, 0);
  EXPECT_EQ(result->output.size(), 12u);
}

TEST_F(ExecutorResultCacheTest, NoCacheMeansNoReuse) {
  Plan p1;
  ExecutionPlan e1 = MakePlan(&p1, 10);
  CrossPlatformExecutor executor;  // no cache attached
  auto first = executor.Execute(e1);
  auto second = executor.Execute(e1);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->metrics.stages_reused, 0);
  EXPECT_EQ(second->metrics.stages_run, 2);
}

TEST_F(ExecutorResultCacheTest,
       SharedBoundaryConversionHappensOncePerTargetPlatform) {
  // src (java) feeds two disconnected spark stages; both need the same
  // java->spark conversion of src's output. The conversion must run once
  // and the movement totals must count the edge once.
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
  auto* ma = plan.Add<MapOp>({src}, PlusOne());
  auto* mb = plan.Add<MapOp>({src}, PlusOne());
  auto* uni = plan.Add<UnionOp>({ma, mb});
  auto* sink = plan.Add<CollectOp>({uni});
  plan.SetSink(sink);
  PlatformAssignment a;
  a.by_op = {{src->id(), &java_},
             {ma->id(), &spark_},
             {mb->id(), &spark_},
             {uni->id(), &java_},
             {sink->id(), &java_}};
  ExecutionPlan eplan = StageSplitter::Split(plan, std::move(a)).ValueOrDie();
  // Expect stages: {src}, {ma}, {mb}, {uni,sink} -> the src->spark edge is
  // shared by the two middle stages.
  ASSERT_EQ(eplan.stages.size(), 4u);

  CrossPlatformExecutor executor;
  auto result = executor.Execute(eplan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output.size(), 20u);
  EXPECT_EQ(result->metrics.boundary_conversions_reused, 1);
  // moved_records: src crosses once (10), ma and mb cross back (10 each).
  EXPECT_EQ(result->metrics.moved_records, 30);
}

}  // namespace
}  // namespace rheem

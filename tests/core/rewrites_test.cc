#include "core/optimizer/logical_rewrites.h"

#include <gtest/gtest.h>

#include "core/operators/kernels.h"
#include "core/operators/physical_ops.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

PredicateUdf Pred(double selectivity, double cost,
                  std::function<bool(const Record&)> fn) {
  PredicateUdf udf;
  udf.fn = std::move(fn);
  udf.meta.selectivity = selectivity;
  udf.meta.cost_factor = cost;
  return udf;
}

/// Evaluates a rewritten physical plan directly through the kernels, in
/// topological order, to confirm semantics are preserved.
Dataset EvalPlan(const Plan& plan) {
  auto topo = plan.TopologicalOrder().ValueOrDie();
  std::map<int, Dataset> results;
  for (Operator* base : topo) {
    auto* op = dynamic_cast<PhysicalOperator*>(base);
    Dataset out;
    switch (op->kind()) {
      case OpKind::kCollectionSource:
        out = static_cast<CollectionSourceOp*>(op)->data();
        break;
      case OpKind::kFilter:
        out = kernels::Filter(static_cast<FilterOp*>(op)->udf(),
                              results.at(op->inputs()[0]->id()))
                  .ValueOrDie();
        break;
      case OpKind::kProject:
        out = kernels::Project(static_cast<ProjectOp*>(op)->columns(),
                               results.at(op->inputs()[0]->id()))
                  .ValueOrDie();
        break;
      case OpKind::kUnion:
        out = kernels::Union(results.at(op->inputs()[0]->id()),
                             results.at(op->inputs()[1]->id()))
                  .ValueOrDie();
        break;
      case OpKind::kCollect:
        out = results.at(op->inputs()[0]->id());
        break;
      default:
        ADD_FAILURE() << "unexpected op in test plan: " << op->kind_name();
    }
    results[op->id()] = std::move(out);
  }
  return results.at(plan.sink()->id());
}

std::multiset<std::string> AsMultiset(const Dataset& d) {
  std::multiset<std::string> out;
  for (const Record& r : d.records()) out.insert(r.ToString());
  return out;
}

TEST(RewritesTest, ReordersFilterChainBySelectivityTimesCost) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(100));
  // Expensive, unselective filter first (bad), cheap selective second.
  auto* f1 = plan.Add<FilterOp>(
      {src}, Pred(0.9, 50.0, [](const Record& r) { return r[0].ToInt64Or(0) != 1; }));
  auto* f2 = plan.Add<FilterOp>(
      {f1}, Pred(0.1, 1.0, [](const Record& r) { return r[0].ToInt64Or(0) < 10; }));
  auto* sink = plan.Add<CollectOp>({f2});
  plan.SetSink(sink);

  const Dataset before = EvalPlan(plan);
  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_reordered, 1);
  // After the swap, the first filter position holds the selective predicate.
  EXPECT_DOUBLE_EQ(f1->udf().meta.selectivity, 0.1);
  EXPECT_DOUBLE_EQ(f2->udf().meta.selectivity, 0.9);
  EXPECT_EQ(AsMultiset(EvalPlan(plan)), AsMultiset(before));
}

TEST(RewritesTest, AlreadyOrderedChainUntouched) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
  auto* f1 = plan.Add<FilterOp>(
      {src}, Pred(0.1, 1.0, [](const Record&) { return true; }));
  auto* f2 = plan.Add<FilterOp>(
      {f1}, Pred(0.9, 1.0, [](const Record&) { return true; }));
  plan.SetSink(plan.Add<CollectOp>({f2}));
  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_reordered, 0);
}

TEST(RewritesTest, PushesFilterThroughUnion) {
  Plan plan;
  auto* a = plan.Add<CollectionSourceOp>({}, Numbers(10));
  auto* b = plan.Add<CollectionSourceOp>({}, Numbers(20));
  auto* u = plan.Add<UnionOp>({a, b});
  auto* f = plan.Add<FilterOp>(
      {u}, Pred(0.5, 1.0,
                [](const Record& r) { return r[0].ToInt64Or(0) % 2 == 0; }));
  auto* sink = plan.Add<CollectOp>({f});
  plan.SetSink(sink);
  const Dataset before = EvalPlan(plan);

  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_pushed, 1);
  EXPECT_TRUE(plan.Validate().ok());
  // The sink's input is now a Union whose two inputs are Filters.
  auto* new_union = dynamic_cast<UnionOp*>(plan.sink()->inputs()[0]);
  ASSERT_NE(new_union, nullptr);
  EXPECT_NE(dynamic_cast<FilterOp*>(new_union->inputs()[0]), nullptr);
  EXPECT_NE(dynamic_cast<FilterOp*>(new_union->inputs()[1]), nullptr);
  EXPECT_EQ(AsMultiset(EvalPlan(plan)), AsMultiset(before));
}

TEST(RewritesTest, PushesProjectThroughUnion) {
  Plan plan;
  std::vector<Record> rows;
  for (int i = 0; i < 5; ++i) rows.push_back(Record({Value(i), Value(i * 10)}));
  auto* a = plan.Add<CollectionSourceOp>({}, Dataset(rows));
  auto* b = plan.Add<CollectionSourceOp>({}, Dataset(rows));
  auto* u = plan.Add<UnionOp>({a, b});
  auto* p = plan.Add<ProjectOp>({u}, std::vector<int>{1});
  plan.SetSink(plan.Add<CollectOp>({p}));
  const Dataset before = EvalPlan(plan);

  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->projects_pushed, 1);
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_EQ(AsMultiset(EvalPlan(plan)), AsMultiset(before));
}

TEST(RewritesTest, SharedUnionNotRewritten) {
  // Union feeds both a filter and the sink directly: pushing would duplicate
  // work for the second consumer, so the rewrite must not fire.
  Plan plan;
  auto* a = plan.Add<CollectionSourceOp>({}, Numbers(5));
  auto* b = plan.Add<CollectionSourceOp>({}, Numbers(5));
  auto* u = plan.Add<UnionOp>({a, b});
  auto* f = plan.Add<FilterOp>(
      {u}, Pred(0.5, 1.0, [](const Record&) { return true; }));
  auto* u2 = plan.Add<UnionOp>({f, u});
  plan.SetSink(plan.Add<CollectOp>({u2}));
  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_pushed, 0);
}

TEST(RewritesTest, PinsRemappedAfterPrune) {
  Plan plan;
  auto* a = plan.Add<CollectionSourceOp>({}, Numbers(5));   // id 0
  plan.Add<CollectionSourceOp>({}, Numbers(5));             // orphan id 1
  auto* sink = plan.Add<CollectOp>({a});                    // id 2
  plan.SetSink(sink);
  std::map<int, std::string> pins{{0, "javasim"}, {1, "sparksim"}, {2, "relsim"}};
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  // Orphan's pin dropped; surviving ids compacted.
  EXPECT_EQ(pins.size(), 2u);
  EXPECT_EQ(pins.at(0), "javasim");
  EXPECT_EQ(pins.at(1), "relsim");
}

TEST(RewritesTest, NullPlanRejected) {
  std::map<int, std::string> pins;
  EXPECT_FALSE(ApplicationRewrites::Apply(nullptr, &pins).ok());
}

}  // namespace
}  // namespace rheem

#include "core/optimizer/logical_rewrites.h"

#include <gtest/gtest.h>

#include "core/expr/expr.h"
#include "core/operators/kernels.h"
#include "core/operators/physical_ops.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

PredicateUdf Pred(double selectivity, double cost,
                  std::function<bool(const Record&)> fn) {
  PredicateUdf udf;
  udf.fn = std::move(fn);
  udf.meta.selectivity = selectivity;
  udf.meta.cost_factor = cost;
  return udf;
}

/// Evaluates a rewritten physical plan directly through the kernels, in
/// topological order, to confirm semantics are preserved.
Dataset EvalPlan(const Plan& plan) {
  auto topo = plan.TopologicalOrder().ValueOrDie();
  std::map<int, Dataset> results;
  for (Operator* base : topo) {
    auto* op = dynamic_cast<PhysicalOperator*>(base);
    Dataset out;
    switch (op->kind()) {
      case OpKind::kCollectionSource:
        out = static_cast<CollectionSourceOp*>(op)->data();
        break;
      case OpKind::kFilter:
        out = kernels::Filter(static_cast<FilterOp*>(op)->udf(),
                              results.at(op->inputs()[0]->id()))
                  .ValueOrDie();
        break;
      case OpKind::kMap:
        out = kernels::Map(static_cast<MapOp*>(op)->udf(),
                           results.at(op->inputs()[0]->id()))
                  .ValueOrDie();
        break;
      case OpKind::kJoin: {
        auto* j = static_cast<JoinOp*>(op);
        out = kernels::HashJoin(j->left_key(), j->right_key(),
                                results.at(op->inputs()[0]->id()),
                                results.at(op->inputs()[1]->id()))
                  .ValueOrDie();
        break;
      }
      case OpKind::kProject:
        out = kernels::Project(static_cast<ProjectOp*>(op)->columns(),
                               results.at(op->inputs()[0]->id()))
                  .ValueOrDie();
        break;
      case OpKind::kUnion:
        out = kernels::Union(results.at(op->inputs()[0]->id()),
                             results.at(op->inputs()[1]->id()))
                  .ValueOrDie();
        break;
      case OpKind::kCollect:
        out = results.at(op->inputs()[0]->id());
        break;
      default:
        ADD_FAILURE() << "unexpected op in test plan: " << op->kind_name();
    }
    results[op->id()] = std::move(out);
  }
  return results.at(plan.sink()->id());
}

std::multiset<std::string> AsMultiset(const Dataset& d) {
  std::multiset<std::string> out;
  for (const Record& r : d.records()) out.insert(r.ToString());
  return out;
}

TEST(RewritesTest, ReordersFilterChainBySelectivityTimesCost) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(100));
  // Expensive, unselective filter first (bad), cheap selective second.
  auto* f1 = plan.Add<FilterOp>(
      {src}, Pred(0.9, 50.0, [](const Record& r) { return r[0].ToInt64Or(0) != 1; }));
  auto* f2 = plan.Add<FilterOp>(
      {f1}, Pred(0.1, 1.0, [](const Record& r) { return r[0].ToInt64Or(0) < 10; }));
  auto* sink = plan.Add<CollectOp>({f2});
  plan.SetSink(sink);

  const Dataset before = EvalPlan(plan);
  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_reordered, 1);
  // After the swap, the first filter position holds the selective predicate.
  EXPECT_DOUBLE_EQ(f1->udf().meta.selectivity, 0.1);
  EXPECT_DOUBLE_EQ(f2->udf().meta.selectivity, 0.9);
  EXPECT_EQ(AsMultiset(EvalPlan(plan)), AsMultiset(before));
}

TEST(RewritesTest, AlreadyOrderedChainUntouched) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
  auto* f1 = plan.Add<FilterOp>(
      {src}, Pred(0.1, 1.0, [](const Record&) { return true; }));
  auto* f2 = plan.Add<FilterOp>(
      {f1}, Pred(0.9, 1.0, [](const Record&) { return true; }));
  plan.SetSink(plan.Add<CollectOp>({f2}));
  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_reordered, 0);
}

TEST(RewritesTest, PushesFilterThroughUnion) {
  Plan plan;
  auto* a = plan.Add<CollectionSourceOp>({}, Numbers(10));
  auto* b = plan.Add<CollectionSourceOp>({}, Numbers(20));
  auto* u = plan.Add<UnionOp>({a, b});
  auto* f = plan.Add<FilterOp>(
      {u}, Pred(0.5, 1.0,
                [](const Record& r) { return r[0].ToInt64Or(0) % 2 == 0; }));
  auto* sink = plan.Add<CollectOp>({f});
  plan.SetSink(sink);
  const Dataset before = EvalPlan(plan);

  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_pushed, 1);
  EXPECT_TRUE(plan.Validate().ok());
  // The sink's input is now a Union whose two inputs are Filters.
  auto* new_union = dynamic_cast<UnionOp*>(plan.sink()->inputs()[0]);
  ASSERT_NE(new_union, nullptr);
  EXPECT_NE(dynamic_cast<FilterOp*>(new_union->inputs()[0]), nullptr);
  EXPECT_NE(dynamic_cast<FilterOp*>(new_union->inputs()[1]), nullptr);
  EXPECT_EQ(AsMultiset(EvalPlan(plan)), AsMultiset(before));
}

TEST(RewritesTest, PushesProjectThroughUnion) {
  Plan plan;
  std::vector<Record> rows;
  for (int i = 0; i < 5; ++i) rows.push_back(Record({Value(i), Value(i * 10)}));
  auto* a = plan.Add<CollectionSourceOp>({}, Dataset(rows));
  auto* b = plan.Add<CollectionSourceOp>({}, Dataset(rows));
  auto* u = plan.Add<UnionOp>({a, b});
  auto* p = plan.Add<ProjectOp>({u}, std::vector<int>{1});
  plan.SetSink(plan.Add<CollectOp>({p}));
  const Dataset before = EvalPlan(plan);

  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->projects_pushed, 1);
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_EQ(AsMultiset(EvalPlan(plan)), AsMultiset(before));
}

TEST(RewritesTest, SharedUnionNotRewritten) {
  // Union feeds both a filter and the sink directly: pushing would duplicate
  // work for the second consumer, so the rewrite must not fire.
  Plan plan;
  auto* a = plan.Add<CollectionSourceOp>({}, Numbers(5));
  auto* b = plan.Add<CollectionSourceOp>({}, Numbers(5));
  auto* u = plan.Add<UnionOp>({a, b});
  auto* f = plan.Add<FilterOp>(
      {u}, Pred(0.5, 1.0, [](const Record&) { return true; }));
  auto* u2 = plan.Add<UnionOp>({f, u});
  plan.SetSink(plan.Add<CollectOp>({u2}));
  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_pushed, 0);
}

TEST(RewritesTest, PinsRemappedAfterPrune) {
  Plan plan;
  auto* a = plan.Add<CollectionSourceOp>({}, Numbers(5));   // id 0
  plan.Add<CollectionSourceOp>({}, Numbers(5));             // orphan id 1
  auto* sink = plan.Add<CollectOp>({a});                    // id 2
  plan.SetSink(sink);
  std::map<int, std::string> pins{{0, "javasim"}, {1, "sparksim"}, {2, "relsim"}};
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  // Orphan's pin dropped; surviving ids compacted.
  EXPECT_EQ(pins.size(), 2u);
  EXPECT_EQ(pins.at(0), "javasim");
  EXPECT_EQ(pins.at(1), "relsim");
}

TEST(RewritesTest, NullPlanRejected) {
  std::map<int, std::string> pins;
  EXPECT_FALSE(ApplicationRewrites::Apply(nullptr, &pins).ok());
}

// --- declarative (expression) pushdowns -------------------------------------

Dataset Pairs(int n) {
  std::vector<Record> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back(Record({Value(i), Value(i * 10)}));
  }
  return Dataset(std::move(rows));
}

PredicateUdf ExprPred(expr::ExprPtr e) {
  return expr::MakePredicateUdf(std::move(e)).ValueOrDie();
}

TEST(RewritesTest, SplitsConjunctiveDeclarativeFilter) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Pairs(50));
  auto pred = expr::And(
      expr::Gt(expr::Field(0, ValueType::kInt64), expr::Lit(10)),
      expr::Lt(expr::Field(1, ValueType::kInt64), expr::Lit(400)));
  auto* f = plan.Add<FilterOp>({src}, ExprPred(pred));
  plan.SetSink(plan.Add<CollectOp>({f}));
  const Dataset before = EvalPlan(plan);

  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->conjuncts_split, 1);  // one AND -> two filters
  // Sink now sees a chain of two single-conjunct filters.
  auto* top = dynamic_cast<FilterOp*>(plan.sink()->inputs()[0]);
  ASSERT_NE(top, nullptr);
  EXPECT_NE(dynamic_cast<FilterOp*>(top->inputs()[0]), nullptr);
  EXPECT_EQ(AsMultiset(EvalPlan(plan)), AsMultiset(before));
}

TEST(RewritesTest, PushesDeclarativeFilterBelowProject) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Pairs(20));
  auto* p = plan.Add<ProjectOp>({src}, std::vector<int>{1});
  // Filter on projected field 0 == source column 1.
  auto* f = plan.Add<FilterOp>(
      {p}, ExprPred(expr::Ge(expr::Field(0, ValueType::kInt64),
                             expr::Lit(100))));
  plan.SetSink(plan.Add<CollectOp>({f}));
  const Dataset before = EvalPlan(plan);

  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_pushed_project, 1);
  // Project is now the sink's input; the filter moved below it with its
  // field remapped to the pre-projection layout.
  auto* new_p = dynamic_cast<ProjectOp*>(plan.sink()->inputs()[0]);
  ASSERT_NE(new_p, nullptr);
  auto* new_f = dynamic_cast<FilterOp*>(new_p->inputs()[0]);
  ASSERT_NE(new_f, nullptr);
  ASSERT_NE(new_f->udf().expr, nullptr);
  EXPECT_EQ(expr::MaxFieldIndex(*new_f->udf().expr), 1);
  EXPECT_EQ(AsMultiset(EvalPlan(plan)), AsMultiset(before));
}

TEST(RewritesTest, PushesDeclarativeFilterBelowPassThroughMap) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Pairs(20));
  // Map {source[1], source[0] * 2}: output field 0 is pass-through, field 1
  // is computed.
  auto map_udf = expr::MakeMapUdf({expr::Field(1, ValueType::kInt64),
                                   expr::Mul(expr::Field(0, ValueType::kInt64),
                                             expr::Lit(2))})
                     .ValueOrDie();
  auto* m = plan.Add<MapOp>({src}, map_udf);
  // References only the pass-through output field -> pushable.
  auto* f = plan.Add<FilterOp>(
      {m}, ExprPred(expr::Gt(expr::Field(0, ValueType::kInt64),
                             expr::Lit(50))));
  plan.SetSink(plan.Add<CollectOp>({f}));
  const Dataset before = EvalPlan(plan);

  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_pushed_project, 1);
  auto* new_m = dynamic_cast<MapOp*>(plan.sink()->inputs()[0]);
  ASSERT_NE(new_m, nullptr);
  EXPECT_NE(dynamic_cast<FilterOp*>(new_m->inputs()[0]), nullptr);
  EXPECT_EQ(AsMultiset(EvalPlan(plan)), AsMultiset(before));
}

TEST(RewritesTest, FilterOnComputedMapFieldStaysPut) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Pairs(20));
  auto map_udf = expr::MakeMapUdf({expr::Mul(expr::Field(0, ValueType::kInt64),
                                             expr::Lit(2))})
                     .ValueOrDie();
  auto* m = plan.Add<MapOp>({src}, map_udf);
  auto* f = plan.Add<FilterOp>(
      {m}, ExprPred(expr::Gt(expr::Field(0, ValueType::kInt64),
                             expr::Lit(5))));
  plan.SetSink(plan.Add<CollectOp>({f}));
  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_pushed_project, 0);
}

TEST(RewritesTest, PushesDeclarativeConjunctsIntoJoinInputs) {
  Plan plan;
  auto* left = plan.Add<CollectionSourceOp>({}, Pairs(30));   // width 2
  auto* right = plan.Add<CollectionSourceOp>({}, Pairs(30));  // width 2
  auto lk = expr::MakeKeyUdf(expr::Field(0, ValueType::kInt64)).ValueOrDie();
  auto rk = expr::MakeKeyUdf(expr::Field(0, ValueType::kInt64)).ValueOrDie();
  auto* j = plan.Add<JoinOp>({left, right}, lk, rk);
  // left-only AND right-only AND straddling conjuncts.
  auto pred = expr::And(
      expr::And(
          expr::Gt(expr::Field(1, ValueType::kInt64), expr::Lit(40)),     // left
          expr::Lt(expr::Field(3, ValueType::kInt64), expr::Lit(250))),   // right
      expr::Gt(expr::Add(expr::Field(0, ValueType::kInt64),
                         expr::Field(1, ValueType::kInt64)),
               expr::Field(2, ValueType::kInt64)));  // straddles: stays above
  auto* f = plan.Add<FilterOp>({j}, ExprPred(pred));
  plan.SetSink(plan.Add<CollectOp>({f}));
  const Dataset before = EvalPlan(plan);

  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_pushed_join, 2);  // one conjunct per side
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_EQ(AsMultiset(EvalPlan(plan)), AsMultiset(before));

  // Structure: residual filter above the join, one filter below each input.
  auto* residual = dynamic_cast<FilterOp*>(plan.sink()->inputs()[0]);
  ASSERT_NE(residual, nullptr);
  auto* new_join = dynamic_cast<JoinOp*>(residual->inputs()[0]);
  ASSERT_NE(new_join, nullptr);
  auto* lf = dynamic_cast<FilterOp*>(new_join->inputs()[0]);
  auto* rf = dynamic_cast<FilterOp*>(new_join->inputs()[1]);
  ASSERT_NE(lf, nullptr);
  ASSERT_NE(rf, nullptr);
  // The right-side conjunct was shifted into the right input's layout.
  ASSERT_NE(rf->udf().expr, nullptr);
  EXPECT_EQ(expr::MaxFieldIndex(*rf->udf().expr), 1);
}

TEST(RewritesTest, ClosureFiltersAreNotPushed) {
  // Same shape as the join test but with an opaque closure: no introspection,
  // no pushdown.
  Plan plan;
  auto* left = plan.Add<CollectionSourceOp>({}, Pairs(10));
  auto* right = plan.Add<CollectionSourceOp>({}, Pairs(10));
  KeyUdf k;
  k.fn = [](const Record& r) { return r[0]; };
  auto* j = plan.Add<JoinOp>({left, right}, k, k);
  auto* f = plan.Add<FilterOp>(
      {j}, Pred(0.5, 1.0,
                [](const Record& r) { return r[1].ToInt64Or(0) > 40; }));
  plan.SetSink(plan.Add<CollectOp>({f}));
  std::map<int, std::string> pins;
  auto stats = ApplicationRewrites::Apply(&plan, &pins);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filters_pushed_join, 0);
  EXPECT_EQ(stats->conjuncts_split, 0);
}

}  // namespace
}  // namespace rheem

// Shared random-plan generator for the differential fuzz and chaos suites.
// A plan is a pure function of its tape seed, so any failure in any suite
// replays from one number (RHEEM_FUZZ_SEED / RHEEM_FAULT_SEED).
#ifndef RHEEM_TESTS_CORE_RANDOM_PLANS_H_
#define RHEEM_TESTS_CORE_RANDOM_PLANS_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/api/data_quanta.h"
#include "core/expr/expr.h"
#include "core/operators/descriptors.h"

namespace rheem {
namespace testutil {

inline std::multiset<std::string> AsMultiset(const Dataset& d) {
  std::multiset<std::string> out;
  for (const Record& r : d.records()) out.insert(r.ToString());
  return out;
}

/// Value of the named env var, or 0 when unset.
inline uint64_t EnvU64(const char* name) {
  const char* s = std::getenv(name);
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 0;
}

/// True (and *seed set) when the named replay env var is present.
inline bool EnvReplaySeed(const char* name, uint64_t* seed) {
  const char* s = std::getenv(name);
  if (s == nullptr) return false;
  *seed = std::strtoull(s, nullptr, 10);
  return true;
}

/// Random (key:int64, value:int64) dataset.
inline Dataset RandomPairs(Rng* rng, int max_rows) {
  const int rows = 1 + static_cast<int>(rng->NextBounded(
                           static_cast<uint64_t>(max_rows)));
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    out.push_back(
        Record({Value(rng->NextInt(0, 15)), Value(rng->NextInt(-100, 100))}));
  }
  return Dataset(std::move(out));
}

/// Appends 1..6 random operators to `q`, keeping the (key, value) shape
/// invariant so every operator remains applicable.
///
/// `order_stable` tracks whether the pipeline's element order is still the
/// same on every platform (narrow order-preserving ops only). Sample's keep
/// decision is a function of global element position, so it is only a fair
/// differential case while order is stable; afterwards the generator
/// substitutes a deterministic Map to keep the random tape aligned.
inline DataQuanta RandomPipeline(Rng* rng, RheemJob* job, DataQuanta q) {
  const int steps = 1 + static_cast<int>(rng->NextBounded(6));
  bool order_stable = true;
  for (int s = 0; s < steps; ++s) {
    switch (rng->NextBounded(12)) {
      case 0:
        q = q.Map([](const Record& r) {
          return Record({r[0], Value(r[1].ToInt64Or(0) + 1)});
        });
        break;
      case 1: {
        const int64_t threshold = rng->NextInt(-50, 50);
        q = q.Filter([threshold](const Record& r) {
          return r[1].ToInt64Or(0) >= threshold;
        });
        break;
      }
      case 2:
        q = q.FlatMap([](const Record& r) {
          std::vector<Record> out{r};
          if (r[1].ToInt64Or(0) % 2 == 0) {
            out.push_back(Record({r[0], Value(r[1].ToInt64Or(0) / 2)}));
          }
          return out;
        });
        break;
      case 3:
        q = q.Distinct();
        order_stable = false;
        break;
      case 4:
        q = q.Sort([](const Record& r) { return r[1]; });
        order_stable = false;  // ties may gather in platform-dependent order
        break;
      case 5:
        q = q.ReduceByKey(
            [](const Record& r) { return r[0]; },
            [](const Record& a, const Record& b) {
              return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
            });
        order_stable = false;
        break;
      case 6:
        q = q.Union(job->LoadCollection(RandomPairs(rng, 50)));
        order_stable = false;
        break;
      case 7:
        // Total key (no cross-record ties): platforms may order equal keys
        // differently, which would be a legal divergence, not a bug.
        q = q.TopK(1 + static_cast<int64_t>(rng->NextBounded(20)),
                   [](const Record& r) {
                     return Value(r[1].ToInt64Or(0) * 16 + r[0].ToInt64Or(0));
                   },
                   rng->NextBool());
        order_stable = false;
        break;
      case 8:
        q = q.GroupByKey(
            [](const Record& r) { return r[0]; },
            [](const Value& key, const std::vector<Record>& members) {
              return std::vector<Record>{Record(
                  {key, Value(static_cast<int64_t>(members.size()))})};
            });
        order_stable = false;
        break;
      case 9: {
        // Equi-join against a small random build side. Join output is the
        // concatenation (lk, lv, rk, rv); fold back to the 2-field shape.
        DataQuanta side = job->LoadCollection(RandomPairs(rng, 20));
        q = q.Join(
                 side, [](const Record& r) { return r[0]; },
                 [](const Record& r) { return r[0]; })
                .Map([](const Record& r) {
                  return Record({r[0], Value(r[1].ToInt64Or(0) * 7 +
                                             r[3].ToInt64Or(0))});
                });
        order_stable = false;
        break;
      }
      case 10: {
        // CoGroup: tag each side with a marker column, union, and group by
        // key with an order-insensitive combine (member order inside a group
        // is platform-dependent, so the aggregate must not depend on it).
        DataQuanta side = job->LoadCollection(RandomPairs(rng, 30));
        DataQuanta left = q.Map([](const Record& r) {
          return Record({r[0], r[1], Value(static_cast<int64_t>(0))});
        });
        DataQuanta right = side.Map([](const Record& r) {
          return Record({r[0], r[1], Value(static_cast<int64_t>(1))});
        });
        q = left.Union(right).GroupByKey(
            [](const Record& r) { return r[0]; },
            [](const Value& key, const std::vector<Record>& members) {
              int64_t left_sum = 0, right_sum = 0;
              int64_t left_n = 0, right_n = 0;
              for (const Record& m : members) {
                if (m[2].ToInt64Or(0) == 0) {
                  left_sum += m[1].ToInt64Or(0);
                  ++left_n;
                } else {
                  right_sum += m[1].ToInt64Or(0);
                  ++right_n;
                }
              }
              return std::vector<Record>{
                  Record({key, Value(left_sum * 31 + right_sum + left_n * 7 +
                                     right_n)})};
            });
        order_stable = false;
        break;
      }
      default: {
        const double fraction =
            0.2 + 0.05 * static_cast<double>(rng->NextBounded(13));
        const uint64_t sample_seed = rng->NextU64();
        if (order_stable) {
          q = q.Sample(fraction, sample_seed);
        } else {
          // Same tape draws, deterministic substitute.
          q = q.Map([](const Record& r) {
            return Record({r[0], Value(r[1].ToInt64Or(0) ^ 1)});
          });
        }
        break;
      }
    }
  }
  return q;
}

// --- random well-typed expressions ------------------------------------------
//
// Each generator returns the same random predicate in two *independent*
// representations: a typed expression tree and a native closure composed of
// plain C++ lambdas. The closure never calls the expression interpreter, so a
// differential run pits the declarative path (conjunct splitting, push-down
// rewrites, batch evaluation, fingerprint folding) against straight
// record-at-a-time C++. Generation draws the same tape values regardless of
// which representation the caller ends up using.
//
// All expressions address the 2-field (key:int64, value:int64) shape and use
// only +, -, * and comparisons, so no SQL Nulls can arise and the closure's
// two-valued &&/||/! agrees with the tree's three-valued Kleene logic.

struct GeneratedScalar {
  expr::ExprPtr tree;
  std::function<int64_t(const Record&)> fn;
};

struct GeneratedPredicate {
  expr::ExprPtr tree;
  std::function<bool(const Record&)> fn;
};

inline GeneratedScalar RandomScalarExpr(Rng* rng, int depth) {
  const uint64_t pick = rng->NextBounded(depth <= 0 ? 2 : 5);
  switch (pick) {
    case 0: {
      const int f = static_cast<int>(rng->NextBounded(2));
      return {expr::Field(f, ValueType::kInt64),
              [f](const Record& r) { return r[f].ToInt64Or(0); }};
    }
    case 1: {
      const int64_t c = rng->NextInt(-8, 8);
      return {expr::Lit(c), [c](const Record&) { return c; }};
    }
    default: {
      const GeneratedScalar l = RandomScalarExpr(rng, depth - 1);
      const GeneratedScalar r = RandomScalarExpr(rng, depth - 1);
      if (pick == 2) {
        return {expr::Add(l.tree, r.tree),
                [l, r](const Record& rec) { return l.fn(rec) + r.fn(rec); }};
      }
      if (pick == 3) {
        return {expr::Sub(l.tree, r.tree),
                [l, r](const Record& rec) { return l.fn(rec) - r.fn(rec); }};
      }
      return {expr::Mul(l.tree, r.tree),
              [l, r](const Record& rec) { return l.fn(rec) * r.fn(rec); }};
    }
  }
}

inline GeneratedPredicate RandomPredicateExpr(Rng* rng, int depth) {
  const uint64_t pick = rng->NextBounded(depth <= 0 ? 1 : 4);
  if (pick == 0) {
    const GeneratedScalar l = RandomScalarExpr(rng, 1);
    const GeneratedScalar r = RandomScalarExpr(rng, 1);
    switch (rng->NextBounded(6)) {
      case 0:
        return {expr::Eq(l.tree, r.tree),
                [l, r](const Record& x) { return l.fn(x) == r.fn(x); }};
      case 1:
        return {expr::Ne(l.tree, r.tree),
                [l, r](const Record& x) { return l.fn(x) != r.fn(x); }};
      case 2:
        return {expr::Lt(l.tree, r.tree),
                [l, r](const Record& x) { return l.fn(x) < r.fn(x); }};
      case 3:
        return {expr::Le(l.tree, r.tree),
                [l, r](const Record& x) { return l.fn(x) <= r.fn(x); }};
      case 4:
        return {expr::Gt(l.tree, r.tree),
                [l, r](const Record& x) { return l.fn(x) > r.fn(x); }};
      default:
        return {expr::Ge(l.tree, r.tree),
                [l, r](const Record& x) { return l.fn(x) >= r.fn(x); }};
    }
  }
  const GeneratedPredicate a = RandomPredicateExpr(rng, depth - 1);
  if (pick == 3) {
    return {expr::Not(a.tree), [a](const Record& x) { return !a.fn(x); }};
  }
  const GeneratedPredicate b = RandomPredicateExpr(rng, depth - 1);
  if (pick == 1) {
    return {expr::And(a.tree, b.tree),
            [a, b](const Record& x) { return a.fn(x) && b.fn(x); }};
  }
  return {expr::Or(a.tree, b.tree),
          [a, b](const Record& x) { return a.fn(x) || b.fn(x); }};
}

/// Declarative/closure twin pipeline: appends 1..5 steps, each drawn once
/// from the tape and applied either through the declarative expression
/// overloads (`declarative` true) or through independently-written closures
/// with identical semantics. Both modes consume identical tape draws, so a
/// (seed, declarative) pair fully determines the plan — and the two modes of
/// one seed must be bag-equal on every platform. Step kinds are chosen so the
/// declarative rewrites actually fire: conjunctive filters (split + reorder),
/// filters above pass-through projections (push below map), post-join
/// filters over left-side fields (push into join input), and declarative
/// key aggregations (the kernels' columnar reduce path).
inline DataQuanta RandomExprPipeline(Rng* rng, RheemJob* job, DataQuanta q,
                                     bool declarative) {
  const int steps = 1 + static_cast<int>(rng->NextBounded(5));
  for (int s = 0; s < steps; ++s) {
    switch (rng->NextBounded(6)) {
      case 0: {  // random predicate filter
        const GeneratedPredicate p = RandomPredicateExpr(rng, 2);
        q = declarative ? q.Filter(p.tree) : q.Filter(p.fn);
        break;
      }
      case 1: {  // conjunctive filter: splits and reorders when declarative
        const GeneratedPredicate a = RandomPredicateExpr(rng, 0);
        const GeneratedPredicate b = RandomPredicateExpr(rng, 0);
        if (declarative) {
          q = q.Filter(expr::And(a.tree, b.tree));
        } else {
          q = q.Filter(
              [a, b](const Record& r) { return a.fn(r) && b.fn(r); });
        }
        break;
      }
      case 2: {  // pass-through projection, then filter: push-below-map case
        const GeneratedPredicate p = RandomPredicateExpr(rng, 1);
        if (declarative) {
          std::vector<expr::ExprPtr> fields;
          fields.push_back(expr::Field(0, ValueType::kInt64));
          fields.push_back(expr::Field(1, ValueType::kInt64));
          q = q.Map(std::move(fields)).Filter(p.tree);
        } else {
          q = q.Map([](const Record& r) { return Record({r[0], r[1]}); })
                  .Filter(p.fn);
        }
        break;
      }
      case 3: {  // projection map (key, value + c)
        const int64_t c = rng->NextInt(-10, 10);
        if (declarative) {
          std::vector<expr::ExprPtr> fields;
          fields.push_back(expr::Field(0, ValueType::kInt64));
          fields.push_back(
              expr::Add(expr::Field(1, ValueType::kInt64), expr::Lit(c)));
          q = q.Map(std::move(fields));
        } else {
          q = q.Map([c](const Record& r) {
            return Record({r[0], Value(r[1].ToInt64Or(0) + c)});
          });
        }
        break;
      }
      case 4: {  // key aggregation: declarative agg spec vs hand-written combine.
        // The declarative form goes through MakeAggReduceUdf (fingerprint
        // folding + the kernels' columnar accumulators); the closure twin is
        // straight int64 arithmetic. Both see only int64 non-null values, so
        // CombineAgg's widening/null branches never fire and the two must
        // agree value-for-value.
        const uint64_t agg = rng->NextBounded(3);
        if (declarative) {
          const AggKind kind = agg == 0   ? AggKind::kSum
                               : agg == 1 ? AggKind::kMin
                                          : AggKind::kMax;
          q = q.ReduceByKey(expr::Field(0, ValueType::kInt64),
                            {{0, AggKind::kFirst}, {1, kind}});
        } else {
          q = q.ReduceByKey(
              [](const Record& r) { return r[0]; },
              [agg](const Record& a, const Record& b) {
                const int64_t x = a[1].ToInt64Or(0);
                const int64_t y = b[1].ToInt64Or(0);
                const int64_t v = agg == 0   ? x + y
                                  : agg == 1 ? std::min(x, y)
                                             : std::max(x, y);
                return Record({a[0], Value(v)});
              });
        }
        break;
      }
      default: {  // equi-join + post-join filter on left fields: join pushdown
        DataQuanta side = job->LoadCollection(RandomPairs(rng, 20));
        const GeneratedPredicate p = RandomPredicateExpr(rng, 1);
        DataQuanta joined =
            declarative
                ? q.Join(side, expr::Field(0, ValueType::kInt64),
                         expr::Field(0, ValueType::kInt64))
                : q.Join(
                      side, [](const Record& r) { return r[0]; },
                      [](const Record& r) { return r[0]; });
        joined = declarative ? joined.Filter(p.tree) : joined.Filter(p.fn);
        q = joined.Map([](const Record& r) {
          return Record(
              {r[0], Value(r[1].ToInt64Or(0) * 7 + r[3].ToInt64Or(0))});
        });
        break;
      }
    }
  }
  return q;
}

// --- SQL twin pipelines ------------------------------------------------------
//
// RandomSqlTwin returns the same random query in two *independent*
// representations: SQL text (compiled through the core/sql frontend) and a
// hand-built closure pipeline that never touches the SQL frontend or the
// expression IR. A differential run pits the whole tokenizer → parser →
// analyzer → plan-compiler stack against straight DataQuanta calls.
//
// Every step keeps a 2-column (k, v) int64 shape with k in [0, 15] — k is
// loaded in that range and no step rewrites it — so the terminal
// `ORDER BY v * 16 + k LIMIT n` sorts by a key that differs between any two
// distinct records: which rows survive the LIMIT is platform-independent,
// keeping bag-equality a sound oracle.

inline Schema PairSchema() {
  return Schema::Of({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
}

struct SqlTwinCase {
  std::string sql;
  /// Tables the SQL references (register in the catalog before compiling).
  std::vector<std::pair<std::string, Dataset>> tables;
  /// The independently-built pipeline with identical semantics.
  std::function<DataQuanta(RheemJob*)> hand;
};

inline SqlTwinCase RandomSqlTwin(Rng* rng) {
  SqlTwinCase out;
  Dataset base = RandomPairs(rng, 200);
  base.set_schema(PairSchema());
  out.tables.emplace_back("t0", base);
  out.sql = "SELECT * FROM t0";
  std::function<DataQuanta(RheemJob*)> hand = [base](RheemJob* job) {
    return job->LoadCollection(base);
  };
  int side_id = 0;
  const int steps = 1 + static_cast<int>(rng->NextBounded(4));
  for (int s = 0; s < steps; ++s) {
    switch (rng->NextBounded(5)) {
      case 0: {  // WHERE over a random predicate, rendered by expr::Pretty
        const GeneratedPredicate p = RandomPredicateExpr(rng, 2);
        out.sql =
            "SELECT * FROM (" + out.sql + ") WHERE " + expr::Pretty(*p.tree);
        auto prev = hand;
        hand = [prev, p](RheemJob* job) { return prev(job).Filter(p.fn); };
        break;
      }
      case 1: {  // projection k, v + c
        const int64_t c = rng->NextInt(-10, 10);
        out.sql = "SELECT k, v + (" + std::to_string(c) + ") AS v FROM (" +
                  out.sql + ")";
        auto prev = hand;
        hand = [prev, c](RheemJob* job) {
          return prev(job).Map([c](const Record& r) {
            return Record({r[0], Value(r[1].ToInt64Or(0) + c)});
          });
        };
        break;
      }
      case 2: {  // JOIN: equi, equi + residual conjunct, or pure theta
        const uint64_t kind = rng->NextBounded(3);
        // Theta output grows ~|q| * |side| / 2; keep that side small.
        Dataset side = RandomPairs(rng, kind == 2 ? 8 : 20);
        side.set_schema(PairSchema());
        const std::string sname = "s" + std::to_string(side_id++);
        out.tables.emplace_back(sname, side);
        auto prev = hand;
        if (kind != 2) {
          out.sql = "SELECT t.k AS k, t.v * 7 + s.v AS v FROM (" + out.sql +
                    ") AS t JOIN " + sname + " AS s ON t.k = s.k" +
                    (kind == 1 ? " AND t.v <= s.v" : "");
          const bool residual = kind == 1;
          hand = [prev, side, residual](RheemJob* job) {
            DataQuanta sq = job->LoadCollection(side);
            DataQuanta joined = prev(job).Join(
                sq, [](const Record& r) { return r[0]; },
                [](const Record& r) { return r[0]; });
            if (residual) {
              joined = joined.Filter([](const Record& r) {
                return r[1].ToInt64Or(0) <= r[3].ToInt64Or(0);
              });
            }
            return joined.Map([](const Record& r) {
              return Record(
                  {r[0], Value(r[1].ToInt64Or(0) * 7 + r[3].ToInt64Or(0))});
            });
          };
        } else {
          out.sql = "SELECT t.k AS k, t.v * 7 + s.v AS v FROM (" + out.sql +
                    ") AS t JOIN " + sname + " AS s ON t.k < s.k";
          hand = [prev, side](RheemJob* job) {
            DataQuanta sq = job->LoadCollection(side);
            return prev(job)
                .ThetaJoin(sq,
                           [](const Record& a, const Record& b) {
                             return a[0].ToInt64Or(0) < b[0].ToInt64Or(0);
                           })
                .Map([](const Record& r) {
                  return Record(
                      {r[0], Value(r[1].ToInt64Or(0) * 7 + r[3].ToInt64Or(0))});
                });
          };
        }
        break;
      }
      case 3: {  // GROUP BY k with one aggregate
        const uint64_t agg = rng->NextBounded(4);
        const char* fn = agg == 0   ? "SUM(v)"
                         : agg == 1 ? "MIN(v)"
                         : agg == 2 ? "MAX(v)"
                                    : "COUNT(*)";
        out.sql = std::string("SELECT k, ") + fn + " AS v FROM (" + out.sql +
                  ") GROUP BY k";
        auto prev = hand;
        hand = [prev, agg](RheemJob* job) {
          DataQuanta q = prev(job);
          if (agg == 3) {  // COUNT(*): sum a column of ones
            q = q.Map([](const Record& r) {
              return Record({r[0], Value(static_cast<int64_t>(1))});
            });
          }
          return q.ReduceByKey(
              [](const Record& r) { return r[0]; },
              [agg](const Record& a, const Record& b) {
                const int64_t x = a[1].ToInt64Or(0);
                const int64_t y = b[1].ToInt64Or(0);
                const int64_t v = agg == 1   ? std::min(x, y)
                                  : agg == 2 ? std::max(x, y)
                                             : x + y;  // SUM and COUNT(*)
                return Record({a[0], Value(v)});
              });
        };
        break;
      }
      default: {
        out.sql = "SELECT DISTINCT k, v FROM (" + out.sql + ")";
        auto prev = hand;
        hand = [prev](RheemJob* job) { return prev(job).Distinct(); };
        break;
      }
    }
  }
  const int64_t n = 1 + static_cast<int64_t>(rng->NextBounded(20));
  const bool asc = rng->NextBool();
  out.sql = "SELECT * FROM (" + out.sql + ") ORDER BY v * 16 + k " +
            (asc ? "ASC" : "DESC") + " LIMIT " + std::to_string(n);
  auto prev = hand;
  hand = [prev, n, asc](RheemJob* job) {
    return prev(job).TopK(
        n,
        [](const Record& r) {
          return Value(r[1].ToInt64Or(0) * 16 + r[0].ToInt64Or(0));
        },
        asc);
  };
  out.hand = hand;
  return out;
}

}  // namespace testutil
}  // namespace rheem

#endif  // RHEEM_TESTS_CORE_RANDOM_PLANS_H_

// Chaos differential harness: randomly generated plans are executed once
// fault-free (the reference) and once under a randomized-but-survivable
// fault schedule drawn from the same seed. The chaos run must succeed, be
// bag-equal with the reference, and reconcile exactly — every fired fault
// shows up as exactly one recorded retry somewhere (stage retry, sparksim
// task retry, or a storage-read retry absorbed inside Load), movement totals
// are charged once per edge no matter how many attempts ran, and no
// spurious failover is declared.
//
// Survivability is by construction: every spec carries a finite fire limit
// sized within its layer's retry budget (see InstallSchedule), so a chaos
// failure is a recovery bug, never schedule bad luck.
//
// Every failure message carries the round's seed. To replay one round,
// re-run with RHEEM_FAULT_SEED=<seed> (one round, that exact plan and
// schedule). CI rotates coverage across runs via RHEEM_FUZZ_SEED_OFFSET,
// shared with the fuzz suite.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/api/data_quanta.h"
#include "random_plans.h"

namespace rheem {
namespace {

using testutil::AsMultiset;
using testutil::RandomPairs;
using testutil::RandomPipeline;

int64_t Delta(const MetricsSnapshot& before, const MetricsSnapshot& after,
              const std::string& name) {
  return after.counter(name) - before.counter(name);
}

/// Draws one trigger from the schedule tape. Whatever the kind, `limit`
/// bounds total fires — the survivability guarantee does not depend on
/// where nth/every-k/probability hits land.
FaultTrigger RandomTrigger(Rng* sched, int64_t limit) {
  switch (sched->NextBounded(3)) {
    case 0:
      return FaultTrigger::Nth(
          1 + static_cast<int64_t>(sched->NextBounded(8)), limit);
    case 1:
      return FaultTrigger::EveryK(
          1 + static_cast<int64_t>(sched->NextBounded(3)), limit);
    default:
      return FaultTrigger::Probability(
          0.05 + 0.1 * static_cast<double>(sched->NextBounded(5)), limit);
  }
}

/// Installs a randomized fault schedule whose specs are survivable by
/// construction:
///  - executor-level sites (stage_attempt, boundary_convert) share one
///    stage's spare attempts (executor.max_retries = 2), so their limits
///    sum to at most 2 even if every fire lands on the same stage;
///  - pool.task_start fires are absorbed by sparksim's per-task budget
///    (sparksim.task_retries = 3): limits sum to at most 3;
///  - storage.read is retried inside StorageManager::Load (2 retries):
///    limit at most 2. Collection-fed plans never read through the
///    StorageManager, so these specs stay dormant here — registered anyway
///    to exercise the site bookkeeping under load.
void InstallSchedule(Rng* sched) {
  FaultInjector& inj = FaultInjector::Global();
  if (sched->NextBool()) {
    const char* site = sched->NextBool() ? "executor.stage_attempt"
                                         : "executor.boundary_convert";
    EXPECT_TRUE(inj.AddSpec(site, RandomTrigger(sched, 2)).ok());
  } else {
    // First attempts only vs. any attempt: either way each spec fires at
    // most once, so the executor-level total stays within budget.
    const std::string match = sched->NextBool() ? "attempt=0" : "";
    EXPECT_TRUE(
        inj.AddSpec("executor.stage_attempt", RandomTrigger(sched, 1), match)
            .ok());
    EXPECT_TRUE(
        inj.AddSpec("executor.boundary_convert", RandomTrigger(sched, 1))
            .ok());
  }
  if (sched->NextBool()) {
    EXPECT_TRUE(
        inj.AddSpec("pool.task_start",
                    RandomTrigger(
                        sched, 1 + static_cast<int64_t>(sched->NextBounded(3))))
            .ok());
  }
  if (sched->NextBounded(4) == 0) {
    EXPECT_TRUE(inj.AddSpec("storage.read", RandomTrigger(sched, 2)).ok());
  }
}

/// Chaos rounds run one seed's plan twice (reference, then chaos) and assert
/// identical stage topology via movement totals — so the shared context must
/// not learn between the runs: a statistics-catalog hit on the second
/// compilation could legally re-place operators. Learning under faults is
/// exercised by the re-optimization interplay suite below with per-run
/// contexts.
inline Config NoLearningConfig() {
  Config config;
  config.SetBool("stats.enabled", false);
  return config;
}

class ChaosTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok());
    MetricsRegistry::Global().Reset();
    MetricsRegistry::Global().set_enabled(true);
    FaultInjector::Global().set_enabled(false);
    FaultInjector::Global().Clear();
  }
  void TearDown() override {
    FaultInjector::Global().set_enabled(false);
    FaultInjector::Global().Clear();
    MetricsRegistry::Global().set_enabled(false);
  }

  /// One deterministic plan per seed, optimizer free to place it.
  Result<ExecutionResult> RunPlan(uint64_t seed) {
    Rng tape(seed);
    RheemJob job(&ctx_);
    DataQuanta q = job.LoadCollection(RandomPairs(&tape, 200));
    q = RandomPipeline(&tape, &job, q);
    return q.CollectWithMetrics();
  }

  RheemContext ctx_{NoLearningConfig()};
};

// 16 shards x 32 rounds = 512 random plans, each run fault-free and then
// under a randomized survivable fault schedule.
TEST_P(ChaosTest, FaultSchedulePreservesResultsAndReconciles) {
  uint64_t replay = 0;
  const bool has_replay = testutil::EnvReplaySeed("RHEEM_FAULT_SEED", &replay);
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761 + 11 +
          testutil::EnvU64("RHEEM_FUZZ_SEED_OFFSET"));
  const int rounds = has_replay ? 1 : 32;
  FaultInjector& inj = FaultInjector::Global();
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = has_replay ? replay : rng.NextU64();

    inj.set_enabled(false);
    inj.Clear();
    const MetricsSnapshot s0 = MetricsRegistry::Global().Snapshot();
    auto reference = RunPlan(seed);
    ASSERT_TRUE(reference.ok())
        << "fault-free run failed; replay with RHEEM_FAULT_SEED=" << seed
        << ": " << reference.status().ToString();
    const auto expect = AsMultiset(reference->output);
    const MetricsSnapshot s1 = MetricsRegistry::Global().Snapshot();

    inj.Seed(seed);
    Rng sched(seed ^ 0x9e3779b97f4a7c15ULL);
    InstallSchedule(&sched);
    inj.set_enabled(true);
    auto chaos = RunPlan(seed);
    inj.set_enabled(false);
    const MetricsSnapshot s2 = MetricsRegistry::Global().Snapshot();

    ASSERT_TRUE(chaos.ok())
        << "chaos run failed (schedule should be survivable); replay with "
        << "RHEEM_FAULT_SEED=" << seed << ": " << chaos.status().ToString();
    EXPECT_EQ(AsMultiset(chaos->output), expect)
        << "chaos run diverged; replay with RHEEM_FAULT_SEED=" << seed;

    // Reconciliation: every fired fault is exactly one failed attempt that
    // was retried and recovered — none leak, none double-count.
    const int64_t exec_fired = inj.fired("executor.stage_attempt") +
                               inj.fired("executor.boundary_convert");
    const int64_t pool_fired = inj.fired("pool.task_start");
    const int64_t storage_fired = inj.fired("storage.read");
    EXPECT_EQ(Delta(s1, s2, "executor.stage_failures_total"), exec_fired)
        << "stage failures != executor-level fires; replay with "
        << "RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(Delta(s1, s2, "executor.retries_total"), exec_fired)
        << "leaked stage retries; replay with RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(Delta(s1, s2, "sparksim.task_retries"), pool_fired)
        << "leaked task retries; replay with RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(Delta(s1, s2, "executor.retries_total") +
                  Delta(s1, s2, "sparksim.task_retries") + storage_fired,
              inj.total_fired())
        << "fires unaccounted for; replay with RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(chaos->metrics.retries, exec_fired + pool_fired)
        << "job retry total off; replay with RHEEM_FAULT_SEED=" << seed;

    // A survivable schedule must never escalate to failover.
    EXPECT_EQ(Delta(s1, s2, "executor.failovers_total"), 0)
        << "spurious failover; replay with RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(chaos->metrics.failovers, 0);

    // Movement is charged once per boundary edge however many attempts ran:
    // the retried run moves exactly what the fault-free run moved.
    EXPECT_EQ(chaos->metrics.moved_records, reference->metrics.moved_records)
        << "moved_records double-counted under retry; replay with "
        << "RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(chaos->metrics.moved_bytes, reference->metrics.moved_bytes)
        << "moved_bytes double-counted under retry; replay with "
        << "RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(Delta(s1, s2, "executor.moved_records_total"),
              Delta(s0, s1, "executor.moved_records_total"))
        << "registry moved_records drifted; replay with RHEEM_FAULT_SEED="
        << seed;
    EXPECT_EQ(Delta(s1, s2, "executor.moved_bytes_total"),
              Delta(s0, s1, "executor.moved_bytes_total"))
        << "registry moved_bytes drifted; replay with RHEEM_FAULT_SEED="
        << seed;

    inj.Clear();
  }
}

// Interplay of faults with the progressive re-optimization window: each
// round's plan opens with a filter whose selectivity hint lies by ~500x
// behind a pinned platform boundary, so the executor re-plans mid-job. The
// fault-free run is the reference; then the same seed runs (a) with stage
// attempts failing inside the re-optimization window — recovery must not
// change the re-plan trajectory, the results, or the movement totals (no
// double-charged moved_records/bytes across the re-plan) — and (b) with the
// re-enumeration itself fault-injected ("the re-optimizer dies mid-flight"),
// which must degrade to the static plan: same results, zero recorded
// re-optimizations, movement identical to a re-optimization-disabled run.
TEST_P(ChaosTest, FaultsInReoptimizationWindowPreserveResults) {
  uint64_t replay = 0;
  const bool has_replay = testutil::EnvReplaySeed("RHEEM_FAULT_SEED", &replay);
  Rng rng(static_cast<uint64_t>(GetParam()) * 87178291199 + 31 +
          testutil::EnvU64("RHEEM_FUZZ_SEED_OFFSET"));
  const int rounds = has_replay ? 1 : 8;
  FaultInjector& inj = FaultInjector::Global();

  // Per-run contexts so the reference cannot teach later runs this plan's
  // actual cardinalities (which would plan away the mis-estimate).
  auto run_lying = [&](uint64_t seed, int64_t max_reopts) {
    Config config = NoLearningConfig();
    config.SetBool("metrics.enabled", true);
    config.SetInt("executor.max_reoptimizations", max_reopts);
    // Serial stage execution: the re-plan pins whatever had completed when
    // the soft stop landed, so the cross-run movement/trajectory comparisons
    // below need deterministic stage completion order.
    config.SetBool("executor.parallel_stages", false);
    RheemContext ctx(config);
    EXPECT_TRUE(ctx.RegisterDefaultPlatforms().ok());
    Rng tape(seed);
    RheemJob job(&ctx);
    DataQuanta q = job.LoadCollection(RandomPairs(&tape, 200));
    q = q.Filter([](const Record&) { return true; }, UdfMeta{0.002, 1.0})
            .OnPlatform("javasim");
    q = q.Map([](const Record& r) { return Record({r[0], r[1]}); })
            .OnPlatform("sparksim");
    q = RandomPipeline(&tape, &job, q);
    return q.CollectWithMetrics();
  };

  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = has_replay ? replay : rng.NextU64();

    inj.set_enabled(false);
    inj.Clear();
    auto reference = run_lying(seed, 2);
    ASSERT_TRUE(reference.ok())
        << "fault-free run failed; replay with RHEEM_FAULT_SEED=" << seed
        << ": " << reference.status().ToString();
    const auto expect = AsMultiset(reference->output);

    // (a) Stage attempts fail during the job — including attempts of stages
    // scheduled after the re-plan. Two first-attempt failures stay within
    // every stage's retry budget and below the blackout threshold.
    inj.Clear();
    inj.Seed(seed);
    ASSERT_TRUE(inj.AddSpec("executor.stage_attempt",
                            FaultTrigger::EveryK(1, /*limit=*/2), "attempt=0")
                    .ok());
    inj.set_enabled(true);
    auto chaos = run_lying(seed, 2);
    inj.set_enabled(false);
    const int64_t attempt_fired = inj.fired("executor.stage_attempt");
    ASSERT_TRUE(chaos.ok())
        << "chaos run failed; replay with RHEEM_FAULT_SEED=" << seed << ": "
        << chaos.status().ToString();
    EXPECT_EQ(AsMultiset(chaos->output), expect)
        << "chaos run diverged; replay with RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(chaos->metrics.retries, attempt_fired)
        << "retries do not reconcile; replay with RHEEM_FAULT_SEED=" << seed;
    // Same re-plan trajectory as the fault-free run: retried attempts change
    // nothing the re-optimizer observes.
    EXPECT_EQ(chaos->metrics.reoptimizations,
              reference->metrics.reoptimizations)
        << "faults changed the re-plan; replay with RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(static_cast<int64_t>(chaos->decisions.size()),
              chaos->metrics.reoptimizations);
    // Movement charged once per boundary edge across retries AND the
    // re-plan: identical totals to the fault-free run.
    EXPECT_EQ(chaos->metrics.moved_records, reference->metrics.moved_records)
        << "moved_records double-charged in the re-optimization window; "
        << "replay with RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(chaos->metrics.moved_bytes, reference->metrics.moved_bytes)
        << "moved_bytes double-charged in the re-optimization window; "
        << "replay with RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(chaos->metrics.failovers, 0)
        << "spurious failover; replay with RHEEM_FAULT_SEED=" << seed;

    // (b) The re-enumeration itself dies every time it is attempted: the
    // job must carry on with the current plan and still finish correctly,
    // with the abandoned re-plans absent from decisions and metrics.
    inj.Clear();
    inj.Seed(seed);
    ASSERT_TRUE(
        inj.AddSpec("executor.reoptimize", FaultTrigger::EveryK(1)).ok());
    inj.set_enabled(true);
    auto abandoned = run_lying(seed, 2);
    inj.set_enabled(false);
    const int64_t reopt_fired = inj.fired("executor.reoptimize");
    ASSERT_TRUE(abandoned.ok())
        << "job failed when the re-optimizer died (must degrade, not fail); "
        << "replay with RHEEM_FAULT_SEED=" << seed << ": "
        << abandoned.status().ToString();
    EXPECT_EQ(AsMultiset(abandoned->output), expect)
        << "degraded run diverged; replay with RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(abandoned->metrics.reoptimizations, 0)
        << "abandoned re-plan was counted; replay with RHEEM_FAULT_SEED="
        << seed;
    EXPECT_TRUE(abandoned->decisions.empty());
    if (reference->metrics.reoptimizations > 0) {
      EXPECT_GE(reopt_fired, 1)
          << "re-optimize site never hit though the reference re-planned; "
          << "replay with RHEEM_FAULT_SEED=" << seed;
      EXPECT_NE(abandoned->report.find("re-optimization abandoned"),
                std::string::npos)
          << "abandoned re-plan missing from report; replay with "
          << "RHEEM_FAULT_SEED=" << seed;
    }

    // The degraded run executed the static plan throughout; its movement
    // must equal a run with re-optimization disabled outright.
    inj.Clear();
    auto static_run = run_lying(seed, 0);
    ASSERT_TRUE(static_run.ok())
        << "static run failed; replay with RHEEM_FAULT_SEED=" << seed << ": "
        << static_run.status().ToString();
    EXPECT_EQ(AsMultiset(static_run->output), expect);
    EXPECT_EQ(abandoned->metrics.moved_records,
              static_run->metrics.moved_records)
        << "degraded run moved different data than the static plan; replay "
        << "with RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(abandoned->metrics.moved_bytes, static_run->metrics.moved_bytes)
        << "degraded run moved different bytes than the static plan; replay "
        << "with RHEEM_FAULT_SEED=" << seed;
  }
  inj.Clear();
}

// The same seed replays to the same results and the same fire counts —
// the property the RHEEM_FAULT_SEED workflow depends on.
TEST_P(ChaosTest, ReplaySameSeedIsIdentical) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6700417 + 29 +
          testutil::EnvU64("RHEEM_FUZZ_SEED_OFFSET"));
  FaultInjector& inj = FaultInjector::Global();
  for (int round = 0; round < 4; ++round) {
    const uint64_t seed = rng.NextU64();
    auto chaos_run = [&]() {
      inj.set_enabled(false);
      inj.Clear();
      inj.Seed(seed);
      Rng sched(seed ^ 0x9e3779b97f4a7c15ULL);
      InstallSchedule(&sched);
      inj.set_enabled(true);
      auto out = RunPlan(seed);
      inj.set_enabled(false);
      return out;
    };
    auto first = chaos_run();
    const int64_t first_fired = inj.total_fired();
    ASSERT_TRUE(first.ok()) << "replay with RHEEM_FAULT_SEED=" << seed << ": "
                            << first.status().ToString();
    auto second = chaos_run();
    const int64_t second_fired = inj.total_fired();
    ASSERT_TRUE(second.ok()) << "replay with RHEEM_FAULT_SEED=" << seed << ": "
                             << second.status().ToString();
    EXPECT_EQ(AsMultiset(second->output), AsMultiset(first->output))
        << "replay diverged; RHEEM_FAULT_SEED=" << seed;
    EXPECT_EQ(second_fired, first_fired)
        << "replay fired a different fault count; RHEEM_FAULT_SEED=" << seed;
    inj.Clear();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace rheem

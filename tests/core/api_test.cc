#include "core/api/data_quanta.h"

#include <set>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "core/api/context.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

std::multiset<std::string> AsMultiset(const Dataset& d) {
  std::multiset<std::string> out;
  for (const Record& r : d.records()) out.insert(r.ToString());
  return out;
}

class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok());
  }
  RheemContext ctx_;
};

TEST_F(ApiTest, MapFilterCollect) {
  RheemJob job(&ctx_);
  auto out = job.LoadCollection(Numbers(10))
                 .Map([](const Record& r) {
                   return Record({Value(r[0].ToInt64Or(0) * 2)});
                 })
                 .Filter([](const Record& r) { return r[0].ToInt64Or(0) >= 10; },
                         UdfMeta::Selective(0.5))
                 .Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 5u);  // 10,12,14,16,18
}

TEST_F(ApiTest, WordCountPipeline) {
  std::vector<Record> lines;
  lines.push_back(Record({Value("the quick brown fox")}));
  lines.push_back(Record({Value("the lazy dog")}));
  lines.push_back(Record({Value("the fox")}));
  RheemJob job(&ctx_);
  auto out =
      job.LoadCollection(Dataset(std::move(lines)))
          .FlatMap(
              [](const Record& r) {
                std::vector<Record> words;
                std::string word;
                for (char c : r[0].string_unchecked() + " ") {
                  if (c == ' ') {
                    if (!word.empty()) {
                      words.push_back(Record({Value(word), Value(int64_t{1})}));
                    }
                    word.clear();
                  } else {
                    word += c;
                  }
                }
                return words;
              },
              UdfMeta::Selective(4.0))
          .ReduceByKey([](const Record& r) { return r[0]; },
                       [](const Record& a, const Record& b) {
                         return Record({a[0], Value(a[1].ToInt64Or(0) +
                                                    b[1].ToInt64Or(0))});
                       })
          .Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  std::map<std::string, int64_t> counts;
  for (const Record& r : out->records()) {
    counts[r[0].string_unchecked()] = r[1].ToInt64Or(0);
  }
  EXPECT_EQ(counts.at("the"), 3);
  EXPECT_EQ(counts.at("fox"), 2);
  EXPECT_EQ(counts.at("dog"), 1);
  EXPECT_EQ(counts.size(), 6u);
}

TEST_F(ApiTest, SameResultOnEveryPlatform) {
  auto run = [&](const std::string& platform) {
    RheemJob job(&ctx_);
    job.options().force_platform = platform;
    return job.LoadCollection(Numbers(100))
        .Filter([](const Record& r) { return r[0].ToInt64Or(0) % 3 == 0; })
        .Map([](const Record& r) {
          return Record({Value(r[0].ToInt64Or(0) * 10)});
        })
        .Distinct()
        .Sort([](const Record& r) { return r[0]; })
        .Collect();
  };
  auto java = run("javasim");
  auto spark = run("sparksim");
  ASSERT_TRUE(java.ok()) << java.status().ToString();
  ASSERT_TRUE(spark.ok()) << spark.status().ToString();
  EXPECT_EQ(AsMultiset(*java), AsMultiset(*spark));
  EXPECT_EQ(java->size(), 34u);
}

TEST_F(ApiTest, JoinAcrossTwoLoads) {
  RheemJob job(&ctx_);
  std::vector<Record> users, orders;
  users.push_back(Record({Value(1), Value("ada")}));
  users.push_back(Record({Value(2), Value("bob")}));
  orders.push_back(Record({Value(1), Value("book")}));
  orders.push_back(Record({Value(1), Value("pen")}));
  orders.push_back(Record({Value(3), Value("ghost")}));
  auto out = job.LoadCollection(Dataset(std::move(users)))
                 .Join(job.LoadCollection(Dataset(std::move(orders))),
                       [](const Record& r) { return r[0]; },
                       [](const Record& r) { return r[0]; })
                 .Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(out->at(0).size(), 4u);
}

TEST_F(ApiTest, UnionCrossCountGlobalReduce) {
  RheemJob job(&ctx_);
  auto a = job.LoadCollection(Numbers(3));
  auto b = job.LoadCollection(Numbers(4));
  auto unioned = a.Union(b).Count().Collect();
  ASSERT_TRUE(unioned.ok());
  EXPECT_EQ(unioned->at(0)[0], Value(int64_t{7}));

  RheemJob job2(&ctx_);
  auto crossed = job2.LoadCollection(Numbers(3))
                     .Cross(job2.LoadCollection(Numbers(4)))
                     .Count()
                     .Collect();
  ASSERT_TRUE(crossed.ok());
  EXPECT_EQ(crossed->at(0)[0], Value(int64_t{12}));

  RheemJob job3(&ctx_);
  auto sum = job3.LoadCollection(Numbers(10))
                 .GlobalReduce([](const Record& x, const Record& y) {
                   return Record({Value(x[0].ToInt64Or(0) + y[0].ToInt64Or(0))});
                 })
                 .Collect();
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->at(0)[0], Value(45));
}

TEST_F(ApiTest, ProjectAndZipWithId) {
  RheemJob job(&ctx_);
  std::vector<Record> rows;
  rows.push_back(Record({Value("a"), Value(1)}));
  rows.push_back(Record({Value("b"), Value(2)}));
  auto out = job.LoadCollection(Dataset(std::move(rows)))
                 .ZipWithId()
                 .Project({2, 0})
                 .Collect();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->at(0), Record({Value(int64_t{0}), Value("a")}));
  EXPECT_EQ(out->at(1), Record({Value(int64_t{1}), Value("b")}));
}

TEST_F(ApiTest, RepeatLoopAccumulates) {
  // State: single counter record; body adds the data count each iteration.
  RheemJob job(&ctx_);
  auto state = job.LoadCollection(Dataset(std::vector<Record>{
      Record({Value(int64_t{0})})}));
  auto data = job.LoadCollection(Numbers(5));
  auto out = state
                 .Repeat(4, data,
                         [](DataQuanta st, DataQuanta dt) {
                           auto count = dt.Count();
                           return st.BroadcastMap(
                               count, [](const Record& s, const Dataset& c) {
                                 return Record({Value(
                                     s[0].ToInt64Or(0) +
                                     c.at(0)[0].ToInt64Or(0))});
                               });
                         })
                 .Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->at(0)[0], Value(int64_t{20}));  // 4 iterations x 5 records
}

TEST_F(ApiTest, DoWhileStopsEarly) {
  RheemJob job(&ctx_);
  auto state = job.LoadCollection(Dataset(std::vector<Record>{
      Record({Value(int64_t{1})})}));
  auto data = job.LoadCollection(Numbers(1));
  auto out =
      state
          .DoWhile([](const Dataset& s, int) { return s.at(0)[0].ToInt64Or(0) < 100; },
                   /*max_iterations=*/50, data,
                   [](DataQuanta st, DataQuanta dt) {
                     (void)dt;
                     return st.Map([](const Record& s) {
                       return Record({Value(s[0].ToInt64Or(0) * 2)});
                     });
                   })
          .Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // 1 -> 2 -> ... doubles until >= 100: stops at 128.
  EXPECT_EQ(out->at(0)[0], Value(int64_t{128}));
}

TEST_F(ApiTest, OnPlatformPinsOperator) {
  RheemJob job(&ctx_);
  auto explain = job.LoadCollection(Numbers(10))
                     .Map([](const Record& r) { return r; })
                     .OnPlatform("sparksim")
                     .Explain();
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("sparksim"), std::string::npos);
}

TEST_F(ApiTest, ExplainShowsStagesWithoutExecuting) {
  RheemJob job(&ctx_);
  auto explain = job.LoadCollection(Numbers(3)).Explain();
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("stage 0"), std::string::npos);
  EXPECT_NE(explain->find("CollectionSource"), std::string::npos);
}

TEST_F(ApiTest, MetricsReportedOnCollect) {
  RheemJob job(&ctx_);
  job.options().force_platform = "sparksim";
  auto result = job.LoadCollection(Numbers(100))
                    .Map([](const Record& r) { return r; })
                    .CollectWithMetrics();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.sim_overhead_micros, 0);
  EXPECT_GT(result->metrics.tasks_launched, 0);
}

TEST_F(ApiTest, CollectInsideLoopBodyRejected) {
  RheemJob job(&ctx_);
  auto state = job.LoadCollection(Numbers(1));
  auto data = job.LoadCollection(Numbers(1));
  Status seen = Status::OK();
  auto out = state.Repeat(1, data, [&](DataQuanta st, DataQuanta dt) {
    (void)dt;
    auto inner = st.Collect();
    seen = inner.status();
    return st;
  });
  EXPECT_TRUE(seen.IsInvalidArgument());
  // The outer job still works.
  EXPECT_TRUE(out.Collect().ok());
}

TEST_F(ApiTest, SampleIsDeterministic) {
  RheemJob job1(&ctx_), job2(&ctx_);
  job1.options().force_platform = "javasim";
  job2.options().force_platform = "javasim";
  auto a = job1.LoadCollection(Numbers(1000)).Sample(0.2, 7).Collect();
  auto b = job2.LoadCollection(Numbers(1000)).Sample(0.2, 7).Collect();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(AsMultiset(*a), AsMultiset(*b));
  EXPECT_NEAR(static_cast<double>(a->size()), 200.0, 60.0);
}

TEST_F(ApiTest, GroupByKeyBothAlgorithmsAgree) {
  auto run = [&](GroupByAlgorithm alg) {
    RheemJob job(&ctx_);
    job.options().apply_logical_rewrites = false;
    return job.LoadCollection(Numbers(50))
        .GroupByKey(
            [](const Record& r) { return Value(r[0].ToInt64Or(0) % 5); },
            [](const Value& key, const std::vector<Record>& members) {
              return std::vector<Record>{Record(
                  {key, Value(static_cast<int64_t>(members.size()))})};
            },
            0.1, alg)
        .Collect();
  };
  auto hash = run(GroupByAlgorithm::kHash);
  auto sort = run(GroupByAlgorithm::kSort);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(sort.ok());
  EXPECT_EQ(AsMultiset(*hash), AsMultiset(*sort));
  EXPECT_EQ(hash->size(), 5u);
}

TEST_F(ApiTest, ThetaAndIEJoinAgreeOnInequalityPredicate) {
  std::vector<Record> rows;
  for (int i = 0; i < 30; ++i) {
    rows.push_back(Record({Value(i % 7), Value((30 - i) % 5)}));
  }
  Dataset data(rows);
  IEJoinSpec spec;
  spec.left_col1 = 0;
  spec.op1 = CompareOp::kGreater;
  spec.right_col1 = 0;
  spec.left_col2 = 1;
  spec.op2 = CompareOp::kLess;
  spec.right_col2 = 1;

  RheemJob job1(&ctx_);
  auto a = job1.LoadCollection(data);
  auto theta = a.ThetaJoin(a,
                           [](const Record& l, const Record& r) {
                             return l[0].Compare(r[0]) > 0 &&
                                    l[1].Compare(r[1]) < 0;
                           })
                 .Count()
                 .Collect();
  RheemJob job2(&ctx_);
  auto b = job2.LoadCollection(data);
  auto iejoin = b.IEJoin(b, spec).Count().Collect();
  ASSERT_TRUE(theta.ok()) << theta.status().ToString();
  ASSERT_TRUE(iejoin.ok()) << iejoin.status().ToString();
  EXPECT_EQ(theta->at(0)[0], iejoin->at(0)[0]);
}

TEST_F(ApiTest, EmptyDataQuantaRejected) {
  DataQuanta empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.Collect().ok());
  EXPECT_FALSE(empty.Explain().ok());
}

TEST_F(ApiTest, FailureInjectionThroughFaultInjector) {
  RheemJob job(&ctx_);
  FaultInjector::Global().Clear();
  FaultInjector::Global().Seed(1);
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.stage_attempt", FaultTrigger::Nth(1))
                  .ok());
  FaultInjector::Global().set_enabled(true);
  auto out = job.LoadCollection(Numbers(5)).Collect();
  const int64_t fired = FaultInjector::Global().fired("executor.stage_attempt");
  FaultInjector::Global().set_enabled(false);
  FaultInjector::Global().Clear();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(fired, 1);  // first attempt failed, the retry recovered
}

}  // namespace
}  // namespace rheem

#include "core/executor/executor.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "core/executor/execution_state.h"
#include "core/operators/physical_ops.h"
#include "core/optimizer/enumerator.h"
#include "platforms/javasim/javasim_platform.h"
#include "platforms/sparksim/sparksim_platform.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

MapUdf PlusOne() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    return Record({Value(r[0].ToInt64Or(0) + 1)});
  };
  return udf;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : java_(config_), spark_(config_) {}

  ExecutionPlan MakeCrossPlatformPlan(Plan* plan) {
    auto* src = plan->Add<CollectionSourceOp>({}, Numbers(10));
    auto* m1 = plan->Add<MapOp>({src}, PlusOne());
    auto* m2 = plan->Add<MapOp>({m1}, PlusOne());
    auto* sink = plan->Add<CollectOp>({m2});
    plan->SetSink(sink);
    PlatformAssignment a;
    a.by_op = {{src->id(), &java_}, {m1->id(), &java_},
               {m2->id(), &spark_}, {sink->id(), &spark_}};
    return StageSplitter::Split(*plan, std::move(a)).ValueOrDie();
  }

  Config config_;
  JavaSimPlatform java_;
  SparkSimPlatform spark_;
};

TEST_F(ExecutorTest, RunsTwoStagePlanAndMovesData) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  CrossPlatformExecutor executor;
  auto result = executor.Execute(eplan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->output.size(), 10u);
  EXPECT_EQ(result->output.at(0)[0], Value(2));  // 0 +1 +1
  EXPECT_EQ(result->metrics.stages_run, 2);
  EXPECT_EQ(result->metrics.moved_records, 10);
  EXPECT_GT(result->metrics.moved_bytes, 0);
}

TEST_F(ExecutorTest, BoundarySerializationCanBeDisabled) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  Config config;
  config.SetBool("executor.serialize_boundaries", false);
  CrossPlatformExecutor executor(config);
  auto result = executor.Execute(eplan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.size(), 10u);
  EXPECT_GT(result->metrics.moved_bytes, 0);  // still accounted
}

TEST_F(ExecutorTest, RetriesTransientFailures) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  CrossPlatformExecutor executor;
  // First two attempts of stage 0 fail; the third succeeds.
  FaultInjector::Global().Clear();
  FaultInjector::Global().Seed(1);
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.stage_attempt",
                           FaultTrigger::EveryK(1, /*max_fires=*/2),
                           "stage=0,")
                  .ok());
  FaultInjector::Global().set_enabled(true);
  ExecutionMonitor monitor;
  executor.set_monitor(&monitor);
  auto result = executor.Execute(eplan);
  FaultInjector::Global().set_enabled(false);
  FaultInjector::Global().Clear();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.retries, 2);
  EXPECT_EQ(monitor.failures(), 2);
  EXPECT_EQ(result->output.size(), 10u);
  EXPECT_NE(monitor.Report().find("FAIL"), std::string::npos);
}

TEST_F(ExecutorTest, GivesUpAfterMaxRetries) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  Config config;
  config.SetInt("executor.max_retries", 1);
  CrossPlatformExecutor executor(config);
  FaultInjector::Global().Clear();
  FaultInjector::Global().Seed(1);
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.stage_attempt", FaultTrigger::EveryK(1))
                  .ok());
  FaultInjector::Global().set_enabled(true);
  auto result = executor.Execute(eplan);
  FaultInjector::Global().set_enabled(false);
  FaultInjector::Global().Clear();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsExecutionError());
  EXPECT_NE(result.status().message().find("after 2 attempt"),
            std::string::npos);
}

TEST_F(ExecutorTest, EmptyPlanRejected) {
  CrossPlatformExecutor executor;
  ExecutionPlan empty;
  EXPECT_TRUE(executor.Execute(empty).status().IsInvalidPlan());
}

TEST_F(ExecutorTest, MonitorRecordsPerStage) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  CrossPlatformExecutor executor;
  ExecutionMonitor monitor;
  executor.set_monitor(&monitor);
  ASSERT_TRUE(executor.Execute(eplan).ok());
  ASSERT_EQ(monitor.records().size(), 2u);
  EXPECT_EQ(monitor.records()[0].platform, "javasim");
  EXPECT_EQ(monitor.records()[1].platform, "sparksim");
  EXPECT_TRUE(monitor.records()[0].succeeded);
  EXPECT_EQ(monitor.records()[1].output_records, 10);
}

TEST_F(ExecutorTest, DagParallelMatchesSerialOnDiamondPlan) {
  // src -> {m1, m2} -> union: the two middle stages are independent, so the
  // DAG scheduler may run them concurrently; results must match serial mode.
  auto build = [this](Plan* plan) {
    auto* src = plan->Add<CollectionSourceOp>({}, Numbers(10));
    auto* m1 = plan->Add<MapOp>({src}, PlusOne());
    MapUdf times2;
    times2.fn = [](const Record& r) {
      return Record({Value(r[0].ToInt64Or(0) * 2)});
    };
    auto* m2 = plan->Add<MapOp>({src}, times2);
    auto* u = plan->Add<UnionOp>(std::vector<Operator*>{m1, m2});
    auto* sink = plan->Add<CollectOp>({u});
    plan->SetSink(sink);
    PlatformAssignment a;
    a.by_op = {{src->id(), &java_}, {m1->id(), &java_},
               {m2->id(), &spark_}, {u->id(), &java_},
               {sink->id(), &java_}};
    return StageSplitter::Split(*plan, std::move(a)).ValueOrDie();
  };

  auto collect_sorted = [](const ExecutionResult& r) {
    std::vector<int64_t> values;
    for (const Record& rec : r.output.records()) {
      values.push_back(rec[0].ToInt64Or(-1));
    }
    std::sort(values.begin(), values.end());
    return values;
  };

  Plan parallel_plan;
  ExecutionPlan parallel_eplan = build(&parallel_plan);
  CrossPlatformExecutor parallel_exec;  // executor.parallel_stages defaults on
  auto parallel_result = parallel_exec.Execute(parallel_eplan);
  ASSERT_TRUE(parallel_result.ok()) << parallel_result.status().ToString();

  Plan serial_plan;
  ExecutionPlan serial_eplan = build(&serial_plan);
  Config config;
  config.SetBool("executor.parallel_stages", false);
  CrossPlatformExecutor serial_exec(config);
  auto serial_result = serial_exec.Execute(serial_eplan);
  ASSERT_TRUE(serial_result.ok()) << serial_result.status().ToString();

  EXPECT_EQ(parallel_result->output.size(), 20u);
  EXPECT_EQ(collect_sorted(*parallel_result), collect_sorted(*serial_result));
  EXPECT_EQ(parallel_result->metrics.stages_run,
            serial_result->metrics.stages_run);
}

TEST_F(ExecutorTest, CancelledTokenStopsBeforeFirstStage) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  CrossPlatformExecutor executor;
  CancelToken token;
  token.Cancel();
  StopCondition stop;
  stop.token = &token;
  executor.set_stop_condition(stop);
  auto result = executor.Execute(eplan);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

TEST_F(ExecutorTest, ExpiredDeadlineStopsExecution) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  CrossPlatformExecutor executor;
  StopCondition stop;
  stop.has_deadline = true;
  stop.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);
  executor.set_stop_condition(stop);
  auto result = executor.Execute(eplan);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST(ExecutionMonitorTest, ConcurrentRecordStageIsSafe) {
  ExecutionMonitor monitor;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&monitor, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        ExecutionMonitor::StageRecord record;
        record.stage_id = t;
        record.platform = "javasim";
        record.succeeded = (i % 2 == 0);
        record.error = record.succeeded ? "" : "boom";
        monitor.RecordStage(std::move(record));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(monitor.records().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(monitor.failures(), kThreads * kPerThread / 2);
  EXPECT_FALSE(monitor.Report().empty());
}

TEST(ExecutionStateTest, PutGetEvict) {
  ExecutionState state;
  EXPECT_FALSE(state.Get(1).ok());
  state.Put(1, Numbers(3));
  ASSERT_TRUE(state.Has(1));
  EXPECT_EQ((*state.Get(1))->size(), 3u);
  state.Evict(1);
  EXPECT_FALSE(state.Has(1));
  EXPECT_TRUE(state.Get(1).status().IsExecutionError());
}

}  // namespace
}  // namespace rheem

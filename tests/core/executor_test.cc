#include "core/executor/executor.h"

#include <gtest/gtest.h>

#include "core/executor/execution_state.h"
#include "core/operators/physical_ops.h"
#include "core/optimizer/enumerator.h"
#include "platforms/javasim/javasim_platform.h"
#include "platforms/sparksim/sparksim_platform.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

MapUdf PlusOne() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    return Record({Value(r[0].ToInt64Or(0) + 1)});
  };
  return udf;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : java_(config_), spark_(config_) {}

  ExecutionPlan MakeCrossPlatformPlan(Plan* plan) {
    auto* src = plan->Add<CollectionSourceOp>({}, Numbers(10));
    auto* m1 = plan->Add<MapOp>({src}, PlusOne());
    auto* m2 = plan->Add<MapOp>({m1}, PlusOne());
    auto* sink = plan->Add<CollectOp>({m2});
    plan->SetSink(sink);
    PlatformAssignment a;
    a.by_op = {{src->id(), &java_}, {m1->id(), &java_},
               {m2->id(), &spark_}, {sink->id(), &spark_}};
    return StageSplitter::Split(*plan, std::move(a)).ValueOrDie();
  }

  Config config_;
  JavaSimPlatform java_;
  SparkSimPlatform spark_;
};

TEST_F(ExecutorTest, RunsTwoStagePlanAndMovesData) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  CrossPlatformExecutor executor;
  auto result = executor.Execute(eplan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->output.size(), 10u);
  EXPECT_EQ(result->output.at(0)[0], Value(2));  // 0 +1 +1
  EXPECT_EQ(result->metrics.stages_run, 2);
  EXPECT_EQ(result->metrics.moved_records, 10);
  EXPECT_GT(result->metrics.moved_bytes, 0);
}

TEST_F(ExecutorTest, BoundarySerializationCanBeDisabled) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  Config config;
  config.SetBool("executor.serialize_boundaries", false);
  CrossPlatformExecutor executor(config);
  auto result = executor.Execute(eplan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.size(), 10u);
  EXPECT_GT(result->metrics.moved_bytes, 0);  // still accounted
}

TEST_F(ExecutorTest, RetriesTransientFailures) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  CrossPlatformExecutor executor;
  int failures_to_inject = 2;
  executor.set_failure_injector([&](const Stage& stage, int attempt) -> Status {
    if (stage.id() == 0 && attempt < failures_to_inject) {
      return Status::ExecutionError("injected fault");
    }
    return Status::OK();
  });
  ExecutionMonitor monitor;
  executor.set_monitor(&monitor);
  auto result = executor.Execute(eplan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.retries, 2);
  EXPECT_EQ(monitor.failures(), 2);
  EXPECT_EQ(result->output.size(), 10u);
  EXPECT_NE(monitor.Report().find("FAIL"), std::string::npos);
}

TEST_F(ExecutorTest, GivesUpAfterMaxRetries) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  Config config;
  config.SetInt("executor.max_retries", 1);
  CrossPlatformExecutor executor(config);
  executor.set_failure_injector([](const Stage&, int) -> Status {
    return Status::ExecutionError("permanent fault");
  });
  auto result = executor.Execute(eplan);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsExecutionError());
  EXPECT_NE(result.status().message().find("after 2 attempt"),
            std::string::npos);
}

TEST_F(ExecutorTest, EmptyPlanRejected) {
  CrossPlatformExecutor executor;
  ExecutionPlan empty;
  EXPECT_TRUE(executor.Execute(empty).status().IsInvalidPlan());
}

TEST_F(ExecutorTest, MonitorRecordsPerStage) {
  Plan plan;
  ExecutionPlan eplan = MakeCrossPlatformPlan(&plan);
  CrossPlatformExecutor executor;
  ExecutionMonitor monitor;
  executor.set_monitor(&monitor);
  ASSERT_TRUE(executor.Execute(eplan).ok());
  ASSERT_EQ(monitor.records().size(), 2u);
  EXPECT_EQ(monitor.records()[0].platform, "javasim");
  EXPECT_EQ(monitor.records()[1].platform, "sparksim");
  EXPECT_TRUE(monitor.records()[0].succeeded);
  EXPECT_EQ(monitor.records()[1].output_records, 10);
}

TEST(ExecutionStateTest, PutGetEvict) {
  ExecutionState state;
  EXPECT_FALSE(state.Get(1).ok());
  state.Put(1, Numbers(3));
  ASSERT_TRUE(state.Has(1));
  EXPECT_EQ((*state.Get(1))->size(), 3u);
  state.Evict(1);
  EXPECT_FALSE(state.Has(1));
  EXPECT_TRUE(state.Get(1).status().IsExecutionError());
}

}  // namespace
}  // namespace rheem

#include "core/expr/expr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "data/record.h"

namespace rheem {
namespace expr {
namespace {

Record Row(std::vector<Value> vs) { return Record(std::move(vs)); }

ExprPtr IntField(int i) { return Field(i, ValueType::kInt64); }
ExprPtr DblField(int i) { return Field(i, ValueType::kDouble); }
ExprPtr StrField(int i) { return Field(i, ValueType::kString); }

// --- type checker -----------------------------------------------------------

TEST(ExprTypeCheck, AcceptsWellTypedTrees) {
  // ($0 + 1) * $1 > 10.0 AND $2 == "eng"
  auto e = And(Gt(Mul(Add(IntField(0), Lit(1)), DblField(1)), Lit(10.0)),
               Eq(StrField(2), Lit("eng")));
  auto t = TypeCheck(*e);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(*t, ValueType::kBool);
  EXPECT_TRUE(TypeCheckPredicate(*e).ok());
}

TEST(ExprTypeCheck, MixedNumericsWidenToDouble) {
  auto t = TypeCheck(*Add(IntField(0), Lit(1.5)));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, ValueType::kDouble);
  // Two int64 operands stay integer, including division.
  auto ti = TypeCheck(*Div(IntField(0), Lit(2)));
  ASSERT_TRUE(ti.ok());
  EXPECT_EQ(*ti, ValueType::kInt64);
}

TEST(ExprTypeCheck, RejectsIllTypedTrees) {
  // Arithmetic over strings.
  EXPECT_FALSE(TypeCheck(*Add(StrField(0), Lit(1))).ok());
  // Comparison across type classes.
  EXPECT_FALSE(TypeCheck(*Eq(IntField(0), Lit("x"))).ok());
  EXPECT_FALSE(TypeCheck(*Lt(StrField(0), Lit(3))).ok());
  // Logical connectives over non-bool operands.
  EXPECT_FALSE(TypeCheck(*And(IntField(0), Lit(true))).ok());
  EXPECT_FALSE(TypeCheck(*Not(IntField(0))).ok());
  // Modulo requires int64 on both sides.
  EXPECT_FALSE(TypeCheck(*Mod(DblField(0), Lit(2))).ok());
  // Negative field index; unsupported declared field type.
  EXPECT_FALSE(TypeCheck(*Field(-1, ValueType::kInt64)).ok());
  EXPECT_FALSE(TypeCheck(*Field(0, ValueType::kDoubleList)).ok());
  // Null literal has no static type.
  EXPECT_FALSE(TypeCheck(*Lit(Value::Null())).ok());
}

TEST(ExprTypeCheck, PredicateMustBeBool) {
  EXPECT_FALSE(TypeCheckPredicate(*Add(IntField(0), Lit(1))).ok());
  EXPECT_TRUE(TypeCheckPredicate(*Lit(true)).ok());
}

// --- evaluator --------------------------------------------------------------

TEST(ExprEval, ArithmeticAndComparison) {
  const Record r = Row({Value(int64_t{7}), Value(2.5)});
  EXPECT_EQ(Eval(*Add(IntField(0), Lit(3)), r), Value(int64_t{10}));
  EXPECT_EQ(Eval(*Div(IntField(0), Lit(2)), r), Value(int64_t{3}));  // int div
  EXPECT_EQ(Eval(*Mod(IntField(0), Lit(4)), r), Value(int64_t{3}));
  EXPECT_EQ(Eval(*Mul(DblField(1), Lit(2.0)), r), Value(5.0));
  EXPECT_EQ(Eval(*Add(IntField(0), DblField(1)), r), Value(9.5));
  EXPECT_TRUE(EvalPredicate(*Gt(IntField(0), Lit(5)), r));
  EXPECT_FALSE(EvalPredicate(*Lt(IntField(0), Lit(5)), r));
}

TEST(ExprEval, MissingFieldIsNullAndDropsInPredicates) {
  const Record r = Row({Value(int64_t{1})});
  EXPECT_TRUE(Eval(*IntField(5), r).is_null());
  // Null comparison -> Null -> predicate drops.
  EXPECT_FALSE(EvalPredicate(*Gt(IntField(5), Lit(0)), r));
  // ... and NOT(Null) is still Null, not true.
  EXPECT_FALSE(EvalPredicate(*Not(Gt(IntField(5), Lit(0))), r));
}

TEST(ExprEval, RuntimeTypeMismatchIsNull) {
  const Record r = Row({Value("text")});
  EXPECT_TRUE(Eval(*IntField(0), r).is_null());
  EXPECT_FALSE(EvalPredicate(*Gt(IntField(0), Lit(0)), r));
}

TEST(ExprEval, DivisionByZeroIsNull) {
  const Record r = Row({Value(int64_t{4}), Value(0.0)});
  EXPECT_TRUE(Eval(*Div(IntField(0), Lit(0)), r).is_null());
  EXPECT_TRUE(Eval(*Mod(IntField(0), Lit(0)), r).is_null());
  EXPECT_TRUE(Eval(*Div(Lit(1.0), DblField(1)), r).is_null());
  EXPECT_FALSE(EvalPredicate(*Gt(Div(IntField(0), Lit(0)), Lit(0)), r));
}

TEST(ExprEval, KleeneLogic) {
  const Record r = Row({Value(int64_t{1})});
  auto null_pred = Gt(IntField(9), Lit(0));  // evaluates to Null
  // false AND Null = false; true OR Null = true.
  EXPECT_FALSE(EvalPredicate(*And(Lit(false), null_pred), r));
  EXPECT_TRUE(EvalPredicate(*Or(Lit(true), null_pred), r));
  // true AND Null = Null (drop); false OR Null = Null (drop).
  EXPECT_FALSE(EvalPredicate(*And(Lit(true), null_pred), r));
  EXPECT_FALSE(EvalPredicate(*Or(Lit(false), null_pred), r));
}

TEST(ExprEval, PairPredicateAddressesConcatenation) {
  const Record a = Row({Value(int64_t{1}), Value(int64_t{10})});
  const Record b = Row({Value(int64_t{2}), Value(int64_t{5})});
  // $1 (a) > $3 (b's second field).
  EXPECT_TRUE(EvalPredicatePair(*Gt(IntField(1), IntField(3)), a, b));
  EXPECT_FALSE(EvalPredicatePair(*Gt(IntField(0), IntField(2)), a, b));
}

TEST(ExprEval, BatchMatchesScalar) {
  std::vector<Record> rows;
  for (int i = -5; i < 25; ++i) {
    rows.push_back(Row({Value(int64_t{i}), Value(i * 0.5)}));
  }
  rows.push_back(Row({Value("bad")}));     // short + mistyped row
  rows.push_back(Row({}));                 // empty row
  auto pred = And(Gt(IntField(0), Lit(0)),
                  Or(Lt(DblField(1), Lit(4.0)), Eq(IntField(0), Lit(20))));
  std::vector<unsigned char> keep;
  EvalPredicateBatch(*pred, rows, 0, rows.size(), &keep);
  ASSERT_EQ(keep.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(keep[i] != 0, EvalPredicate(*pred, rows[i])) << "row " << i;
  }
  // Sub-range evaluation indexes keep from `begin`.
  EvalPredicateBatch(*pred, rows, 10, 20, &keep);
  ASSERT_EQ(keep.size(), 10u);
  for (std::size_t i = 10; i < 20; ++i) {
    EXPECT_EQ(keep[i - 10] != 0, EvalPredicate(*pred, rows[i]));
  }
}

// --- canonical serialization ------------------------------------------------

TEST(ExprCanonical, StableAndDistinguishesConstants) {
  auto p30 = Gt(Field(2, ValueType::kInt64, "age"), Lit(30));
  auto p31 = Gt(Field(2, ValueType::kInt64, "age"), Lit(31));
  EXPECT_EQ(Canonical(*p30), Canonical(*p30));
  EXPECT_NE(Canonical(*p30), Canonical(*p31));
  // The field display name is cosmetic and must not leak into the encoding.
  EXPECT_EQ(Canonical(*p30), Canonical(*Gt(IntField(2), Lit(30))));
}

TEST(ExprCanonical, CommutedConjunctionsNormalize) {
  auto a = Gt(IntField(0), Lit(1));
  auto b = Eq(StrField(1), Lit("x"));
  auto c = Lt(DblField(2), Lit(0.5));
  EXPECT_EQ(Canonical(*And(a, And(b, c))), Canonical(*And(And(c, b), a)));
  EXPECT_EQ(Canonical(*Or(a, b)), Canonical(*Or(b, a)));
  // AND vs OR of the same operands stay distinct.
  EXPECT_NE(Canonical(*And(a, b)), Canonical(*Or(a, b)));
}

TEST(ExprCanonical, TypeAndValueDistinct) {
  EXPECT_NE(Canonical(*Lit(1)), Canonical(*Lit(1.0)));
  EXPECT_NE(Canonical(*IntField(0)), Canonical(*DblField(0)));
  EXPECT_NE(Canonical(*Lit("1")), Canonical(*Lit(1)));
}

TEST(ExprPretty, ReadableInfix) {
  auto e = And(Gt(Field(0, ValueType::kInt64, "age"), Lit(30)),
               Eq(Field(1, ValueType::kString, "dept"), Lit("eng")));
  EXPECT_EQ(Pretty(*e), "age>30 AND dept==\"eng\"");
  // Unnamed fields print positionally; precedence inserts parens only when
  // needed.
  EXPECT_EQ(Pretty(*Mul(Add(IntField(0), Lit(1)), IntField(2))),
            "($0+1)*$2");
}

// --- selectivity ------------------------------------------------------------

TEST(ExprSelectivity, BoundedAndOrdered) {
  std::vector<ExprPtr> preds = {
      Eq(IntField(0), Lit(1)),
      Ne(IntField(0), Lit(1)),
      Lt(IntField(0), Lit(1)),
      And(Eq(IntField(0), Lit(1)), Lt(IntField(1), Lit(2))),
      Or(Eq(IntField(0), Lit(1)), Eq(IntField(1), Lit(2))),
      Not(Eq(IntField(0), Lit(1))),
      Lit(true),
      Lit(false),
  };
  for (const auto& p : preds) {
    const double s = EstimateSelectivity(*p);
    EXPECT_GE(s, 0.0) << Pretty(*p);
    EXPECT_LE(s, 1.0) << Pretty(*p);
  }
  // Structure matters: a conjunction is more selective than its conjuncts.
  EXPECT_LT(EstimateSelectivity(*preds[3]), EstimateSelectivity(*preds[0]));
  EXPECT_EQ(EstimateSelectivity(*Lit(true)), 1.0);
  EXPECT_EQ(EstimateSelectivity(*Lit(false)), 0.0);
}

// --- structural helpers -----------------------------------------------------

TEST(ExprHelpers, SplitAndRecombineConjuncts) {
  auto a = Gt(IntField(0), Lit(1));
  auto b = Lt(IntField(1), Lit(5));
  auto c = Eq(IntField(2), Lit(3));
  auto split = SplitConjuncts(And(a, And(b, c)));
  ASSERT_EQ(split.size(), 3u);
  auto recombined = AndAll(split);
  EXPECT_EQ(Canonical(*recombined), Canonical(*And(And(a, b), c)));
  // A non-AND root is its own single conjunct; OR does not split.
  EXPECT_EQ(SplitConjuncts(Or(a, b)).size(), 1u);
}

TEST(ExprHelpers, FieldCollectionRemapShift) {
  auto e = And(Gt(IntField(3), Lit(1)), Lt(DblField(1), Lit(2.0)));
  std::set<int> fields;
  CollectFields(*e, &fields);
  EXPECT_EQ(fields, (std::set<int>{1, 3}));
  EXPECT_EQ(MaxFieldIndex(*e), 3);
  EXPECT_EQ(MaxFieldIndex(*Lit(1)), -1);

  auto remapped = RemapFields(e, {{3, 0}, {1, 7}});
  ASSERT_TRUE(remapped.ok());
  std::set<int> after;
  CollectFields(**remapped, &after);
  EXPECT_EQ(after, (std::set<int>{0, 7}));
  // Unmapped field -> error.
  EXPECT_FALSE(RemapFields(e, {{3, 0}}).ok());

  auto shifted = ShiftFields(e, -1);
  std::set<int> shifted_fields;
  CollectFields(*shifted, &shifted_fields);
  EXPECT_EQ(shifted_fields, (std::set<int>{0, 2}));
}

// --- UDF compilation --------------------------------------------------------

TEST(ExprUdf, PredicateUdfCarriesTreeAndSelectivity) {
  auto udf = MakePredicateUdf(Gt(IntField(0), Lit(10)));
  ASSERT_TRUE(udf.ok()) << udf.status().ToString();
  EXPECT_NE(udf->expr, nullptr);
  EXPECT_GE(udf->meta.selectivity, 0.0);
  EXPECT_LE(udf->meta.selectivity, 1.0);
  EXPECT_TRUE(udf->fn(Row({Value(int64_t{11})})));
  EXPECT_FALSE(udf->fn(Row({Value(int64_t{9})})));
  // Ill-typed trees are rejected at compile time.
  EXPECT_FALSE(MakePredicateUdf(Add(IntField(0), Lit(1))).ok());
  EXPECT_FALSE(MakePredicateUdf(nullptr).ok());
}

TEST(ExprUdf, MapUdfProjects) {
  auto udf = MakeMapUdf({IntField(1), Add(IntField(0), Lit(100))});
  ASSERT_TRUE(udf.ok()) << udf.status().ToString();
  ASSERT_EQ(udf->projection.size(), 2u);
  Record out = udf->fn(Row({Value(int64_t{1}), Value(int64_t{2})}));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Value(int64_t{2}));
  EXPECT_EQ(out[1], Value(int64_t{101}));
  EXPECT_FALSE(MakeMapUdf({}).ok());
  EXPECT_FALSE(MakeMapUdf({Not(IntField(0))}).ok());
}

TEST(ExprUdf, KeyAndThetaUdfs) {
  auto key = MakeKeyUdf(IntField(0));
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->fn(Row({Value(int64_t{42})})), Value(int64_t{42}));

  auto theta = MakeThetaUdf(Gt(IntField(1), IntField(3)));
  ASSERT_TRUE(theta.ok());
  EXPECT_TRUE(theta->fn(Row({Value(int64_t{0}), Value(int64_t{9})}),
                        Row({Value(int64_t{0}), Value(int64_t{1})})));
  EXPECT_FALSE(MakeThetaUdf(Add(IntField(0), Lit(1))).ok());
}

// --- concurrency (exercised under TSan in CI) -------------------------------

TEST(ExprConcurrency, SharedTreeEvaluatesFromManyThreads) {
  auto pred = And(Gt(IntField(0), Lit(10)),
                  Or(Lt(DblField(1), Lit(0.5)), Eq(StrField(2), Lit("x"))));
  std::vector<Record> rows;
  for (int i = 0; i < 256; ++i) {
    rows.push_back(
        Row({Value(int64_t{i}), Value(i * 0.01), Value(i % 3 ? "x" : "y")}));
  }
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      int kept = 0;
      for (const Record& r : rows) {
        if (EvalPredicate(*pred, r)) ++kept;
      }
      total += kept;
    });
  }
  for (auto& t : threads) t.join();
  int expect = 0;
  for (const Record& r : rows) {
    if (EvalPredicate(*pred, r)) ++expect;
  }
  EXPECT_EQ(total.load(), 8 * expect);
}

}  // namespace
}  // namespace expr
}  // namespace rheem

#include "core/plan/plan.h"

#include <gtest/gtest.h>

#include "core/operators/physical_ops.h"
#include "core/plan/plan_printer.h"

namespace rheem {
namespace {

Dataset OneRow() { return Dataset(std::vector<Record>{Record({Value(1)})}); }

MapUdf Identity() {
  MapUdf udf;
  udf.fn = [](const Record& r) { return r; };
  return udf;
}

TEST(PlanTest, AddAssignsSequentialIdsAndNames) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, OneRow());
  auto* map = plan.Add<MapOp>({src}, Identity());
  EXPECT_EQ(src->id(), 0);
  EXPECT_EQ(map->id(), 1);
  EXPECT_EQ(map->inputs().size(), 1u);
  EXPECT_EQ(map->inputs()[0], src);
  EXPECT_NE(map->name().find("Map"), std::string::npos);
}

TEST(PlanTest, TopologicalOrderRespectsEdges) {
  Plan plan;
  auto* a = plan.Add<CollectionSourceOp>({}, OneRow());
  auto* b = plan.Add<CollectionSourceOp>({}, OneRow());
  auto* u = plan.Add<UnionOp>({a, b});
  auto* m = plan.Add<MapOp>({u}, Identity());
  plan.SetSink(m);
  auto topo = plan.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  std::map<int, std::size_t> pos;
  for (std::size_t i = 0; i < topo->size(); ++i) pos[(*topo)[i]->id()] = i;
  EXPECT_LT(pos[a->id()], pos[u->id()]);
  EXPECT_LT(pos[b->id()], pos[u->id()]);
  EXPECT_LT(pos[u->id()], pos[m->id()]);
}

TEST(PlanTest, ValidateAcceptsWellFormedDag) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, OneRow());
  auto* sink = plan.Add<CollectOp>({src});
  plan.SetSink(sink);
  EXPECT_TRUE(plan.Validate().ok());
}

TEST(PlanTest, ValidateRejectsEmptyPlan) {
  Plan plan;
  EXPECT_TRUE(plan.Validate().IsInvalidPlan());
}

TEST(PlanTest, ValidateRejectsMissingSink) {
  Plan plan;
  plan.Add<CollectionSourceOp>({}, OneRow());
  EXPECT_TRUE(plan.Validate().IsInvalidPlan());
}

TEST(PlanTest, ValidateRejectsArityMismatch) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, OneRow());
  // UnionOp wants two inputs, gets one.
  auto* u = plan.Add<UnionOp>({src});
  plan.SetSink(u);
  EXPECT_TRUE(plan.Validate().IsInvalidPlan());
}

TEST(PlanTest, ValidateRejectsOrphan) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, OneRow());
  plan.Add<CollectionSourceOp>({}, OneRow());  // orphan
  auto* sink = plan.Add<CollectOp>({src});
  plan.SetSink(sink);
  EXPECT_TRUE(plan.Validate().IsInvalidPlan());
}

TEST(PlanTest, ValidateRejectsCycle) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, OneRow());
  auto* m1 = plan.Add<MapOp>({src}, Identity());
  auto* m2 = plan.Add<MapOp>({m1}, Identity());
  // Manually create a cycle m1 <- m2.
  m1->SetInput(0, m2);
  plan.SetSink(m2);
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PlanTest, ValidateRejectsForeignInput) {
  Plan other;
  auto* foreign = other.Add<CollectionSourceOp>({}, OneRow());
  Plan plan;
  auto* m = plan.Add<MapOp>({foreign}, Identity());
  plan.SetSink(m);
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PlanTest, ConsumersOfListsDownstream) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, OneRow());
  auto* m1 = plan.Add<MapOp>({src}, Identity());
  auto* m2 = plan.Add<MapOp>({src}, Identity());
  auto consumers = plan.ConsumersOf(src);
  ASSERT_EQ(consumers.size(), 2u);
  EXPECT_EQ(consumers[0], m1);
  EXPECT_EQ(consumers[1], m2);
  EXPECT_TRUE(plan.ConsumersOf(m2).empty());
}

TEST(PlanTest, PruneToSinkDropsOrphansAndRemaps) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, OneRow());
  plan.Add<CollectionSourceOp>({}, OneRow());  // orphan at id 1
  auto* sink = plan.Add<CollectOp>({src});     // id 2
  plan.SetSink(sink);
  auto remap = plan.PruneToSink();
  ASSERT_TRUE(remap.ok());
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_EQ(remap->at(0), 0);
  EXPECT_EQ(remap->at(2), 1);
  EXPECT_EQ(remap->count(1), 0u);
  EXPECT_EQ(sink->id(), 1);
  EXPECT_TRUE(plan.Validate().ok());
}

TEST(PlanTest, PruneWithoutSinkFails) {
  Plan plan;
  plan.Add<CollectionSourceOp>({}, OneRow());
  EXPECT_FALSE(plan.PruneToSink().ok());
}

TEST(PlanPrinterTest, TextListsOperatorsAndSink) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, OneRow());
  auto* sink = plan.Add<CollectOp>({src});
  plan.SetSink(sink);
  const std::string text = PlanPrinter::ToText(plan, {{src->id(), "note"}});
  EXPECT_NE(text.find("CollectionSource"), std::string::npos);
  EXPECT_NE(text.find("(sink)"), std::string::npos);
  EXPECT_NE(text.find("[note]"), std::string::npos);
}

TEST(PlanPrinterTest, DotContainsNodesAndEdges) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, OneRow());
  auto* sink = plan.Add<CollectOp>({src});
  plan.SetSink(sink);
  const std::string dot = PlanPrinter::ToDot(plan);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(PlanPrinterTest, DotRendersLoopBodiesAsClusters) {
  auto body = std::make_shared<Plan>();
  auto* state = body->Add<LoopStateOp>({});
  body->Add<LoopDataOp>({});
  body->SetSink(state);

  Plan plan;
  auto* init = plan.Add<CollectionSourceOp>({}, OneRow());
  auto* data = plan.Add<CollectionSourceOp>({}, OneRow());
  auto* loop = plan.Add<RepeatOp>({init, data}, 3, body);
  plan.SetSink(loop);
  const std::string dot = PlanPrinter::ToDot(plan);
  EXPECT_NE(dot.find("cluster"), std::string::npos);
}

TEST(OperatorTest, KindNamesIncludeVariants) {
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  GroupUdf group;
  group.fn = [](const Value&, const std::vector<Record>& rs) { return rs; };
  GroupByKeyOp hash_gb(key, group, GroupByAlgorithm::kHash);
  GroupByKeyOp sort_gb(key, group, GroupByAlgorithm::kSort);
  EXPECT_EQ(hash_gb.kind_name(), "HashGroupBy");
  EXPECT_EQ(sort_gb.kind_name(), "SortGroupBy");
  JoinOp hj(key, key, JoinAlgorithm::kHash);
  JoinOp smj(key, key, JoinAlgorithm::kSortMerge);
  EXPECT_EQ(hj.kind_name(), "HashJoin");
  EXPECT_EQ(smj.kind_name(), "SortMergeJoin");
}

}  // namespace
}  // namespace rheem

#include "core/api/logical_nodes.h"

#include <gtest/gtest.h>

#include "core/api/context.h"

namespace rheem {
namespace {

TEST(GenericLogicalOpTest, MapApplyOpEmitsOneQuantum) {
  GenericLogicalOp op(OpKind::kMap);
  op.map.fn = [](const Record& r) {
    return Record({Value(r[0].ToInt64Or(0) + 10)});
  };
  std::vector<Record> out;
  ASSERT_TRUE(op.ApplyOp(Record({Value(1)}), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], Value(11));
}

TEST(GenericLogicalOpTest, FilterApplyOpDropsOrKeeps) {
  GenericLogicalOp op(OpKind::kFilter);
  op.predicate.fn = [](const Record& r) { return r[0].ToInt64Or(0) > 0; };
  std::vector<Record> out;
  ASSERT_TRUE(op.ApplyOp(Record({Value(-1)}), &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(op.ApplyOp(Record({Value(5)}), &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(GenericLogicalOpTest, FlatMapApplyOpExpands) {
  GenericLogicalOp op(OpKind::kFlatMap);
  op.flat_map.fn = [](const Record& r) {
    return std::vector<Record>{r, r, r};
  };
  std::vector<Record> out;
  ASSERT_TRUE(op.ApplyOp(Record({Value(1)}), &out).ok());
  EXPECT_EQ(out.size(), 3u);
}

TEST(GenericLogicalOpTest, ProjectApplyOpUsesColumns) {
  GenericLogicalOp op(OpKind::kProject);
  op.columns = {1};
  std::vector<Record> out;
  ASSERT_TRUE(op.ApplyOp(Record({Value(1), Value("keep")}), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], Value("keep"));
}

TEST(GenericLogicalOpTest, UnsetUdfIsError) {
  GenericLogicalOp op(OpKind::kMap);
  std::vector<Record> out;
  EXPECT_TRUE(op.ApplyOp(Record(), &out).IsInvalidArgument());
}

TEST(GenericLogicalOpTest, SetOrientedKindsRejectApplyOp) {
  for (OpKind kind : {OpKind::kReduceByKey, OpKind::kGroupByKey, OpKind::kJoin,
                      OpKind::kUnion, OpKind::kRepeat, OpKind::kIntersect,
                      OpKind::kTopK, OpKind::kCollect}) {
    GenericLogicalOp op(kind);
    std::vector<Record> out;
    EXPECT_TRUE(op.ApplyOp(Record(), &out).IsUnsupported())
        << OpKindToString(kind);
  }
}

TEST(GenericLogicalOpTest, ArityMatchesKind) {
  EXPECT_EQ(GenericLogicalOp(OpKind::kCollectionSource).arity(), 0);
  EXPECT_EQ(GenericLogicalOp(OpKind::kMap).arity(), 1);
  EXPECT_EQ(GenericLogicalOp(OpKind::kTopK).arity(), 1);
  EXPECT_EQ(GenericLogicalOp(OpKind::kJoin).arity(), 2);
  EXPECT_EQ(GenericLogicalOp(OpKind::kIntersect).arity(), 2);
  EXPECT_EQ(GenericLogicalOp(OpKind::kSubtract).arity(), 2);
  EXPECT_EQ(GenericLogicalOp(OpKind::kRepeat).arity(), 2);
  EXPECT_EQ(GenericLogicalOp(OpKind::kLoopState).arity(), 0);
}

TEST(GenericLogicalOpTest, HintsComeFromUdfMeta) {
  GenericLogicalOp filter(OpKind::kFilter);
  filter.predicate.meta.selectivity = 0.25;
  filter.predicate.meta.cost_factor = 4.0;
  EXPECT_DOUBLE_EQ(filter.SelectivityHint(), 0.25);
  EXPECT_DOUBLE_EQ(filter.CostHint(), 4.0);

  GenericLogicalOp sample(OpKind::kSample);
  sample.fraction = 0.1;
  EXPECT_DOUBLE_EQ(sample.SelectivityHint(), 0.1);

  GenericLogicalOp source(OpKind::kCollectionSource);
  EXPECT_DOUBLE_EQ(source.SelectivityHint(), 1.0);
  EXPECT_DOUBLE_EQ(source.CostHint(), 1.0);
}

TEST(GenericLogicalOpTest, KindNameCarriesLogicalPrefix) {
  EXPECT_EQ(GenericLogicalOp(OpKind::kMap).kind_name(), "L:Map");
  EXPECT_EQ(GenericLogicalOp(OpKind::kTopK).kind_name(), "L:TopK");
}

TEST(TranslationTest, AllGenericKindsTranslate) {
  // Build one logical plan touching every translatable generic kind and
  // confirm translation yields a physical plan of the same shape.
  Plan logical;
  auto* src = logical.Add<GenericLogicalOp>({}, OpKind::kCollectionSource);
  std::vector<Record> rows;
  for (int i = 0; i < 4; ++i) rows.push_back(Record({Value(i)}));
  src->source_data = Dataset(std::move(rows));
  auto* map = logical.Add<GenericLogicalOp>({src}, OpKind::kMap);
  map->map.fn = [](const Record& r) { return r; };
  auto* topk = logical.Add<GenericLogicalOp>({map}, OpKind::kTopK);
  topk->key.fn = [](const Record& r) { return r[0]; };
  topk->topk = 2;
  auto* other = logical.Add<GenericLogicalOp>({}, OpKind::kCollectionSource);
  other->source_data = Dataset(std::vector<Record>{Record({Value(1)})});
  auto* inter = logical.Add<GenericLogicalOp>({topk, other}, OpKind::kIntersect);
  auto* sub = logical.Add<GenericLogicalOp>({inter, other}, OpKind::kSubtract);
  auto* sink = logical.Add<GenericLogicalOp>({sub}, OpKind::kCollect);
  logical.SetSink(sink);

  std::map<int, std::string> pins;
  auto physical = RheemContext::TranslateToPhysical(logical, &pins);
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  EXPECT_EQ((*physical)->size(), logical.size());
  EXPECT_TRUE((*physical)->Validate().ok());
}

TEST(TranslationTest, PinnedPlatformsSurfaceInPinsMap) {
  Plan logical;
  auto* src = logical.Add<GenericLogicalOp>({}, OpKind::kCollectionSource);
  src->source_data = Dataset(std::vector<Record>{Record({Value(1)})});
  src->pinned_platform = "sparksim";
  auto* sink = logical.Add<GenericLogicalOp>({src}, OpKind::kCollect);
  logical.SetSink(sink);
  std::map<int, std::string> pins;
  auto physical = RheemContext::TranslateToPhysical(logical, &pins);
  ASSERT_TRUE(physical.ok());
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins.begin()->second, "sparksim");
}

TEST(TranslationTest, MissingSinkRejected) {
  Plan logical;
  logical.Add<GenericLogicalOp>({}, OpKind::kCollectionSource);
  std::map<int, std::string> pins;
  EXPECT_TRUE(RheemContext::TranslateToPhysical(logical, &pins)
                  .status()
                  .IsInvalidPlan());
}

}  // namespace
}  // namespace rheem

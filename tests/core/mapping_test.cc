#include "core/mapping/mapping.h"

#include <gtest/gtest.h>

#include "core/mapping/platform.h"

namespace rheem {
namespace {

KeyUdf AnyKey() {
  KeyUdf key;
  key.fn = [](const Record& r) { return r.empty() ? Value() : r[0]; };
  return key;
}

GroupUdf AnyGroup() {
  GroupUdf group;
  group.fn = [](const Value&, const std::vector<Record>& rs) { return rs; };
  return group;
}

TEST(MappingTableTest, FindsKindWildcard) {
  MappingTable t;
  t.Add(OperatorMapping{OpKind::kMap, "", "ExecMap", 1.5, "ctx"});
  MapUdf udf;
  udf.fn = [](const Record& r) { return r; };
  MapOp map(udf);
  const OperatorMapping* m = t.Find(map);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->execution_operator, "ExecMap");
  EXPECT_DOUBLE_EQ(m->cost_weight, 1.5);
}

TEST(MappingTableTest, ExactVariantBeatsWildcard) {
  MappingTable t;
  t.Add(OperatorMapping{OpKind::kGroupByKey, "", "GenericGroupBy", 1.0, ""});
  t.Add(OperatorMapping{OpKind::kGroupByKey, "SortGroupBy", "FancySortGroupBy",
                        0.5, ""});
  GroupByKeyOp sort_gb(AnyKey(), AnyGroup(), GroupByAlgorithm::kSort);
  GroupByKeyOp hash_gb(AnyKey(), AnyGroup(), GroupByAlgorithm::kHash);
  EXPECT_EQ(t.Find(sort_gb)->execution_operator, "FancySortGroupBy");
  EXPECT_EQ(t.Find(hash_gb)->execution_operator, "GenericGroupBy");
}

TEST(MappingTableTest, UnmappedKindIsUnsupported) {
  MappingTable t;
  t.Add(OperatorMapping{OpKind::kMap, "", "ExecMap", 1.0, ""});
  CountOp count;
  EXPECT_EQ(t.Find(count), nullptr);
  EXPECT_FALSE(t.Supports(count));
}

TEST(MappingTableTest, VariantOnlyMappingDoesNotMatchOtherVariant) {
  MappingTable t;
  t.Add(OperatorMapping{OpKind::kGroupByKey, "HashGroupBy", "H", 1.0, ""});
  GroupByKeyOp sort_gb(AnyKey(), AnyGroup(), GroupByAlgorithm::kSort);
  EXPECT_FALSE(t.Supports(sort_gb));
}

TEST(MappingTableTest, ToStringListsMappings) {
  MappingTable t;
  t.Add(OperatorMapping{OpKind::kMap, "", "ExecMap", 2.0, "vectorized"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Map -> ExecMap"), std::string::npos);
  EXPECT_NE(s.find("vectorized"), std::string::npos);
}

TEST(ExecutionMetricsTest, MergeAccumulates) {
  ExecutionMetrics a;
  a.wall_micros = 10;
  a.sim_overhead_micros = 5;
  a.tasks_launched = 3;
  ExecutionMetrics b;
  b.wall_micros = 1;
  b.shuffle_bytes = 100;
  b.retries = 2;
  a.MergeFrom(b);
  EXPECT_EQ(a.wall_micros, 11);
  EXPECT_EQ(a.sim_overhead_micros, 5);
  EXPECT_EQ(a.tasks_launched, 3);
  EXPECT_EQ(a.shuffle_bytes, 100);
  EXPECT_EQ(a.retries, 2);
  EXPECT_EQ(a.TotalMicros(), 16);
}

TEST(ExecutionMetricsTest, ToStringMentionsTotals) {
  ExecutionMetrics m;
  m.wall_micros = 1500;
  m.jobs_run = 2;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("jobs=2"), std::string::npos);
}

}  // namespace
}  // namespace rheem

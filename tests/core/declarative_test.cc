#include "core/mapping/declarative.h"

#include <gtest/gtest.h>

#include "core/api/data_quanta.h"

namespace rheem {
namespace {

constexpr const char* kTurboSpec = R"(
# a vectorized in-memory engine, declared without touching any C++
platform turbo
turbo maps CollectionSource to TurboScan
turbo maps Filter to TurboFilter weight 0.5 context "predicate vectorization"
turbo maps Project to TurboProject weight 0.2
turbo maps ReduceByKey to TurboAggregate weight 0.4
turbo maps GroupByKey/HashGroupBy to TurboHashGroup weight 0.4
turbo maps Collect to TurboFetch
turbo cost per_quantum_us 0.005
turbo cost parallelism 4
turbo cost stage_overhead_us 100
turbo cost boundary_fixed_us 10
)";

TEST(DeclarativeSpecTest, ParsesPlatformsMappingsAndCosts) {
  auto specs = ParsePlatformSpecs(kTurboSpec);
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 1u);
  const DeclarativePlatformSpec& spec = (*specs)[0];
  EXPECT_EQ(spec.name, "turbo");
  EXPECT_EQ(spec.mappings.mappings().size(), 6u);
  EXPECT_DOUBLE_EQ(spec.cost_params.per_quantum_micros, 0.005);
  EXPECT_DOUBLE_EQ(spec.cost_params.parallelism, 4.0);
  EXPECT_DOUBLE_EQ(spec.cost_params.stage_overhead_micros, 100.0);

  PredicateUdf pred;
  pred.fn = [](const Record&) { return true; };
  FilterOp filter(pred);
  const OperatorMapping* m = spec.mappings.Find(filter);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->execution_operator, "TurboFilter");
  EXPECT_DOUBLE_EQ(m->cost_weight, 0.5);
  EXPECT_EQ(m->context, "predicate vectorization");
}

TEST(DeclarativeSpecTest, VariantMappingsParse) {
  auto specs = ParsePlatformSpecs(kTurboSpec);
  ASSERT_TRUE(specs.ok());
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  GroupUdf group;
  group.fn = [](const Value&, const std::vector<Record>& rs) { return rs; };
  GroupByKeyOp hash_gb(key, group, GroupByAlgorithm::kHash);
  GroupByKeyOp sort_gb(key, group, GroupByAlgorithm::kSort);
  EXPECT_TRUE((*specs)[0].mappings.Supports(hash_gb));
  EXPECT_FALSE((*specs)[0].mappings.Supports(sort_gb));  // only hash declared
}

TEST(DeclarativeSpecTest, MultiplePlatformsInOneDocument) {
  auto specs = ParsePlatformSpecs(
      "platform a\na maps Map to AMap\nplatform b\nb maps Filter to BFilter\n"
      "a cost per_quantum_us 1\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].name, "a");
  EXPECT_EQ((*specs)[1].name, "b");
  EXPECT_DOUBLE_EQ((*specs)[0].cost_params.per_quantum_micros, 1.0);
}

TEST(DeclarativeSpecTest, TrailingDotTerminatorAccepted) {
  auto specs = ParsePlatformSpecs(
      "platform rdfish .\nrdfish maps Map to RdfMap .\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ((*specs)[0].mappings.mappings().size(), 1u);
}

TEST(DeclarativeSpecTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParsePlatformSpecs("platform\n").ok());           // no name
  EXPECT_FALSE(ParsePlatformSpecs("x maps Map to Y\n").ok());    // undeclared
  EXPECT_FALSE(ParsePlatformSpecs("platform p\np maps Bogus to X\n").ok());
  EXPECT_FALSE(ParsePlatformSpecs("platform p\np cost nope 1\n").ok());
  EXPECT_FALSE(ParsePlatformSpecs("platform p\np cost per_quantum_us abc\n").ok());
  EXPECT_FALSE(ParsePlatformSpecs("platform p\nplatform p\n").ok());  // dup
  EXPECT_FALSE(ParsePlatformSpecs("platform p\np maps Map to\n").ok());
  EXPECT_FALSE(ParsePlatformSpecs("platform p\np gibberish\n").ok());
}

TEST(DeclarativeSpecTest, CommentsAndBlankLinesIgnored) {
  auto specs = ParsePlatformSpecs("\n# nothing here\n   \nplatform p\n");
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ(specs->size(), 1u);
}

TEST(DeclarativePlatformTest, RegisteredPlatformWinsSupportedSubplans) {
  // A declared platform with aggressive costs should attract the relational
  // subset of a plan through the standard optimizer — no optimizer changes.
  RheemContext ctx;
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  ASSERT_TRUE(RegisterDeclaredPlatforms(kTurboSpec, &ctx.platforms()).ok());
  ASSERT_TRUE(ctx.platforms().Get("turbo").ok());

  // Large enough that turbo's throughput advantage beats javasim even with
  // javasim's modeled morsel parallelism and fusion discounts.
  std::vector<Record> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back(Record({Value(i % 10), Value(i)}));
  }
  RheemJob job(&ctx);
  auto quanta = job.LoadCollection(Dataset(std::move(rows)))
                    .Filter([](const Record& r) { return r[1].ToInt64Or(0) % 2 == 0; })
                    .ReduceByKey([](const Record& r) { return r[0]; },
                                 [](const Record& a, const Record& b) {
                                   return Record({a[0], Value(a[1].ToInt64Or(0) +
                                                              b[1].ToInt64Or(0))});
                                 });
  auto explain = quanta.Explain();
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("turbo"), std::string::npos) << *explain;

  auto out = quanta.Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Even values of i cover only the even residues of i % 10.
  EXPECT_EQ(out->size(), 5u);
}

TEST(DeclarativePlatformTest, ForcedDeclaredPlatformExecutesCorrectly) {
  RheemContext ctx;
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  ASSERT_TRUE(RegisterDeclaredPlatforms(kTurboSpec, &ctx.platforms()).ok());
  std::vector<Record> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(Record({Value(i % 5), Value(1)}));
  RheemJob job(&ctx);
  job.options().force_platform = "turbo";
  auto out = job.LoadCollection(Dataset(std::move(rows)))
                 .Filter([](const Record&) { return true; })
                 .ReduceByKey([](const Record& r) { return r[0]; },
                              [](const Record& a, const Record& b) {
                                return Record({a[0], Value(a[1].ToInt64Or(0) +
                                                           b[1].ToInt64Or(0))});
                              })
                 .Collect();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 5u);
  EXPECT_EQ(out->at(0)[1], Value(20));
}

TEST(DeclarativePlatformTest, UnmappedOperatorRejectedWhenForced) {
  RheemContext ctx;
  ASSERT_TRUE(RegisterDeclaredPlatforms(kTurboSpec, &ctx.platforms()).ok());
  RheemJob job(&ctx);
  job.options().force_platform = "turbo";
  // turbo declares no Map mapping.
  auto out = job.LoadCollection(Dataset(std::vector<Record>{Record({Value(1)})}))
                 .Map([](const Record& r) { return r; })
                 .Collect();
  EXPECT_TRUE(out.status().IsUnsupported());
}

}  // namespace
}  // namespace rheem

#include "core/optimizer/cost_learner.h"

#include <gtest/gtest.h>

#include "core/api/data_quanta.h"
#include "core/operators/physical_ops.h"
#include "platforms/javasim/javasim_platform.h"
#include "storage/mem_column_store.h"

namespace rheem {
namespace {

TEST(CostCalibratorTest, NoObservationsMeansFactorOne) {
  CostCalibrator calibrator;
  EXPECT_DOUBLE_EQ(calibrator.FactorFor("javasim"), 1.0);
  EXPECT_EQ(calibrator.observations("javasim"), 0);
}

TEST(CostCalibratorTest, SingleObservationGivesExactRatio) {
  CostCalibrator calibrator;
  calibrator.Observe("javasim", 100.0, 250.0);
  EXPECT_NEAR(calibrator.FactorFor("javasim"), 2.5, 1e-9);
  EXPECT_EQ(calibrator.observations("javasim"), 1);
}

TEST(CostCalibratorTest, GeometricMeanOverRuns) {
  CostCalibrator calibrator;
  calibrator.Observe("p", 100.0, 400.0);  // 4x
  calibrator.Observe("p", 100.0, 100.0);  // 1x
  EXPECT_NEAR(calibrator.FactorFor("p"), 2.0, 1e-9);  // sqrt(4*1)
}

TEST(CostCalibratorTest, PlatformsIsolated) {
  CostCalibrator calibrator;
  calibrator.Observe("a", 10, 100);
  calibrator.Observe("b", 10, 5);
  EXPECT_NEAR(calibrator.FactorFor("a"), 10.0, 1e-9);
  EXPECT_NEAR(calibrator.FactorFor("b"), 0.5, 1e-9);
}

TEST(CostCalibratorTest, IgnoresDegenerateObservations) {
  CostCalibrator calibrator;
  calibrator.Observe("p", 0.0, 100.0);
  calibrator.Observe("p", 100.0, 0.0);
  calibrator.Observe("p", -5.0, 10.0);
  EXPECT_EQ(calibrator.observations("p"), 0);
  EXPECT_DOUBLE_EQ(calibrator.FactorFor("p"), 1.0);
}

TEST(CostCalibratorTest, SuggestConfigScalesBaseValues) {
  CostCalibrator calibrator;
  calibrator.Observe("javasim", 100.0, 300.0);  // model 3x too optimistic
  Config config = calibrator.SuggestConfig(
      {{"javasim", 0.03}, {"sparksim", 0.03}});
  EXPECT_NEAR(config.GetDouble("javasim.per_quantum_us", 0).ValueOrDie(),
              0.09, 1e-9);
  // Unobserved platform keeps its base value.
  EXPECT_NEAR(config.GetDouble("sparksim.per_quantum_us", 0).ValueOrDie(),
              0.03, 1e-9);
}

TEST(CostCalibratorTest, SuggestedConfigImprovesPrediction) {
  // After calibrating on a 3x-off model, predictions with the suggested
  // per-quantum value match the "observed" world.
  CostCalibrator calibrator;
  const double est = 1000.0, actual = 3000.0;
  calibrator.Observe("javasim", est, actual);
  Config config = calibrator.SuggestConfig({{"javasim", 0.03}});
  const double scaled =
      config.GetDouble("javasim.per_quantum_us", 0).ValueOrDie();
  EXPECT_NEAR(est * (scaled / 0.03), actual, 1e-6);
}

TEST(CostCalibratorTest, ReportMentionsPlatformsAndFactors) {
  CostCalibrator calibrator;
  calibrator.Observe("javasim", 10, 20);
  const std::string report = calibrator.Report();
  EXPECT_NE(report.find("javasim"), std::string::npos);
  EXPECT_NE(report.find("2.000"), std::string::npos);
}

TEST(CostCalibratorTest, EstimateStageCostSumsOperators) {
  Config config;
  JavaSimPlatform java(config);
  Plan plan;
  std::vector<Record> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back(Record({Value(i)}));
  auto* src = plan.Add<CollectionSourceOp>({}, Dataset(std::move(rows)));
  MapUdf udf;
  udf.fn = [](const Record& r) { return r; };
  udf.meta.cost_factor = 10.0;
  auto* m = plan.Add<MapOp>({src}, udf);
  auto* sink = plan.Add<CollectOp>({m});
  plan.SetSink(sink);
  PlatformAssignment a;
  a.by_op = {{src->id(), &java}, {m->id(), &java}, {sink->id(), &java}};
  auto eplan = StageSplitter::Split(plan, std::move(a)).ValueOrDie();
  auto estimates = CardinalityEstimator::Estimate(plan).ValueOrDie();
  auto cost = CostCalibrator::EstimateStageCost(eplan.stages[0], estimates);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  // Dominated by the expensive map: 1000 quanta x 0.03us x 10, discounted by
  // javasim's modeled fusion (0.75) and morsel parallelism (3x) -> ~75us.
  EXPECT_GT(*cost, 60.0);
  EXPECT_LT(*cost, 120.0);
}

TEST(ObserveJobTest, WiresMonitorRecordsIntoCalibrator) {
  RheemContext ctx;
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  RheemJob job(&ctx);
  std::vector<Record> rows;
  for (int i = 0; i < 5000; ++i) rows.push_back(Record({Value(i)}));
  auto quanta = job.LoadCollection(Dataset(std::move(rows)))
                    .Map(
                        [](const Record& r) {
                          double x = r[0].ToDoubleOr(0);
                          for (int k = 0; k < 40; ++k) x = x * 1.0001 + 1;
                          return Record({Value(x)});
                        },
                        UdfMeta::Expensive(40.0));
  // Compile and execute the same logical plan with a monitor attached.
  ExecutionMonitor monitor;
  job.options().monitor = &monitor;
  ASSERT_TRUE(quanta.Collect().ok());
  ASSERT_FALSE(monitor.records().empty());

  // Recompile identically to price the stages.
  auto compiled = ctx.Compile(job.logical_plan(), job.options());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  CostCalibrator calibrator;
  ASSERT_TRUE(ObserveJob(*compiled, monitor, &calibrator).ok());
  const std::string platform =
      compiled->eplan.stages[0].platform()->name();
  EXPECT_GE(calibrator.observations(platform), 1);
  EXPECT_GT(calibrator.FactorFor(platform), 0.0);
}

TEST(ObserveJobTest, NullCalibratorRejected) {
  CompiledJob job;
  ExecutionMonitor monitor;
  EXPECT_TRUE(ObserveJob(job, monitor, nullptr).IsInvalidArgument());
}

TEST(LoadFromStorageTest, BridgesStorageIntoDataflow) {
  RheemContext ctx;
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  storage::StorageManager manager;
  ASSERT_TRUE(
      manager.RegisterBackend(std::make_unique<storage::MemColumnStore>()).ok());
  std::vector<Record> rows;
  for (int i = 0; i < 10; ++i) rows.push_back(Record({Value(i)}));
  ASSERT_TRUE(manager.Backend("mem-column")
                  .ValueOrDie()
                  ->Put("numbers", Dataset(std::move(rows)))
                  .ok());
  RheemJob job(&ctx);
  auto quanta = job.LoadFromStorage(manager, "numbers");
  ASSERT_TRUE(quanta.ok()) << quanta.status().ToString();
  auto out = quanta->Filter([](const Record& r) {
                     return r[0].ToInt64Or(0) >= 5;
                   })
                 .Collect();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 5u);

  EXPECT_TRUE(job.LoadFromStorage(manager, "ghost").status().IsNotFound());
}

}  // namespace
}  // namespace rheem

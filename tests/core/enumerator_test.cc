#include "core/optimizer/enumerator.h"

#include <gtest/gtest.h>

#include "core/operators/physical_ops.h"
#include "platforms/javasim/javasim_platform.h"
#include "platforms/relsim/relsim_platform.h"
#include "platforms/sparksim/sparksim_platform.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

MapUdf Identity(double cost = 1.0) {
  MapUdf udf;
  udf.fn = [](const Record& r) { return r; };
  udf.meta.cost_factor = cost;
  return udf;
}

class EnumeratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register(std::make_unique<JavaSimPlatform>(config_)).ok());
    ASSERT_TRUE(registry_.Register(std::make_unique<SparkSimPlatform>(config_)).ok());
    ASSERT_TRUE(registry_.Register(std::make_unique<RelSimPlatform>(config_)).ok());
  }

  PlatformAssignment Enumerate(const Plan& plan,
                               EnumeratorOptions options = {}) {
    auto est = CardinalityEstimator::Estimate(plan);
    EXPECT_TRUE(est.ok()) << est.status().ToString();
    Enumerator e(&registry_, &movement_);
    auto out = e.Run(plan, *est, options);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::move(out).ValueOrDie();
  }

  Config config_;
  PlatformRegistry registry_;
  MovementCostModel movement_;
};

TEST_F(EnumeratorTest, AssignsEveryOperator) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(100));
  auto* m = plan.Add<MapOp>({src}, Identity());
  auto* sink = plan.Add<CollectOp>({m});
  plan.SetSink(sink);
  auto assignment = Enumerate(plan);
  EXPECT_EQ(assignment.by_op.size(), 3u);
  for (const auto& [id, p] : assignment.by_op) {
    EXPECT_NE(p, nullptr);
  }
  EXPECT_GT(assignment.estimated_cost_micros, 0.0);
}

TEST_F(EnumeratorTest, SmallJobPrefersJavaOverSpark) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(100));
  auto* m = plan.Add<MapOp>({src}, Identity());
  plan.SetSink(plan.Add<CollectOp>({m}));
  auto assignment = Enumerate(plan);
  EXPECT_EQ(assignment.by_op.at(m->id())->name(), "javasim");
}

TEST_F(EnumeratorTest, HugeParallelJobPrefersSpark) {
  Plan plan;
  // Sources report true size; fake a big one via a small dataset is not
  // possible, so build a genuinely large cheap source.
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(200000));
  auto* m = plan.Add<MapOp>({src}, Identity(50.0));  // expensive UDF
  plan.SetSink(plan.Add<CollectOp>({m}));
  auto assignment = Enumerate(plan);
  EXPECT_EQ(assignment.by_op.at(m->id())->name(), "sparksim");
}

TEST_F(EnumeratorTest, ForcePlatformOverridesChoice) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
  auto* m = plan.Add<MapOp>({src}, Identity());
  plan.SetSink(plan.Add<CollectOp>({m}));
  EnumeratorOptions options;
  options.force_platform = "sparksim";
  auto assignment = Enumerate(plan, options);
  for (const auto& [id, p] : assignment.by_op) {
    EXPECT_EQ(p->name(), "sparksim");
  }
}

TEST_F(EnumeratorTest, ForceUnknownPlatformFails) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
  plan.SetSink(plan.Add<CollectOp>({src}));
  auto est = CardinalityEstimator::Estimate(plan);
  Enumerator e(&registry_, &movement_);
  EnumeratorOptions options;
  options.force_platform = "flink";
  EXPECT_TRUE(e.Run(plan, *est, options).status().IsNotFound());
}

TEST_F(EnumeratorTest, PinRoutesSingleOperator) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
  auto* m = plan.Add<MapOp>({src}, Identity());
  plan.SetSink(plan.Add<CollectOp>({m}));
  EnumeratorOptions options;
  options.pinned_platforms[m->id()] = "sparksim";
  auto assignment = Enumerate(plan, options);
  EXPECT_EQ(assignment.by_op.at(m->id())->name(), "sparksim");
}

TEST_F(EnumeratorTest, UnsupportedOperatorAvoidsPlatform) {
  // relsim cannot run Map; forcing relsim must fail for a Map plan.
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
  auto* m = plan.Add<MapOp>({src}, Identity());
  plan.SetSink(plan.Add<CollectOp>({m}));
  auto est = CardinalityEstimator::Estimate(plan);
  Enumerator e(&registry_, &movement_);
  EnumeratorOptions options;
  options.force_platform = "relsim";
  EXPECT_TRUE(e.Run(plan, *est, options).status().IsUnsupported());
}

TEST_F(EnumeratorTest, LoopCostPenalizesSparkForSmallIterativeJobs) {
  auto body = std::make_shared<Plan>();
  auto* state = body->Add<LoopStateOp>({});
  auto* data = body->Add<LoopDataOp>({});
  auto* bm = body->Add<BroadcastMapOp>(
      {data, state},
      BroadcastMapUdf{[](const Record& r, const Dataset&) { return r; },
                      UdfMeta::Expensive(4.0)});
  ReduceUdf red;
  red.fn = [](const Record& a, const Record&) { return a; };
  auto* gr = body->Add<GlobalReduceOp>({bm}, red);
  body->SetSink(gr);

  Plan plan;
  auto* init = plan.Add<CollectionSourceOp>({}, Numbers(1));
  auto* points = plan.Add<CollectionSourceOp>({}, Numbers(200));
  auto* loop = plan.Add<RepeatOp>({init, points}, 100, body);
  plan.SetSink(plan.Add<CollectOp>({loop}));
  auto assignment = Enumerate(plan);
  EXPECT_EQ(assignment.by_op.at(loop->id())->name(), "javasim");
}

TEST_F(EnumeratorTest, PlanCostOnPlatformRejectsUnsupported) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10));
  auto* m = plan.Add<MapOp>({src}, Identity());
  plan.SetSink(plan.Add<CollectOp>({m}));
  auto est = CardinalityEstimator::Estimate(plan);
  Enumerator e(&registry_, &movement_);
  Platform* relsim = registry_.Get("relsim").ValueOrDie();
  EXPECT_TRUE(e.PlanCostOnPlatform(plan, *est, relsim).status().IsUnsupported());
  Platform* java = registry_.Get("javasim").ValueOrDie();
  auto cost = e.PlanCostOnPlatform(plan, *est, java);
  ASSERT_TRUE(cost.ok());
  EXPECT_GT(*cost, 0.0);
}

TEST_F(EnumeratorTest, SupportsDeepChecksLoopBodies) {
  auto body = std::make_shared<Plan>();
  auto* state = body->Add<LoopStateOp>({});
  auto* m = body->Add<MapOp>({state}, Identity());  // relsim can't run Map
  body->SetSink(m);
  Plan plan;
  auto* init = plan.Add<CollectionSourceOp>({}, Numbers(1));
  auto* data = plan.Add<CollectionSourceOp>({}, Numbers(10));
  auto* loop = plan.Add<RepeatOp>({init, data}, 2, body);
  plan.SetSink(loop);
  Platform* relsim = registry_.Get("relsim").ValueOrDie();
  Platform* java = registry_.Get("javasim").ValueOrDie();
  EXPECT_FALSE(Enumerator::SupportsDeep(*relsim, *loop));
  EXPECT_TRUE(Enumerator::SupportsDeep(*java, *loop));
}

TEST_F(EnumeratorTest, MovementAwareRoutingPrefersColocationForBigData) {
  // One cheap relational-friendly filter over a big dataset feeding an
  // expensive UDF map. With movement costs on, the enumerator should avoid
  // bouncing the big intermediate across platforms.
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(50000));
  PredicateUdf pred;
  pred.fn = [](const Record&) { return true; };
  pred.meta.selectivity = 1.0;  // nothing filtered: intermediate stays big
  auto* f = plan.Add<FilterOp>({src}, pred);
  auto* m = plan.Add<MapOp>({f}, Identity(1.0));
  plan.SetSink(plan.Add<CollectOp>({m}));

  EnumeratorOptions aware;
  aware.movement_aware = true;
  auto with_movement = Enumerate(plan, aware);
  // Filter and map should land on the same platform when movement matters.
  EXPECT_EQ(with_movement.by_op.at(f->id()), with_movement.by_op.at(m->id()));
}

TEST_F(EnumeratorTest, ChooseAlgorithmsFlipsGroupByWhenCheaper) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(10000));
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  GroupUdf group;
  group.fn = [](const Value&, const std::vector<Record>& rs) { return rs; };
  auto* gb = plan.Add<GroupByKeyOp>({src}, key, group, GroupByAlgorithm::kSort);
  plan.SetSink(plan.Add<CollectOp>({gb}));
  EnumeratorOptions options;
  options.choose_algorithms = true;
  Enumerate(plan, options);
  // The cost model rates hash cheaper at this size; the optimizer flips it
  // (paper §3.1 Example 2).
  EXPECT_EQ(gb->algorithm(), GroupByAlgorithm::kHash);
}

TEST_F(EnumeratorTest, EmptyRegistryFails) {
  PlatformRegistry empty;
  Enumerator e(&empty, &movement_);
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(1));
  plan.SetSink(plan.Add<CollectOp>({src}));
  auto est = CardinalityEstimator::Estimate(plan);
  EXPECT_FALSE(e.Run(plan, *est).ok());
}

}  // namespace
}  // namespace rheem

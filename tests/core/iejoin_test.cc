#include "core/operators/iejoin.h"

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rheem {
namespace kernels {
namespace {

Dataset TwoColumns(const std::vector<std::pair<double, double>>& rows) {
  std::vector<Record> records;
  for (auto [a, b] : rows) records.push_back(Record({Value(a), Value(b)}));
  return Dataset(std::move(records));
}

std::multiset<std::string> AsMultiset(const Dataset& d) {
  std::multiset<std::string> out;
  for (const Record& r : d.records()) out.insert(r.ToString());
  return out;
}

TEST(IEJoinTest, ClassicSalaryTaxExample) {
  // Violation pairs: t1.salary > t2.salary AND t1.tax < t2.tax.
  Dataset t = TwoColumns({{100, 20}, {200, 10}, {150, 15}, {50, 30}});
  IEJoinSpec spec;
  spec.left_col1 = 0;
  spec.op1 = CompareOp::kGreater;
  spec.right_col1 = 0;
  spec.left_col2 = 1;
  spec.op2 = CompareOp::kLess;
  spec.right_col2 = 1;
  auto fast = IEJoin(spec, t, t);
  auto ref = IEJoinNestedLoopReference(spec, t, t);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(AsMultiset(*fast), AsMultiset(*ref));
  // Every pair with higher salary also has lower tax here except those
  // involving (50,30) as the left side: 3+2+1 = 6 violating ordered pairs.
  EXPECT_EQ(fast->size(), 6u);
}

TEST(IEJoinTest, EmptyInputs) {
  IEJoinSpec spec;
  Dataset t = TwoColumns({{1, 2}});
  EXPECT_TRUE(IEJoin(spec, Dataset(), t)->empty());
  EXPECT_TRUE(IEJoin(spec, t, Dataset())->empty());
  EXPECT_TRUE(IEJoin(spec, Dataset(), Dataset())->empty());
}

TEST(IEJoinTest, ColumnOutOfRangeFails) {
  IEJoinSpec spec;
  spec.left_col1 = 5;
  Dataset t = TwoColumns({{1, 2}});
  EXPECT_FALSE(IEJoin(spec, t, t).ok());
}

TEST(IEJoinTest, StringColumnsSupported) {
  std::vector<Record> rows;
  rows.push_back(Record({Value("a"), Value("z")}));
  rows.push_back(Record({Value("b"), Value("y")}));
  rows.push_back(Record({Value("c"), Value("x")}));
  Dataset t{std::vector<Record>(rows)};
  IEJoinSpec spec;  // default: col0 <, col0 ... set ops
  spec.left_col1 = 0;
  spec.op1 = CompareOp::kLess;
  spec.right_col1 = 0;
  spec.left_col2 = 1;
  spec.op2 = CompareOp::kGreater;
  spec.right_col2 = 1;
  auto fast = IEJoin(spec, t, t);
  auto ref = IEJoinNestedLoopReference(spec, t, t);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(AsMultiset(*fast), AsMultiset(*ref));
  EXPECT_EQ(fast->size(), 3u);  // fully anti-correlated
}

TEST(IEJoinTest, TwoDistinctRelations) {
  Dataset left = TwoColumns({{1, 9}, {5, 5}, {9, 1}});
  Dataset right = TwoColumns({{2, 2}, {6, 6}});
  IEJoinSpec spec;
  spec.op1 = CompareOp::kLess;     // l.a < r.a
  spec.op2 = CompareOp::kGreater;  // l.b > r.b
  spec.left_col2 = 1;
  spec.right_col2 = 1;
  auto fast = IEJoin(spec, left, right);
  auto ref = IEJoinNestedLoopReference(spec, left, right);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(AsMultiset(*fast), AsMultiset(*ref));
}

/// Exhaustive parameterized sweep: every combination of the two comparison
/// operators, against the nested-loop reference on random data with heavy
/// ties (to exercise strict/non-strict boundaries).
class IEJoinOpsTest
    : public ::testing::TestWithParam<std::tuple<CompareOp, CompareOp>> {};

TEST_P(IEJoinOpsTest, AgreesWithNestedLoopReference) {
  const auto [op1, op2] = GetParam();
  Rng rng(static_cast<uint64_t>(static_cast<int>(op1)) * 31 +
          static_cast<uint64_t>(static_cast<int>(op2)) + 7);
  // Small value domain -> plenty of ties.
  auto gen = [&rng](int n) {
    std::vector<std::pair<double, double>> rows;
    for (int i = 0; i < n; ++i) {
      rows.emplace_back(static_cast<double>(rng.NextInt(0, 9)),
                        static_cast<double>(rng.NextInt(0, 9)));
    }
    return TwoColumns(rows);
  };
  IEJoinSpec spec;
  spec.left_col1 = 0;
  spec.right_col1 = 0;
  spec.op1 = op1;
  spec.left_col2 = 1;
  spec.right_col2 = 1;
  spec.op2 = op2;
  for (int trial = 0; trial < 5; ++trial) {
    Dataset left = gen(60);
    Dataset right = gen(40);
    auto fast = IEJoin(spec, left, right);
    auto ref = IEJoinNestedLoopReference(spec, left, right);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(AsMultiset(*fast), AsMultiset(*ref))
        << "ops " << CompareOpToString(op1) << " / " << CompareOpToString(op2);
    // Self-join case too.
    auto fast_self = IEJoin(spec, left, left);
    auto ref_self = IEJoinNestedLoopReference(spec, left, left);
    ASSERT_TRUE(fast_self.ok());
    EXPECT_EQ(AsMultiset(*fast_self), AsMultiset(*ref_self));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperatorCombinations, IEJoinOpsTest,
    ::testing::Combine(::testing::Values(CompareOp::kLess, CompareOp::kLessEqual,
                                         CompareOp::kGreater,
                                         CompareOp::kGreaterEqual),
                       ::testing::Values(CompareOp::kLess, CompareOp::kLessEqual,
                                         CompareOp::kGreater,
                                         CompareOp::kGreaterEqual)),
    [](const ::testing::TestParamInfo<std::tuple<CompareOp, CompareOp>>& info) {
      auto name = [](CompareOp op) {
        switch (op) {
          case CompareOp::kLess: return "Lt";
          case CompareOp::kLessEqual: return "Le";
          case CompareOp::kGreater: return "Gt";
          case CompareOp::kGreaterEqual: return "Ge";
        }
        return "?";
      };
      return std::string(name(std::get<0>(info.param))) +
             name(std::get<1>(info.param));
    });

TEST(IEJoinTest, DistinctColumnsPerSide) {
  // left uses cols (0,1), right uses cols (1,0): asymmetric column choice.
  Dataset left = TwoColumns({{1, 5}, {3, 3}, {5, 1}});
  Dataset right = TwoColumns({{4, 2}, {2, 4}});
  IEJoinSpec spec;
  spec.left_col1 = 0;
  spec.right_col1 = 1;   // l.a vs r.b
  spec.op1 = CompareOp::kLess;
  spec.left_col2 = 1;
  spec.right_col2 = 0;   // l.b vs r.a
  spec.op2 = CompareOp::kGreaterEqual;
  auto fast = IEJoin(spec, left, right);
  auto ref = IEJoinNestedLoopReference(spec, left, right);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(AsMultiset(*fast), AsMultiset(*ref));
}

TEST(IEJoinTest, AllTiesNonStrictProducesFullCross) {
  Dataset t = TwoColumns({{1, 1}, {1, 1}, {1, 1}});
  IEJoinSpec spec;
  spec.op1 = CompareOp::kLessEqual;
  spec.op2 = CompareOp::kGreaterEqual;
  spec.left_col2 = 1;
  spec.right_col2 = 1;
  auto out = IEJoin(spec, t, t);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 9u);
}

TEST(IEJoinTest, AllTiesStrictProducesNothing) {
  Dataset t = TwoColumns({{1, 1}, {1, 1}, {1, 1}});
  IEJoinSpec spec;
  spec.op1 = CompareOp::kLess;
  spec.op2 = CompareOp::kGreater;
  spec.left_col2 = 1;
  spec.right_col2 = 1;
  auto out = IEJoin(spec, t, t);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(IEJoinTest, OutputConcatenatesLeftThenRight) {
  Dataset left = TwoColumns({{1, 9}});
  Dataset right = TwoColumns({{2, 2}});
  IEJoinSpec spec;
  spec.op1 = CompareOp::kLess;
  spec.op2 = CompareOp::kGreater;
  spec.left_col2 = 1;
  spec.right_col2 = 1;
  auto out = IEJoin(spec, left, right);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->at(0), Record({Value(1.0), Value(9.0), Value(2.0), Value(2.0)}));
}

}  // namespace
}  // namespace kernels
}  // namespace rheem

#include "core/optimizer/stage_splitter.h"

#include <gtest/gtest.h>

#include "core/operators/physical_ops.h"
#include "platforms/javasim/javasim_platform.h"
#include "platforms/sparksim/sparksim_platform.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

MapUdf Identity() {
  MapUdf udf;
  udf.fn = [](const Record& r) { return r; };
  return udf;
}

class StageSplitterTest : public ::testing::Test {
 protected:
  StageSplitterTest() : java_(config_), spark_(config_) {}

  PlatformAssignment Assign(const Plan& plan,
                            const std::map<int, Platform*>& by_op) {
    PlatformAssignment a;
    a.by_op = by_op;
    return a;
  }

  Config config_;
  JavaSimPlatform java_;
  SparkSimPlatform spark_;
};

TEST_F(StageSplitterTest, SinglePlatformYieldsOneStage) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(5));
  auto* m = plan.Add<MapOp>({src}, Identity());
  auto* sink = plan.Add<CollectOp>({m});
  plan.SetSink(sink);
  auto eplan = StageSplitter::Split(
      plan, Assign(plan, {{src->id(), &java_}, {m->id(), &java_},
                          {sink->id(), &java_}}));
  ASSERT_TRUE(eplan.ok());
  ASSERT_EQ(eplan->stages.size(), 1u);
  EXPECT_EQ(eplan->stages[0].ops().size(), 3u);
  EXPECT_EQ(eplan->final_stage, 0);
  ASSERT_EQ(eplan->stages[0].outputs().size(), 1u);
  EXPECT_EQ(eplan->stages[0].outputs()[0], sink);
  EXPECT_TRUE(eplan->stages[0].boundary_inputs().empty());
}

TEST_F(StageSplitterTest, PlatformChangeCreatesBoundary) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(5));
  auto* m1 = plan.Add<MapOp>({src}, Identity());
  auto* m2 = plan.Add<MapOp>({m1}, Identity());
  auto* sink = plan.Add<CollectOp>({m2});
  plan.SetSink(sink);
  auto eplan = StageSplitter::Split(
      plan, Assign(plan, {{src->id(), &java_}, {m1->id(), &java_},
                          {m2->id(), &spark_}, {sink->id(), &spark_}}));
  ASSERT_TRUE(eplan.ok());
  ASSERT_EQ(eplan->stages.size(), 2u);
  const Stage& first = eplan->stages[0];
  const Stage& second = eplan->stages[1];
  EXPECT_EQ(first.platform(), &java_);
  EXPECT_EQ(second.platform(), &spark_);
  ASSERT_EQ(first.outputs().size(), 1u);
  EXPECT_EQ(first.outputs()[0], m1);
  ASSERT_EQ(second.boundary_inputs().size(), 1u);
  EXPECT_EQ(second.boundary_inputs()[0], m1);
  EXPECT_EQ(second.upstream_stages(), std::vector<int>{0});
  EXPECT_EQ(eplan->final_stage, 1);
}

TEST_F(StageSplitterTest, DiamondAcrossPlatformsStaysAcyclic) {
  // src(java) -> a(java) -> b(spark) -> join(java); join also reads a.
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(5));
  auto* a = plan.Add<MapOp>({src}, Identity());
  auto* b = plan.Add<MapOp>({a}, Identity());
  auto* u = plan.Add<UnionOp>({a, b});
  auto* sink = plan.Add<CollectOp>({u});
  plan.SetSink(sink);
  auto eplan = StageSplitter::Split(
      plan, Assign(plan, {{src->id(), &java_}, {a->id(), &java_},
                          {b->id(), &spark_}, {u->id(), &java_},
                          {sink->id(), &java_}}));
  ASSERT_TRUE(eplan.ok()) << eplan.status().ToString();
  // Schedule order must be valid: every stage's upstreams precede it.
  for (const Stage& s : eplan->stages) {
    for (int dep : s.upstream_stages()) {
      EXPECT_LT(dep, s.id());
    }
  }
  // 'a' feeds a boundary (to b's spark stage), so it must be an output of
  // its stage even though 'u' consumes it in-platform.
  bool a_is_output = false;
  for (const Stage& s : eplan->stages) {
    for (const Operator* out : s.outputs()) {
      if (out == a) a_is_output = true;
    }
  }
  EXPECT_TRUE(a_is_output);
}

TEST_F(StageSplitterTest, MissingAssignmentFails) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(5));
  auto* sink = plan.Add<CollectOp>({src});
  plan.SetSink(sink);
  auto eplan = StageSplitter::Split(plan,
                                    Assign(plan, {{src->id(), &java_}}));
  EXPECT_FALSE(eplan.ok());
}

TEST_F(StageSplitterTest, TwoIndependentSourcesMergeAtBinaryOp) {
  Plan plan;
  auto* a = plan.Add<CollectionSourceOp>({}, Numbers(3));
  auto* b = plan.Add<CollectionSourceOp>({}, Numbers(3));
  auto* u = plan.Add<UnionOp>({a, b});
  auto* sink = plan.Add<CollectOp>({u});
  plan.SetSink(sink);
  auto eplan = StageSplitter::Split(
      plan, Assign(plan, {{a->id(), &java_}, {b->id(), &java_},
                          {u->id(), &java_}, {sink->id(), &java_}}));
  ASSERT_TRUE(eplan.ok());
  // All on one platform: a and b may or may not collapse into one group,
  // but the stage graph must execute (no dangling boundaries).
  std::size_t total_ops = 0;
  for (const Stage& s : eplan->stages) total_ops += s.ops().size();
  EXPECT_EQ(total_ops, 4u);
}

TEST_F(StageSplitterTest, ExplainMentionsStagesAndPlatforms) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, Numbers(5));
  auto* sink = plan.Add<CollectOp>({src});
  plan.SetSink(sink);
  auto eplan = StageSplitter::Split(
      plan, Assign(plan, {{src->id(), &java_}, {sink->id(), &java_}}));
  ASSERT_TRUE(eplan.ok());
  EstimateMap est = CardinalityEstimator::Estimate(plan).ValueOrDie();
  const std::string text = eplan->Explain(est);
  EXPECT_NE(text.find("stage 0 on javasim"), std::string::npos);
  EXPECT_NE(text.find("[final]"), std::string::npos);
  EXPECT_NE(text.find("~5 rec"), std::string::npos);
}

}  // namespace
}  // namespace rheem

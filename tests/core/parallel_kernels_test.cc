// Parity suite for morsel-parallel kernels and pipeline fusion: the parallel
// path (including FusedPipeline) must be byte-identical to the serial path at
// every size around the morsel boundary. Also the concurrency tests run under
// TSan in CI (RHEEM_SANITIZE=thread builds this binary).
#include "core/operators/kernels.h"

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/operators/fusion.h"
#include "core/plan/plan.h"

namespace rheem {
namespace kernels {
namespace {

// Small morsels so the 10x-morsel case stays fast.
constexpr std::size_t kMorsel = 256;

KernelOptions Par() {
  KernelOptions opts;
  opts.parallel = true;
  opts.morsel_size = kMorsel;
  return opts;
}

std::vector<std::size_t> ParitySizes() {
  return {0, 1, kMorsel - 1, kMorsel, 10 * kMorsel + 7};
}

// Three fields: a skewed key, a unique value, and a pseudo-random payload.
Dataset MakeInput(std::size_t n) {
  std::vector<Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(Record({Value(static_cast<int64_t>(i % 17)),
                              Value(static_cast<int64_t>(i)),
                              Value(static_cast<int64_t>(i * 31 % 101))}));
  }
  return Dataset(std::move(records));
}

void ExpectSameDataset(const Dataset& serial, const Dataset& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial.records()[i], parallel.records()[i]) << "row " << i;
  }
}

MapUdf DoubleSecond() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    return Record({r[0], Value(r[1].ToInt64Or(0) * 2), r[2]});
  };
  return udf;
}

FlatMapUdf RepeatByKey() {
  FlatMapUdf udf;
  udf.fn = [](const Record& r) {
    // 0..2 copies: exercises variable-length morsel outputs.
    std::vector<Record> out;
    for (int64_t k = 0; k < r[0].ToInt64Or(0) % 3; ++k) {
      out.push_back(Record({r[1], Value(k)}));
    }
    return out;
  };
  return udf;
}

PredicateUdf DropMultiplesOfSeven() {
  PredicateUdf udf;
  udf.fn = [](const Record& r) { return r[1].ToInt64Or(0) % 7 != 0; };
  return udf;
}

KeyUdf FirstField() {
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  return key;
}

ReduceUdf SumSecond() {
  ReduceUdf udf;
  udf.fn = [](const Record& a, const Record& b) {
    return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
  };
  return udf;
}

ReduceUdf SumFirst() {
  ReduceUdf udf;
  udf.fn = [](const Record& a, const Record& b) {
    return Record({Value(a[0].ToInt64Or(0) + b[0].ToInt64Or(0))});
  };
  return udf;
}

GroupUdf CountAndSum() {
  GroupUdf udf;
  udf.fn = [](const Value& key, const std::vector<Record>& members) {
    int64_t sum = 0;
    for (const Record& m : members) sum += m[1].ToInt64Or(0);
    return std::vector<Record>{
        Record({key, Value(static_cast<int64_t>(members.size())), Value(sum)})};
  };
  return udf;
}

BroadcastMapUdf AddBroadcastSize() {
  BroadcastMapUdf udf;
  udf.fn = [](const Record& r, const Dataset& side) {
    return Record({r[0], Value(r[1].ToInt64Or(0) +
                               static_cast<int64_t>(side.size()))});
  };
  return udf;
}

// Runs `kernel` serially and in parallel on every parity size and demands
// byte-identical outputs.
template <typename KernelFn>
void CheckParity(const char* label, KernelFn kernel) {
  for (std::size_t n : ParitySizes()) {
    SCOPED_TRACE(std::string(label) + " n=" + std::to_string(n));
    const Dataset in = MakeInput(n);
    auto serial = kernel(in, KernelOptions::Serial());
    auto parallel = kernel(in, Par());
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectSameDataset(*serial, *parallel);
  }
}

TEST(KernelParityTest, Map) {
  CheckParity("Map", [](const Dataset& in, const KernelOptions& o) {
    return Map(DoubleSecond(), in, o);
  });
}

TEST(KernelParityTest, FlatMap) {
  CheckParity("FlatMap", [](const Dataset& in, const KernelOptions& o) {
    return FlatMap(RepeatByKey(), in, o);
  });
}

TEST(KernelParityTest, Filter) {
  CheckParity("Filter", [](const Dataset& in, const KernelOptions& o) {
    return Filter(DropMultiplesOfSeven(), in, o);
  });
}

TEST(KernelParityTest, Project) {
  CheckParity("Project", [](const Dataset& in, const KernelOptions& o) {
    return Project({2, 0}, in, o);
  });
}

TEST(KernelParityTest, ProjectReportsFirstBadRecord) {
  // Error behaviour must match the serial path too: out-of-range columns.
  const Dataset in = MakeInput(10 * kMorsel + 7);
  auto serial = Project({5}, in, KernelOptions::Serial());
  auto parallel = Project({5}, in, Par());
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(serial.status().ToString(), parallel.status().ToString());
}

TEST(KernelParityTest, SortByKey) {
  // The key i%17 is heavily tied: parallel merge must preserve stability.
  CheckParity("SortByKey", [](const Dataset& in, const KernelOptions& o) {
    return SortByKey(FirstField(), in, o);
  });
}

TEST(KernelParityTest, Sample) {
  CheckParity("Sample", [](const Dataset& in, const KernelOptions& o) {
    return Sample(0.4, 42, in, o);
  });
}

TEST(KernelParityTest, ZipWithId) {
  CheckParity("ZipWithId", [](const Dataset& in, const KernelOptions& o) {
    return ZipWithId(1000, in, o);
  });
}

TEST(KernelParityTest, ReduceByKey) {
  CheckParity("ReduceByKey", [](const Dataset& in, const KernelOptions& o) {
    return ReduceByKey(FirstField(), SumSecond(), in, o);
  });
}

TEST(KernelParityTest, HashGroupBy) {
  CheckParity("HashGroupBy", [](const Dataset& in, const KernelOptions& o) {
    return HashGroupBy(FirstField(), CountAndSum(), in, o);
  });
}

TEST(KernelParityTest, SortGroupBy) {
  CheckParity("SortGroupBy", [](const Dataset& in, const KernelOptions& o) {
    return SortGroupBy(FirstField(), CountAndSum(), in, o);
  });
}

TEST(KernelParityTest, GlobalReduce) {
  CheckParity("GlobalReduce", [](const Dataset& in, const KernelOptions& o) {
    return GlobalReduce(SumFirst(), in, o);
  });
}

TEST(KernelParityTest, Count) {
  CheckParity("Count", [](const Dataset& in, const KernelOptions& o) {
    return Count(in, o);
  });
}

TEST(KernelParityTest, BroadcastMap) {
  const Dataset side = MakeInput(5);
  CheckParity("BroadcastMap", [&](const Dataset& in, const KernelOptions& o) {
    return BroadcastMap(AddBroadcastSize(), in, side, o);
  });
}

TEST(KernelParityTest, HashJoin) {
  for (std::size_t n : ParitySizes()) {
    SCOPED_TRACE("HashJoin n=" + std::to_string(n));
    const Dataset left = MakeInput(n);
    const Dataset right = MakeInput(std::min<std::size_t>(n, 3 * 17 + 5));
    auto serial = HashJoin(FirstField(), FirstField(), left, right,
                           KernelOptions::Serial());
    auto parallel = HashJoin(FirstField(), FirstField(), left, right, Par());
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectSameDataset(*serial, *parallel);
  }
}

std::vector<FusedStep> MapFilterFlatMapProjectSteps() {
  return {FusedStep::OfMap(DoubleSecond()),
          FusedStep::OfFilter(DropMultiplesOfSeven()),
          FusedStep::OfFlatMap(RepeatByKey()),
          FusedStep::OfProject({1, 0})};
}

// The fused pass must equal applying the kernels one by one — serially and
// in parallel.
TEST(KernelParityTest, FusedPipelineMatchesUnfusedChain) {
  for (std::size_t n : ParitySizes()) {
    SCOPED_TRACE("FusedPipeline n=" + std::to_string(n));
    const Dataset in = MakeInput(n);
    auto mapped = Map(DoubleSecond(), in, KernelOptions::Serial());
    ASSERT_TRUE(mapped.ok());
    auto filtered =
        Filter(DropMultiplesOfSeven(), *mapped, KernelOptions::Serial());
    ASSERT_TRUE(filtered.ok());
    auto flat = FlatMap(RepeatByKey(), *filtered, KernelOptions::Serial());
    ASSERT_TRUE(flat.ok());
    auto unfused = Project({1, 0}, *flat, KernelOptions::Serial());
    ASSERT_TRUE(unfused.ok());

    auto fused_serial =
        FusedPipeline(MapFilterFlatMapProjectSteps(), in,
                      KernelOptions::Serial());
    auto fused_parallel = FusedPipeline(MapFilterFlatMapProjectSteps(), in,
                                        Par());
    ASSERT_TRUE(fused_serial.ok()) << fused_serial.status().ToString();
    ASSERT_TRUE(fused_parallel.ok()) << fused_parallel.status().ToString();
    ExpectSameDataset(*unfused, *fused_serial);
    ExpectSameDataset(*unfused, *fused_parallel);
  }
}

TEST(KernelParityTest, EmptyFusedPipelineIsIdentity) {
  const Dataset in = MakeInput(kMorsel + 3);
  auto out = FusedPipeline({}, in, Par());
  ASSERT_TRUE(out.ok());
  ExpectSameDataset(in, *out);
}

TEST(KernelOptionsTest, FromConfigReadsKeys) {
  Config config;
  config.SetBool("kernels.parallel", false);
  config.SetInt("kernels.morsel_size", 512);
  KernelOptions opts = KernelOptions::FromConfig(config);
  EXPECT_FALSE(opts.parallel);
  EXPECT_EQ(opts.morsel_size, 512u);
  EXPECT_TRUE(KernelOptions().parallel);  // default on
}

TEST(KernelTimingTest, RecordsCallsAndModelsWidth) {
  ResetKernelTimings();
  const std::size_t n = 10 * kMorsel + 7;
  ASSERT_TRUE(Map(DoubleSecond(), MakeInput(n), Par()).ok());
  const auto timings = SnapshotKernelTimings();
  const KernelTiming* map = nullptr;
  for (const auto& t : timings) {
    if (t.kernel == "Map") map = &t;
  }
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->invocations, 1);
  EXPECT_EQ(map->records_in, static_cast<int64_t>(n));
  // Wider modeled pools can only be faster, floored at the critical path.
  EXPECT_GE(ModeledMicrosAtWidth(*map, 1), ModeledMicrosAtWidth(*map, 4));
  EXPECT_GE(ModeledMicrosAtWidth(*map, 4), ModeledMicrosAtWidth(*map, 64));
  EXPECT_GE(ModeledMicrosAtWidth(*map, 64),
            map->serial_micros + map->critical_path_micros);
  ResetKernelTimings();
  EXPECT_TRUE(SnapshotKernelTimings().empty());
}

// --- Fusion planner -------------------------------------------------------

PredicateUdf KeepAll() {
  PredicateUdf udf;
  udf.fn = [](const Record&) { return true; };
  return udf;
}

TEST(FusionPlannerTest, FusesMaximalChains) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, MakeInput(8));
  auto* m = plan.Add<MapOp>({src}, DoubleSecond());
  auto* f = plan.Add<FilterOp>({m}, KeepAll());
  auto* p = plan.Add<ProjectOp>({f}, std::vector<int>{0, 1});
  auto* sink = plan.Add<CollectOp>({p});
  plan.SetSink(sink);
  auto topo = plan.TopologicalOrder();
  ASSERT_TRUE(topo.ok());

  auto units = fusion::PlanFusionUnits(*topo, {}, /*enable=*/true);
  ASSERT_EQ(units.size(), 3u);  // source | map+filter+project | collect
  EXPECT_FALSE(units[0].fused());
  ASSERT_TRUE(units[1].fused());
  EXPECT_EQ(units[1].ops.size(), 3u);
  EXPECT_EQ(units[1].ops.front(), m);
  EXPECT_EQ(units[1].ops.back(), p);
  EXPECT_FALSE(units[2].fused());

  const auto steps = fusion::StepsFor(units[1].ops);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].kind, FusedStep::Kind::kMap);
  EXPECT_EQ(steps[1].kind, FusedStep::Kind::kFilter);
  EXPECT_EQ(steps[2].kind, FusedStep::Kind::kProject);
}

TEST(FusionPlannerTest, DisabledMeansSingletonUnits) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, MakeInput(4));
  auto* m = plan.Add<MapOp>({src}, DoubleSecond());
  auto* f = plan.Add<FilterOp>({m}, KeepAll());
  plan.SetSink(f);
  auto topo = plan.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  auto units = fusion::PlanFusionUnits(*topo, {}, /*enable=*/false);
  ASSERT_EQ(units.size(), 3u);
  for (const auto& u : units) EXPECT_FALSE(u.fused());
}

TEST(FusionPlannerTest, PreservedOperatorBreaksChain) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, MakeInput(4));
  auto* m = plan.Add<MapOp>({src}, DoubleSecond());
  auto* f = plan.Add<FilterOp>({m}, KeepAll());
  plan.SetSink(f);
  auto topo = plan.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  // m's result must stay addressable (e.g. a stage output): no fusing past it.
  auto units = fusion::PlanFusionUnits(*topo, {m->id()}, /*enable=*/true);
  ASSERT_EQ(units.size(), 3u);
  for (const auto& u : units) EXPECT_FALSE(u.fused());
}

TEST(FusionPlannerTest, MultiConsumerBreaksChain) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, MakeInput(4));
  auto* m = plan.Add<MapOp>({src}, DoubleSecond());
  auto* f1 = plan.Add<FilterOp>({m}, KeepAll());
  auto* f2 = plan.Add<FilterOp>({m}, KeepAll());
  auto* u = plan.Add<UnionOp>({f1, f2});
  plan.SetSink(u);
  auto topo = plan.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  auto units = fusion::PlanFusionUnits(*topo, {}, /*enable=*/true);
  // m feeds two filters: it cannot be absorbed into either.
  for (const auto& unit : units) {
    if (unit.fused()) {
      for (const Operator* op : unit.ops) EXPECT_NE(op, m);
    }
  }
}

TEST(FusionPlannerTest, NonFusableKindsStayAlone) {
  Plan plan;
  auto* src = plan.Add<CollectionSourceOp>({}, MakeInput(4));
  auto* m = plan.Add<MapOp>({src}, DoubleSecond());
  auto* r = plan.Add<ReduceByKeyOp>({m}, FirstField(), SumSecond());
  auto* m2 = plan.Add<MapOp>({r}, DoubleSecond());
  plan.SetSink(m2);
  auto topo = plan.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  EXPECT_FALSE(fusion::IsFusable(*r));
  EXPECT_TRUE(fusion::IsFusable(*m));
  auto units = fusion::PlanFusionUnits(*topo, {}, /*enable=*/true);
  // Nothing to fuse: map | reduce | map are separated by the key boundary.
  for (const auto& unit : units) EXPECT_FALSE(unit.fused());
}

// --- Concurrency (exercised under TSan in CI) -----------------------------

TEST(KernelConcurrencyTest, ConcurrentParallelKernelsShareDefaultPool) {
  const Dataset in = MakeInput(4 * kMorsel + 3);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&in]() {
      auto mapped = Map(DoubleSecond(), in, Par());
      ASSERT_TRUE(mapped.ok());
      auto reduced = ReduceByKey(FirstField(), SumSecond(), *mapped, Par());
      ASSERT_TRUE(reduced.ok());
      EXPECT_EQ(reduced->size(), 17u);
    });
  }
  for (auto& th : threads) th.join();
}

TEST(KernelConcurrencyTest, ConcurrentFusedPipelines) {
  const Dataset in = MakeInput(4 * kMorsel + 3);
  auto expected = FusedPipeline(MapFilterFlatMapProjectSteps(), in,
                                KernelOptions::Serial());
  ASSERT_TRUE(expected.ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&in, &expected]() {
      auto out = FusedPipeline(MapFilterFlatMapProjectSteps(), in, Par());
      ASSERT_TRUE(out.ok());
      ExpectSameDataset(*expected, *out);
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace kernels
}  // namespace rheem

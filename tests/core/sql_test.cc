// Golden suite for the core SQL frontend: accepted queries snapshot their
// compiled logical plans (the dialect's EXPLAIN), rejected queries assert
// exact error text with 1-based line:col token positions, and expr::Pretty
// output is proven to re-parse through the expression grammar to a tree with
// an identical canonical encoding. The randomized SQL-vs-plan differential
// lives in fuzz_plans_test.cc; this file is the directed complement.

#include "core/sql/sql.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/api/context.h"
#include "core/service/job_server.h"
#include "random_plans.h"
#include "storage/mem_column_store.h"
#include "storage/storage_plan.h"

namespace rheem {
namespace {

using expr::Canonical;
using expr::Pretty;
using testutil::AsMultiset;

class SqlFrontendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok());
    Dataset emp(
        {
            Record({Value(1), Value("eng"), Value(100.0), Value(30)}),
            Record({Value(2), Value("eng"), Value(120.0), Value(35)}),
            Record({Value(3), Value("ops"), Value(90.0), Value(28)}),
            Record({Value(4), Value("hr"), Value(70.0), Value(50)}),
        },
        Schema::Of({{"id", ValueType::kInt64},
                    {"dept", ValueType::kString},
                    {"salary", ValueType::kDouble},
                    {"age", ValueType::kInt64}}));
    Dataset site(
        {
            Record({Value("eng"), Value(static_cast<int64_t>(3))}),
            Record({Value("ops"), Value(static_cast<int64_t>(1))}),
            Record({Value("hr"), Value(static_cast<int64_t>(2))}),
        },
        Schema::Of(
            {{"dept", ValueType::kString}, {"floor", ValueType::kInt64}}));
    ASSERT_TRUE(catalog_.Register("emp", emp).ok());
    ASSERT_TRUE(catalog_.Register("site", site).ok());
  }

  std::string PlanOf(const std::string& query) {
    auto stmt = ctx_.Sql(query, catalog_);
    EXPECT_TRUE(stmt.ok()) << query << "\n" << stmt.status().ToString();
    return stmt.ok() ? stmt->PlanText() : "";
  }

  RheemContext ctx_;
  sql::InMemoryCatalog catalog_;
};

// --- accepted-query plan snapshots -----------------------------------------

TEST_F(SqlFrontendTest, SelectStarPlan) {
  EXPECT_EQ(PlanOf("SELECT * FROM emp"),
            "#0 L:CollectionSource [table=emp]\n"
            "#1 L:Collect <- #0 (sink)\n");
}

TEST_F(SqlFrontendTest, FilterThenProjectionPlan) {
  EXPECT_EQ(
      PlanOf("SELECT id, salary * 1.1 AS raised FROM emp "
             "WHERE age > 30 AND dept <> 'hr'"),
      "#0 L:CollectionSource [table=emp]\n"
      "#1 L:Filter <- #0 [filter=age>30 AND dept!=\"hr\"]\n"
      "#2 L:Map <- #1 [map=[id, salary*1.1]]\n"
      "#3 L:Collect <- #2 (sink)\n");
}

TEST_F(SqlFrontendTest, EquiJoinWithResidualFilterPlan) {
  EXPECT_EQ(PlanOf("SELECT e.id, s.floor FROM emp AS e "
                   "JOIN site AS s ON e.dept = s.dept WHERE s.floor < 3"),
            "#0 L:CollectionSource [table=emp]\n"
            "#1 L:CollectionSource [table=site]\n"
            "#2 L:Join <- #0, #1 [join=(dept, dept_r)]\n"
            "#3 L:Filter <- #2 [filter=floor<3]\n"
            "#4 L:Map <- #3 [map=[id, floor]]\n"
            "#5 L:Collect <- #4 (sink)\n");
}

TEST_F(SqlFrontendTest, ThetaJoinPlan) {
  EXPECT_EQ(PlanOf("SELECT e.id FROM emp AS e JOIN site AS s "
                   "ON e.age < s.floor"),
            "#0 L:CollectionSource [table=emp]\n"
            "#1 L:CollectionSource [table=site]\n"
            "#2 L:ThetaJoin <- #0, #1 [theta=age<floor]\n"
            "#3 L:Map <- #2 [map=[id]]\n"
            "#4 L:Collect <- #3 (sink)\n");
}

TEST_F(SqlFrontendTest, GroupByOrderByLimitPlan) {
  // SUM/AVG/COUNT(*) intern into one pre-aggregation Map; AVG is rewritten
  // as sum * 1.0 / count over the grouped columns.
  EXPECT_EQ(
      PlanOf("SELECT dept, SUM(salary) AS total, AVG(age) AS mean_age, "
             "COUNT(*) AS n FROM emp GROUP BY dept "
             "ORDER BY total DESC LIMIT 2"),
      "#0 L:CollectionSource [table=emp]\n"
      "#1 L:Map <- #0 [map=[dept, salary, age, 1]]\n"
      "#2 L:ReduceByKey <- #1 [key=$0 aggs=[first($0), sum($1), sum($2), "
      "sum($3)]]\n"
      "#3 L:Map <- #2 [map=[dept, $1, $2*1.0/$3, $3]]\n"
      "#4 L:TopK <- #3 [k=2 desc key=total]\n"
      "#5 L:Collect <- #4 (sink)\n");
}

TEST_F(SqlFrontendTest, DistinctPlan) {
  EXPECT_EQ(PlanOf("SELECT DISTINCT dept FROM emp"),
            "#0 L:CollectionSource [table=emp]\n"
            "#1 L:Map <- #0 [map=[dept]]\n"
            "#2 L:Distinct <- #1\n"
            "#3 L:Collect <- #2 (sink)\n");
}

// --- execution smoke over the same queries ---------------------------------

TEST_F(SqlFrontendTest, ExecutesFilterJoinAndAggregate) {
  auto stmt = ctx_.Sql(
      "SELECT e.dept, SUM(e.salary) AS total FROM emp AS e "
      "JOIN site AS s ON e.dept = s.dept WHERE s.floor >= 2 GROUP BY e.dept",
      catalog_);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->schema().field(0).name, "dept");
  EXPECT_EQ(stmt->schema().field(1).name, "total");
  auto got = stmt->Collect();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(AsMultiset(*got),
            AsMultiset(Dataset({Record({Value("eng"), Value(220.0)}),
                                Record({Value("hr"), Value(70.0)})})));
}

TEST_F(SqlFrontendTest, KeywordsAndIdentifiersAreCaseInsensitive) {
  auto stmt =
      ctx_.Sql("select ID from EMP where AGE > 30 order by id asc limit 10",
               catalog_);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto got = stmt->Collect();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(AsMultiset(*got), AsMultiset(Dataset({Record({Value(2)}),
                                                  Record({Value(4)})})));
}

// --- directed rejections: exact text, 1-based token positions ---------------

TEST_F(SqlFrontendTest, RejectionsCarryPositionsAndReasons) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"SELECT", "1:7: unexpected end of input in expression"},
      {"SELECT * FROM missing", "1:15: unknown table 'missing'"},
      {"SELECT bogus FROM emp", "1:8: unknown column 'bogus'"},
      {"SELECT id + dept FROM emp",
       "1:11: arithmetic '+' requires numeric operands, got int64 and "
       "string"},
      {"SELECT id FROM emp WHERE id = 'x'",
       "1:29: comparison '==' over incompatible types int64 and string"},
      {"SELECT * FROM emp WHERE salary",
       "1:25: WHERE condition must be boolean, got double"},
      {"SELECT * FROM emp LIMIT 3",
       "1:25: LIMIT requires ORDER BY: which rows survive would otherwise "
       "be nondeterministic"},
      {"SELECT id FROM emp WHERE SUM(id) > 1",
       "1:34: aggregates are not allowed in WHERE"},
      {"SELECT dept, salary FROM emp GROUP BY dept",
       "1:14: 'salary' must appear in GROUP BY or inside an aggregate"},
      {"SELECT id FROM emp GROUP BY dept, age",
       "1:35: only a single GROUP BY expression is supported"},
      {"SELECT e.id FROM emp", "1:10: unknown table 'e'"},
      {"SELECT dept FROM emp JOIN site ON emp.dept = site.dept",
       "1:8: ambiguous column 'dept'; qualify it with a table name"},
      {"SELECT NULL FROM emp",
       "1:8: NULL literals are not supported: expressions are checked with "
       "non-null static types"},
      {"SELECT COUNT(salary) FROM emp GROUP BY dept",
       "1:8: COUNT over an expression is not supported (the expression IR "
       "has no null-skipping); use COUNT(*)"},
      {"SELECT MIN(*) FROM emp", "1:8: MIN(*) is not valid; only COUNT "
                                 "takes *"},
      {"SELECT * FROM emp ORDER BY SUM(age)",
       "1:28: aggregates are not allowed in ORDER BY; select the aggregate "
       "and order by its output name"},
      {"SELECT 'abc FROM emp", "1:8: unterminated string literal"},
      {"SELECT \"abc FROM emp", "1:8: unterminated string literal"},
      {"SELECT # FROM emp", "1:8: unexpected character '#'"},
      {"", "1:1: expected SELECT, got end of input"},
      {"SELECT id FROM emp x y", "1:22: trailing input 'y'"},
      {"SELECT FOO(id) FROM emp", "1:8: unknown function 'FOO'"},
      {"SELECT $9 FROM emp",
       "1:8: field $9 out of range (row has 4 fields)"},
      {"SELECT id FROM (SELECT id FROM emp",
       "1:35: expected ')', got end of input"},
      {"SELECT id AS FROM emp", "1:14: AS expects a name, got 'FROM'"},
      {"SELECT id FROM emp ORDER BY id LIMIT x",
       "1:38: LIMIT expects a non-negative integer, got 'x'"},
      {"SELECT *, id FROM emp", "1:9: expected FROM, got ','"},
      {"SELECT id FROM emp WHERE NOT id",
       "1:26: NOT requires a bool operand, got int64"},
      {"SELECT DISTINCT FROM emp",
       "1:17: unexpected keyword 'FROM' in expression"},
      {"SELECT id FROM emp JOIN site",
       "1:29: expected ON, got end of input"},
      {"SELECT AVG(dept) AS a FROM emp GROUP BY id",
       "1:8: AVG requires a numeric argument, got string"},
      {"SELECT SUM(SUM(id)) AS s FROM emp GROUP BY dept",
       "1:8: nested aggregates are not supported"},
      {"SELECT * FROM emp GROUP BY dept",
       "1:8: SELECT * cannot be combined with GROUP BY or aggregates"},
      {"SELECT id, COUNT(*) AS n FROM emp",
       "1:8: 'id' must appear in GROUP BY or inside an aggregate"},
  };
  for (const auto& [query, want] : cases) {
    auto stmt = ctx_.Sql(query, catalog_);
    ASSERT_FALSE(stmt.ok()) << "accepted: " << query;
    EXPECT_EQ(stmt.status().message(), want) << query;
  }
}

TEST_F(SqlFrontendTest, MultiLinePositionsAreLineRelative) {
  auto stmt = ctx_.Sql("SELECT id\nFROM emp\nWHERE bogus > 1", catalog_);
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().message(), "3:7: unknown column 'bogus'");
}

// --- Pretty round-trip: expr -> text -> expr with identical Canonical -------

void ExpectRoundTrip(const expr::Expr& tree, const Schema& schema) {
  const std::string text = Pretty(tree);
  auto parsed = sql::ParseExpression(text, schema);
  ASSERT_TRUE(parsed.ok()) << "failed to re-parse: " << text << "\n"
                           << parsed.status().ToString();
  EXPECT_EQ(Canonical(**parsed), Canonical(tree)) << "re-parse of: " << text;
}

TEST_F(SqlFrontendTest, PrettyRoundTripsDirectedTrees) {
  namespace e = expr;
  const Schema schema = Schema::Of({{"id", ValueType::kInt64},
                                    {"dept", ValueType::kString},
                                    {"salary", ValueType::kDouble},
                                    {"age", ValueType::kInt64}});
  const auto id = e::Field(0, ValueType::kInt64, "id");
  const auto dept = e::Field(1, ValueType::kString, "dept");
  const auto salary = e::Field(2, ValueType::kDouble, "salary");
  const auto age = e::Field(3, ValueType::kInt64, "age");
  ExpectRoundTrip(*e::Add(e::Mul(salary, e::Lit(1.1)), e::Lit(0.1)), schema);
  ExpectRoundTrip(*e::Sub(id, e::Lit(static_cast<int64_t>(-5))), schema);
  ExpectRoundTrip(*e::Sub(e::Lit(static_cast<int64_t>(0)), e::Sub(id, age)),
                  schema);
  ExpectRoundTrip(*e::Div(e::Mod(id, e::Lit(static_cast<int64_t>(7))),
                          e::Lit(static_cast<int64_t>(3))),
                  schema);
  ExpectRoundTrip(*e::And(e::Or(e::Gt(age, e::Lit(static_cast<int64_t>(30))),
                                e::Eq(dept, e::Lit("eng"))),
                          e::Not(e::Le(salary, e::Lit(-2.5)))),
                  schema);
  ExpectRoundTrip(*e::Eq(dept, e::Lit("O'Brien")), schema);
  ExpectRoundTrip(*e::Eq(dept, e::Lit("say \"hi\"")), schema);
  ExpectRoundTrip(*e::Eq(dept, e::Lit("back\\slash")), schema);
  ExpectRoundTrip(*e::Eq(dept, e::Lit("caf\xC3\xA9")), schema);
  ExpectRoundTrip(*e::Lt(salary, e::Lit(1e300)), schema);
  ExpectRoundTrip(*e::Ge(salary, e::Lit(3.0)), schema);
  // Unnamed fields print as positionals and bind back by index.
  ExpectRoundTrip(*e::Gt(e::Add(e::Field(0, ValueType::kInt64),
                                e::Field(3, ValueType::kInt64)),
                         e::Lit(static_cast<int64_t>(0))),
                  schema);
}

TEST_F(SqlFrontendTest, PrettyRoundTripsRandomTrees) {
  const Schema schema =
      Schema::Of({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  Rng rng(20260808);
  for (int i = 0; i < 300; ++i) {
    const auto scalar = testutil::RandomScalarExpr(&rng, 3);
    ExpectRoundTrip(*scalar.tree, schema);
    const auto pred = testutil::RandomPredicateExpr(&rng, 3);
    ExpectRoundTrip(*pred.tree, schema);
  }
}

// --- string literal quoting across the dialect ------------------------------

TEST_F(SqlFrontendTest, StringLiteralQuotingAndNonAsciiBytes) {
  Dataset people(
      {
          Record({Value("O'Brien")}),
          Record({Value("caf\xC3\xA9")}),
          Record({Value("say \"hi\"")}),
      },
      Schema::Of({{"name", ValueType::kString}}));
  ASSERT_TRUE(catalog_.Register("people", people).ok());

  // SQL-standard single quotes with '' escaping.
  auto a = ctx_.Sql("SELECT name FROM people WHERE name = 'O''Brien'",
                    catalog_);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto ra = a->Collect();
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(AsMultiset(*ra),
            AsMultiset(Dataset({Record({Value("O'Brien")})})));

  // Double-quoted literals use backslash escapes (the Pretty spelling).
  auto b = ctx_.Sql("SELECT name FROM people WHERE name = \"O'Brien\"",
                    catalog_);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto rb = b->Collect();
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(AsMultiset(*rb), AsMultiset(*ra));

  auto c = ctx_.Sql(
      "SELECT name FROM people WHERE name = \"say \\\"hi\\\"\"", catalog_);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  auto rc = c->Collect();
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(AsMultiset(*rc),
            AsMultiset(Dataset({Record({Value("say \"hi\"")})})));

  // Non-ASCII bytes pass through literals byte-for-byte.
  auto d = ctx_.Sql("SELECT name FROM people WHERE name = 'caf\xC3\xA9'",
                    catalog_);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  auto rd = d->Collect();
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(AsMultiset(*rd),
            AsMultiset(Dataset({Record({Value("caf\xC3\xA9")})})));

  // The shared quoting helper emits text this dialect parses back.
  auto e = ctx_.Sql(
      "SELECT name FROM people WHERE name = " + SqlQuoteString("O'Brien"),
      catalog_);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  auto re = e->Collect();
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(AsMultiset(*re), AsMultiset(*ra));
}

// --- JobServer integration ---------------------------------------------------

TEST_F(SqlFrontendTest, SubmitSqlRunsThroughJobServer) {
  auto handle = ctx_.SubmitSql(
      "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept", catalog_);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto result = handle->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(
      AsMultiset(result->output),
      AsMultiset(Dataset(
          {Record({Value("eng"), Value(static_cast<int64_t>(2))}),
           Record({Value("ops"), Value(static_cast<int64_t>(1))}),
           Record({Value("hr"), Value(static_cast<int64_t>(1))})})));

  // Bad SQL fails at submission with a positioned error, not at execution.
  auto bad = ctx_.SubmitSql("SELECT nope FROM emp", catalog_);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(), "1:8: unknown column 'nope'");
}

TEST_F(SqlFrontendTest, EquivalentSpellingsShareAPlanCacheEntry) {
  // Fingerprints fold the compiled plan, never the SQL text: a re-spelled
  // but semantically identical query must hit the plan cache.
  const auto before = ctx_.job_server().stats().cache;
  auto first = ctx_.SubmitSql("SELECT id FROM emp WHERE age > 30", catalog_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->Wait().ok());
  auto second =
      ctx_.SubmitSql("select  ID  from EMP\nwhere AGE > 30", catalog_);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_TRUE(second->Wait().ok());
  const auto after = ctx_.job_server().stats().cache;
  EXPECT_GE(after.hits - before.hits, 1);

  // A query differing only in a constant must NOT collide.
  auto third =
      ctx_.SubmitSql("SELECT id FROM emp WHERE age > 31", catalog_);
  ASSERT_TRUE(third.ok());
  auto r3 = third->Wait();
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(AsMultiset(r3->output),
            AsMultiset(Dataset({Record({Value(2)}), Record({Value(4)})})));
}

// --- concurrency: 8 threads compiling (and running) against one context -----

TEST_F(SqlFrontendTest, ConcurrentCompilationIsThreadSafe) {
  const std::vector<std::string> queries = {
      "SELECT * FROM emp",
      "SELECT id, salary * 1.1 AS raised FROM emp WHERE age > 30",
      "SELECT e.id, s.floor FROM emp AS e JOIN site AS s ON e.dept = s.dept",
      "SELECT dept, SUM(salary) AS total FROM emp GROUP BY dept",
      "SELECT DISTINCT dept FROM emp",
      "SELECT * FROM emp ORDER BY id DESC LIMIT 2",
  };
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        const std::string& q = queries[(t + i) % queries.size()];
        auto stmt = ctx_.Sql(q, catalog_);
        if (!stmt.ok()) {
          ++failures;
          continue;
        }
        if (i % 5 == 0 && !stmt->Collect().ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- catalogs: schema requirements and storage resolution --------------------

TEST_F(SqlFrontendTest, CatalogRejectsSchemalessTablesAndUnknownNames) {
  sql::InMemoryCatalog catalog;
  Dataset bare({Record({Value(7)})});
  auto st = catalog.Register("bare", bare);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("no schema"), std::string::npos) << st.ToString();

  // The two-argument overload attaches the schema on the way in.
  ASSERT_TRUE(
      catalog.Register("bare", bare, Schema::Of({{"x", ValueType::kInt64}}))
          .ok());
  auto stmt = ctx_.Sql("SELECT x FROM bare", catalog);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto rows = stmt->Collect();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->records().size(), 1u);
  EXPECT_EQ(rows->records()[0].at(0), Value(7));

  // Catalog misses surface as positioned analyzer errors, like every other
  // rejection in the dialect.
  auto missing = ctx_.Sql("SELECT * FROM ghosts", catalog);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().message(), "1:15: unknown table 'ghosts'");
}

TEST_F(SqlFrontendTest, StorageCatalogNeedsAttachedStorageThenResolvesCase) {
  // The default (catalog-less) overload reads attached storage; without any
  // it must fail up front with a pointer at AttachStorage.
  auto detached = ctx_.Sql("SELECT * FROM people");
  ASSERT_FALSE(detached.ok());
  EXPECT_NE(detached.status().message().find("AttachStorage"),
            std::string::npos)
      << detached.status().ToString();

  // The manager is declared before the context that borrows it, matching the
  // AttachStorage lifetime contract.
  storage::StorageManager manager;
  ASSERT_TRUE(
      manager.RegisterBackend(std::make_unique<storage::MemColumnStore>())
          .ok());
  Dataset people(
      {
          Record({Value("ada"), Value(36)}),
          Record({Value("grace"), Value(45)}),
      },
      Schema::Of({{"name", ValueType::kString}, {"age", ValueType::kInt64}}));
  ASSERT_TRUE(manager.Put("mem-column", "people", people).ok());
  RheemContext ctx;
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  ASSERT_TRUE(ctx.AttachStorage(&manager).ok());

  // Identifiers are case-insensitive in the dialect but storage keys are
  // exact: 'PEOPLE' resolves through the lower-cased conventional name.
  auto stmt = ctx.Sql("SELECT NAME FROM PEOPLE WHERE AGE > 40");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto rows = stmt->Collect();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->records().size(), 1u);
  EXPECT_EQ(rows->records()[0].at(0), Value("grace"));

  auto missing = ctx.Sql("SELECT * FROM nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("1:15: unknown table 'nope'"),
            std::string::npos)
      << missing.status().ToString();
}

}  // namespace
}  // namespace rheem

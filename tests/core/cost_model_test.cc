#include "core/optimizer/cost_model.h"

#include <gtest/gtest.h>

#include "core/optimizer/channel.h"
#include "core/plan/plan.h"
#include "platforms/javasim/javasim_platform.h"
#include "platforms/sparksim/sparksim_platform.h"

namespace rheem {
namespace {

BasicCostModel MakeModel(double parallelism = 1.0, double shuffle = 0.0) {
  BasicCostModel::Params p;
  p.per_quantum_micros = 1.0;
  p.parallelism = parallelism;
  p.shuffle_micros_per_quantum = shuffle;
  return BasicCostModel(p);
}

MapUdf ExpensiveMap(double cost) {
  MapUdf udf;
  udf.fn = [](const Record& r) { return r; };
  udf.meta.cost_factor = cost;
  return udf;
}

TEST(CostModelTest, MapCostScalesWithCardinalityAndUdfWeight) {
  BasicCostModel model = MakeModel();
  MapOp cheap(ExpensiveMap(1.0));
  MapOp pricey(ExpensiveMap(10.0));
  EXPECT_DOUBLE_EQ(model.OperatorCostMicros(cheap, {1000}, 1000), 1000.0);
  EXPECT_DOUBLE_EQ(model.OperatorCostMicros(pricey, {1000}, 1000), 10000.0);
}

TEST(CostModelTest, ParallelismDividesThroughputCost) {
  BasicCostModel serial = MakeModel(1.0);
  BasicCostModel parallel = MakeModel(8.0);
  MapOp op(ExpensiveMap(1.0));
  EXPECT_GT(serial.OperatorCostMicros(op, {8000}, 8000),
            parallel.OperatorCostMicros(op, {8000}, 8000) * 7.9);
}

TEST(CostModelTest, ShuffleTollChargedForKeyedOps) {
  BasicCostModel with_shuffle = MakeModel(1.0, 5.0);
  BasicCostModel no_shuffle = MakeModel(1.0, 0.0);
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  ReduceUdf red;
  red.fn = [](const Record& a, const Record&) { return a; };
  ReduceByKeyOp op(key, red);
  EXPECT_GT(with_shuffle.OperatorCostMicros(op, {1000}, 100),
            no_shuffle.OperatorCostMicros(op, {1000}, 100));
}

TEST(CostModelTest, ThetaJoinQuadraticInInputs) {
  BasicCostModel model = MakeModel();
  ThetaUdf cond;
  cond.fn = [](const Record&, const Record&) { return true; };
  ThetaJoinOp op(cond);
  const double small = model.OperatorCostMicros(op, {100, 100}, 10);
  const double big = model.OperatorCostMicros(op, {1000, 1000}, 10);
  EXPECT_NEAR(big / small, 100.0, 1.0);
}

TEST(CostModelTest, IEJoinFarCheaperThanThetaOnLargeInputs) {
  BasicCostModel model = MakeModel();
  ThetaUdf cond;
  cond.fn = [](const Record&, const Record&) { return true; };
  ThetaJoinOp theta(cond);
  IEJoinOp ie(IEJoinSpec{});
  const double theta_cost = model.OperatorCostMicros(theta, {1e5, 1e5}, 1e4);
  const double ie_cost = model.OperatorCostMicros(ie, {1e5, 1e5}, 1e4);
  EXPECT_GT(theta_cost / ie_cost, 20.0);
}

TEST(CostModelTest, SortGroupByVsHashGroupByDependOnAlgorithm) {
  BasicCostModel model = MakeModel();
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  GroupUdf group;
  group.fn = [](const Value&, const std::vector<Record>& rs) { return rs; };
  GroupByKeyOp hash(key, group, GroupByAlgorithm::kHash);
  GroupByKeyOp sort(key, group, GroupByAlgorithm::kSort);
  // For large n, n log n sort beats nothing: hash should be cheaper.
  EXPECT_LT(model.OperatorCostMicros(hash, {1e6}, 1e5),
            model.OperatorCostMicros(sort, {1e6}, 1e5));
}

TEST(CostModelTest, LoopOpsDeferToEnumerator) {
  BasicCostModel model = MakeModel();
  auto body = std::make_shared<Plan>();
  auto* s = body->Add<LoopStateOp>({});
  body->SetSink(s);
  RepeatOp loop(10, body);
  EXPECT_DOUBLE_EQ(model.OperatorCostMicros(loop, {1, 100}, 1), 0.0);
}

TEST(CostModelTest, HintsOfReadsUdfAnnotations) {
  MapOp op(ExpensiveMap(7.5));
  EXPECT_DOUBLE_EQ(HintsOf(op).cost_factor, 7.5);
  PredicateUdf pred;
  pred.fn = [](const Record&) { return true; };
  pred.meta.selectivity = 0.33;
  FilterOp f(pred);
  EXPECT_DOUBLE_EQ(HintsOf(f).selectivity, 0.33);
}

TEST(MovementCostModelTest, SamePlatformIsFree) {
  Config config;
  JavaSimPlatform java(config);
  MovementCostModel movement;
  EXPECT_DOUBLE_EQ(movement.MoveCostMicros(java, java, 1e6, 100.0), 0.0);
  EXPECT_EQ(movement.ChannelFor(java, java), ChannelKind::kInMemory);
}

TEST(MovementCostModelTest, CrossPlatformScalesWithBytes) {
  Config config;
  JavaSimPlatform java(config);
  SparkSimPlatform spark(config);
  MovementCostModel movement;
  const double small = movement.MoveCostMicros(java, spark, 10, 100.0);
  const double big = movement.MoveCostMicros(java, spark, 1e6, 100.0);
  EXPECT_GT(big, small * 100);
  EXPECT_EQ(movement.ChannelFor(java, spark), ChannelKind::kSerializedStream);
}

TEST(PlatformCostProfileTest, SparkHasHeavyFixedOverheads) {
  Config config;
  JavaSimPlatform java(config);
  SparkSimPlatform spark(config);
  EXPECT_DOUBLE_EQ(java.cost_model().JobOverheadMicros(), 0.0);
  EXPECT_GT(spark.cost_model().JobOverheadMicros(), 1000.0);
  EXPECT_GT(spark.cost_model().StageOverheadMicros(),
            java.cost_model().StageOverheadMicros());
}

}  // namespace
}  // namespace rheem

#include "core/service/job_server.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/api/data_quanta.h"
#include "core/service/plan_cache.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

/// Builds `n -> n * 2` over Numbers(count); optionally sleeping per record
/// so a job occupies its worker long enough to observe queueing.
Plan* BuildDoublerPlan(RheemJob* job, int count, int sleep_ms_per_record = 0) {
  auto quanta = job->LoadCollection(Numbers(count))
                    .Map([sleep_ms_per_record](const Record& r) {
                      if (sleep_ms_per_record > 0) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(sleep_ms_per_record));
                      }
                      return Record({Value(r[0].ToInt64Or(0) * 2)});
                    });
  auto sealed = quanta.Seal();
  EXPECT_TRUE(sealed.ok()) << sealed.status().ToString();
  return sealed.ValueOrDie();
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok()); }

  RheemContext ctx_;
};

TEST_F(ServiceTest, SubmitAndWaitReturnsResult) {
  RheemJob job(&ctx_);
  Plan* plan = BuildDoublerPlan(&job, 10);
  auto handle = ctx_.Submit(*plan);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto result = handle->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->output.size(), 10u);
  EXPECT_EQ(handle->state(), JobState::kSucceeded);
  EXPECT_TRUE(handle->done());
}

TEST_F(ServiceTest, SixteenConcurrentJobsAllSucceed) {
  Config config;
  config.SetInt("service.max_concurrent", 4);
  config.SetInt("service.queue_depth", 32);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  std::vector<std::unique_ptr<RheemJob>> jobs;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back(std::make_unique<RheemJob>(&ctx));
    Plan* plan = BuildDoublerPlan(jobs.back().get(), 50);
    auto handle = ctx.Submit(*plan);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handles.push_back(*handle);
  }
  for (JobHandle& h : handles) {
    auto result = h.Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->output.size(), 50u);
    EXPECT_EQ(h.state(), JobState::kSucceeded);
  }
  JobServerStats stats = ctx.job_server().stats();
  EXPECT_EQ(stats.submitted, 16);
  EXPECT_EQ(stats.succeeded, 16);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
}

TEST_F(ServiceTest, FullQueueRejectsWithResourceExhausted) {
  Config config;
  config.SetInt("service.max_concurrent", 1);
  config.SetInt("service.queue_depth", 1);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  // One slow job occupies the only worker; one more fits in the queue; the
  // rest must be rejected with backpressure, not queued unboundedly.
  RheemJob slow_job(&ctx);
  Plan* slow = BuildDoublerPlan(&slow_job, 20, /*sleep_ms_per_record=*/25);
  auto running = ctx.Submit(*slow);
  ASSERT_TRUE(running.ok());

  RheemJob fill_job(&ctx);
  Plan* fill = BuildDoublerPlan(&fill_job, 5);
  bool saw_rejection = false;
  JobHandle queued;
  for (int i = 0; i < 50 && !saw_rejection; ++i) {
    auto h = ctx.Submit(*fill);
    if (h.ok()) {
      queued = *h;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    } else {
      EXPECT_TRUE(h.status().IsResourceExhausted()) << h.status().ToString();
      saw_rejection = true;
    }
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GE(ctx.job_server().stats().rejected, 1);
  ASSERT_TRUE(running->Wait().ok());
  if (queued.valid()) {
    EXPECT_TRUE(queued.Wait().ok());
  }
}

TEST_F(ServiceTest, PlanCacheHitsOnResubmission) {
  RheemJob job(&ctx_);
  Plan* plan = BuildDoublerPlan(&job, 10);
  for (int round = 0; round < 3; ++round) {
    auto handle = ctx_.Submit(*plan);
    ASSERT_TRUE(handle.ok());
    auto result = handle->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->output.size(), 10u);
  }
  PlanCache::Stats cache = ctx_.job_server().stats().cache;
  EXPECT_EQ(cache.misses, 1);
  EXPECT_EQ(cache.hits, 2);
  EXPECT_EQ(cache.size, 1u);
}

TEST_F(ServiceTest, PlanCacheDistinguishesSourceData) {
  RheemJob job_a(&ctx_);
  RheemJob job_b(&ctx_);
  Plan* a = BuildDoublerPlan(&job_a, 10);
  Plan* b = BuildDoublerPlan(&job_b, 11);  // same shape, different data
  auto ha = ctx_.Submit(*a);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(ha->Wait().ok());
  auto hb = ctx_.Submit(*b);
  ASSERT_TRUE(hb.ok());
  auto rb = hb->Wait();
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb->output.size(), 11u);  // must NOT reuse plan a's embedded data
  PlanCache::Stats cache = ctx_.job_server().stats().cache;
  EXPECT_EQ(cache.misses, 2);
  EXPECT_EQ(cache.hits, 0);
}

TEST_F(ServiceTest, OptingOutOfPlanCacheCompilesFresh) {
  RheemJob job(&ctx_);
  Plan* plan = BuildDoublerPlan(&job, 10);
  JobOptions options;
  options.use_plan_cache = false;
  for (int round = 0; round < 2; ++round) {
    auto handle = ctx_.Submit(*plan, options);
    ASSERT_TRUE(handle.ok());
    ASSERT_TRUE(handle->Wait().ok());
  }
  PlanCache::Stats cache = ctx_.job_server().stats().cache;
  EXPECT_EQ(cache.hits, 0);
  EXPECT_EQ(cache.misses, 0);
}

TEST_F(ServiceTest, CancelledQueuedJobNeverRuns) {
  Config config;
  config.SetInt("service.max_concurrent", 1);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  RheemJob slow_job(&ctx);
  Plan* slow = BuildDoublerPlan(&slow_job, 20, /*sleep_ms_per_record=*/10);
  auto running = ctx.Submit(*slow);
  ASSERT_TRUE(running.ok());

  RheemJob victim_job(&ctx);
  Plan* victim_plan = BuildDoublerPlan(&victim_job, 5);
  auto victim = ctx.Submit(*victim_plan);
  ASSERT_TRUE(victim.ok());
  victim->Cancel();

  auto result = victim->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_EQ(victim->state(), JobState::kCancelled);
  ASSERT_TRUE(running->Wait().ok());
}

TEST_F(ServiceTest, DeadlineExpiredInQueueFailsWithDeadlineExceeded) {
  Config config;
  config.SetInt("service.max_concurrent", 1);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  RheemJob slow_job(&ctx);
  Plan* slow = BuildDoublerPlan(&slow_job, 20, /*sleep_ms_per_record=*/15);
  auto running = ctx.Submit(*slow);
  ASSERT_TRUE(running.ok());

  RheemJob late_job(&ctx);
  Plan* late_plan = BuildDoublerPlan(&late_job, 5);
  JobOptions options;
  options.deadline = std::chrono::milliseconds(1);  // expires while queued
  auto late = ctx.Submit(*late_plan, options);
  ASSERT_TRUE(late.ok());

  auto result = late->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status().ToString();
  EXPECT_EQ(late->state(), JobState::kFailed);
  ASSERT_TRUE(running->Wait().ok());
}

TEST_F(ServiceTest, ShutdownDrainsQueuedJobs) {
  Config config;
  config.SetInt("service.max_concurrent", 2);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  std::vector<std::unique_ptr<RheemJob>> jobs;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(std::make_unique<RheemJob>(&ctx));
    Plan* plan = BuildDoublerPlan(jobs.back().get(), 10,
                                  /*sleep_ms_per_record=*/2);
    auto handle = ctx.Submit(*plan);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  ctx.job_server().Shutdown(/*drain=*/true);
  for (JobHandle& h : handles) {
    EXPECT_TRUE(h.done());
    EXPECT_TRUE(h.Wait().ok());
    EXPECT_EQ(h.state(), JobState::kSucceeded);
  }
  // After shutdown, admissions are refused.
  RheemJob post_job(&ctx);
  Plan* post = BuildDoublerPlan(&post_job, 3);
  auto refused = ctx.Submit(*post);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsCancelled());
}

TEST_F(ServiceTest, ShutdownWithoutDrainCancelsInFlight) {
  Config config;
  config.SetInt("service.max_concurrent", 1);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  std::vector<std::unique_ptr<RheemJob>> jobs;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(std::make_unique<RheemJob>(&ctx));
    Plan* plan = BuildDoublerPlan(jobs.back().get(), 20,
                                  /*sleep_ms_per_record=*/10);
    auto handle = ctx.Submit(*plan);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  ctx.job_server().Shutdown(/*drain=*/false);
  int cancelled = 0;
  for (JobHandle& h : handles) {
    EXPECT_TRUE(h.done());  // every admitted handle resolves
    auto result = h.Wait();
    if (!result.ok() && result.status().IsCancelled()) ++cancelled;
  }
  EXPECT_GE(cancelled, 1);  // the queued tail never ran
}

TEST_F(ServiceTest, StatsCountTerminalStates) {
  RheemJob job(&ctx_);
  Plan* plan = BuildDoublerPlan(&job, 10);
  auto handle = ctx_.Submit(*plan);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle->Wait().ok());
  JobServerStats stats = ctx_.job_server().stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.succeeded, 1);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.cancelled, 0);
}

TEST(PlanCacheTest, LruEvictsOldestAndCountsStats) {
  PlanCache cache(2);
  auto job1 = std::make_shared<const CompiledJob>();
  auto job2 = std::make_shared<const CompiledJob>();
  auto job3 = std::make_shared<const CompiledJob>();
  EXPECT_EQ(cache.Lookup(1), nullptr);  // miss
  cache.Insert(1, job1);
  cache.Insert(2, job2);
  EXPECT_EQ(cache.Lookup(1), job1);  // hit refreshes recency
  cache.Insert(3, job3);             // evicts 2 (LRU), not 1
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_EQ(cache.Lookup(1), job1);
  EXPECT_EQ(cache.Lookup(3), job3);
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  cache.Clear();
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(PlanCacheTest, ZeroCapacityDisables) {
  PlanCache cache(0);
  cache.Insert(7, std::make_shared<const CompiledJob>());
  EXPECT_EQ(cache.Lookup(7), nullptr);
  EXPECT_EQ(cache.stats().size, 0u);
}

}  // namespace
}  // namespace rheem

#include "core/service/job_server.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace.h"
#include "core/api/data_quanta.h"
#include "core/service/plan_cache.h"
#include "storage/hot_buffer.h"
#include "storage/mem_column_store.h"

namespace rheem {
namespace {

Dataset Numbers(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

/// Builds `n -> n * 2` over Numbers(count); optionally sleeping per record
/// so a job occupies its worker long enough to observe queueing.
Plan* BuildDoublerPlan(RheemJob* job, int count, int sleep_ms_per_record = 0) {
  auto quanta = job->LoadCollection(Numbers(count))
                    .Map([sleep_ms_per_record](const Record& r) {
                      if (sleep_ms_per_record > 0) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(sleep_ms_per_record));
                      }
                      return Record({Value(r[0].ToInt64Or(0) * 2)});
                    });
  auto sealed = quanta.Seal();
  EXPECT_TRUE(sealed.ok()) << sealed.status().ToString();
  return sealed.ValueOrDie();
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok()); }

  RheemContext ctx_;
};

TEST_F(ServiceTest, SubmitAndWaitReturnsResult) {
  RheemJob job(&ctx_);
  Plan* plan = BuildDoublerPlan(&job, 10);
  auto handle = ctx_.Submit(*plan);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto result = handle->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->output.size(), 10u);
  EXPECT_EQ(handle->state(), JobState::kSucceeded);
  EXPECT_TRUE(handle->done());
}

TEST_F(ServiceTest, SixteenConcurrentJobsAllSucceed) {
  Config config;
  config.SetInt("service.max_concurrent", 4);
  config.SetInt("service.queue_depth", 32);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  std::vector<std::unique_ptr<RheemJob>> jobs;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back(std::make_unique<RheemJob>(&ctx));
    Plan* plan = BuildDoublerPlan(jobs.back().get(), 50);
    auto handle = ctx.Submit(*plan);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handles.push_back(*handle);
  }
  for (JobHandle& h : handles) {
    auto result = h.Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->output.size(), 50u);
    EXPECT_EQ(h.state(), JobState::kSucceeded);
  }
  JobServerStats stats = ctx.job_server().stats();
  EXPECT_EQ(stats.submitted, 16);
  EXPECT_EQ(stats.succeeded, 16);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
}

TEST_F(ServiceTest, FullQueueRejectsWithResourceExhausted) {
  Config config;
  config.SetInt("service.max_concurrent", 1);
  config.SetInt("service.queue_depth", 1);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  // One slow job occupies the only worker; one more fits in the queue; the
  // rest must be rejected with backpressure, not queued unboundedly.
  RheemJob slow_job(&ctx);
  Plan* slow = BuildDoublerPlan(&slow_job, 20, /*sleep_ms_per_record=*/25);
  auto running = ctx.Submit(*slow);
  ASSERT_TRUE(running.ok());

  RheemJob fill_job(&ctx);
  Plan* fill = BuildDoublerPlan(&fill_job, 5);
  bool saw_rejection = false;
  JobHandle queued;
  for (int i = 0; i < 50 && !saw_rejection; ++i) {
    auto h = ctx.Submit(*fill);
    if (h.ok()) {
      queued = *h;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    } else {
      EXPECT_TRUE(h.status().IsResourceExhausted()) << h.status().ToString();
      saw_rejection = true;
    }
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GE(ctx.job_server().stats().rejected, 1);
  ASSERT_TRUE(running->Wait().ok());
  if (queued.valid()) {
    EXPECT_TRUE(queued.Wait().ok());
  }
}

TEST_F(ServiceTest, PlanCacheHitsOnResubmission) {
  RheemJob job(&ctx_);
  Plan* plan = BuildDoublerPlan(&job, 10);
  for (int round = 0; round < 3; ++round) {
    auto handle = ctx_.Submit(*plan);
    ASSERT_TRUE(handle.ok());
    auto result = handle->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->output.size(), 10u);
  }
  PlanCache::Stats cache = ctx_.job_server().stats().cache;
  EXPECT_EQ(cache.misses, 1);
  EXPECT_EQ(cache.hits, 2);
  EXPECT_EQ(cache.size, 1u);
}

TEST_F(ServiceTest, PlanCacheDistinguishesSourceData) {
  RheemJob job_a(&ctx_);
  RheemJob job_b(&ctx_);
  Plan* a = BuildDoublerPlan(&job_a, 10);
  Plan* b = BuildDoublerPlan(&job_b, 11);  // same shape, different data
  auto ha = ctx_.Submit(*a);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(ha->Wait().ok());
  auto hb = ctx_.Submit(*b);
  ASSERT_TRUE(hb.ok());
  auto rb = hb->Wait();
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb->output.size(), 11u);  // must NOT reuse plan a's embedded data
  PlanCache::Stats cache = ctx_.job_server().stats().cache;
  EXPECT_EQ(cache.misses, 2);
  EXPECT_EQ(cache.hits, 0);
}

TEST_F(ServiceTest, OptingOutOfPlanCacheCompilesFresh) {
  RheemJob job(&ctx_);
  Plan* plan = BuildDoublerPlan(&job, 10);
  JobOptions options;
  options.use_plan_cache = false;
  for (int round = 0; round < 2; ++round) {
    auto handle = ctx_.Submit(*plan, options);
    ASSERT_TRUE(handle.ok());
    ASSERT_TRUE(handle->Wait().ok());
  }
  PlanCache::Stats cache = ctx_.job_server().stats().cache;
  EXPECT_EQ(cache.hits, 0);
  EXPECT_EQ(cache.misses, 0);
}

TEST_F(ServiceTest, CancelledQueuedJobNeverRuns) {
  Config config;
  config.SetInt("service.max_concurrent", 1);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  RheemJob slow_job(&ctx);
  Plan* slow = BuildDoublerPlan(&slow_job, 20, /*sleep_ms_per_record=*/10);
  auto running = ctx.Submit(*slow);
  ASSERT_TRUE(running.ok());

  RheemJob victim_job(&ctx);
  Plan* victim_plan = BuildDoublerPlan(&victim_job, 5);
  auto victim = ctx.Submit(*victim_plan);
  ASSERT_TRUE(victim.ok());
  victim->Cancel();

  auto result = victim->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_EQ(victim->state(), JobState::kCancelled);
  ASSERT_TRUE(running->Wait().ok());
}

TEST_F(ServiceTest, DeadlineExpiredInQueueFailsWithDeadlineExceeded) {
  Config config;
  config.SetInt("service.max_concurrent", 1);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  RheemJob slow_job(&ctx);
  Plan* slow = BuildDoublerPlan(&slow_job, 20, /*sleep_ms_per_record=*/15);
  auto running = ctx.Submit(*slow);
  ASSERT_TRUE(running.ok());

  RheemJob late_job(&ctx);
  Plan* late_plan = BuildDoublerPlan(&late_job, 5);
  JobOptions options;
  options.deadline = std::chrono::milliseconds(1);  // expires while queued
  auto late = ctx.Submit(*late_plan, options);
  ASSERT_TRUE(late.ok());

  auto result = late->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status().ToString();
  EXPECT_EQ(late->state(), JobState::kFailed);
  ASSERT_TRUE(running->Wait().ok());
}

// Regression: a negative deadline budget is already expired at Submit().
// It used to slip through the `count() > 0` guard and run with *no*
// deadline; it must instead resolve DeadlineExceeded immediately — never
// queued, never compiled (no compile span), no server stats drift.
TEST_F(ServiceTest, AlreadyExpiredDeadlineResolvesImmediatelyWithoutCompile) {
  Tracer::Global().Clear();
  Tracer::Global().set_enabled(true);

  RheemJob job(&ctx_);
  Plan* plan = BuildDoublerPlan(&job, 5);
  JobOptions options;
  options.deadline = std::chrono::milliseconds(-1);  // expired before Submit
  auto handle = ctx_.Submit(*plan, options);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  // Resolved synchronously: no queue wait, done before any Wait().
  EXPECT_TRUE(handle->done());
  auto result = handle->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_EQ(handle->state(), JobState::kFailed);

  auto stats = ctx_.job_server().stats();
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.failed, 1);

  // The job was never compiled or run: no compile (or job) span exists.
  for (const auto& span : Tracer::Global().Spans()) {
    EXPECT_NE(span.name, "compile") << "expired job emitted a compile span";
    EXPECT_NE(span.name, "job") << "expired job emitted a job span";
  }
  Tracer::Global().set_enabled(false);
  Tracer::Global().Clear();
}

TEST_F(ServiceTest, ShutdownDrainsQueuedJobs) {
  Config config;
  config.SetInt("service.max_concurrent", 2);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  std::vector<std::unique_ptr<RheemJob>> jobs;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(std::make_unique<RheemJob>(&ctx));
    Plan* plan = BuildDoublerPlan(jobs.back().get(), 10,
                                  /*sleep_ms_per_record=*/2);
    auto handle = ctx.Submit(*plan);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  ctx.job_server().Shutdown(/*drain=*/true);
  for (JobHandle& h : handles) {
    EXPECT_TRUE(h.done());
    EXPECT_TRUE(h.Wait().ok());
    EXPECT_EQ(h.state(), JobState::kSucceeded);
  }
  // After shutdown, admissions are refused.
  RheemJob post_job(&ctx);
  Plan* post = BuildDoublerPlan(&post_job, 3);
  auto refused = ctx.Submit(*post);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsCancelled());
}

TEST_F(ServiceTest, ShutdownWithoutDrainCancelsInFlight) {
  Config config;
  config.SetInt("service.max_concurrent", 1);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  std::vector<std::unique_ptr<RheemJob>> jobs;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(std::make_unique<RheemJob>(&ctx));
    Plan* plan = BuildDoublerPlan(jobs.back().get(), 20,
                                  /*sleep_ms_per_record=*/10);
    auto handle = ctx.Submit(*plan);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  ctx.job_server().Shutdown(/*drain=*/false);
  int cancelled = 0;
  for (JobHandle& h : handles) {
    EXPECT_TRUE(h.done());  // every admitted handle resolves
    auto result = h.Wait();
    if (!result.ok() && result.status().IsCancelled()) ++cancelled;
  }
  EXPECT_GE(cancelled, 1);  // the queued tail never ran
}

TEST_F(ServiceTest, StatsCountTerminalStates) {
  RheemJob job(&ctx_);
  Plan* plan = BuildDoublerPlan(&job, 10);
  auto handle = ctx_.Submit(*plan);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle->Wait().ok());
  JobServerStats stats = ctx_.job_server().stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.succeeded, 1);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.cancelled, 0);
}

TEST_F(ServiceTest, ResultCacheReusesStagesAcrossSubmissions) {
  RheemJob job(&ctx_);
  Plan* plan = BuildDoublerPlan(&job, 10);
  auto cold = ctx_.Submit(*plan);
  ASSERT_TRUE(cold.ok());
  auto cold_result = cold->Wait();
  ASSERT_TRUE(cold_result.ok()) << cold_result.status().ToString();
  EXPECT_EQ(cold_result->metrics.stages_reused, 0);
  ASSERT_GT(cold_result->metrics.stages_run, 0);

  auto warm = ctx_.Submit(*plan);
  ASSERT_TRUE(warm.ok());
  auto warm_result = warm->Wait();
  ASSERT_TRUE(warm_result.ok()) << warm_result.status().ToString();
  // Every stage of the warm run is served from the result cache.
  EXPECT_EQ(warm_result->metrics.stages_run, 0);
  EXPECT_EQ(warm_result->metrics.stages_reused,
            cold_result->metrics.stages_run);
  ASSERT_EQ(warm_result->output.size(), cold_result->output.size());
  for (std::size_t i = 0; i < warm_result->output.size(); ++i) {
    EXPECT_EQ(warm_result->output.at(i), cold_result->output.at(i));
  }
  ResultCache::Stats stats = ctx_.job_server().stats().result_cache;
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.inserts, 0);
}

TEST_F(ServiceTest, OptingOutOfResultCacheRunsEveryStage) {
  RheemJob job(&ctx_);
  Plan* plan = BuildDoublerPlan(&job, 10);
  JobOptions options;
  options.use_result_cache = false;
  for (int round = 0; round < 2; ++round) {
    auto handle = ctx_.Submit(*plan, options);
    ASSERT_TRUE(handle.ok());
    auto result = handle->Wait();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->metrics.stages_reused, 0);
    EXPECT_GT(result->metrics.stages_run, 0);
  }
  ResultCache::Stats stats = ctx_.job_server().stats().result_cache;
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.inserts, 0);
}

TEST_F(ServiceTest, ZeroResultCacheCapacityDisablesReuse) {
  Config config;
  config.SetInt("executor.result_cache_capacity_bytes", 0);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  RheemJob job(&ctx);
  Plan* plan = BuildDoublerPlan(&job, 10);
  for (int round = 0; round < 2; ++round) {
    auto handle = ctx.Submit(*plan);
    ASSERT_TRUE(handle.ok());
    auto result = handle->Wait();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->metrics.stages_reused, 0);
    EXPECT_GT(result->metrics.stages_run, 0);
  }
  EXPECT_EQ(ctx.job_server().stats().result_cache.capacity_bytes, 0);
}

TEST_F(ServiceTest, StorageWriteNeverLeavesStaleReads) {
  // The acceptance path for the reuse layer: a dataset flows from storage
  // through the hot buffer into jobs served by the result cache; rewriting
  // it through the manager must invalidate everything in between. The
  // manager is declared before the context: AttachStorage borrows it for
  // the context's lifetime.
  storage::StorageManager manager;
  ASSERT_TRUE(
      manager.RegisterBackend(std::make_unique<storage::MemColumnStore>())
          .ok());
  ASSERT_TRUE(manager.Put("mem-column", "nums", Numbers(10)).ok());
  RheemContext ctx;
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  ASSERT_TRUE(ctx.AttachStorage(&manager).ok());

  auto build = [&](RheemJob* job) -> Plan* {
    auto loaded = job->LoadFromStorage("nums");
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    auto sealed = loaded
                      ->Map([](const Record& r) {
                        return Record({Value(r[0].ToInt64Or(0) * 2)});
                      })
                      .Seal();
    EXPECT_TRUE(sealed.ok());
    return sealed.ValueOrDie();
  };

  RheemJob job1(&ctx);
  auto h1 = ctx.Submit(*build(&job1));
  ASSERT_TRUE(h1.ok());
  auto r1 = h1->Wait();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->output.at(0)[0], Value(0));  // 0 * 2
  EXPECT_EQ(ctx.hot_buffer()->misses(), 1);

  // Same submission again: hot buffer serves the parse, result cache serves
  // the stages.
  RheemJob job2(&ctx);
  auto h2 = ctx.Submit(*build(&job2));
  ASSERT_TRUE(h2.ok());
  auto r2 = h2->Wait();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(ctx.hot_buffer()->hits(), 1);
  EXPECT_GT(r2->metrics.stages_reused, 0);

  // Rewrite through the manager: the buffered entry drops, and the new
  // content hash keys different sub-plan fingerprints — no stale result can
  // surface through either cache.
  std::vector<Record> fresh;
  for (int i = 0; i < 10; ++i) fresh.push_back(Record({Value(i + 100)}));
  ASSERT_TRUE(
      manager.Put("mem-column", "nums", Dataset(std::move(fresh))).ok());
  EXPECT_EQ(ctx.hot_buffer()->resident_entries(), 0u);

  RheemJob job3(&ctx);
  auto h3 = ctx.Submit(*build(&job3));
  ASSERT_TRUE(h3.ok());
  auto r3 = h3->Wait();
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->metrics.stages_reused, 0);
  EXPECT_EQ(r3->output.at(0)[0], Value(200));  // 100 * 2, not a stale 0
}

TEST(PlanCacheTest, LruEvictsOldestAndCountsStats) {
  PlanCache cache(2);
  auto job1 = std::make_shared<const CompiledJob>();
  auto job2 = std::make_shared<const CompiledJob>();
  auto job3 = std::make_shared<const CompiledJob>();
  EXPECT_EQ(cache.Lookup(1), nullptr);  // miss
  cache.Insert(1, job1);
  cache.Insert(2, job2);
  EXPECT_EQ(cache.Lookup(1), job1);  // hit refreshes recency
  cache.Insert(3, job3);             // evicts 2 (LRU), not 1
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_EQ(cache.Lookup(1), job1);
  EXPECT_EQ(cache.Lookup(3), job3);
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  cache.Clear();
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(PlanCacheTest, ZeroCapacityDisables) {
  PlanCache cache(0);
  cache.Insert(7, std::make_shared<const CompiledJob>());
  EXPECT_EQ(cache.Lookup(7), nullptr);
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(PlanCacheTest, ClearResetsStatsButKeepsLifetimeTotals) {
  PlanCache cache(2);
  auto job = std::make_shared<const CompiledJob>();
  EXPECT_EQ(cache.Lookup(1), nullptr);  // miss
  cache.Insert(1, job);
  EXPECT_EQ(cache.Lookup(1), job);  // hit
  cache.Clear();
  PlanCache::Stats cleared = cache.stats();
  // Post-clear stats describe only post-clear traffic...
  EXPECT_EQ(cleared.hits, 0);
  EXPECT_EQ(cleared.misses, 0);
  EXPECT_EQ(cleared.size, 0u);
  // ...while the lifetime totals keep the pre-clear history.
  EXPECT_EQ(cleared.lifetime_hits, 1);
  EXPECT_EQ(cleared.lifetime_misses, 1);
  EXPECT_EQ(cache.Lookup(1), nullptr);  // post-clear miss
  PlanCache::Stats after = cache.stats();
  EXPECT_EQ(after.hits, 0);
  EXPECT_EQ(after.misses, 1);
  EXPECT_EQ(after.lifetime_hits, 1);
  EXPECT_EQ(after.lifetime_misses, 2);
}

}  // namespace
}  // namespace rheem

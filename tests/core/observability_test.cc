// Invariants of the tracing + metrics subsystem, end to end: spans always
// close and nest properly, per-stage spans reconcile with the
// ExecutionMonitor, registry counters reconcile with per-job
// ExecutionMetrics, the Chrome trace export is valid JSON with the
// job -> stage -> kernel hierarchy, and snapshot/export stay consistent
// while jobs keep draining concurrently.

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/api/data_quanta.h"
#include "core/service/job_server.h"

namespace rheem {
namespace {

// --- a minimal JSON well-formedness checker (no dependency available) ------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char e = s_[pos_ + 1];
        if (e == 'u') {
          if (pos_ + 5 >= s_.size()) return false;
          for (int i = 2; i <= 5; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 6;
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
                   e == 'n' || e == 'r' || e == 't') {
          pos_ += 2;
        } else {
          return false;
        }
      } else if (c == '"') {
        ++pos_;
        return true;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      } else {
        ++pos_;
      }
    }
    return false;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    MetricsRegistry::Global().set_enabled(true);
    Tracer::Global().Clear();
    Tracer::Global().set_enabled(true);
  }
  void TearDown() override {
    MetricsRegistry::Global().set_enabled(false);
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
  }

  static Config ObservableConfig() {
    Config config;
    config.SetBool("metrics.enabled", true);
    config.SetBool("trace.enabled", true);
    return config;
  }

  static Dataset Rows(int n) {
    std::vector<Record> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.push_back(Record({Value(static_cast<int64_t>(i % 16)),
                            Value(static_cast<int64_t>(i))}));
    }
    return Dataset(std::move(out));
  }
};

TEST_F(ObservabilityTest, CountersGaugesHistograms) {
  auto& registry = MetricsRegistry::Global();
  Counter* c = registry.counter("test.counter");
  c->Increment();
  c->Add(4);
  EXPECT_EQ(c->value(), 5);
  EXPECT_EQ(registry.counter("test.counter"), c);  // stable get-or-create

  Gauge* g = registry.gauge("test.gauge");
  g->Set(7);
  g->Add(-2);
  EXPECT_EQ(g->value(), 5);

  Histogram* h = registry.histogram("test.hist", {10, 100, 1000});
  h->Observe(3);
  h->Observe(50);
  h->Observe(5000);
  EXPECT_EQ(h->count(), 3);
  EXPECT_EQ(h->sum(), 5053);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("test.counter"), 5);
  EXPECT_EQ(snap.counter("test.missing"), 0);
  EXPECT_EQ(snap.gauges.at("test.gauge"), 5);
  const auto& hv = snap.histograms.at("test.hist");
  ASSERT_EQ(hv.cumulative.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hv.cumulative[0], 1);       // <= 10
  EXPECT_EQ(hv.cumulative[1], 2);       // <= 100
  EXPECT_EQ(hv.cumulative[2], 2);       // <= 1000
  EXPECT_EQ(hv.cumulative[3], 3);       // +Inf
  EXPECT_NE(snap.ToString().find("test.counter"), std::string::npos);
}

TEST_F(ObservabilityTest, ResetZeroesInPlaceKeepingPointersValid) {
  auto& registry = MetricsRegistry::Global();
  Counter* c = registry.counter("test.reset");
  c->Add(9);
  registry.Reset();
  EXPECT_EQ(c->value(), 0);      // same object, zeroed
  c->Increment();                // cached pointer still usable
  EXPECT_EQ(registry.Snapshot().counter("test.reset"), 1);
}

TEST_F(ObservabilityTest, DisabledRegistryCountsNothing) {
  auto& registry = MetricsRegistry::Global();
  Counter* c = registry.counter("test.gated");
  registry.set_enabled(false);
  CountIfEnabled(c, 5);
  EXPECT_EQ(c->value(), 0);
  registry.set_enabled(true);
  CountIfEnabled(c, 5);
  EXPECT_EQ(c->value(), 5);
}

TEST_F(ObservabilityTest, SpansNestImplicitlyAndExplicitly) {
  auto& tracer = Tracer::Global();
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    TraceSpan outer("outer", "test");
    outer_id = outer.id();
    ASSERT_NE(outer_id, 0u);
    EXPECT_EQ(Tracer::CurrentSpanId(), outer_id);
    {
      TraceSpan inner("inner", "test");
      inner_id = inner.id();
      inner.AddTag("k", "v");
      inner.AddTag("n", static_cast<int64_t>(42));
    }
    // Cross-thread: the child passes the parent id it captured here.
    uint64_t remote_id = 0;
    std::thread t([&]() {
      TraceSpan remote("remote", "test", outer_id);
      remote_id = remote.id();
    });
    t.join();
    ASSERT_NE(remote_id, 0u);
  }
  EXPECT_EQ(Tracer::CurrentSpanId(), 0u);
  EXPECT_EQ(tracer.OpenSpanCount(), 0u);

  std::map<uint64_t, SpanRecord> by_id;
  for (const SpanRecord& s : tracer.Spans()) by_id[s.id] = s;
  ASSERT_EQ(by_id.size(), 3u);
  EXPECT_EQ(by_id.at(inner_id).parent_id, outer_id);
  EXPECT_EQ(by_id.at(outer_id).parent_id, 0u);
  const auto& tags = by_id.at(inner_id).tags;
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0].first, "k");
  EXPECT_EQ(tags[0].second, "v");
  EXPECT_EQ(tags[1].second, "42");
  for (const auto& [id, s] : by_id) {
    EXPECT_TRUE(s.closed()) << "span " << id << " never closed";
  }
}

TEST_F(ObservabilityTest, ExportSkipsOpenSpansAndRespectsCap) {
  auto& tracer = Tracer::Global();
  uint64_t open_id = tracer.BeginSpan("left_open", "test");
  {
    TraceSpan closed("closed", "test");
  }
  const std::string json = tracer.ExportChromeTrace();
  EXPECT_EQ(json.find("left_open"), std::string::npos);
  EXPECT_NE(json.find("closed"), std::string::npos);
  tracer.EndSpan(open_id);

  tracer.Clear();
  tracer.set_max_spans(2);
  uint64_t a = tracer.BeginSpan("a", "test");
  uint64_t b = tracer.BeginSpan("b", "test");
  uint64_t c = tracer.BeginSpan("c", "test");  // over the cap -> dropped
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_EQ(c, 0u);
  EXPECT_GE(tracer.dropped_spans(), 1);
  tracer.EndSpan(a);
  tracer.EndSpan(b);
  tracer.EndSpan(c);  // no-op on 0
  tracer.Clear();
  tracer.set_max_spans(1 << 20);
}

TEST_F(ObservabilityTest, JobSpansCloseNestAndMatchMonitor) {
  RheemContext ctx(ObservableConfig());
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  ExecutionMonitor monitor;

  RheemJob job(&ctx);
  job.options().monitor = &monitor;
  DataQuanta q = job.LoadCollection(Rows(500));
  q = q.Map([](const Record& r) {
         return Record({r[0], Value(r[1].ToInt64Or(0) * 2)});
       })
          .OnPlatform("javasim");
  q = q.ReduceByKey(
           [](const Record& r) { return r[0]; },
           [](const Record& a, const Record& b) {
             return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
           })
          .OnPlatform("sparksim");
  auto result = q.CollectWithMetrics();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto& tracer = Tracer::Global();
  EXPECT_EQ(tracer.OpenSpanCount(), 0u) << "a span leaked open";

  std::map<uint64_t, SpanRecord> by_id;
  int stage_spans = 0;
  int kernel_spans = 0;
  bool saw_optimize = false;
  bool saw_execute = false;
  for (const SpanRecord& s : tracer.Spans()) {
    by_id[s.id] = s;
    if (s.name == "stage") ++stage_spans;
    if (s.name == "kernel") ++kernel_spans;
    if (s.name == "optimize") saw_optimize = true;
    if (s.name == "execute") saw_execute = true;
  }
  EXPECT_TRUE(saw_optimize);
  EXPECT_TRUE(saw_execute);
  EXPECT_GT(kernel_spans, 0);

  // One stage span per stage attempt, exactly what the monitor recorded.
  EXPECT_EQ(stage_spans, static_cast<int>(monitor.records().size()));

  // Every span closed; every child's lifetime inside its parent's.
  for (const auto& [id, s] : by_id) {
    EXPECT_TRUE(s.closed()) << "span " << id << " (" << s.name << ") open";
    if (s.parent_id == 0) continue;
    auto parent = by_id.find(s.parent_id);
    ASSERT_NE(parent, by_id.end()) << "dangling parent of span " << id;
    EXPECT_LE(parent->second.start_micros, s.start_micros)
        << s.name << " started before its parent " << parent->second.name;
    EXPECT_GE(parent->second.end_micros, s.end_micros)
        << s.name << " outlived its parent " << parent->second.name;
  }
}

TEST_F(ObservabilityTest, CountersReconcileWithJobResult) {
  Config config = ObservableConfig();
  config.SetBool("kernels.parallel", true);
  config.SetInt("kernels.morsel_size", 64);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  ExecutionMonitor monitor;

  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  RheemJob job(&ctx);
  job.options().monitor = &monitor;
  job.options().force_platform = "javasim";
  DataQuanta q = job.LoadCollection(Rows(1000));
  q = q.Map([](const Record& r) {
    return Record({r[0], Value(r[1].ToInt64Or(0) + 1)});
  });
  auto result = q.CollectWithMetrics();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  auto delta = [&](const std::string& name) {
    return after.counter(name) - before.counter(name);
  };

  // Input (1000 records) exceeds the morsel size (64) with parallel kernels
  // on, so at least one morsel ran.
  EXPECT_GE(delta("kernels.morsels_executed"), 1);
  EXPECT_GE(delta("kernels.invocations"), 1);

  EXPECT_EQ(delta("executor.jobs_total"), 1);
  EXPECT_EQ(delta("executor.stage_attempts_total"),
            static_cast<int64_t>(monitor.records().size()));
  EXPECT_EQ(delta("executor.moved_records_total"),
            result->metrics.moved_records);
  EXPECT_EQ(delta("executor.moved_bytes_total"), result->metrics.moved_bytes);
  EXPECT_EQ(delta("executor.retries_total"), result->metrics.retries);
}

// The retry path must reconcile exactly like the clean path: attempts match
// the monitor, retries match the job metrics, and — because retried attempts
// re-assemble their boundary inputs — movement must not be double-charged by
// the extra attempts.
TEST_F(ObservabilityTest, CountersReconcileUnderRetry) {
  RheemContext ctx(ObservableConfig());
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  // Two pinned stages so the plan has a real javasim -> sparksim boundary.
  auto run = [&](ExecutionMonitor* monitor) {
    RheemJob job(&ctx);
    job.options().monitor = monitor;
    DataQuanta q = job.LoadCollection(Rows(500));
    q = q.Map([](const Record& r) {
           return Record({r[0], Value(r[1].ToInt64Or(0) + 1)});
         }).OnPlatform("javasim");
    q = q.Map([](const Record& r) {
           return Record({r[0], Value(r[1].ToInt64Or(0) * 2)});
         }).OnPlatform("sparksim");
    return q.CollectWithMetrics();
  };

  // Fault-free reference for the movement totals.
  auto clean = run(nullptr);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_GT(clean->metrics.moved_records, 0);

  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  ExecutionMonitor monitor;
  FaultInjector::Global().Clear();
  FaultInjector::Global().Seed(3);
  // Every stage's first attempt fails; each retry must succeed.
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.stage_attempt", FaultTrigger::EveryK(1),
                           "attempt=0")
                  .ok());
  FaultInjector::Global().set_enabled(true);
  auto retried = run(&monitor);
  FaultInjector::Global().set_enabled(false);
  FaultInjector::Global().Clear();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();

  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  auto delta = [&](const std::string& name) {
    return after.counter(name) - before.counter(name);
  };
  EXPECT_GT(retried->metrics.retries, 0);
  EXPECT_EQ(delta("executor.retries_total"), retried->metrics.retries);
  EXPECT_EQ(delta("executor.stage_attempts_total"),
            static_cast<int64_t>(monitor.records().size()));
  EXPECT_EQ(delta("executor.stage_failures_total"), retried->metrics.retries);
  // Movement identical to the fault-free run, in the job metrics and the
  // registry: re-attempts reuse the cached boundary conversion.
  EXPECT_EQ(retried->metrics.moved_records, clean->metrics.moved_records);
  EXPECT_EQ(retried->metrics.moved_bytes, clean->metrics.moved_bytes);
  EXPECT_EQ(delta("executor.moved_records_total"),
            retried->metrics.moved_records);
  EXPECT_EQ(delta("executor.moved_bytes_total"), retried->metrics.moved_bytes);
}

// Same reconciliation across a platform blackout: the failover re-plan must
// surface in the job metrics, the registry and the report, without
// double-charging movement for work re-planned onto the surviving platform.
TEST_F(ObservabilityTest, CountersReconcileUnderFailover) {
  RheemContext ctx(ObservableConfig());
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  auto run = [&]() {
    RheemJob job(&ctx);
    DataQuanta q = job.LoadCollection(Rows(500));
    q = q.Map([](const Record& r) {
           return Record({r[0], Value(r[1].ToInt64Or(0) + 1)});
         }).OnPlatform("javasim");
    q = q.Map([](const Record& r) {
           return Record({r[0], Value(r[1].ToInt64Or(0) * 2)});
         }).OnPlatform("sparksim");
    return q.CollectWithMetrics();
  };

  auto clean = run();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  FaultInjector::Global().Clear();
  FaultInjector::Global().Seed(3);
  // sparksim is down for the whole job; the pinned stage exhausts its
  // retries there and the executor re-plans it onto a healthy platform.
  ASSERT_TRUE(FaultInjector::Global()
                  .AddSpec("executor.stage_attempt", FaultTrigger::EveryK(1),
                           "platform=sparksim")
                  .ok());
  FaultInjector::Global().set_enabled(true);
  auto failed_over = run();
  FaultInjector::Global().set_enabled(false);
  FaultInjector::Global().Clear();
  ASSERT_TRUE(failed_over.ok()) << failed_over.status().ToString();

  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  auto delta = [&](const std::string& name) {
    return after.counter(name) - before.counter(name);
  };
  EXPECT_GE(failed_over->metrics.failovers, 1);
  EXPECT_EQ(delta("executor.failovers_total"), failed_over->metrics.failovers);
  EXPECT_NE(failed_over->report.find("failover:"), std::string::npos)
      << failed_over->report;
  EXPECT_EQ(delta("executor.retries_total"), failed_over->metrics.retries);
  // Movement totals still reconcile between the job view and the registry —
  // whatever the re-planned boundaries moved is charged once, in both.
  EXPECT_EQ(delta("executor.moved_records_total"),
            failed_over->metrics.moved_records);
  EXPECT_EQ(delta("executor.moved_bytes_total"),
            failed_over->metrics.moved_bytes);
  // Same rows out as the clean run.
  EXPECT_EQ(failed_over->output.size(), clean->output.size());
}

// Progressive re-optimization must reconcile across every surface it is
// reported on: AdaptiveResult-style decisions threaded into ExecutionResult,
// the per-job metrics, the registry counter, the EXPLAIN ANALYZE report, and
// the trace ("reoptimize" spans under the execute span; "reopt_N" tags on
// the JobServer's job span).
TEST_F(ObservabilityTest, ReoptimizationDecisionsReconcileEverywhere) {
  Config config = ObservableConfig();
  // No learning: the second (lying) compilation must actually mis-estimate.
  config.SetBool("stats.enabled", false);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  // The filter claims 1-in-1000 survive; everything does. The pinned
  // javasim -> sparksim boundary guarantees the lying stage is not final.
  auto build = [&](RheemJob* job, double hint) {
    DataQuanta q = job->LoadCollection(Rows(500));
    q = q.Filter([](const Record&) { return true; }, UdfMeta{hint, 1.0})
            .OnPlatform("javasim");
    q = q.Map([](const Record& r) {
           return Record({r[0], Value(r[1].ToInt64Or(0) + 1)});
         }).OnPlatform("sparksim");
    return q;
  };

  // Honest hint: no re-optimization, no decisions, clean report.
  {
    RheemJob job(&ctx);
    auto clean = build(&job, 1.0).CollectWithMetrics();
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_EQ(clean->metrics.reoptimizations, 0);
    EXPECT_TRUE(clean->decisions.empty());
    EXPECT_EQ(clean->report.find("re-optimized:"), std::string::npos)
        << clean->report;
  }

  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  Tracer::Global().Clear();
  RheemJob job(&ctx);
  auto reopt = build(&job, 0.001).CollectWithMetrics();
  ASSERT_TRUE(reopt.ok()) << reopt.status().ToString();
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  auto delta = [&](const std::string& name) {
    return after.counter(name) - before.counter(name);
  };

  // One divergence (estimated 0.5, observed 500): exactly one re-plan, and
  // decisions.size() == metrics.reoptimizations == the registry counter.
  ASSERT_GE(reopt->metrics.reoptimizations, 1);
  EXPECT_EQ(static_cast<int64_t>(reopt->decisions.size()),
            reopt->metrics.reoptimizations);
  EXPECT_EQ(delta("executor.reoptimizations_total"),
            reopt->metrics.reoptimizations);
  EXPECT_EQ(reopt->output.size(), 500u);  // the re-plan changed no results

  // The decision lines name the culprit and both cardinalities.
  for (const std::string& decision : reopt->decisions) {
    EXPECT_NE(decision.find("estimated"), std::string::npos) << decision;
    EXPECT_NE(decision.find("produced"), std::string::npos) << decision;
  }

  // EXPLAIN ANALYZE surfaces each decision and the totals line.
  EXPECT_NE(reopt->report.find("re-optimized:"), std::string::npos)
      << reopt->report;
  EXPECT_NE(reopt->report.find("reoptimizations=" +
                               std::to_string(reopt->metrics.reoptimizations)),
            std::string::npos)
      << reopt->report;

  // Trace: one "reoptimize" span per re-plan, tagged with the divergence,
  // parented under the job's execute span.
  std::map<uint64_t, SpanRecord> by_id;
  for (const SpanRecord& s : Tracer::Global().Spans()) by_id[s.id] = s;
  int64_t reopt_spans = 0;
  for (const auto& [id, s] : by_id) {
    if (s.name != "reoptimize") continue;
    ++reopt_spans;
    bool has_op = false, has_error = false;
    for (const auto& [k, v] : s.tags) {
      if (k == "op") has_op = true;
      if (k == "error") has_error = true;
    }
    EXPECT_TRUE(has_op && has_error) << "untagged reoptimize span";
    auto parent = by_id.find(s.parent_id);
    ASSERT_NE(parent, by_id.end());
    EXPECT_EQ(parent->second.name, "execute");
  }
  EXPECT_EQ(reopt_spans, reopt->metrics.reoptimizations);
}

// The same reconciliation through the service layer: a submitted job that
// re-optimizes carries its decisions onto the JobServer's job span.
TEST_F(ObservabilityTest, JobSpanCarriesReoptimizationDecisions) {
  Config config = ObservableConfig();
  config.SetBool("stats.enabled", false);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  RheemJob job(&ctx);
  DataQuanta q = job.LoadCollection(Rows(500));
  q = q.Filter([](const Record&) { return true; }, UdfMeta{0.001, 1.0})
          .OnPlatform("javasim");
  q = q.Map([](const Record& r) { return Record({r[0], r[1]}); })
          .OnPlatform("sparksim");
  auto plan = q.Seal();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto handle = ctx.Submit(**plan);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto result = handle->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ctx.job_server().Shutdown(/*drain=*/true);
  ASSERT_GE(result->metrics.reoptimizations, 1);
  EXPECT_EQ(static_cast<int64_t>(result->decisions.size()),
            result->metrics.reoptimizations);

  bool job_span_tagged = false;
  bool decision_tagged = false;
  for (const SpanRecord& s : Tracer::Global().Spans()) {
    if (s.name != "job") continue;
    for (const auto& [k, v] : s.tags) {
      if (k == "reoptimizations" &&
          v == std::to_string(result->metrics.reoptimizations)) {
        job_span_tagged = true;
      }
      if (k == "reopt_1" && v.find("estimated") != std::string::npos) {
        decision_tagged = true;
      }
    }
  }
  EXPECT_TRUE(job_span_tagged) << "job span missing reoptimizations tag";
  EXPECT_TRUE(decision_tagged) << "job span missing reopt_1 decision tag";
}

TEST_F(ObservabilityTest, ExplainAnalyzeReportAttachedWhenEnabled) {
  RheemContext ctx(ObservableConfig());
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());
  RheemJob job(&ctx);
  DataQuanta q = job.LoadCollection(Rows(100));
  q = q.Filter([](const Record& r) { return r[1].ToInt64Or(0) % 2 == 0; });
  auto result = q.CollectWithMetrics();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->report.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(result->report.find("stage 0"), std::string::npos);
  EXPECT_NE(result->report.find("rows="), std::string::npos);

  // Disabled via config (the executor re-applies the context's config each
  // run, so the config is the authoritative switch): no report is built.
  ctx.mutable_config().SetBool("metrics.enabled", false);
  auto quiet = q.CollectWithMetrics();
  ASSERT_TRUE(quiet.ok());
  EXPECT_TRUE(quiet->report.empty());
  EXPECT_FALSE(MetricsRegistry::Global().enabled());
}

TEST_F(ObservabilityTest, ChromeTraceIsValidJsonWithJobStageKernelNesting) {
  Config config = ObservableConfig();
  const std::string path =
      ::testing::TempDir() + "/rheem_observability_trace.json";
  config.Set("trace.path", path);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  // Two pinned platforms force a cross-platform split, so the trace carries
  // stage spans for both a javasim and a sparksim stage.
  RheemJob job(&ctx);
  DataQuanta q = job.LoadCollection(Rows(400));
  q = q.Map([](const Record& r) {
         return Record({r[0], Value(r[1].ToInt64Or(0) - 3)});
       })
          .OnPlatform("javasim");
  q = q.ReduceByKey(
           [](const Record& r) { return r[0]; },
           [](const Record& a, const Record& b) {
             return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
           })
          .OnPlatform("sparksim");
  auto plan = q.Seal();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto handle = ctx.Submit(**plan);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto result = handle->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The worker flushes the trace after the handle resolves; drain the server
  // so the file is complete before reading it.
  ctx.job_server().Shutdown(/*drain=*/true);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file not written: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  std::remove(path.c_str());

  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << "export is not well-formed JSON";
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // Structural nesting: kernel spans under stage spans under the job's
  // execute span, with stages tagged for both platforms.
  std::map<uint64_t, SpanRecord> by_id;
  for (const SpanRecord& s : Tracer::Global().Spans()) by_id[s.id] = s;
  bool javasim_stage = false;
  bool sparksim_stage = false;
  bool kernel_under_stage_under_execute = false;
  for (const auto& [id, s] : by_id) {
    if (s.name == "stage") {
      for (const auto& [k, v] : s.tags) {
        if (k == "platform" && v == "javasim") javasim_stage = true;
        if (k == "platform" && v == "sparksim") sparksim_stage = true;
      }
    }
    if (s.name != "kernel") continue;
    // Walk ancestors: expect a stage span, then the execute span above it.
    bool saw_stage = false;
    for (uint64_t p = s.parent_id; p != 0;) {
      auto it = by_id.find(p);
      if (it == by_id.end()) break;
      if (it->second.name == "stage") saw_stage = true;
      if (it->second.name == "execute" && saw_stage) {
        kernel_under_stage_under_execute = true;
      }
      p = it->second.parent_id;
    }
  }
  EXPECT_TRUE(javasim_stage);
  EXPECT_TRUE(sparksim_stage);
  EXPECT_TRUE(kernel_under_stage_under_execute);
}

// Regression for the multi-consumer movement accounting bug: a producer
// whose output crosses to two consumer stages on the same target platform is
// one data movement, not two. The approximated (non-serialized) path must
// report the same moved totals as the serialized path, whose conversion
// cache provably encodes the shared edge once, and both must reconcile with
// the global registry counters.
TEST_F(ObservabilityTest, MovedBytesCountOncePerMultiConsumerEdge) {
  auto run = [&](bool serialize) -> ExecutionResult {
    Config config = ObservableConfig();
    config.SetBool("executor.serialize_boundaries", serialize);
    RheemContext ctx(config);
    EXPECT_TRUE(ctx.RegisterDefaultPlatforms().ok());
    RheemJob job(&ctx);
    DataQuanta src = job.LoadCollection(Rows(200)).OnPlatform("javasim");
    // Distinct UdfMeta keeps the two consumers' fingerprints apart so no
    // stage is served from the result cache within the run.
    DataQuanta a = src.Map([](const Record& r) {
                        return Record({r[0], Value(r[1].ToInt64Or(0) + 1)});
                      })
                       .OnPlatform("sparksim");
    DataQuanta b = src.Map(
                          [](const Record& r) {
                            return Record({r[0], Value(r[1].ToInt64Or(0) * 2)});
                          },
                          UdfMeta::Expensive(2.0))
                       .OnPlatform("sparksim");
    DataQuanta merged = a.Union(b).OnPlatform("javasim");
    auto result = merged.CollectWithMetrics();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->output.size(), 400u);
    return std::move(*result);
  };

  auto delta = [](const MetricsSnapshot& before, const MetricsSnapshot& after,
                  const std::string& name) {
    return after.counter(name) - before.counter(name);
  };

  const MetricsSnapshot s0 = MetricsRegistry::Global().Snapshot();
  const ExecutionResult serialized = run(/*serialize=*/true);
  const MetricsSnapshot s1 = MetricsRegistry::Global().Snapshot();
  const ExecutionResult approximated = run(/*serialize=*/false);
  const MetricsSnapshot s2 = MetricsRegistry::Global().Snapshot();

  // Serialized path: the src -> sparksim edge is encoded once and the second
  // consumer stage reuses the conversion.
  EXPECT_EQ(serialized.metrics.boundary_conversions_reused, 1);
  EXPECT_EQ(delta(s0, s1, "executor.boundary_cache_hits"), 1);

  // Approximated path never converts, and must count the shared edge once:
  // src -> sparksim (200) + each map's output -> javasim (200 + 200).
  EXPECT_EQ(approximated.metrics.boundary_conversions_reused, 0);
  EXPECT_EQ(approximated.metrics.moved_records, 600);
  EXPECT_EQ(approximated.metrics.moved_records, serialized.metrics.moved_records);
  EXPECT_EQ(approximated.metrics.moved_bytes, serialized.metrics.moved_bytes);

  // Per-job metrics reconcile with the global registry in both modes.
  EXPECT_EQ(delta(s0, s1, "executor.moved_records_total"),
            serialized.metrics.moved_records);
  EXPECT_EQ(delta(s0, s1, "executor.moved_bytes_total"),
            serialized.metrics.moved_bytes);
  EXPECT_EQ(delta(s1, s2, "executor.moved_records_total"),
            approximated.metrics.moved_records);
  EXPECT_EQ(delta(s1, s2, "executor.moved_bytes_total"),
            approximated.metrics.moved_bytes);
}

// Satellite 4 regression: hammer Snapshot()/ExportChromeTrace()/ReportText()
// from reader threads while a JobServer drains concurrent submissions. The
// exporters must observe consistent copies, never the live containers.
TEST_F(ObservabilityTest, SnapshotDuringConcurrentDrainsStaysConsistent) {
  Config config = ObservableConfig();
  config.SetInt("service.max_concurrent", 4);
  config.SetInt("service.queue_depth", 64);
  RheemContext ctx(config);
  ASSERT_TRUE(ctx.RegisterDefaultPlatforms().ok());

  std::vector<std::unique_ptr<RheemJob>> jobs;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 24; ++i) {
    auto job = std::make_unique<RheemJob>(&ctx);
    DataQuanta q = job->LoadCollection(Rows(300));
    q = q.Map([](const Record& r) {
           return Record({r[0], Value(r[1].ToInt64Or(0) * 3)});
         })
            .ReduceByKey(
                [](const Record& r) { return r[0]; },
                [](const Record& a, const Record& b) {
                  return Record(
                      {a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
                });
    auto plan = q.Seal();
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto handle = ctx.Submit(**plan);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handles.push_back(*handle);
    jobs.push_back(std::move(job));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> exports{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      int64_t last_jobs = 0;
      do {  // at least one pass even when every job drains immediately
        const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
        const int64_t jobs_now = snap.counter("service.jobs_succeeded");
        EXPECT_GE(jobs_now, last_jobs);  // counters are monotone
        last_jobs = jobs_now;
        const std::string json = Tracer::Global().ExportChromeTrace();
        EXPECT_FALSE(json.empty());
        (void)MetricsRegistry::Global().ReportText();
        exports.fetch_add(1);
      } while (!stop.load());
    });
  }

  for (auto& handle : handles) {
    auto result = handle.Wait();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_GT(exports.load(), 0);

  const std::string json = Tracer::Global().ExportChromeTrace();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid());
}

}  // namespace
}  // namespace rheem

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/api/data_quanta.h"
#include "core/operators/kernels.h"

namespace rheem {
namespace {

Dataset Numbers(std::initializer_list<int> xs) {
  std::vector<Record> records;
  for (int x : xs) records.push_back(Record({Value(x)}));
  return Dataset(std::move(records));
}

TEST(IntersectKernelTest, DistinctCommonRecords) {
  auto out = kernels::Intersect(Numbers({1, 2, 2, 3, 4}), Numbers({2, 3, 3, 5}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->at(0)[0], Value(2));  // first-seen order of left
  EXPECT_EQ(out->at(1)[0], Value(3));
}

TEST(IntersectKernelTest, EmptySides) {
  EXPECT_TRUE(kernels::Intersect(Numbers({1}), Dataset())->empty());
  EXPECT_TRUE(kernels::Intersect(Dataset(), Numbers({1}))->empty());
}

TEST(SubtractKernelTest, RemovesRightRecords) {
  auto out = kernels::Subtract(Numbers({1, 2, 2, 3, 4}), Numbers({2, 4, 9}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->at(0)[0], Value(1));
  EXPECT_EQ(out->at(1)[0], Value(3));
}

TEST(SubtractKernelTest, EmptyRightIsDistinctLeft) {
  auto out = kernels::Subtract(Numbers({1, 1, 2}), Dataset());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

// Property: A∩B == A - (A - B) under set semantics.
TEST(SetOpsPropertyTest, IntersectEqualsDoubleSubtract) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Record> a, b;
    for (int i = 0; i < 200; ++i) {
      a.push_back(Record({Value(rng.NextInt(0, 30))}));
      b.push_back(Record({Value(rng.NextInt(0, 30))}));
    }
    Dataset da(std::move(a)), db(std::move(b));
    auto direct = kernels::Intersect(da, db).ValueOrDie();
    auto via_subtract =
        kernels::Subtract(da, kernels::Subtract(da, db).ValueOrDie())
            .ValueOrDie();
    std::multiset<std::string> x, y;
    for (const Record& r : direct.records()) x.insert(r.ToString());
    for (const Record& r : via_subtract.records()) y.insert(r.ToString());
    EXPECT_EQ(x, y);
  }
}

KeyUdf FirstField() {
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  return key;
}

TEST(TopKKernelTest, SmallestKInOrder) {
  auto out = kernels::TopK(FirstField(), 3, true, Numbers({5, 1, 4, 2, 8, 3}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(out->at(0)[0], Value(1));
  EXPECT_EQ(out->at(1)[0], Value(2));
  EXPECT_EQ(out->at(2)[0], Value(3));
}

TEST(TopKKernelTest, LargestKDescending) {
  auto out = kernels::TopK(FirstField(), 2, false, Numbers({5, 1, 4, 2, 8, 3}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->at(0)[0], Value(8));
  EXPECT_EQ(out->at(1)[0], Value(5));
}

TEST(TopKKernelTest, KLargerThanInputReturnsAllSorted) {
  auto out = kernels::TopK(FirstField(), 100, true, Numbers({3, 1, 2}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(out->at(0)[0], Value(1));
  EXPECT_EQ(out->at(2)[0], Value(3));
}

TEST(TopKKernelTest, EdgeCases) {
  EXPECT_TRUE(kernels::TopK(FirstField(), 0, true, Numbers({1}))->empty());
  EXPECT_FALSE(kernels::TopK(FirstField(), -1, true, Numbers({1})).ok());
  EXPECT_FALSE(kernels::TopK(KeyUdf{}, 1, true, Numbers({1})).ok());
  EXPECT_TRUE(kernels::TopK(FirstField(), 5, true, Dataset())->empty());
}

TEST(TopKKernelTest, TiesResolveToEarlierInput) {
  std::vector<Record> rows;
  rows.push_back(Record({Value(1), Value("first")}));
  rows.push_back(Record({Value(1), Value("second")}));
  rows.push_back(Record({Value(0), Value("zero")}));
  auto out = kernels::TopK(FirstField(), 2, true, Dataset(std::move(rows)));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->at(0)[1], Value("zero"));
  EXPECT_EQ(out->at(1)[1], Value("first"));
}

// Property: TopK(k) == Sort + take(k) for random inputs.
TEST(TopKKernelTest, PropertyMatchesSortPrefix) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Record> rows;
    for (int i = 0; i < 300; ++i) {
      rows.push_back(Record({Value(rng.NextInt(-1000, 1000)), Value(i)}));
    }
    Dataset data(std::move(rows));
    const int64_t k = 1 + static_cast<int64_t>(rng.NextBounded(50));
    auto topk = kernels::TopK(FirstField(), k, true, data).ValueOrDie();
    auto sorted = kernels::SortByKey(FirstField(), data).ValueOrDie();
    ASSERT_EQ(topk.size(), static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < topk.size(); ++i) {
      EXPECT_EQ(topk.at(i)[0], sorted.at(i)[0]) << "position " << i;
    }
  }
}

class SetOpsApiTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { ASSERT_TRUE(ctx_.RegisterDefaultPlatforms().ok()); }
  RheemContext ctx_;
};

TEST_P(SetOpsApiTest, IntersectSubtractTopKEndToEnd) {
  Rng rng(29);
  std::vector<Record> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(Record({Value(rng.NextInt(0, 60))}));
    b.push_back(Record({Value(rng.NextInt(30, 90))}));
  }
  Dataset da(a), db(b);

  RheemJob job(&ctx_);
  job.options().force_platform = GetParam();
  auto left = job.LoadCollection(da);
  auto right = job.LoadCollection(db);
  auto common = left.Intersect(right).Collect();
  ASSERT_TRUE(common.ok()) << common.status().ToString();
  auto expected_common = kernels::Intersect(da, db).ValueOrDie();
  EXPECT_EQ(common->size(), expected_common.size());

  RheemJob job2(&ctx_);
  job2.options().force_platform = GetParam();
  auto only_left = job2.LoadCollection(da)
                       .Subtract(job2.LoadCollection(db))
                       .Collect();
  ASSERT_TRUE(only_left.ok()) << only_left.status().ToString();
  auto expected_sub = kernels::Subtract(da, db).ValueOrDie();
  EXPECT_EQ(only_left->size(), expected_sub.size());

  RheemJob job3(&ctx_);
  job3.options().force_platform = GetParam();
  auto top = job3.LoadCollection(da)
                 .TopK(5, [](const Record& r) { return r[0]; })
                 .Collect();
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  auto expected_top = kernels::TopK(FirstField(), 5, true, da).ValueOrDie();
  ASSERT_EQ(top->size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(top->at(i)[0], expected_top.at(i)[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Platforms, SetOpsApiTest,
                         ::testing::Values("javasim", "sparksim", "relsim"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace rheem

#!/usr/bin/env python3
"""Per-directory line coverage from a gcov-instrumented build.

Walks a build tree for .gcno notes files, asks gcov for JSON intermediate
records, folds the per-translation-unit line data into per-source-file
coverage (a line is covered when any TU executed it), and prints a
per-directory summary for the project's sources.

Used as the CI coverage gate:

    python3 tools/coverage_report.py --build-dir build-cov \
        --gate-dir src/core --fail-under 85.0

exits non-zero when the aggregate line coverage of --gate-dir falls below
--fail-under, so regressions in core coverage fail the job.
"""

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict


def find_gcno(build_dir):
    for dirpath, _, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcno"):
                yield os.path.abspath(os.path.join(dirpath, name))


def gcov_json(gcno_path):
    """One JSON document per source file compiled into this object."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcno_path],
        capture_output=True,
        cwd=os.path.dirname(gcno_path),
    )
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--source-root", default=".",
                        help="project root; only sources under it are counted")
    parser.add_argument("--source-prefix", default="src",
                        help="report only files under this root-relative prefix")
    parser.add_argument("--gate-dir", default="src/core",
                        help="root-relative directory the --fail-under gate applies to")
    parser.add_argument("--fail-under", type=float, default=None,
                        help="minimum line coverage %% for --gate-dir")
    args = parser.parse_args()

    root = os.path.abspath(args.source_root)

    # file (root-relative) -> line number -> executed?  OR-folded across TUs.
    lines = defaultdict(dict)
    gcno_files = list(find_gcno(args.build_dir))
    if not gcno_files:
        print(f"no .gcno files under {args.build_dir}; "
              "build with -DRHEEM_COVERAGE=ON first", file=sys.stderr)
        return 2

    for gcno in gcno_files:
        for doc in gcov_json(gcno):
            for f in doc.get("files", []):
                path = os.path.abspath(
                    os.path.join(os.path.dirname(gcno), f["file"]))
                if not path.startswith(root + os.sep):
                    continue
                rel = os.path.relpath(path, root)
                if not rel.startswith(args.source_prefix + os.sep):
                    continue
                for entry in f.get("lines", []):
                    n = entry["line_number"]
                    hit = entry.get("count", 0) > 0
                    lines[rel][n] = lines[rel].get(n, False) or hit

    per_dir = defaultdict(lambda: [0, 0])  # dir -> [covered, total]
    for rel, table in sorted(lines.items()):
        d = os.path.dirname(rel)
        per_dir[d][0] += sum(1 for hit in table.values() if hit)
        per_dir[d][1] += len(table)

    print(f"{'directory':<42} {'covered':>9} {'total':>7} {'line%':>7}")
    for d in sorted(per_dir):
        covered, total = per_dir[d]
        pct = 100.0 * covered / total if total else 0.0
        print(f"{d:<42} {covered:>9} {total:>7} {pct:>6.1f}%")

    gate_covered = gate_total = 0
    for rel, table in lines.items():
        if rel.startswith(args.gate_dir + os.sep) or rel == args.gate_dir:
            gate_covered += sum(1 for hit in table.values() if hit)
            gate_total += len(table)
    gate_pct = 100.0 * gate_covered / gate_total if gate_total else 0.0
    print(f"\n{args.gate_dir} aggregate: {gate_covered}/{gate_total} "
          f"lines = {gate_pct:.2f}%")

    if args.fail_under is not None and gate_pct < args.fail_under:
        print(f"FAIL: {args.gate_dir} line coverage {gate_pct:.2f}% "
              f"is below the floor of {args.fail_under:.2f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Ablation A3: SortGroupBy vs HashGroupBy — the paper's flagship example of
// a physical-level algorithmic choice the core-layer optimizer makes
// (§3.1, Example 2). google-benchmark microbenchmark over the two kernels
// across key cardinalities.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/operators/kernels.h"

namespace rheem {
namespace {

Dataset MakeInput(int64_t rows, int64_t distinct_keys) {
  Rng rng(77);
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    out.push_back(Record({Value(rng.NextInt(0, distinct_keys - 1)), Value(i)}));
  }
  return Dataset(std::move(out));
}

KeyUdf FirstField() {
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  return key;
}

GroupUdf CountGroup() {
  GroupUdf group;
  group.fn = [](const Value& key, const std::vector<Record>& members) {
    return std::vector<Record>{
        Record({key, Value(static_cast<int64_t>(members.size()))})};
  };
  return group;
}

void BM_HashGroupBy(benchmark::State& state) {
  const Dataset input = MakeInput(state.range(0), state.range(1));
  const KeyUdf key = FirstField();
  const GroupUdf group = CountGroup();
  for (auto _ : state) {
    auto out = kernels::HashGroupBy(key, group, input);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SortGroupBy(benchmark::State& state) {
  const Dataset input = MakeInput(state.range(0), state.range(1));
  const KeyUdf key = FirstField();
  const GroupUdf group = CountGroup();
  for (auto _ : state) {
    auto out = kernels::SortGroupBy(key, group, input);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// rows x distinct keys: few huge groups through many tiny groups.
BENCHMARK(BM_HashGroupBy)
    ->Args({100000, 10})
    ->Args({100000, 1000})
    ->Args({100000, 100000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortGroupBy)
    ->Args({100000, 10})
    ->Args({100000, 1000})
    ->Args({100000, 100000})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rheem

BENCHMARK_MAIN();

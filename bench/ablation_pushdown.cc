// Ablation A7: declarative predicate pushdown. The same query — orders
// equi-joined with customers, then filtered on an order attribute — is built
// twice: with a closure predicate (opaque to the optimizer, so the filter
// stays above the join) and with a declarative expression predicate (the
// optimizer pushes it into the join's build input). The HashJoin kernel's
// records_in counter shows the structural effect directly; wall time shows
// the payoff.
//
// Results land in BENCH_pushdown.json. The run fails unless the declarative
// build's join consumed at most half the records of the closure build — the
// pushdown must demonstrably fire, in smoke mode too.
//
// Usage: ablation_pushdown [--smoke]   (--smoke: smaller dataset, one repeat)

#include <cstring>

#include "bench/bench_common.h"

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/api/data_quanta.h"
#include "core/expr/expr.h"
#include "core/operators/kernels.h"

namespace rheem {
namespace bench {
namespace {

constexpr int64_t kAmountThreshold = 900;  // keeps ~10% of orders

/// (cust_id in [0, customers), amount in [0, 1000)) rows.
Dataset Orders(int rows, int customers, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    out.push_back(Record({Value(rng.NextInt(0, customers - 1)),
                          Value(rng.NextInt(0, 999))}));
  }
  return Dataset(std::move(out));
}

/// (cust_id, region) rows, one per customer.
Dataset Customers(int customers, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(customers));
  for (int i = 0; i < customers; ++i) {
    out.push_back(Record({Value(int64_t{i}), Value(rng.NextInt(0, 9))}));
  }
  return Dataset(std::move(out));
}

struct RunResult {
  double wall_us = 0;
  int64_t join_records_in = 0;
  std::size_t out_rows = 0;
};

RunResult RunOnce(RheemContext* ctx, const Dataset& orders,
                  const Dataset& customers, bool declarative) {
  kernels::ResetKernelTimings();
  Stopwatch sw;
  RheemJob job(ctx);
  job.options().force_platform = "javasim";
  DataQuanta left = job.LoadCollection(orders);
  DataQuanta right = job.LoadCollection(customers);
  DataQuanta q =
      declarative
          ? left.Join(right, expr::Field(0, ValueType::kInt64),
                      expr::Field(0, ValueType::kInt64))
                .Filter(expr::Gt(expr::Field(1, ValueType::kInt64),
                                 expr::Lit(kAmountThreshold)))
          : left.Join(
                    right, [](const Record& r) { return r[0]; },
                    [](const Record& r) { return r[0]; })
                .Filter([](const Record& r) {
                  return r[1].ToInt64Or(0) > kAmountThreshold;
                });
  auto result = q.Collect();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  RunResult out;
  out.wall_us = static_cast<double>(sw.ElapsedMicros());
  out.out_rows = result->size();
  for (const auto& t : kernels::SnapshotKernelTimings()) {
    if (t.kernel == "HashJoin") out.join_records_in += t.records_in;
  }
  return out;
}

RunResult Best(RheemContext* ctx, const Dataset& orders,
               const Dataset& customers, bool declarative, int repeats) {
  RunResult best = RunOnce(ctx, orders, customers, declarative);
  for (int i = 1; i < repeats; ++i) {
    RunResult r = RunOnce(ctx, orders, customers, declarative);
    if (r.wall_us < best.wall_us) best = r;
  }
  return best;
}

void Run(bool smoke) {
  const int rows = smoke ? 20000 : 200000;
  const int customers = smoke ? 200 : 1000;
  const int repeats = smoke ? 1 : 3;
  std::printf(
      "== Ablation A7: closure vs declarative predicate above an equi-join "
      "(%d orders x %d customers, javasim) ==\n\n",
      rows, customers);

  RheemContext* ctx = NewContext();
  const Dataset orders = Orders(rows, customers, /*seed=*/17);
  const Dataset custs = Customers(customers, /*seed=*/23);

  const RunResult closure = Best(ctx, orders, custs, false, repeats);
  const RunResult declarative = Best(ctx, orders, custs, true, repeats);

  if (closure.out_rows != declarative.out_rows) {
    std::fprintf(stderr, "result divergence: closure=%zu declarative=%zu\n",
                 closure.out_rows, declarative.out_rows);
    std::exit(1);
  }

  const double ratio =
      closure.join_records_in > 0
          ? static_cast<double>(declarative.join_records_in) /
                static_cast<double>(closure.join_records_in)
          : 1.0;
  ResultTable out({"mode", "join_records_in", "wall_ms", "out_rows"});
  out.AddRow({"closure", std::to_string(closure.join_records_in),
              Ms(closure.wall_us), std::to_string(closure.out_rows)});
  out.AddRow({"declarative", std::to_string(declarative.join_records_in),
              Ms(declarative.wall_us), std::to_string(declarative.out_rows)});
  out.Print();
  std::printf(
      "\njoin input ratio (declarative/closure): %.3f — the pushed filter\n"
      "keeps ~10%% of orders, so the join sees them pre-filtered.\n",
      ratio);

  JsonResults json("pushdown");
  char row[256];
  std::snprintf(row, sizeof(row),
                "{\"mode\": \"closure\", \"rows\": %d, \"customers\": %d, "
                "\"join_records_in\": %lld, \"wall_ms\": %s, \"out_rows\": %zu}",
                rows, customers,
                static_cast<long long>(closure.join_records_in),
                Ms(closure.wall_us).c_str(), closure.out_rows);
  json.Add(row);
  std::snprintf(
      row, sizeof(row),
      "{\"mode\": \"declarative\", \"rows\": %d, \"customers\": %d, "
      "\"join_records_in\": %lld, \"wall_ms\": %s, \"out_rows\": %zu}",
      rows, customers, static_cast<long long>(declarative.join_records_in),
      Ms(declarative.wall_us).c_str(), declarative.out_rows);
  json.Add(row);
  std::snprintf(row, sizeof(row), "{\"mode\": \"ratio\", \"join_in\": %.4f}",
                ratio);
  json.Add(row);
  if (!json.WriteTo("BENCH_pushdown.json")) {
    std::fprintf(stderr, "failed to write BENCH_pushdown.json\n");
    std::exit(1);
  }
  std::printf("wrote BENCH_pushdown.json\n");

  // The structural gate: pushdown must demonstrably fire. With a ~10%
  // selectivity filter pushed below the join, the declarative join reads
  // ~(0.1 * rows + customers) records vs (rows + customers) for closure.
  if (ratio > 0.5) {
    std::fprintf(stderr,
                 "FAIL: declarative join consumed %.0f%% of the closure "
                 "join's input; pushdown did not fire\n",
                 ratio * 100.0);
    std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  rheem::bench::Run(smoke);
  return 0;
}

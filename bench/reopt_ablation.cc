// Ablation A8: progressive re-optimization + the learned statistics catalog
// (paper §4.2's feedback edge). A filter whose selectivity annotation claims
// a 5x shrink that never happens misleads the static optimizer: believing the
// intermediate is small, it ships the "shrunk" data to sparksim for the heavy
// map's modeled 8-way parallelism — and at runtime pays real serialization of
// the full, wide intermediate for parallelism a one-core host cannot deliver.
//
// Three executions of the same query:
//   static: statistics off, re-optimization off — the misled plan as planned.
//   cold:   adaptive run. The first stage boundary observes the blown
//           estimate, re-optimizes mid-job, and feeds the statistics catalog
//           (observed cardinalities + calibrated per-(operator, platform)
//           cost constants), persisted to disk afterwards.
//   warm:   a fresh context loads the persisted catalog. The compiler now
//           knows the true cardinality AND that sparksim's map delivers
//           serial throughput here, so the plan stays on javasim end to end:
//           zero boundary crossings, zero re-optimizations.
//
// Results land in BENCH_reopt.json. The run fails unless (a) the static plan
// really moved the big intermediate and the warm plan moved nothing, (b) the
// cold run re-optimized at least once and the warm run not at all, and
// (c) warm beats static by >= 1.5x wall clock — in smoke mode too.
//
// Usage: reopt_ablation [--smoke]   (--smoke: smaller dataset, one repeat)

#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/api/data_quanta.h"
#include "core/optimizer/stats_catalog.h"

namespace rheem {
namespace bench {
namespace {

constexpr int kPayloadBytes = 400;   // fat rows: movement is byte-priced
constexpr double kLyingHint = 0.2;   // claims 5x shrink; truth keeps all
constexpr double kMapCostFactor = 160.0;  // matches the real loop below

const char* kStatsFile = "BENCH_reopt_stats.tmp";

/// (id, fat string payload) rows: the intermediate the misled plan ships.
Dataset FatRows(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::string payload(kPayloadBytes, 'x');
    payload[0] = static_cast<char>('a' + rng.NextInt(0, 25));
    out.push_back(Record({Value(i), Value(std::move(payload))}));
  }
  return Dataset(std::move(out));
}

struct RunResult {
  double wall_us = 0;
  double stage_us = 0;  // time inside platform stages (excludes conversions)
  int64_t moved_records = 0;
  int64_t reoptimizations = 0;
  std::size_t out_rows = 0;
};

Config ModeConfig(const char* mode) {
  Config config = BenchConfig();
  if (std::strcmp(mode, "static") == 0) {
    config.SetBool("stats.enabled", false);
    config.SetInt("executor.max_reoptimizations", 0);
  } else {  // cold / warm: learning on, adaptation on
    config.Set("stats.path", kStatsFile);
    config.SetInt("executor.max_reoptimizations", 2);
  }
  return config;
}

/// One full run in a fresh context (a shared context would serve repeats from
/// the result cache and reuse in-memory statistics, contaminating the modes).
RunResult RunOnce(const char* mode, const Dataset& rows) {
  RheemContext ctx(ModeConfig(mode));
  Status st = ctx.RegisterDefaultPlatforms();
  if (!st.ok()) {
    std::fprintf(stderr, "platform registration failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  Stopwatch sw;
  RheemJob job(&ctx);
  auto result =
      job.LoadCollection(rows)
          .OnPlatform("javasim")  // the data lives in the app's heap
          .Filter([](const Record&) { return true; },
                  UdfMeta{kLyingHint, 1.0})
          .Map(
              [](const Record& r) {
                double x = r[0].ToDoubleOr(0);
                for (int k = 0; k < 500; ++k) x = x * 1.000001 + 0.5;
                return Record({Value(x)});  // aggregate away the payload
              },
              UdfMeta{1.0, kMapCostFactor})
          .CollectWithMetrics();
  if (!result.ok()) {
    std::fprintf(stderr, "%s run failed: %s\n", mode,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  RunResult out;
  out.wall_us = static_cast<double>(sw.ElapsedMicros());
  out.stage_us = static_cast<double>(result->metrics.wall_micros);
  out.moved_records = result->metrics.moved_records;
  out.reoptimizations = result->metrics.reoptimizations;
  out.out_rows = result->output.size();
  // The cold run is the learning run: persist what it observed so the warm
  // context compiles from measured statistics.
  if (std::strcmp(mode, "cold") == 0) {
    if (Status saved = ctx.stats_catalog()->SaveToFile(kStatsFile);
        !saved.ok()) {
      std::fprintf(stderr, "stats save failed: %s\n", saved.ToString().c_str());
      std::exit(1);
    }
  }
  return out;
}

RunResult Best(const char* mode, const Dataset& rows, int repeats) {
  RunResult best = RunOnce(mode, rows);
  for (int i = 1; i < repeats; ++i) {
    RunResult r = RunOnce(mode, rows);
    if (r.wall_us < best.wall_us) best = r;
  }
  return best;
}

void Fail(const char* what) {
  std::fprintf(stderr, "FAIL: %s\n", what);
  std::exit(1);
}

void Run(bool smoke) {
  const int64_t n = smoke ? 250'000 : 500'000;
  const int repeats = smoke ? 1 : 2;
  std::printf(
      "== Ablation A8: re-optimization + learned statistics vs a misled "
      "static plan (%lld wide rows, filter claims %.0f%%, keeps 100%%) ==\n\n",
      static_cast<long long>(n), kLyingHint * 100.0);

  std::remove(kStatsFile);  // never start from a stale catalog
  const Dataset rows = FatRows(n, /*seed=*/41);

  const RunResult stat = Best("static", rows, repeats);
  const RunResult cold = RunOnce("cold", rows);  // the learning run
  const RunResult warm = Best("warm", rows, repeats);
  std::remove(kStatsFile);

  if (stat.out_rows != static_cast<std::size_t>(n) ||
      cold.out_rows != stat.out_rows || warm.out_rows != stat.out_rows) {
    Fail("result divergence between modes");
  }

  const double speedup = stat.wall_us / warm.wall_us;
  ResultTable table({"mode", "wall_ms", "stage_ms", "moved_records", "reopts"});
  table.AddRow({"static", Ms(stat.wall_us), Ms(stat.stage_us),
                std::to_string(stat.moved_records),
                std::to_string(stat.reoptimizations)});
  table.AddRow({"cold", Ms(cold.wall_us), Ms(cold.stage_us),
                std::to_string(cold.moved_records),
                std::to_string(cold.reoptimizations)});
  table.AddRow({"warm", Ms(warm.wall_us), Ms(warm.stage_us),
                std::to_string(warm.moved_records),
                std::to_string(warm.reoptimizations)});
  table.Print();
  std::printf(
      "\nspeedup (static/warm): %.2fx — the warm catalog prices sparksim's\n"
      "map at observed throughput and plans the true cardinality, so the\n"
      "wide intermediate never crosses a platform boundary.\n",
      speedup);

  JsonResults json("reopt");
  char row[192];
  auto add = [&](const char* mode, const RunResult& r) {
    std::snprintf(row, sizeof(row),
                  "{\"mode\": \"%s\", \"rows\": %lld, \"wall_ms\": %s, "
                  "\"moved_records\": %lld, \"reoptimizations\": %lld}",
                  mode, static_cast<long long>(n), Ms(r.wall_us).c_str(),
                  static_cast<long long>(r.moved_records),
                  static_cast<long long>(r.reoptimizations));
    json.Add(row);
  };
  add("static", stat);
  add("cold", cold);
  add("warm", warm);
  std::snprintf(row, sizeof(row), "{\"mode\": \"speedup\", \"static_over_warm\": %.3f}",
                speedup);
  json.Add(row);
  if (!json.WriteTo("BENCH_reopt.json")) Fail("failed to write BENCH_reopt.json");
  std::printf("wrote BENCH_reopt.json\n");

  // Structural gates first: a timing win for the wrong reason is no win.
  if (stat.moved_records < n) {
    Fail("the misled static plan did not ship the big intermediate");
  }
  if (warm.moved_records != 0) {
    Fail("the warm plan crossed a platform boundary");
  }
  if (cold.reoptimizations < 1) Fail("the cold run never re-optimized");
  if (warm.reoptimizations != 0) {
    Fail("the warm plan re-optimized despite learned statistics");
  }
  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: warm beat static by only %.2fx (< 1.5x gate)\n",
                 speedup);
    std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  rheem::bench::Run(smoke);
  return 0;
}

// Multi-process soak of the network job service: N forked client processes
// (true processes, not threads — each speaks the wire protocol through its
// own socket like a real application would) hammer one NetServer with SQL
// submissions while the parent streams a result much larger than one page
// through bounded FETCHes. Gates:
//
//   1. p99 submit -> first-page latency across every client job;
//   2. peak server RSS (VmHWM), and — sharper — the RSS *growth* while
//      streaming a multi-page result must stay far below the result's
//      total encoded size, proving pages are re-encoded one at a time
//      rather than the whole result being buffered for the wire.
//
// `--smoke` shrinks the workload for CI. Results land in BENCH_soak.json.

#include "bench/bench_common.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/service/net/client.h"
#include "core/service/net/server.h"
#include "core/sql/catalog.h"
#include "data/serialization.h"

namespace rheem {
namespace bench {
namespace {

/// Peak resident set of the calling process in KiB (VmHWM), or -1.
int64_t PeakRssKib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int64_t kib = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtoll(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kib;
}

bool ReadFull(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool WriteFull(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t r = ::write(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

/// Client process body: submit `jobs` queries, each measured submit ->
/// first result page, and ship the latencies (u32 count, then u64 micros
/// each) up the result pipe. Exits non-zero on any protocol failure.
int RunClient(int index, int port_fd, int result_fd, int jobs, int64_t rows) {
  uint32_t port = 0;
  if (!ReadFull(port_fd, &port, sizeof(port))) return 2;
  ::close(port_fd);

  net::Client client;
  if (Status st = client.Connect("127.0.0.1", static_cast<int>(port));
      !st.ok()) {
    std::fprintf(stderr, "client %d: %s\n", index, st.ToString().c_str());
    return 3;
  }

  std::vector<uint64_t> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    // Vary the constant so submissions exercise fresh compiles rather than
    // one result-cache entry; cap the per-job result so the storm measures
    // service latency, not bulk transfer.
    const int64_t limit =
        1 + (index * 131 + j * 17) % std::min<int64_t>(rows, 2000);
    const std::string query = "SELECT id, score FROM emp WHERE id < " +
                              std::to_string(limit);
    Stopwatch watch;
    auto job = client.SubmitSql(query);
    if (!job.ok()) {
      std::fprintf(stderr, "client %d submit: %s\n", index,
                   job.status().ToString().c_str());
      return 4;
    }
    auto status = client.WaitDone(*job);
    if (!status.ok() || status->code != 0) {
      std::fprintf(stderr, "client %d job: %s\n", index,
                   status.ok() ? status->message.c_str()
                               : status.status().ToString().c_str());
      return 5;
    }
    auto page = client.FetchPage(*job, 0);
    if (!page.ok()) {
      std::fprintf(stderr, "client %d fetch: %s\n", index,
                   page.status().ToString().c_str());
      return 6;
    }
    latencies_us.push_back(static_cast<uint64_t>(watch.ElapsedMicros()));
  }
  if (!client.Bye().ok()) return 7;

  const uint32_t count = static_cast<uint32_t>(latencies_us.size());
  if (!WriteFull(result_fd, &count, sizeof(count))) return 8;
  for (uint64_t us : latencies_us) {
    if (!WriteFull(result_fd, &us, sizeof(us))) return 8;
  }
  ::close(result_fd);
  return 0;
}

uint64_t Percentile(std::vector<uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

int Run(int argc, char** argv) {
  bool smoke = false;
  int clients = 6;
  int jobs_per_client = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) {
    clients = 4;
    jobs_per_client = 6;
  }
  const int64_t rows = smoke ? 5000 : 20000;

  // Fork every client before the parent creates the context (and with it
  // any threads): a fork after thread creation would duplicate a process
  // whose locks may be held by threads that do not exist in the child.
  std::vector<pid_t> pids;
  std::vector<int> port_write_fds;
  std::vector<int> result_read_fds;
  for (int c = 0; c < clients; ++c) {
    int port_pipe[2];
    int result_pipe[2];
    if (::pipe(port_pipe) != 0 || ::pipe(result_pipe) != 0) {
      std::fprintf(stderr, "pipe() failed\n");
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork() failed\n");
      return 1;
    }
    if (pid == 0) {
      ::close(port_pipe[1]);
      ::close(result_pipe[0]);
      for (int fd : port_write_fds) ::close(fd);
      for (int fd : result_read_fds) ::close(fd);
      ::_exit(RunClient(c, port_pipe[0], result_pipe[1], jobs_per_client,
                        rows));
    }
    ::close(port_pipe[0]);
    ::close(result_pipe[1]);
    pids.push_back(pid);
    port_write_fds.push_back(port_pipe[1]);
    result_read_fds.push_back(result_pipe[0]);
  }

  // --- server side (parent only from here) --------------------------------
  Config config = BenchConfig();
  config.SetInt("service.max_concurrent", 4);
  config.SetInt("service.queue_depth", 256);
  config.SetInt("service.net.page_bytes", 16 * 1024);
  auto ctx = std::make_unique<RheemContext>(config);
  if (Status st = ctx->RegisterDefaultPlatforms(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  sql::InMemoryCatalog catalog;
  {
    std::vector<Record> records;
    records.reserve(static_cast<std::size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) {
      records.push_back(Record({Value(i), Value("row-" + std::to_string(i)),
                                Value(static_cast<double>(i) * 0.25)}));
    }
    Dataset emp(std::move(records),
                Schema::Of({{"id", ValueType::kInt64},
                            {"name", ValueType::kString},
                            {"score", ValueType::kDouble}}));
    if (Status st = catalog.Register("emp", emp); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  net::NetServer server(ctx.get(), &catalog);
  auto port = server.Start(0);
  if (!port.ok()) {
    std::fprintf(stderr, "%s\n", port.status().ToString().c_str());
    return 1;
  }
  const uint32_t port_u32 = static_cast<uint32_t>(*port);
  for (int fd : port_write_fds) {
    if (!WriteFull(fd, &port_u32, sizeof(port_u32))) {
      std::fprintf(stderr, "port handoff failed\n");
      return 1;
    }
    ::close(fd);
  }

  // --- collect the clients -------------------------------------------------
  std::vector<uint64_t> latencies_us;
  for (int fd : result_read_fds) {
    uint32_t count = 0;
    if (ReadFull(fd, &count, sizeof(count))) {
      for (uint32_t i = 0; i < count; ++i) {
        uint64_t us = 0;
        if (!ReadFull(fd, &us, sizeof(us))) break;
        latencies_us.push_back(us);
      }
    }
    ::close(fd);
  }
  bool child_failed = false;
  for (pid_t pid : pids) {
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) child_failed = true;
  }

  // --- streaming RSS probe (quiescent server) ------------------------------
  // SELECT * over the whole table is far larger than one 16 KiB page; the
  // RSS high-water mark may move while the job materializes, but streaming
  // the pages themselves must not grow it by anywhere near the result's
  // encoded size. Runs after the storm so the delta measures paging, not
  // concurrent job materialization.
  net::Client streamer;
  if (Status st = streamer.Connect("127.0.0.1", *port); !st.ok()) {
    std::fprintf(stderr, "streamer: %s\n", st.ToString().c_str());
    return 1;
  }
  auto stream_job = streamer.SubmitSql("SELECT * FROM emp");
  if (!stream_job.ok()) {
    std::fprintf(stderr, "streamer submit: %s\n",
                 stream_job.status().ToString().c_str());
    return 1;
  }
  auto stream_status = streamer.WaitDone(*stream_job);
  if (!stream_status.ok() || stream_status->code != 0) {
    std::fprintf(stderr, "streamer job failed\n");
    return 1;
  }
  const int64_t rss_before_stream_kib = PeakRssKib();
  std::size_t streamed_rows = 0;
  int64_t streamed_bytes = 0;
  for (uint64_t p = 0; p < stream_status->pages; ++p) {
    auto chunk = streamer.FetchPage(*stream_job, p);
    if (!chunk.ok()) {
      std::fprintf(stderr, "streamer fetch: %s\n",
                   chunk.status().ToString().c_str());
      return 1;
    }
    streamed_rows += chunk->size();
    streamed_bytes += Serializer::EncodedSize(*chunk);
  }
  const int64_t rss_after_stream_kib = PeakRssKib();
  (void)streamer.Bye();
  if (streamed_rows != static_cast<std::size_t>(rows)) {
    std::fprintf(stderr, "streamed %zu rows, want %lld\n", streamed_rows,
                 static_cast<long long>(rows));
    return 1;
  }

  server.Shutdown(/*drain=*/true);

  std::sort(latencies_us.begin(), latencies_us.end());
  const uint64_t p50 = Percentile(latencies_us, 0.50);
  const uint64_t p95 = Percentile(latencies_us, 0.95);
  const uint64_t p99 = Percentile(latencies_us, 0.99);
  const int64_t peak_rss_kib = PeakRssKib();
  const int64_t stream_growth_kib =
      rss_after_stream_kib >= 0 && rss_before_stream_kib >= 0
          ? rss_after_stream_kib - rss_before_stream_kib
          : -1;

  ResultTable table({"metric", "value"});
  table.AddRow({"clients", std::to_string(clients)});
  table.AddRow({"jobs", std::to_string(latencies_us.size())});
  table.AddRow({"p50_ms", Ms(static_cast<double>(p50))});
  table.AddRow({"p95_ms", Ms(static_cast<double>(p95))});
  table.AddRow({"p99_ms", Ms(static_cast<double>(p99))});
  table.AddRow({"stream_pages", std::to_string(stream_status->pages)});
  table.AddRow({"stream_bytes", std::to_string(streamed_bytes)});
  table.AddRow({"stream_rss_growth_kib", std::to_string(stream_growth_kib)});
  table.AddRow({"peak_rss_kib", std::to_string(peak_rss_kib)});
  table.Print();

  JsonResults json("service_soak");
  json.SetNote(
      "N forked client processes against one NetServer over loopback TCP; "
      "latency is submit to first fetched page per job; stream_rss_growth "
      "is the server-process VmHWM delta while FETCHing every page of a "
      "multi-page SELECT * and must stay well below the result's encoded "
      "size (pages are re-encoded one at a time)");
  char row[512];
  std::snprintf(
      row, sizeof(row),
      "{\"smoke\": %s, \"clients\": %d, \"jobs\": %zu, \"rows\": %lld, "
      "\"p50_us\": %llu, \"p95_us\": %llu, \"p99_us\": %llu, "
      "\"stream_pages\": %llu, \"stream_bytes\": %lld, "
      "\"stream_rss_growth_kib\": %lld, \"peak_rss_kib\": %lld}",
      smoke ? "true" : "false", clients, latencies_us.size(),
      static_cast<long long>(rows), static_cast<unsigned long long>(p50),
      static_cast<unsigned long long>(p95),
      static_cast<unsigned long long>(p99),
      static_cast<unsigned long long>(stream_status->pages),
      static_cast<long long>(streamed_bytes),
      static_cast<long long>(stream_growth_kib),
      static_cast<long long>(peak_rss_kib));
  json.Add(row);
  if (!json.WriteTo("BENCH_soak.json")) {
    std::fprintf(stderr, "failed to write BENCH_soak.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_soak.json\n");

  // --- gates ---------------------------------------------------------------
  bool failed = child_failed;
  if (child_failed) std::fprintf(stderr, "FAIL: a client process failed\n");
  const std::size_t expected_jobs =
      static_cast<std::size_t>(clients) *
      static_cast<std::size_t>(jobs_per_client);
  if (latencies_us.size() != expected_jobs) {
    std::fprintf(stderr, "FAIL: collected %zu latencies, want %zu\n",
                 latencies_us.size(), expected_jobs);
    failed = true;
  }
  const uint64_t p99_gate_us = 2000 * 1000;  // 2s: generous for shared CI
  if (p99 > p99_gate_us) {
    std::fprintf(stderr, "FAIL: p99 submit->first-page = %.1f ms > %.1f ms\n",
                 static_cast<double>(p99) * 1e-3,
                 static_cast<double>(p99_gate_us) * 1e-3);
    failed = true;
  }
  if (stream_status->pages < 2) {
    std::fprintf(stderr, "FAIL: streaming probe produced %llu page(s); "
                         "the result must span multiple pages\n",
                 static_cast<unsigned long long>(stream_status->pages));
    failed = true;
  }
  // Streaming all pages re-encodes one page at a time: allow allocator
  // slack plus a handful of pages, never the whole encoded result.
  const int64_t growth_gate_kib =
      std::max<int64_t>(1024, streamed_bytes / 1024 / 4);
  if (stream_growth_kib < 0 || stream_growth_kib > growth_gate_kib) {
    std::fprintf(stderr,
                 "FAIL: RSS grew %lld KiB while streaming %lld KiB of "
                 "result (gate %lld KiB)\n",
                 static_cast<long long>(stream_growth_kib),
                 static_cast<long long>(streamed_bytes / 1024),
                 static_cast<long long>(growth_gate_kib));
    failed = true;
  }
  const int64_t rss_gate_kib = 768 * 1024;  // 768 MiB for the whole server
  if (peak_rss_kib < 0 || peak_rss_kib > rss_gate_kib) {
    std::fprintf(stderr, "FAIL: peak RSS %lld KiB > %lld KiB\n",
                 static_cast<long long>(peak_rss_kib),
                 static_cast<long long>(rss_gate_kib));
    failed = true;
  }
  if (failed) return 1;
  std::printf("PASS: p99 %.1f ms, stream growth %lld KiB over %llu pages, "
              "peak RSS %lld KiB\n",
              static_cast<double>(p99) * 1e-3,
              static_cast<long long>(stream_growth_kib),
              static_cast<unsigned long long>(stream_status->pages),
              static_cast<long long>(peak_rss_kib));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main(int argc, char** argv) { return rheem::bench::Run(argc, argv); }

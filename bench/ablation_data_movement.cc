// Ablation A2: inter-platform data-movement costs in the optimizer. The
// paper contrasts RHEEM with Musketeer, which picks per-operator platforms
// without pricing the moves (§7). We compile the same plan twice — once
// movement-aware, once movement-blind — and execute both. The plan has a
// relsim-friendly aggregation prefix feeding a UDF map only javasim/sparksim
// support, with a *low-selectivity* filter so the intermediate stays big:
// the blind optimizer happily splits platforms and pays the boundary, the
// aware one collapses onto one platform.

#include "bench/bench_common.h"

#include <set>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/api/data_quanta.h"

namespace rheem {
namespace bench {
namespace {

Dataset Sensors(int64_t rows) {
  Rng rng(31);
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    out.push_back(Record({Value(rng.NextInt(0, 500)),
                          Value(rng.NextDouble(0.0, 100.0)),
                          Value(std::string(24, 'p'))}));  // padding bytes
  }
  return Dataset(std::move(out));
}

struct Outcome {
  int64_t total_us = 0;
  int64_t moved_bytes = 0;
  std::size_t stages = 0;
  std::set<std::string> platforms;
};

Outcome RunPipeline(RheemContext* ctx, const Dataset& data,
                    bool movement_aware) {
  RheemJob job(ctx);
  job.options().movement_aware = movement_aware;
  auto result =
      job.LoadCollection(data)
          .Filter([](const Record& r) { return r[1].ToDoubleOr(0) >= 2.0; },
                  UdfMeta::Selective(0.98))
          .ReduceByKey(
              [](const Record& r) { return r[0]; },
              [](const Record& a, const Record& b) {
                return Record({a[0],
                               Value(a[1].ToDoubleOr(0) + b[1].ToDoubleOr(0)),
                               a[2]});
              },
              /*key_distinct_ratio=*/0.9)
          .Map(
              [](const Record& r) {
                double x = r[1].ToDoubleOr(0);
                for (int k = 0; k < 50; ++k) x = x * 1.000001 + 0.5;
                return Record({r[0], Value(x)});
              },
              UdfMeta::Expensive(50.0))
          .CollectWithMetrics();
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  Outcome out;
  out.total_us = result->metrics.TotalMicros();
  out.moved_bytes = result->metrics.moved_bytes;
  // Recover placement via Explain on an identical job.
  RheemJob explain_job(ctx);
  explain_job.options().movement_aware = movement_aware;
  auto text = explain_job.LoadCollection(data)
                  .Filter([](const Record& r) { return r[1].ToDoubleOr(0) >= 2.0; },
                          UdfMeta::Selective(0.98))
                  .Explain();
  (void)text;
  return out;
}

void Run() {
  std::printf(
      "== Ablation A2: movement-aware vs movement-blind multi-platform "
      "optimization ==\n\n");
  RheemContext* ctx = NewContext();
  ResultTable table({"rows", "aware_ms", "blind_ms", "aware_moved",
                     "blind_moved", "blind_penalty"});
  for (int64_t rows : {5000, 20000, 80000, 200000}) {
    Dataset data = Sensors(rows);
    Outcome aware = RunPipeline(ctx, data, true);
    Outcome blind = RunPipeline(ctx, data, false);
    table.AddRow({std::to_string(rows),
                  Ms(static_cast<double>(aware.total_us)),
                  Ms(static_cast<double>(blind.total_us)),
                  FormatBytes(aware.moved_bytes),
                  FormatBytes(blind.moved_bytes),
                  Times(static_cast<double>(blind.total_us) /
                        static_cast<double>(aware.total_us))});
  }
  table.Print();
  std::printf(
      "\nExpected: the movement-blind optimizer ships large intermediates\n"
      "across platform boundaries (bytes column) and loses end-to-end; the\n"
      "aware one co-locates and moves (almost) nothing.\n");
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main() {
  rheem::bench::Run();
  return 0;
}

// Ablation A4: the IEJoin physical operator vs the nested-loop theta join it
// replaces — the extensibility payoff the paper reports for BigDansing's
// inequality rules (§5.1, [20]). google-benchmark microbenchmark on the
// self-join salary/tax predicate.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/operators/iejoin.h"

namespace rheem {
namespace {

Dataset SalaryTax(int64_t rows) {
  Rng rng(99);
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    const double salary = rng.NextDouble(2e4, 2e5);
    // Mostly monotone tax, 1% corrupted: output stays small.
    const double tax = rng.NextBool(0.01)
                           ? salary * 0.05
                           : salary * 0.2 + rng.NextDouble(0, 10);
    out.push_back(Record({Value(salary), Value(tax)}));
  }
  return Dataset(std::move(out));
}

IEJoinSpec Spec() {
  IEJoinSpec spec;
  spec.left_col1 = 0;
  spec.op1 = CompareOp::kGreater;
  spec.right_col1 = 0;
  spec.left_col2 = 1;
  spec.op2 = CompareOp::kLess;
  spec.right_col2 = 1;
  return spec;
}

void BM_IEJoin(benchmark::State& state) {
  const Dataset input = SalaryTax(state.range(0));
  const IEJoinSpec spec = Spec();
  for (auto _ : state) {
    auto out = kernels::IEJoin(spec, input, input);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_NestedLoopTheta(benchmark::State& state) {
  const Dataset input = SalaryTax(state.range(0));
  const IEJoinSpec spec = Spec();
  for (auto _ : state) {
    auto out = kernels::IEJoinNestedLoopReference(spec, input, input);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

BENCHMARK(BM_IEJoin)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NestedLoopTheta)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rheem

BENCHMARK_MAIN();

// Ablation A7 (extension): adaptive re-optimization. The paper's Executor
// "monitors the progress of plan execution" (§4.2); this closes that loop.
// A filter UDF whose selectivity annotation is wildly wrong misleads the
// static optimizer into keeping an expensive downstream map on the serial
// platform; the adaptive executor notices the blown estimate at the first
// stage boundary and re-routes the rest of the plan.

#include "bench/bench_common.h"

#include "core/executor/adaptive.h"
#include "core/operators/physical_ops.h"

namespace rheem {
namespace bench {
namespace {

Dataset Numbers(int64_t n) {
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

struct BuiltPlan {
  Plan plan;
  EnumeratorOptions options;
};

/// Source -> Filter(selectivity hint `hint`, actually keeps all) -> costly
/// Map -> Collect; the relsim pins force a boundary after the filter.
std::unique_ptr<BuiltPlan> Build(int64_t rows, double hint) {
  auto built = std::make_unique<BuiltPlan>();
  auto* src = built->plan.Add<CollectionSourceOp>({}, Numbers(rows));
  PredicateUdf pred;
  pred.fn = [](const Record&) { return true; };
  pred.meta.selectivity = hint;
  auto* filter = built->plan.Add<FilterOp>({src}, pred);
  MapUdf udf;
  udf.fn = [](const Record& r) {
    double x = r[0].ToDoubleOr(0);
    for (int k = 0; k < 400; ++k) x = x * 1.000001 + 0.5;
    return Record({Value(x)});
  };
  udf.meta.cost_factor = 400.0;
  auto* map = built->plan.Add<MapOp>({filter}, udf);
  built->plan.SetSink(built->plan.Add<CollectOp>({map}));
  built->options.pinned_platforms[src->id()] = "relsim";
  built->options.pinned_platforms[filter->id()] = "relsim";
  return built;
}

int64_t RunStatic(RheemContext* ctx, int64_t rows, double hint) {
  auto built = Build(rows, hint);
  auto estimates = CardinalityEstimator::Estimate(built->plan).ValueOrDie();
  Enumerator enumerator(&ctx->platforms(), &ctx->movement_model());
  auto assignment =
      enumerator.Run(built->plan, estimates, built->options).ValueOrDie();
  auto eplan =
      StageSplitter::Split(built->plan, std::move(assignment)).ValueOrDie();
  CrossPlatformExecutor executor;
  auto result = executor.Execute(eplan);
  if (!result.ok()) std::exit(1);
  return result->metrics.TotalMicros();
}

int64_t RunAdaptive(RheemContext* ctx, int64_t rows, double hint,
                    int* reoptimizations) {
  auto built = Build(rows, hint);
  AdaptiveExecutor executor(&ctx->platforms(), &ctx->movement_model());
  AdaptiveOptions options;
  options.enumerator = built->options;
  auto result = executor.Execute(built->plan, options);
  if (!result.ok()) std::exit(1);
  *reoptimizations = result->reoptimizations;
  return result->metrics.TotalMicros();
}

void Run() {
  std::printf(
      "== Ablation A7: adaptive re-optimization under a wrong selectivity "
      "annotation (hint says 0.05%%, reality keeps 100%%) ==\n\n");
  RheemContext* ctx = NewContext();
  ResultTable table({"rows", "static_bad_hint_ms", "adaptive_ms",
                     "static_good_hint_ms", "reopts", "adaptive_gain"});
  for (int64_t rows : {50000, 150000, 400000}) {
    const int64_t bad = RunStatic(ctx, rows, 0.0005);
    int reopts = 0;
    const int64_t adaptive = RunAdaptive(ctx, rows, 0.0005, &reopts);
    const int64_t good = RunStatic(ctx, rows, 1.0);
    table.AddRow({std::to_string(rows), Ms(static_cast<double>(bad)),
                  Ms(static_cast<double>(adaptive)),
                  Ms(static_cast<double>(good)), std::to_string(reopts),
                  Times(static_cast<double>(bad) /
                        static_cast<double>(adaptive))});
  }
  table.Print();
  std::printf(
      "\nExpected: the misled static plan keeps the heavy map on the serial\n"
      "platform and pays for it; the adaptive executor re-optimizes after\n"
      "the filter's actual cardinality arrives and lands near the\n"
      "good-hint plan's time.\n");
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main() {
  rheem::bench::Run();
  return 0;
}

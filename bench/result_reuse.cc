// Materialized-result reuse: the same analytical job submitted repeatedly
// against CSV-resident data. The cold submission pays the text parse and
// runs every stage; warm submissions are served by the hot-data buffer (the
// parse) and the sub-plan result cache (the stages). The paper's "road to
// freedom" includes not recomputing what the engine already knows (§6,
// embracing hot data); this measures that end to end through the JobServer.
//
// Results land in BENCH_reuse.json. Outside --smoke the run fails unless the
// warm path is at least 3x faster than the cold one.
//
// Usage: result_reuse [--smoke]   (--smoke: smaller dataset, fewer repeats)

#include "bench/bench_common.h"

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "apps/cleaning/data_gen.h"
#include "common/metrics.h"
#include "core/api/data_quanta.h"
#include "core/service/job_server.h"
#include "storage/csv_store.h"
#include "storage/hot_buffer.h"

namespace rheem {
namespace bench {
namespace {

struct RunResult {
  int64_t wall_us = 0;  // build + submit + wait, end to end
  ExecutionMetrics metrics;
  std::string report;
  std::size_t out_rows = 0;
};

/// One full submission: plan built fresh (the load pays the parse or hits
/// the hot buffer), executed through the JobServer (the stages run or come
/// out of the result cache).
RunResult SubmitOnce(RheemContext* ctx) {
  Stopwatch sw;
  RheemJob job(ctx);
  auto loaded = job.LoadFromStorage("tax");
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    std::exit(1);
  }
  // Normalize on javasim, aggregate on sparksim: two pinned platforms keep a
  // cross-platform boundary in the plan, so the warm path also shows the
  // movement accounting going to zero.
  DataQuanta q = loaded
                     ->Map([](const Record& r) {
                       // A compute-heavy normalization (iterated mixing)
                       // standing in for real per-record analytics: the cold
                       // run pays this for every record, the warm run never
                       // touches it.
                       int64_t cents =
                           static_cast<int64_t>(r[3].ToDoubleOr(0) * 100.0);
                       for (int k = 0; k < 512; ++k) {
                         cents = cents * 6364136223846793005ll + 1442695040888963407ll;
                         cents ^= cents >> 29;
                       }
                       return Record({r[1], Value(cents & 0xffff)});
                     })
                     .OnPlatform("javasim");
  q = q.ReduceByKey(
           [](const Record& r) { return r[0]; },
           [](const Record& a, const Record& b) {
             return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
           })
          .OnPlatform("sparksim");
  auto plan = q.Seal();
  if (!plan.ok()) {
    std::fprintf(stderr, "seal failed: %s\n", plan.status().ToString().c_str());
    std::exit(1);
  }
  auto handle = ctx->Submit(**plan);
  if (!handle.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 handle.status().ToString().c_str());
    std::exit(1);
  }
  auto result = handle->Wait();
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  RunResult r;
  r.wall_us = sw.ElapsedMicros();
  r.metrics = result->metrics;
  r.report = std::move(result->report);
  r.out_rows = result->output.size();
  return r;
}

void Run(bool smoke) {
  const int rows = smoke ? 5000 : 50000;
  const int warm_repeats = smoke ? 2 : 5;
  std::printf(
      "== Result reuse: repeated submissions of one analytical job over "
      "CSV-resident data (%d rows) ==\n\n",
      rows);

  const std::string dir = "/tmp/rheem_bench_result_reuse";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  storage::StorageManager manager;
  if (!manager.RegisterBackend(std::make_unique<storage::CsvStore>(dir)).ok()) {
    std::exit(1);
  }
  cleaning::TaxTableOptions gen;
  gen.rows = rows;
  if (!manager.Put("csv-files", "tax", cleaning::GenerateTaxTable(gen)).ok()) {
    std::exit(1);
  }

  Config config = BenchConfig();
  config.SetBool("metrics.enabled", true);
  RheemContext ctx(config);
  if (!ctx.RegisterDefaultPlatforms().ok() ||
      !ctx.AttachStorage(&manager).ok()) {
    std::exit(1);
  }

  const RunResult cold = SubmitOnce(&ctx);
  std::vector<RunResult> warm;
  for (int i = 0; i < warm_repeats; ++i) warm.push_back(SubmitOnce(&ctx));

  int64_t warm_total_us = 0;
  for (const RunResult& w : warm) {
    if (w.out_rows != cold.out_rows) {
      std::fprintf(stderr, "output mismatch: %zu vs %zu rows\n", w.out_rows,
                   cold.out_rows);
      std::exit(1);
    }
    warm_total_us += w.wall_us;
  }
  const double warm_avg_us = static_cast<double>(warm_total_us) /
                             static_cast<double>(warm_repeats);
  const double speedup =
      static_cast<double>(cold.wall_us) / std::max(warm_avg_us, 1.0);

  ResultTable table({"mode", "wall_ms", "stages_run", "stages_reused",
                     "moved_records", "speedup"});
  table.AddRow({"cold", Ms(static_cast<double>(cold.wall_us)),
                std::to_string(cold.metrics.stages_run),
                std::to_string(cold.metrics.stages_reused),
                std::to_string(cold.metrics.moved_records), "1.0x"});
  const RunResult& last = warm.back();
  table.AddRow({"warm", Ms(warm_avg_us),
                std::to_string(last.metrics.stages_run),
                std::to_string(last.metrics.stages_reused),
                std::to_string(last.metrics.moved_records), Times(speedup)});
  table.Print();

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::printf(
      "\nhot_buffer: hits=%lld misses=%lld  result_cache: hits=%lld "
      "misses=%lld inserts=%lld\n",
      static_cast<long long>(snap.counter("hot_buffer.hits")),
      static_cast<long long>(snap.counter("hot_buffer.misses")),
      static_cast<long long>(snap.counter("result_cache.hits")),
      static_cast<long long>(snap.counter("result_cache.misses")),
      static_cast<long long>(snap.counter("result_cache.inserts")));
  std::printf("\n-- warm-run EXPLAIN ANALYZE --\n%s\n", last.report.c_str());

  JsonResults json("result_reuse");
  char row[320];
  std::snprintf(row, sizeof(row),
                "{\"mode\": \"cold\", \"rows\": %d, \"wall_us\": %lld, "
                "\"stages_run\": %lld, \"stages_reused\": %lld, "
                "\"moved_records\": %lld, \"speedup\": 1.0}",
                rows, static_cast<long long>(cold.wall_us),
                static_cast<long long>(cold.metrics.stages_run),
                static_cast<long long>(cold.metrics.stages_reused),
                static_cast<long long>(cold.metrics.moved_records));
  json.Add(row);
  std::snprintf(row, sizeof(row),
                "{\"mode\": \"warm\", \"rows\": %d, \"wall_us\": %lld, "
                "\"stages_run\": %lld, \"stages_reused\": %lld, "
                "\"moved_records\": %lld, \"speedup\": %.2f}",
                rows, static_cast<long long>(warm_avg_us),
                static_cast<long long>(last.metrics.stages_run),
                static_cast<long long>(last.metrics.stages_reused),
                static_cast<long long>(last.metrics.moved_records), speedup);
  json.Add(row);
  if (!json.WriteTo("BENCH_reuse.json")) {
    std::fprintf(stderr, "failed to write BENCH_reuse.json\n");
    std::exit(1);
  }
  std::printf("wrote BENCH_reuse.json\n");
  std::filesystem::remove_all(dir, ec);

  // The warm path must actually reuse: every stage from the cache, nothing
  // moved across platforms, and (outside smoke) at least 3x faster.
  if (last.metrics.stages_run != 0 || last.metrics.stages_reused == 0) {
    std::fprintf(stderr, "FAIL: warm run executed stages (run=%lld reused=%lld)\n",
                 static_cast<long long>(last.metrics.stages_run),
                 static_cast<long long>(last.metrics.stages_reused));
    std::exit(1);
  }
  if (last.report.find("reused from result cache") == std::string::npos) {
    std::fprintf(stderr, "FAIL: warm EXPLAIN ANALYZE shows no reuse\n");
    std::exit(1);
  }
  if (!smoke && speedup < 3.0) {
    std::fprintf(stderr, "FAIL: warm speedup %.2fx < 3.0x\n", speedup);
    std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  rheem::bench::Run(smoke);
  return 0;
}

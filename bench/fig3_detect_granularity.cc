// Reproduces Figure 3 (left) of the paper: violation detection with a single
// monolithic Detect UDF versus BigDansing's Scope->Block->Iterate->Detect
// operator pipeline, both executed on the cluster-style platform. The
// paper's point: finer-grained operators let the platform distribute the
// work, so the pipeline wins by a growing factor.

#include "bench/bench_common.h"

#include "apps/cleaning/data_gen.h"
#include "apps/cleaning/plan_builder.h"

namespace rheem {
namespace bench {
namespace {

// The monolithic UDF is quadratic in the table; past this size we stop
// running it (the paper similarly stopped its baselines after 22 hours) and
// report the last measured factor instead.
constexpr int64_t kMonolithicCap = 20000;

void Run() {
  std::printf(
      "== Figure 3 (left): FD rule phi1 (zip -> city), single Detect UDF vs "
      "operator pipeline on sparksim ==\n\n");
  RheemContext* ctx = NewContext();
  cleaning::FdRule rule = cleaning::ZipCityRule();
  ResultTable table({"rows", "violations", "single_udf_ms", "pipeline_ms",
                     "pipeline_speedup"});
  for (int64_t rows : {2000, 5000, 10000, 20000, 40000}) {
    cleaning::TaxTableOptions gen;
    gen.rows = rows;
    gen.seed = 7;
    gen.fd_noise_rate = 0.02;
    gen.ineq_noise_rate = 0.0;
    Dataset tableData = cleaning::GenerateTaxTable(gen);

    cleaning::DetectOptions pipeline;
    pipeline.strategy = cleaning::DetectStrategy::kOperatorPipeline;
    pipeline.force_platform = "sparksim";
    auto pipe = cleaning::DetectViolations(ctx, tableData, rule, pipeline);
    if (!pipe.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   pipe.status().ToString().c_str());
      std::exit(1);
    }

    std::string mono_ms = "capped";
    std::string speedup = ">cap";
    if (rows <= kMonolithicCap) {
      cleaning::DetectOptions monolithic;
      monolithic.strategy = cleaning::DetectStrategy::kMonolithicUdf;
      monolithic.force_platform = "sparksim";
      auto mono = cleaning::DetectViolations(ctx, tableData, rule, monolithic);
      if (!mono.ok()) {
        std::fprintf(stderr, "monolithic failed: %s\n",
                     mono.status().ToString().c_str());
        std::exit(1);
      }
      if (mono->violations.size() != pipe->violations.size()) {
        std::fprintf(stderr, "strategy disagreement at %lld rows!\n",
                     static_cast<long long>(rows));
        std::exit(1);
      }
      mono_ms = Ms(static_cast<double>(mono->metrics.TotalMicros()));
      speedup = Times(static_cast<double>(mono->metrics.TotalMicros()) /
                      static_cast<double>(pipe->metrics.TotalMicros()));
    }
    table.AddRow({std::to_string(rows),
                  std::to_string(pipe->violations.size()), mono_ms,
                  Ms(static_cast<double>(pipe->metrics.TotalMicros())),
                  speedup});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): the operator pipeline beats the single UDF\n"
      "by a factor that grows with the input; the monolithic baseline is\n"
      "stopped beyond %lld rows.\n",
      static_cast<long long>(kMonolithicCap));
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main() {
  rheem::bench::Run();
  return 0;
}

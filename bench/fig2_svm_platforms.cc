// Reproduces Figure 2 of "Road to Freedom in Big Data Analytics" (EDBT'16):
// SVM (100 iterations) trained on LIBSVM-style datasets of growing size,
// executed as a "Spark job" (sparksim) and as a "plain Java program"
// (javasim). The paper reports Java up to ~10x faster on small datasets and
// Spark paying off only at scale; this harness reports the same series on
// the simulated platforms plus the platform RHEEM's optimizer would pick.

#include "bench/bench_common.h"

#include "apps/ml/dataset_gen.h"
#include "apps/ml/svm.h"

namespace rheem {
namespace bench {
namespace {

int64_t TrainAndMeasure(RheemContext* ctx, const Dataset& data,
                        const std::string& platform, int iterations) {
  ml::SvmOptions options;
  options.iterations = iterations;
  options.force_platform = platform;
  auto result = ml::TrainSvm(ctx, data, options);
  if (!result.ok()) {
    std::fprintf(stderr, "SVM on %s failed: %s\n", platform.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result->metrics.TotalMicros();
}

std::string ChosenPlatform(RheemContext* ctx, const Dataset& data,
                           int iterations) {
  // Ask the optimizer (no forced platform) and read the loop's placement
  // out of the metrics: javasim runs loops without job submissions, so a
  // jobs_run burst identifies sparksim.
  ml::SvmOptions options;
  options.iterations = iterations;
  auto result = ml::TrainSvm(ctx, data, options);
  if (!result.ok()) return "error";
  return result->metrics.jobs_run > iterations / 2 ? "sparksim" : "javasim";
}

void Run() {
  std::printf(
      "== Figure 2: SVM, %d iterations, 10 features, Spark job vs plain "
      "Java ==\n",
      100);
  std::printf(
      "(simulated cluster constants ~1:40 of a real Spark deployment; see "
      "EXPERIMENTS.md)\n\n");
  RheemContext* ctx = NewContext();
  const int iterations = 100;
  ResultTable table({"rows", "java_ms", "spark_ms", "java_speedup",
                     "optimizer_choice"});
  for (int64_t rows : {100, 1000, 10000, 50000, 150000}) {
    Dataset data = ml::GenerateClassification(rows, 10, 42);
    const int64_t java_us = TrainAndMeasure(ctx, data, "javasim", iterations);
    const int64_t spark_us = TrainAndMeasure(ctx, data, "sparksim", iterations);
    table.AddRow({std::to_string(rows), Ms(static_cast<double>(java_us)),
                  Ms(static_cast<double>(spark_us)),
                  Times(static_cast<double>(spark_us) /
                        static_cast<double>(java_us)),
                  ChosenPlatform(ctx, data, iterations)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): plain Java ~10x faster on small inputs; the\n"
      "gap closes and inverts as rows grow; the optimizer switches platform\n"
      "at the crossover.\n");

  // The paper also notes "this performance gap gets bigger with the number
  // of iterations": every iteration is another job submission on the
  // cluster platform, so the fixed-size dataset's gap scales with rounds.
  std::printf(
      "\n== Figure 2 (iterations claim): fixed 1000-row dataset, growing "
      "iteration count ==\n\n");
  Dataset small = ml::GenerateClassification(1000, 10, 42);
  ResultTable iter_table({"iterations", "java_ms", "spark_ms", "java_speedup"});
  for (int iters : {10, 50, 100, 200}) {
    const int64_t java_us = TrainAndMeasure(ctx, small, "javasim", iters);
    const int64_t spark_us = TrainAndMeasure(ctx, small, "sparksim", iters);
    iter_table.AddRow({std::to_string(iters),
                       Ms(static_cast<double>(java_us)),
                       Ms(static_cast<double>(spark_us)),
                       Times(static_cast<double>(spark_us) /
                             static_cast<double>(java_us))});
  }
  iter_table.Print();
  std::printf(
      "\nExpected: the absolute gap (spark_ms - java_ms) grows linearly with\n"
      "iterations — each round pays another job submission.\n");
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main() {
  rheem::bench::Run();
  return 0;
}

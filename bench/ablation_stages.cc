// Ablation A6: task-atom granularity. The multi-platform optimizer splits a
// physical plan into task atoms at platform switches (paper §4.2). This
// bench runs an aggregation+UDF pipeline three ways: forced onto each single
// platform (one atom) and optimizer-split across platforms, reporting the
// stage counts and end-to-end times. When platform strengths differ along
// the plan, the split plan wins despite paying the boundary.

#include "bench/bench_common.h"

#include <string>

#include "common/rng.h"
#include "core/api/data_quanta.h"

namespace rheem {
namespace bench {
namespace {

Dataset Events(int64_t rows) {
  Rng rng(55);
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    out.push_back(
        Record({Value(rng.NextInt(0, 40)), Value(rng.NextDouble(0, 10))}));
  }
  return Dataset(std::move(out));
}

DataQuanta BuildPipeline(RheemJob* job, const Dataset& data) {
  // Aggregation prefix (tiny output) feeding a very expensive per-group UDF:
  // different halves favor different platforms.
  return job->LoadCollection(data)
      .ReduceByKey(
          [](const Record& r) { return r[0]; },
          [](const Record& a, const Record& b) {
            return Record({a[0], Value(a[1].ToDoubleOr(0) + b[1].ToDoubleOr(0))});
          },
          /*key_distinct_ratio=*/0.0005)
      .Map(
          [](const Record& r) {
            double x = r[1].ToDoubleOr(0);
            for (int k = 0; k < 2000000; ++k) x = x * 1.0000001 + 1e-9;
            return Record({r[0], Value(x)});
          },
          UdfMeta::Expensive(2e6));
}

struct Outcome {
  int64_t total_us = 0;
  std::size_t stages = 0;
};

Outcome RunMode(RheemContext* ctx, const Dataset& data,
                const std::string& force) {
  RheemJob job(ctx);
  job.options().force_platform = force;
  auto result = BuildPipeline(&job, data).CollectWithMetrics();
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  Outcome out;
  out.total_us = result->metrics.TotalMicros();
  out.stages = static_cast<std::size_t>(result->metrics.stages_run);
  return out;
}

void Run() {
  std::printf(
      "== Ablation A6: one task atom (forced platform) vs optimizer-split "
      "atoms ==\n\n");
  RheemContext* ctx = NewContext();
  Dataset data = Events(400000);
  ResultTable table({"mode", "stages", "total_ms"});
  Outcome java = RunMode(ctx, data, "javasim");
  Outcome spark = RunMode(ctx, data, "sparksim");
  Outcome split = RunMode(ctx, data, "");
  table.AddRow({"all-javasim", std::to_string(java.stages),
                Ms(static_cast<double>(java.total_us))});
  table.AddRow({"all-sparksim", std::to_string(spark.stages),
                Ms(static_cast<double>(spark.total_us))});
  table.AddRow({"optimizer-split", std::to_string(split.stages),
                Ms(static_cast<double>(split.total_us))});
  table.Print();
  std::printf(
      "\nExpected: the split plan matches or beats the best single-platform\n"
      "plan by putting the scan-heavy aggregation and the CPU-heavy UDF map\n"
      "where each runs best (at the cost of one extra stage).\n");
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main() {
  rheem::bench::Run();
  return 0;
}

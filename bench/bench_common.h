#ifndef RHEEM_BENCH_BENCH_COMMON_H_
#define RHEEM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stopwatch.h"
#include "core/api/context.h"

namespace rheem {
namespace bench {

/// Default benchmark configuration: the scaled-down cluster constants
/// documented in EXPERIMENTS.md (about 1:40 of a real Spark cluster's
/// overheads, so crossovers land at laptop-scale datasets).
inline Config BenchConfig() {
  Config config;
  config.SetInt("sparksim.slots", 8);
  config.SetInt("sparksim.partitions", 8);
  return config;
}

inline RheemContext* NewContext() {
  auto* ctx = new RheemContext(BenchConfig());
  Status st = ctx->RegisterDefaultPlatforms();
  if (!st.ok()) {
    std::fprintf(stderr, "platform registration failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  return ctx;
}

/// Simple fixed-width table printer for the paper-style result series.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Collects pre-formatted JSON objects and writes a committed
/// `BENCH_<name>.json` result file: {"bench": name, "results": [rows...]}.
class JsonResults {
 public:
  explicit JsonResults(std::string bench) : bench_(std::move(bench)) {}

  void Add(std::string row_json) { rows_.push_back(std::move(row_json)); }

  /// Free-form annotation written as a top-level "note" key (e.g. the
  /// before/after story of a re-recorded series). Must not contain quotes.
  void SetNote(std::string note) { note_ = std::move(note); }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_.c_str());
    if (!note_.empty()) {
      std::fprintf(f, "  \"note\": \"%s\",\n", note_.c_str());
    }
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_;
  std::string note_;
  std::vector<std::string> rows_;
};

inline std::string Ms(double micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", micros * 1e-3);
  return buf;
}

inline std::string Times(double factor) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", factor);
  return buf;
}

}  // namespace bench
}  // namespace rheem

#endif  // RHEEM_BENCH_BENCH_COMMON_H_

// Service-layer throughput: 16 concurrent job submissions through the
// JobServer (service.max_concurrent=4 workers, plan cache) versus the same
// 16 jobs run sequentially through RheemContext::Execute. Each map quantum
// waits ~2ms, modeling an operator dominated by external I/O (remote scans,
// RPCs) — the regime a serving layer wins in by overlapping jobs; a purely
// CPU-bound workload cannot speed up on a single-core box no matter how the
// jobs are scheduled. Acceptance: >= 2x throughput and plan-cache hits on
// the repeated shape.

#include "bench/bench_common.h"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/api/data_quanta.h"
#include "core/service/job_server.h"

namespace rheem {
namespace bench {
namespace {

Dataset Numbers(int64_t n) {
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) records.push_back(Record({Value(i)}));
  return Dataset(std::move(records));
}

Record SlowIoMap(const Record& r) {
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  return Record({Value(r[0].ToInt64Or(0) * 2)});
}

/// Builds the benchmark pipeline in `job` and returns its sealed plan:
/// src -> slow "I/O" map -> count.
Plan* BuildJob(RheemJob* job, int64_t rows) {
  auto sealed = job->LoadCollection(Numbers(rows))
                    .Map(SlowIoMap, UdfMeta::Expensive(50.0))
                    .Count()
                    .Seal();
  if (!sealed.ok()) {
    std::fprintf(stderr, "seal failed: %s\n", sealed.status().ToString().c_str());
    std::exit(1);
  }
  return sealed.ValueOrDie();
}

int Run() {
  constexpr int kJobs = 16;
  constexpr int64_t kRows = 100;

  // --- baseline: one job at a time through RheemContext::Execute ----------
  std::unique_ptr<RheemContext> sequential_ctx(NewContext());
  Stopwatch sequential_watch;
  for (int i = 0; i < kJobs; ++i) {
    RheemJob job(sequential_ctx.get());
    Plan* plan = BuildJob(&job, kRows);
    auto result = sequential_ctx->Execute(*plan);
    if (!result.ok()) {
      std::fprintf(stderr, "sequential job %d failed: %s\n", i,
                   result.status().ToString().c_str());
      return 1;
    }
  }
  const double sequential_ms = sequential_watch.ElapsedMillis();

  // --- service: 16 submissions, 4 workers, plan cache on ------------------
  Config config = BenchConfig();
  config.SetInt("service.max_concurrent", 4);
  config.SetInt("service.queue_depth", kJobs);
  auto service_ctx = std::make_unique<RheemContext>(config);
  if (Status st = service_ctx->RegisterDefaultPlatforms(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<std::unique_ptr<RheemJob>> jobs;
  std::vector<Plan*> plans;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back(std::make_unique<RheemJob>(service_ctx.get()));
    plans.push_back(BuildJob(jobs.back().get(), kRows));
  }
  Stopwatch service_watch;
  std::vector<JobHandle> handles;
  for (Plan* plan : plans) {
    auto handle = service_ctx->Submit(*plan);
    if (!handle.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   handle.status().ToString().c_str());
      return 1;
    }
    handles.push_back(*handle);
  }
  for (JobHandle& h : handles) {
    auto result = h.Wait();
    if (!result.ok()) {
      std::fprintf(stderr, "service job %llu failed: %s\n",
                   static_cast<unsigned long long>(h.id()),
                   result.status().ToString().c_str());
      return 1;
    }
  }
  const double service_ms = service_watch.ElapsedMillis();
  const JobServerStats stats = service_ctx->job_server().stats();

  const double speedup = sequential_ms / service_ms;
  ResultTable table({"mode", "jobs", "wall ms", "jobs/s", "speedup"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", sequential_ms);
  table.AddRow({"sequential", std::to_string(kJobs), buf,
                std::to_string(kJobs * 1000.0 / sequential_ms).substr(0, 5),
                "1.00x"});
  std::snprintf(buf, sizeof(buf), "%.0f", service_ms);
  char sp[32];
  std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
  table.AddRow({"job server (4 workers)", std::to_string(kJobs), buf,
                std::to_string(kJobs * 1000.0 / service_ms).substr(0, 5), sp});
  table.Print();
  std::printf(
      "plan cache: %lld hits / %lld misses (capacity %zu)\n",
      static_cast<long long>(stats.cache.hits),
      static_cast<long long>(stats.cache.misses), stats.cache.capacity);
  std::printf("speedup: %.2fx (acceptance floor: 2.00x)\n", speedup);

  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the 2x acceptance bar\n",
                 speedup);
    return 1;
  }
  if (stats.cache.hits <= 0) {
    std::fprintf(stderr, "FAIL: expected plan-cache hits on repeated shape\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main() { return rheem::bench::Run(); }

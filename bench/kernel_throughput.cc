// Kernel throughput: serial vs morsel-parallel vs fused execution of a
// Map -> Filter -> ReduceByKey pipeline at pool widths 1/2/4/8.
//
// The host container may have a single core, so in addition to measured wall
// time each parallel run reports a *modeled* latency at width w:
//   serial_part + max(parallel_cpu / w, critical_path)
// from the per-kernel timing counters — the same virtual-clock substitution
// the sparksim TaskScheduler performs (DESIGN.md §3). Results land in
// BENCH_kernels.json.
//
// Usage: kernel_throughput [--smoke]   (--smoke: small input, fewer widths)

#include "bench/bench_common.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/operators/kernels.h"

namespace rheem {
namespace bench {
namespace {

using kernels::FusedStep;
using kernels::KernelOptions;

Dataset MakeRows(int64_t n) {
  std::vector<Record> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Record({Value(i % 1000), Value(i)}));
  }
  return Dataset(std::move(rows));
}

MapUdf Arithmetic() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    int64_t x = r[1].ToInt64Or(0);
    x = x * 3 + 1;
    x ^= x >> 7;
    return Record({r[0], Value(x)});
  };
  return udf;
}

PredicateUdf KeepMost() {  // ~87.5% pass
  PredicateUdf udf;
  udf.fn = [](const Record& r) { return r[1].ToInt64Or(0) % 8 != 0; };
  return udf;
}

KeyUdf FirstField() {
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  return key;
}

ReduceUdf SumSecond() {
  ReduceUdf udf;
  udf.fn = [](const Record& a, const Record& b) {
    return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
  };
  return udf;
}

struct RunResult {
  int64_t wall_us = 0;     // measured on this host
  int64_t modeled_us = 0;  // latency a w-wide pool would achieve
  std::size_t out_rows = 0;
};

int64_t ModeledTotal(std::size_t workers) {
  int64_t total = 0;
  for (const auto& t : kernels::SnapshotKernelTimings()) {
    total += kernels::ModeledMicrosAtWidth(t, workers);
  }
  return total;
}

RunResult RunPipeline(const Dataset& in, const KernelOptions& opts,
                      bool fused, std::size_t workers) {
  kernels::ResetKernelTimings();
  Stopwatch sw;
  Result<Dataset> narrowed = fused
      ? kernels::FusedPipeline({FusedStep::OfMap(Arithmetic()),
                                FusedStep::OfFilter(KeepMost())},
                               in, opts)
      : [&]() -> Result<Dataset> {
          auto mapped = kernels::Map(Arithmetic(), in, opts);
          if (!mapped.ok()) return mapped.status();
          return kernels::Filter(KeepMost(), *mapped, opts);
        }();
  if (!narrowed.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 narrowed.status().ToString().c_str());
    std::exit(1);
  }
  auto reduced = kernels::ReduceByKey(FirstField(), SumSecond(), *narrowed,
                                      opts);
  if (!reduced.ok()) {
    std::fprintf(stderr, "reduce failed: %s\n",
                 reduced.status().ToString().c_str());
    std::exit(1);
  }
  RunResult r;
  r.wall_us = sw.ElapsedMicros();
  r.modeled_us = opts.parallel ? ModeledTotal(workers) : r.wall_us;
  r.out_rows = reduced->size();
  return r;
}

void Run(bool smoke) {
  const int64_t rows = smoke ? 100000 : 1000000;
  const std::vector<std::size_t> widths =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  std::printf("== Kernel throughput: Map -> Filter -> ReduceByKey, %lld rows "
              "==\n\n",
              static_cast<long long>(rows));
  const Dataset in = MakeRows(rows);

  const RunResult serial =
      RunPipeline(in, KernelOptions::Serial(), /*fused=*/false, 1);

  ResultTable table(
      {"mode", "workers", "wall_ms", "modeled_ms", "modeled_speedup"});
  table.AddRow({"serial", "1", Ms(static_cast<double>(serial.wall_us)),
                Ms(static_cast<double>(serial.wall_us)), "1.0x"});
  JsonResults json("kernel_throughput");
  char row[256];
  std::snprintf(row, sizeof(row),
                "{\"mode\": \"serial\", \"workers\": 1, \"rows\": %lld, "
                "\"wall_us\": %lld, \"modeled_us\": %lld, "
                "\"modeled_speedup\": 1.0}",
                static_cast<long long>(rows),
                static_cast<long long>(serial.wall_us),
                static_cast<long long>(serial.wall_us));
  json.Add(row);

  double fused_speedup_at_4 = 0.0;
  for (const char* mode : {"parallel", "fused"}) {
    const bool fused = std::strcmp(mode, "fused") == 0;
    for (std::size_t w : widths) {
      ThreadPool pool(w);
      KernelOptions opts;
      opts.pool = &pool;
      const RunResult r = RunPipeline(in, opts, fused, w);
      if (r.out_rows != serial.out_rows) {
        std::fprintf(stderr, "output mismatch: %zu vs %zu rows\n", r.out_rows,
                     serial.out_rows);
        std::exit(1);
      }
      const double speedup = r.modeled_us > 0
          ? static_cast<double>(serial.wall_us) /
                static_cast<double>(r.modeled_us)
          : 0.0;
      if (fused && w == 4) fused_speedup_at_4 = speedup;
      table.AddRow({mode, std::to_string(w),
                    Ms(static_cast<double>(r.wall_us)),
                    Ms(static_cast<double>(r.modeled_us)), Times(speedup)});
      std::snprintf(row, sizeof(row),
                    "{\"mode\": \"%s\", \"workers\": %zu, \"rows\": %lld, "
                    "\"wall_us\": %lld, \"modeled_us\": %lld, "
                    "\"modeled_speedup\": %.2f}",
                    mode, w, static_cast<long long>(rows),
                    static_cast<long long>(r.wall_us),
                    static_cast<long long>(r.modeled_us), speedup);
      json.Add(row);
    }
  }

  table.Print();
  if (!json.WriteTo("BENCH_kernels.json")) {
    std::fprintf(stderr, "failed to write BENCH_kernels.json\n");
    std::exit(1);
  }
  std::printf("\nwrote BENCH_kernels.json\n");
  if (!smoke && fused_speedup_at_4 < 2.5) {
    std::fprintf(stderr,
                 "FAIL: fused modeled speedup at 4 workers = %.2fx < 2.5x\n",
                 fused_speedup_at_4);
    std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  rheem::bench::Run(smoke);
  return 0;
}

// Kernel throughput: serial vs morsel-parallel vs fused vs columnar
// execution of a Map -> Filter -> ReduceByKey pipeline at pool widths
// 1/2/4/8.
//
// Row modes drive closure UDFs record-at-a-time; the columnar modes build
// the same pipeline declaratively (core/expr) so the kernels convert to a
// Batch once and evaluate column-at-a-time. Both compute the identical
// arithmetic — (x*3+1) % 7919 — so wall times are comparable.
//
// The host container may have a single core, so each parallel run also
// reports a *modeled* latency at width w:
//   serial_part + max(parallel_cpu / w, critical_path)
// from the per-kernel timing counters — the same virtual-clock substitution
// the sparksim TaskScheduler performs (DESIGN.md §3). The pass/fail gates,
// however, are measured WALL CLOCK (the point of the columnar engine is to
// be faster for real, not in the model):
//   wall(columnar fused @ 4 workers) >= 2.5x over row serial, and
//   wall(columnar fused @ 1 worker)  >= 1.5x over row serial.
// Both gates apply in --smoke runs too (Release CI runs --smoke).
//
// Results land in BENCH_kernels.json.
//
// Usage: kernel_throughput [--smoke]   (--smoke: small input, fewer widths)

#include "bench/bench_common.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/expr/expr.h"
#include "core/operators/kernels.h"

namespace rheem {
namespace bench {
namespace {

using kernels::FusedStep;
using kernels::KernelOptions;

Dataset MakeRows(int64_t n) {
  std::vector<Record> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Record({Value(i % 1000), Value(i)}));
  }
  return Dataset(std::move(rows));
}

// --- the pipeline, closure form --------------------------------------------

MapUdf Arithmetic() {
  MapUdf udf;
  udf.fn = [](const Record& r) {
    const int64_t x = (r[1].ToInt64Or(0) * 3 + 1) % 7919;
    return Record({r[0], Value(x)});
  };
  return udf;
}

PredicateUdf KeepMost() {  // ~87.5% pass
  PredicateUdf udf;
  udf.fn = [](const Record& r) { return r[1].ToInt64Or(0) % 8 != 0; };
  return udf;
}

KeyUdf FirstField() {
  KeyUdf key;
  key.fn = [](const Record& r) { return r[0]; };
  return key;
}

ReduceUdf SumSecond() {
  ReduceUdf udf;
  udf.fn = [](const Record& a, const Record& b) {
    return Record({a[0], Value(a[1].ToInt64Or(0) + b[1].ToInt64Or(0))});
  };
  return udf;
}

// --- the same pipeline, declarative form -----------------------------------

struct DeclarativePipeline {
  MapUdf map;
  PredicateUdf filter;
  KeyUdf key;
  ReduceUdf reduce;
};

template <typename T>
T Must(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

DeclarativePipeline Declarative() {
  namespace ex = rheem::expr;
  DeclarativePipeline p;
  // Map: {k, (x*3+1) % 7919}
  p.map = Must(ex::MakeMapUdf(
                   {ex::Field(0, ValueType::kInt64, "k"),
                    ex::Mod(ex::Add(ex::Mul(ex::Field(1, ValueType::kInt64, "x"),
                                            ex::Lit(int64_t{3})),
                                    ex::Lit(int64_t{1})),
                            ex::Lit(int64_t{7919}))}),
               "declarative map");
  // Filter: x % 8 != 0
  p.filter = Must(ex::MakePredicateUdf(
                      ex::Ne(ex::Mod(ex::Field(1, ValueType::kInt64, "x"),
                                     ex::Lit(int64_t{8})),
                             ex::Lit(int64_t{0}))),
                  "declarative filter");
  p.key = Must(ex::MakeKeyUdf(ex::Field(0, ValueType::kInt64, "k")),
               "declarative key");
  p.reduce = Must(MakeAggReduceUdf({{0, AggKind::kFirst}, {1, AggKind::kSum}}),
                  "declarative reduce");
  return p;
}

// --- runner ----------------------------------------------------------------

enum class Mode { kSerial, kParallel, kFused, kColumnar, kColumnarFused };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kSerial: return "serial";
    case Mode::kParallel: return "parallel";
    case Mode::kFused: return "fused";
    case Mode::kColumnar: return "columnar";
    case Mode::kColumnarFused: return "columnar_fused";
  }
  return "?";
}

struct RunResult {
  int64_t wall_us = 0;     // measured on this host
  int64_t modeled_us = 0;  // latency a w-wide pool would achieve
  std::size_t out_rows = 0;
};

int64_t ModeledTotal(std::size_t workers) {
  int64_t total = 0;
  for (const auto& t : kernels::SnapshotKernelTimings()) {
    total += kernels::ModeledMicrosAtWidth(t, workers);
  }
  return total;
}

RunResult RunPipeline(const Dataset& in, const KernelOptions& opts, Mode mode,
                      std::size_t workers) {
  const bool columnar =
      mode == Mode::kColumnar || mode == Mode::kColumnarFused;
  const bool fused = mode == Mode::kFused || mode == Mode::kColumnarFused;
  static const DeclarativePipeline decl = Declarative();
  const MapUdf map = columnar ? decl.map : Arithmetic();
  const PredicateUdf filter = columnar ? decl.filter : KeepMost();
  const KeyUdf key = columnar ? decl.key : FirstField();
  const ReduceUdf reduce = columnar ? decl.reduce : SumSecond();

  kernels::ResetKernelTimings();
  Stopwatch sw;
  if (mode == Mode::kColumnarFused) {
    // Batch-resident pipeline: one Dataset->Batch conversion up front, all
    // operators column-at-a-time, one (small) materialization at the end —
    // the conversion-at-boundary contract at its best case.
    Batch batch = Must(Batch::FromDataset(in), "to batch");
    Batch mapped = Must(kernels::MapBatch(map, batch, opts), "map batch");
    Status fs = kernels::FilterBatch(filter, &mapped, opts);
    if (!fs.ok()) {
      std::fprintf(stderr, "filter batch failed: %s\n", fs.ToString().c_str());
      std::exit(1);
    }
    Dataset reduced =
        Must(kernels::ReduceByKeyBatch(key, reduce, mapped, opts),
             "reduce batch");
    RunResult r;
    r.wall_us = sw.ElapsedMicros();
    r.modeled_us = opts.parallel ? ModeledTotal(workers) : r.wall_us;
    r.out_rows = reduced.size();
    return r;
  }
  Result<Dataset> narrowed = fused
      ? kernels::FusedPipeline(
            {FusedStep::OfMap(map), FusedStep::OfFilter(filter)}, in, opts)
      : [&]() -> Result<Dataset> {
          auto mapped = kernels::Map(map, in, opts);
          if (!mapped.ok()) return mapped.status();
          return kernels::Filter(filter, *mapped, opts);
        }();
  if (!narrowed.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 narrowed.status().ToString().c_str());
    std::exit(1);
  }
  auto reduced = kernels::ReduceByKey(key, reduce, *narrowed, opts);
  if (!reduced.ok()) {
    std::fprintf(stderr, "reduce failed: %s\n",
                 reduced.status().ToString().c_str());
    std::exit(1);
  }
  RunResult r;
  r.wall_us = sw.ElapsedMicros();
  r.modeled_us = opts.parallel ? ModeledTotal(workers) : r.wall_us;
  r.out_rows = reduced->size();
  return r;
}

void Run(bool smoke) {
  const int64_t rows = smoke ? 100000 : 1000000;
  const std::vector<std::size_t> widths =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  std::printf("== Kernel throughput: Map -> Filter -> ReduceByKey, %lld rows "
              "==\n\n",
              static_cast<long long>(rows));
  const Dataset in = MakeRows(rows);

  KernelOptions serial_opts = KernelOptions::Serial();
  serial_opts.columnar = false;  // row baseline stays row
  RunPipeline(in, serial_opts, Mode::kSerial, 1);  // warmup (cold caches)
  const RunResult serial = RunPipeline(in, serial_opts, Mode::kSerial, 1);

  ResultTable table({"mode", "workers", "wall_ms", "wall_speedup",
                     "modeled_ms", "modeled_speedup"});
  table.AddRow({"serial", "1", Ms(static_cast<double>(serial.wall_us)), "1.0x",
                Ms(static_cast<double>(serial.wall_us)), "1.0x"});
  JsonResults json("kernel_throughput");
  json.SetNote(
      "re-recorded for the columnar engine: wall_us columns are measured "
      "wall clock on this host and the gates are wall-clock "
      "(columnar_fused >= 2.5x @ 4 workers, >= 1.5x @ 1 worker, vs row "
      "serial); before this change only a modeled-clock fused gate "
      "existed and row wall time never beat serial on a 1-core host");
  char row[320];
  std::snprintf(row, sizeof(row),
                "{\"mode\": \"serial\", \"workers\": 1, \"rows\": %lld, "
                "\"wall_us\": %lld, \"wall_speedup\": 1.0, "
                "\"modeled_us\": %lld, \"modeled_speedup\": 1.0}",
                static_cast<long long>(rows),
                static_cast<long long>(serial.wall_us),
                static_cast<long long>(serial.wall_us));
  json.Add(row);

  double columnar_fused_wall_at_4 = 0.0;
  double columnar_fused_wall_at_1 = 0.0;
  for (Mode mode : {Mode::kParallel, Mode::kFused, Mode::kColumnar,
                    Mode::kColumnarFused}) {
    const bool columnar =
        mode == Mode::kColumnar || mode == Mode::kColumnarFused;
    for (std::size_t w : widths) {
      ThreadPool pool(w);
      KernelOptions opts;
      opts.pool = &pool;
      opts.columnar = columnar;
      const RunResult r = RunPipeline(in, opts, mode, w);
      if (r.out_rows != serial.out_rows) {
        std::fprintf(stderr, "output mismatch: %zu vs %zu rows\n", r.out_rows,
                     serial.out_rows);
        std::exit(1);
      }
      const double wall_speedup = r.wall_us > 0
          ? static_cast<double>(serial.wall_us) /
                static_cast<double>(r.wall_us)
          : 0.0;
      const double modeled_speedup = r.modeled_us > 0
          ? static_cast<double>(serial.wall_us) /
                static_cast<double>(r.modeled_us)
          : 0.0;
      if (mode == Mode::kColumnarFused && w == 4) {
        columnar_fused_wall_at_4 = wall_speedup;
      }
      if (mode == Mode::kColumnarFused && w == 1) {
        columnar_fused_wall_at_1 = wall_speedup;
      }
      table.AddRow({ModeName(mode), std::to_string(w),
                    Ms(static_cast<double>(r.wall_us)), Times(wall_speedup),
                    Ms(static_cast<double>(r.modeled_us)),
                    Times(modeled_speedup)});
      std::snprintf(row, sizeof(row),
                    "{\"mode\": \"%s\", \"workers\": %zu, \"rows\": %lld, "
                    "\"wall_us\": %lld, \"wall_speedup\": %.2f, "
                    "\"modeled_us\": %lld, \"modeled_speedup\": %.2f}",
                    ModeName(mode), w, static_cast<long long>(rows),
                    static_cast<long long>(r.wall_us), wall_speedup,
                    static_cast<long long>(r.modeled_us), modeled_speedup);
      json.Add(row);
    }
  }

  table.Print();
  if (!json.WriteTo("BENCH_kernels.json")) {
    std::fprintf(stderr, "failed to write BENCH_kernels.json\n");
    std::exit(1);
  }
  std::printf("\nwrote BENCH_kernels.json\n");
  bool failed = false;
  if (columnar_fused_wall_at_4 < 2.5) {
    std::fprintf(stderr,
                 "FAIL: columnar_fused wall speedup at 4 workers = %.2fx "
                 "< 2.5x\n",
                 columnar_fused_wall_at_4);
    failed = true;
  }
  if (columnar_fused_wall_at_1 < 1.5) {
    std::fprintf(stderr,
                 "FAIL: columnar_fused wall speedup at 1 worker = %.2fx "
                 "< 1.5x\n",
                 columnar_fused_wall_at_1);
    failed = true;
  }
  if (failed) std::exit(1);
  std::printf("wall gates passed: columnar_fused %.2fx @4 (>=2.5x), "
              "%.2fx @1 (>=1.5x)\n",
              columnar_fused_wall_at_4, columnar_fused_wall_at_1);
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  rheem::bench::Run(smoke);
  return 0;
}

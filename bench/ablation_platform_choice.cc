// Ablation A1: the cost of being tied to one platform. For SVM jobs across
// dataset sizes, compares RHEEM's optimizer-chosen platform against always-
// javasim and always-sparksim, reporting each fixed policy's regret (time /
// best time). Quantifies the paper's §2 claim that one platform can be
// orders of magnitude better than another *per input*, so no fixed choice
// wins everywhere.

#include <algorithm>

#include "bench/bench_common.h"

#include "apps/ml/dataset_gen.h"
#include "apps/ml/svm.h"

namespace rheem {
namespace bench {
namespace {

int64_t Train(RheemContext* ctx, const Dataset& data,
              const std::string& platform) {
  ml::SvmOptions options;
  options.iterations = 50;
  options.force_platform = platform;  // empty = optimizer decides
  auto result = ml::TrainSvm(ctx, data, options);
  if (!result.ok()) {
    std::fprintf(stderr, "SVM failed: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return result->metrics.TotalMicros();
}

void Run() {
  std::printf(
      "== Ablation A1: optimizer-chosen platform vs fixed platform "
      "(SVM, 50 iterations) ==\n\n");
  RheemContext* ctx = NewContext();
  ResultTable table({"rows", "optimizer_ms", "java_ms", "spark_ms",
                     "java_regret", "spark_regret", "optimizer_regret"});
  double worst_java = 0, worst_spark = 0, worst_opt = 0;
  for (int64_t rows : {200, 2000, 20000, 100000}) {
    Dataset data = ml::GenerateClassification(rows, 10, 21);
    const double opt = static_cast<double>(Train(ctx, data, ""));
    const double java = static_cast<double>(Train(ctx, data, "javasim"));
    const double spark = static_cast<double>(Train(ctx, data, "sparksim"));
    const double best = std::min({opt, java, spark});
    worst_java = std::max(worst_java, java / best);
    worst_spark = std::max(worst_spark, spark / best);
    worst_opt = std::max(worst_opt, opt / best);
    table.AddRow({std::to_string(rows), Ms(opt), Ms(java), Ms(spark),
                  Times(java / best), Times(spark / best), Times(opt / best)});
  }
  table.Print();
  std::printf(
      "\nWorst-case regret: always-java %.1fx, always-spark %.1fx, "
      "optimizer %.1fx.\n"
      "Expected: each fixed policy is badly beaten somewhere; the optimizer "
      "stays near 1x everywhere.\n",
      worst_java, worst_spark, worst_opt);
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main() {
  rheem::bench::Run();
  return 0;
}

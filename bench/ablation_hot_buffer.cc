// Ablation A5: the hot-data buffer of the storage abstraction (paper §6,
// "Embracing hot data"). Repeated analytics over a CSV-resident dataset pay
// the text parse on every access without the buffer and once with it.

#include <filesystem>

#include "bench/bench_common.h"

#include "apps/cleaning/data_gen.h"
#include "storage/csv_store.h"
#include "storage/hot_buffer.h"

namespace rheem {
namespace bench {
namespace {

double RunAnalytics(const Dataset& data) {
  // A small scan-heavy aggregate standing in for the repeated analysis.
  double total = 0;
  for (const Record& r : data.records()) total += r[3].ToDoubleOr(0);
  return total;
}

void Run() {
  std::printf(
      "== Ablation A5: repeated analytics over CSV-resident data, with and "
      "without the hot-data buffer ==\n\n");
  const std::string dir = "/tmp/rheem_bench_hot_buffer";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  storage::StorageManager manager;
  if (!manager.RegisterBackend(std::make_unique<storage::CsvStore>(dir)).ok()) {
    std::exit(1);
  }
  cleaning::TaxTableOptions gen;
  gen.rows = 50000;
  Dataset table = cleaning::GenerateTaxTable(gen);
  if (!manager.Backend("csv-files").ValueOrDie()->Put("tax", table).ok()) {
    std::exit(1);
  }

  const int kRepeats = 8;
  ResultTable out({"mode", "total_ms", "per_access_ms", "parses"});

  // Cold path: every access re-reads and re-parses the CSV file.
  {
    Stopwatch sw;
    double sink = 0;
    for (int i = 0; i < kRepeats; ++i) {
      auto data = manager.Load("tax");
      if (!data.ok()) std::exit(1);
      sink += RunAnalytics(*data);
    }
    const double total_us = static_cast<double>(sw.ElapsedMicros());
    out.AddRow({"no buffer", Ms(total_us), Ms(total_us / kRepeats),
                std::to_string(kRepeats)});
    if (sink == 12345.6789) std::printf("?");  // keep the work observable
  }

  // Hot path: the buffer keeps the parsed rows in native format.
  {
    storage::HotDataBuffer buffer(&manager, 1LL << 30);
    Stopwatch sw;
    double sink = 0;
    for (int i = 0; i < kRepeats; ++i) {
      auto data = buffer.Load("tax");
      if (!data.ok()) std::exit(1);
      sink += RunAnalytics(**data);
    }
    const double total_us = static_cast<double>(sw.ElapsedMicros());
    out.AddRow({"hot buffer", Ms(total_us), Ms(total_us / kRepeats),
                std::to_string(buffer.misses())});
    if (sink == 12345.6789) std::printf("?");
  }
  out.Print();
  std::printf(
      "\nExpected: the buffered mode parses once (misses column) and serves\n"
      "the remaining %d accesses from the native-format cache.\n",
      kRepeats - 1);
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main() {
  rheem::bench::Run();
  return 0;
}

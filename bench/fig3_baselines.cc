// Reproduces Figure 3 (right) of the paper: inequality denial-constraint
// detection (phi2: salary > salary' AND tax < tax') comparing
//  (a) the monolithic single-UDF baseline (the "state of the art on Spark"
//      role; the paper stopped these after 22 hours),
//  (b) the BigDansing operator pipeline with a theta join, and
//  (c) the pipeline with the IEJoin physical operator — the extensibility
//      showcase that buys orders of magnitude.

#include "bench/bench_common.h"

#include "apps/cleaning/data_gen.h"
#include "apps/cleaning/plan_builder.h"

namespace rheem {
namespace bench {
namespace {

constexpr int64_t kQuadraticCap = 8000;  // baselines are O(n^2)

std::string RunStrategy(RheemContext* ctx, const Dataset& data,
                        const cleaning::IneqRule& rule,
                        cleaning::DetectStrategy strategy, int64_t* out_us,
                        std::size_t* out_violations) {
  cleaning::DetectOptions options;
  options.strategy = strategy;
  options.force_platform = "sparksim";
  auto report = cleaning::DetectViolations(ctx, data, rule, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s failed: %s\n",
                 cleaning::DetectStrategyToString(strategy),
                 report.status().ToString().c_str());
    std::exit(1);
  }
  *out_us = report->metrics.TotalMicros();
  *out_violations = report->violations.size();
  return Ms(static_cast<double>(*out_us));
}

void Run() {
  std::printf(
      "== Figure 3 (right): inequality DC phi2, baseline vs BigDansing vs "
      "BigDansing+IEJoin on sparksim ==\n\n");
  RheemContext* ctx = NewContext();
  cleaning::IneqRule rule = cleaning::SalaryTaxRule();
  ResultTable table({"rows", "violations", "baseline_ms", "bigdansing_ms",
                     "iejoin_ms", "iejoin_vs_baseline"});
  for (int64_t rows : {1000, 2000, 4000, 8000, 16000}) {
    cleaning::TaxTableOptions gen;
    gen.rows = rows;
    gen.seed = 13;
    gen.fd_noise_rate = 0.0;
    gen.ineq_noise_rate = 0.002;  // keep |output| manageable at scale
    Dataset data = cleaning::GenerateTaxTable(gen);

    int64_t ie_us = 0, theta_us = 0, mono_us = 0;
    std::size_t ie_n = 0, theta_n = 0, mono_n = 0;
    const std::string ie_ms =
        RunStrategy(ctx, data, rule,
                    cleaning::DetectStrategy::kOperatorPipelineIEJoin, &ie_us,
                    &ie_n);
    std::string theta_ms = "capped";
    std::string mono_ms = "capped";
    std::string factor = ">cap";
    if (rows <= kQuadraticCap) {
      theta_ms = RunStrategy(ctx, data, rule,
                             cleaning::DetectStrategy::kOperatorPipeline,
                             &theta_us, &theta_n);
      mono_ms = RunStrategy(ctx, data, rule,
                            cleaning::DetectStrategy::kMonolithicUdf, &mono_us,
                            &mono_n);
      if (ie_n != theta_n || ie_n != mono_n) {
        std::fprintf(stderr, "strategy disagreement at %lld rows!\n",
                     static_cast<long long>(rows));
        std::exit(1);
      }
      factor = Times(static_cast<double>(mono_us) / static_cast<double>(ie_us));
    }
    table.AddRow({std::to_string(rows), std::to_string(ie_n), mono_ms,
                  theta_ms, ie_ms, factor});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): baselines blow up quadratically (stopped at\n"
      "%lld rows, as the paper stopped theirs after 22h); the IEJoin-extended\n"
      "pipeline is orders of magnitude faster and keeps scaling.\n",
      static_cast<long long>(kQuadraticCap));
}

}  // namespace
}  // namespace bench
}  // namespace rheem

int main() {
  rheem::bench::Run();
  return 0;
}
